"""Shared benchmark configuration.

Every benchmark runs its experiment exactly once per measurement
(``rounds=1``) because experiment runtimes are seconds, not
microseconds, and the interesting output is the *shape assertion*
against the paper, not nanosecond variance.

Benchmarks use reduced-but-meaningful sizes (fewer queries per epoch
than the paper's 1000) so the full suite stays in the minutes range;
the experiment ids and parameters match DESIGN.md §3.
"""

from __future__ import annotations

import pytest

#: Root seed for every benchmark run — results are deterministic.
BENCH_SEED = 20170108


@pytest.fixture
def once(benchmark):
    """Run ``fn(*args, **kwargs)`` once under the benchmark clock."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return _run
