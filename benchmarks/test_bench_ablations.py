"""Benches A1/A2/A2b — ablations over the paper's under-specified knobs."""

from __future__ import annotations

from repro.experiments import (
    run_ante_bias_ablation,
    run_area_ablation,
    run_rot_ablation,
)

from conftest import BENCH_SEED


def test_area_hole_count_ablation(once):
    """A1: new molds start with probability 1/(K+1), so small K yields
    speckle and large K grows few contiguous holes."""
    result = once(run_area_ablation, seed=BENCH_SEED, queries_per_epoch=100)
    by_k = result.data["by_k"]

    # Hole-boundary count shrinks as K grows.
    assert by_k[1]["transitions"] > by_k[16]["transitions"]
    assert by_k[4]["transitions"] > by_k[64]["transitions"]
    # At K=64 nearly all forgetting accretes onto long-lived areas.
    assert by_k[64]["transitions"] < 0.1 * by_k[1]["transitions"]

    # Precision is insensitive to K on uniform data (value-blind).
    finals = [v["final_E"] for v in by_k.values()]
    assert max(finals) - min(finals) < 0.08


def test_rot_knob_ablation(once):
    """A2: the high-water mark prevents anterograde drift; the
    frequency shield pays off on skewed data."""
    result = once(run_rot_ablation, seed=BENCH_SEED, queries_per_epoch=300)
    knobs = result.data["by_knobs"]

    # Without the water mark, fresh unqueried tuples are eaten
    # (anterograde behaviour the paper warns about).
    assert knobs["hwm=0,exp=1.0"]["newest_cohort_active"] < 0.5
    # With it, the fresh cohort survives its protected round.
    assert knobs["hwm=1,exp=1.0"]["newest_cohort_active"] == 1.0

    # The frequency shield raises precision on zipfian data ...
    assert (
        knobs["hwm=1,exp=1.0"]["final_E"]
        > knobs["hwm=1,exp=0.0"]["final_E"] + 0.1
    )
    # ... and more shield helps more (up to saturation).
    assert (
        knobs["hwm=1,exp=2.0"]["final_E"]
        >= knobs["hwm=1,exp=1.0"]["final_E"] - 0.02
    )


def test_ante_bias_ablation(once):
    """A2b: the recency bias trades initial-cohort retention against
    the depth of the update black hole, monotonically."""
    result = once(run_ante_bias_ablation, seed=BENCH_SEED)
    by_bias = result.data["by_bias"]
    biases = sorted(by_bias)

    initial = [by_bias[b]["initial_cohort"] for b in biases]
    tail = [by_bias[b]["newest_cohort"] for b in biases]
    # More bias -> more of the initial database survives ...
    assert all(a < b for a, b in zip(initial, initial[1:]))
    # ... at the cost of fresher updates.
    assert all(a > b for a, b in zip(tail, tail[1:]))
    # The DESIGN.md default (bias 6) keeps "most" of cohort 0.
    assert by_bias[6.0]["initial_cohort"] > 0.5
    # And the black hole is always the darkest region.
    for b in biases:
        facts = by_bias[b]
        assert facts["black_hole"] < facts["initial_cohort"]
        assert facts["black_hole"] < facts["newest_cohort"]
