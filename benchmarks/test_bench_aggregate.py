"""Bench T2 — §4.3: aggregate query precision over a longer run.

"We increased the experimental run length and study the query
SELECT AVG(a) FROM t.  To our surprise the differences were marginal
and the graphs came out similar to Figure 3."

Assertions:

* tuple-level precision of the aggregate's input decays exactly like
  Figure 3 (≈ 1/(1+0.8t) at the end of the run);
* the AVG *value* stays accurate (relative error ≲ a few percent) —
  the error vanishes behind the data's own noise;
* the spread between policies is marginal.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import run_aggregate_precision

from conftest import BENCH_SEED


def test_aggregate_precision_long_run(once):
    epochs = 30
    result = once(
        run_aggregate_precision,
        seed=BENCH_SEED,
        epochs=epochs,
        queries_per_epoch=20,
    )
    tuple_panels = result.data["tuple_precision"]
    value_panels = result.data["value_precision"]

    floor = 1.0 / (1.0 + 0.8 * epochs)
    for dist, series_by_policy in tuple_panels.items():
        for policy, series in series_by_policy.items():
            series = np.asarray(series)
            # "Similar to Figure 3": same hyperbolic decay.
            assert abs(series[-1] - floor) < 0.05, f"{dist}/{policy}"
            assert np.all(np.diff(series) < 0.03)

    for dist, series_by_policy in value_panels.items():
        for policy, series in series_by_policy.items():
            series = np.asarray(series)
            # The AVG answer itself barely moves.
            assert series[-1] > 0.85, f"{dist}/{policy} AVG drifted"
            assert series.mean() > 0.9

    # "The differences were marginal."
    for dist, spread in result.data["spreads"].items():
        assert spread < 0.12, f"{dist}: policy spread {spread} not marginal"
