"""Bench C1 — §1: the storage economics of forgetting.

The paper's Glacier arithmetic must come out with the right ordering:
keeping forgotten data hot is the most expensive option, cold storage
cuts the keep rate by roughly the hot/cold price ratio but charges for
retrieval, summaries are nearly free, deletion is free and final.
"""

from __future__ import annotations

from repro.experiments import run_coldstore_economics

from conftest import BENCH_SEED


def test_coldstore_economics(once):
    result = once(run_coldstore_economics, seed=BENCH_SEED)
    d = result.data["dispositions"]

    hot = d["mark (keep hot)"]
    cold = d["cold storage"]
    summary = d["summary"]
    delete = d["delete"]

    # Keep-cost ordering: hot > cold > summary > delete.
    assert hot["usd_per_tb_year"] > cold["usd_per_tb_year"]
    assert cold["usd_per_tb_year"] > summary["usd_per_tb_year"]
    assert summary["usd_per_tb_year"] > delete["usd_per_tb_year"] == 0.0

    # The paper's headline rate survives the unit conversion: hot tier
    # is several times the $48/TB-yr Glacier rate.
    assert hot["usd_per_tb_year"] >= 4 * 48.0

    # Information-retention ordering.
    assert hot["retention"].startswith("full")
    assert cold["retention"] == "full (on request)"
    assert summary["retention"] == "aggregates only"
    assert delete["retention"] == "none"

    # Summaries compress the forgotten payload by orders of magnitude.
    assert summary["resident_bytes"] < 0.05 * hot["resident_bytes"]
