"""Bench C2 — §4.4: compression postpones forgetting.

At a fixed byte budget the best codec must (a) beat 8 B/value on every
distribution, (b) therefore hold strictly more tuples, and (c) produce
strictly higher end-of-run precision than the uncompressed budget.
"""

from __future__ import annotations

from repro.experiments import run_compression_budget

from conftest import BENCH_SEED


def test_compression_budget(once):
    result = once(run_compression_budget, seed=BENCH_SEED)

    for dist, facts in result.data.items():
        per_codec = facts["bytes_per_value"]
        # Raw is exactly 8 B/value plus a vanishing header share.
        assert 8.0 <= per_codec["raw"] < 8.01

        # Frame-of-reference always wins on bounded integer domains.
        assert per_codec["for"] < 3.0, f"{dist}: FOR {per_codec['for']}"
        assert facts["best_codec"] == "for"

        # More tuples at the same budget...
        assert facts["capacity_best"] > 2 * facts["capacity_raw"], dist
        # ...means later forgetting and better precision.
        assert facts["final_E_best"] > facts["final_E_raw"] + 0.1, dist

    # Distribution-specific codec facts: RLE expands on random data,
    # dictionary approaches the entropy of the skewed distribution.
    assert result.data["uniform"]["bytes_per_value"]["rle"] > 8.0
    assert result.data["zipfian"]["bytes_per_value"]["dict"] < 3.0
