"""Bench I1 — §1: stop-indexing and summary disposition mechanics.

"A complete scan will fetch all data, but a fast index-based query
evaluation will skip the forgotten data" — recall and cost must split
exactly that way, and summaries must answer whole-table aggregates
exactly.
"""

from __future__ import annotations

from repro.experiments import run_dispositions

from conftest import BENCH_SEED


def test_disposition_mechanics(once):
    result = once(run_dispositions, seed=BENCH_SEED)
    plans = result.data["plans"]

    scan = plans["scan (stop-indexing)"]
    sorted_plan = plans["sorted index"]
    brin = plans["BRIN index"]
    brin_clustered = plans["BRIN index (clustered data)"]

    # The visibility asymmetry: the scan sees everything...
    assert scan["recall"] == 1.0
    # ...while index plans see only the amnesiac fifth (50% volatility
    # over 8 epochs leaves 2000/10000 active).
    assert 0.1 < sorted_plan["recall"] < 0.35
    assert abs(sorted_plan["recall"] - brin["recall"]) < 1e-9

    # And the cost asymmetry: the sorted index touches orders of
    # magnitude fewer tuples than the scan.
    assert scan["tuples_touched"] == 10_000
    assert sorted_plan["tuples_touched"] < 0.05 * scan["tuples_touched"]
    # BRIN only pays off when value order follows storage order.
    assert brin_clustered["tuples_touched"] < 0.2 * brin["tuples_touched"]

    # Summaries answer every whole-table aggregate exactly, while the
    # mark-only database drifts on the mass-sensitive ones.
    aggregates = result.data["aggregates"]
    for function, errors in aggregates.items():
        assert errors["with_summaries_error"] < 1e-9, function
    assert aggregates["sum"]["mark_only_error"] > 0.5
    assert aggregates["count"]["mark_only_error"] > 0.5
