"""Benches A3/A4 — the §4.4 semantics-aware extension policies."""

from __future__ import annotations

from repro.experiments import run_distribution_alignment, run_pair_preservation

from conftest import BENCH_SEED


def test_pair_preserving_avg_error(once):
    """A3: pair-forgetting 'would retain the precision as long as
    possible' for AVG — beat uniform amnesia on symmetric data."""
    result = once(run_pair_preservation, seed=BENCH_SEED, queries_per_epoch=10)
    errors = result.data["mean_error"]
    for dist in ("uniform", "normal"):
        assert (
            errors[dist]["pair"] < errors[dist]["uniform"]
        ), f"{dist}: pair {errors[dist]['pair']} vs uniform {errors[dist]['uniform']}"
        # And the absolute drift is tiny.
        assert errors[dist]["pair"] < 0.02


def test_distribution_aligned_divergence(once):
    """A4: aligning with the oracle histogram beats blind forgetting by
    an order of magnitude on the JS-divergence drift metric."""
    result = once(run_distribution_alignment, seed=BENCH_SEED)
    finals = result.data["final_js"]
    for dist, by_policy in finals.items():
        assert by_policy["dist"] < 0.1 * by_policy["uniform"], (
            f"{dist}: aligned {by_policy['dist']} vs uniform "
            f"{by_policy['uniform']}"
        )
        # Stratified deliberately flattens, so it must drift *more*
        # than uniform on skewed data — it optimises coverage instead.
        if dist == "zipfian":
            assert by_policy["stratified"] > by_policy["uniform"]
