"""Benches X1–X4 — the implemented beyond-the-paper extensions.

Each extension gets one end-to-end measurement with the claim from
EXPERIMENTS.md asserted: decay policies shield hot data, adaptive
partitioning buys hot-range precision, referential amnesia preserves
constraints, histogram summaries quantify what a range query lost.
"""

from __future__ import annotations

import numpy as np

from repro import AmnesiaSimulator, SimulationConfig
from repro.amnesia import EbbinghausAmnesia, FifoAmnesia, UniformAmnesia
from repro.datagen import ZipfianDistribution
from repro.integrity import ForeignKey, ReferentialAmnesiaWrapper
from repro.partitioning import PartitionedAmnesiaDatabase
from repro.storage import Table
from repro.summaries import HistogramSummaryStore

from conftest import BENCH_SEED


def test_ebbinghaus_decay_shields_hot_data(once):
    """X1: the forgetting-curve policy beats blind forgetting on
    skewed, queried data — the §5 'human heuristics' claim."""

    def run(policy):
        config = SimulationConfig(
            dbsize=500, update_fraction=0.5, epochs=8,
            queries_per_epoch=300, seed=BENCH_SEED,
        )
        simulator = AmnesiaSimulator(config, ZipfianDistribution(), policy)
        return simulator.run().precision_series()[-1]

    decayed = once(run, EbbinghausAmnesia(base_strength=1.0, reinforcement=2.0))
    blind = run(UniformAmnesia())
    assert decayed > blind + 0.05


def test_adaptive_partitioning_precision(once):
    """X2: rebalancing budgets toward traffic raises hot-range E."""

    def run(adaptive: bool) -> float:
        store = PartitionedAmnesiaDatabase(
            "a", (0, 500, 1000), 400,
            policy_factory=UniformAmnesia, seed=BENCH_SEED,
        )
        rng = np.random.default_rng(BENCH_SEED)
        last = None
        for _ in range(10):
            store.insert({"a": rng.integers(0, 1000, 400)})
            for _ in range(25):
                last = store.range_query(0, 300)
            if adaptive:
                store.rebalance(floor=40)
        return last.precision

    adaptive = once(run, True)
    static = run(False)
    assert adaptive > static + 0.05


def test_referential_amnesia_invariant(once):
    """X3: restrict and cascade both keep the FK consistent while the
    parent stays on budget."""

    def run(mode: str):
        rng = np.random.default_rng(BENCH_SEED)
        parent = Table("orders", ["id"])
        child = Table("items", ["order_id"])
        parent.insert_batch(0, {"id": np.arange(500)})
        # ~600 children over 500 parents leaves a third of the parents
        # unreferenced — room for restrict-mode forgetting.
        child.insert_batch(
            0, {"order_id": rng.integers(0, 500, 600)}
        )
        fk = ForeignKey(child, "order_id", parent, "id")
        if mode == "cascade":
            policy = ReferentialAmnesiaWrapper(
                UniformAmnesia(), fk, mode="cascade"
            )
            quota = 50
        else:
            policy = ReferentialAmnesiaWrapper(
                FifoAmnesia(), fk, mode="restrict"
            )
            quota = 10
        for epoch in range(1, 6):
            victims = policy.select_victims(parent, quota, epoch, rng)
            parent.forget(victims, epoch)
            fk.check()
        return parent.forgotten_count, policy

    forgotten, policy = once(run, "cascade")
    assert forgotten == 250
    assert policy.cascaded_children > 200  # ~1.2 children per parent

    forgotten_restrict, _ = run("restrict")
    assert forgotten_restrict == 50


def test_histogram_summary_mf_estimate(once):
    """X4: the micro-model estimates a range query's missing tuples."""

    def run():
        rng = np.random.default_rng(BENCH_SEED)
        table = Table("t", ["a"])
        values = rng.integers(0, 10_000, 20_000)
        table.insert_batch(0, {"a": values})
        store = HistogramSummaryStore(0, 9_999, bins=64)
        victims = rng.choice(20_000, 15_000, replace=False)
        store.add(1, table.values("a")[victims])
        table.forget(victims, epoch=1)

        errors = []
        for low in range(0, 9_000, 1_000):
            high = low + 800
            active = table.active_values("a")
            rf = int(((active >= low) & (active < high)).sum())
            oracle = int(((values >= low) & (values < high)).sum())
            estimate = store.approx_range_count(low, high)
            errors.append(abs(estimate - (oracle - rf)) / max(oracle - rf, 1))
        return float(np.mean(errors))

    mean_relative_error = once(run)
    assert mean_relative_error < 0.15
