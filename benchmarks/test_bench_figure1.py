"""Bench F1 — Figure 1: the database amnesia map.

Regenerates the paper's first figure (dbsize=1000, upd-perc=0.20,
10 update batches) and asserts the published qualitative shapes:

* fifo: hard cutoff — everything before the sliding window is gone,
  the window itself fully active;
* uniform: survival brightens monotonically toward the newest cohort;
* ante: the initial cohort retains most of its data while the oldest
  update cohorts form the "black hole";
* area: intermediate between uniform speckle and fifo contiguity.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import run_figure1

from conftest import BENCH_SEED


def test_figure1_amnesia_map(once):
    result = once(run_figure1, seed=BENCH_SEED)
    maps = {k: np.asarray(v) for k, v in result.data["cohort_activity"].items()}

    fifo = maps["fifo"]
    # 3000 tuples inserted, 1000 survive: the last cohorts form the
    # window.  Cohorts fully outside are exactly 0, inside exactly 1.
    assert fifo[0] == 0.0 and fifo[1] == 0.0
    assert fifo[-1] == 1.0 and fifo[-2] == 1.0
    assert np.all(np.diff(fifo) >= 0.0), "fifo map must be a step function"

    uniform = maps["uniform"]
    # Geometric survival: newest cohorts brightest; allow small noise
    # in the middle but require the overall trend and the bright tail.
    assert uniform[-1] > 0.7
    assert uniform[0] < 0.3
    assert uniform[-1] > uniform[0]
    smoothed = np.convolve(uniform, np.ones(3) / 3, mode="valid")
    assert np.all(np.diff(smoothed) > -0.12), "uniform map trend must rise"

    ante = maps["ante"]
    # "Retains most of the data at point 0, and then forgets all
    # updates, starting from the oldest ones."
    assert ante[0] > 0.5, "initial cohort must retain most data"
    black_hole = ante[1:5].mean()
    assert black_hole < 0.25, "oldest updates must form the black hole"
    assert ante[0] > 2 * black_hole
    assert ante[-1] > black_hole, "newest updates only partially forgotten"

    area = maps["area"]
    # Uniform-fifo hybrid: old darker than new on average.
    assert area[-3:].mean() > area[:3].mean()
    assert 0.0 < area.mean() < 1.0


def test_figure1_constant_budget(once):
    result = once(run_figure1, seed=BENCH_SEED + 1, epochs=6)
    for fractions in result.data["cohort_activity"].values():
        fractions = np.asarray(fractions)
        # Weighted by cohort sizes (1000 + 6x200), survivors must equal
        # DBSIZE exactly — the simulator's storage-budget invariant.
        sizes = np.array([1000] + [200] * 6)
        assert int(round((fractions * sizes).sum())) == 1000
