"""Bench F2 — Figure 2: the database *rot* map.

"The data distribution in combination with the amnesia has a strong
impact on what you retain from the past" (§4.1).  The assertions pin
that claim down:

* the four distributions must produce visibly different maps;
* the skewed (zipfian) dataset must retain more of its *oldest* update
  cohorts than the uniform dataset — hot values accumulate access
  frequency and the rot shield protects them;
* serial data, where every value is queried equally rarely, must keep
  the freshest cohort fully alive (high-water-mark protection).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import run_figure2

from conftest import BENCH_SEED


def test_figure2_rot_map(once):
    result = once(
        run_figure2,
        seed=BENCH_SEED,
        queries_per_epoch=400,
    )
    maps = {k: np.asarray(v) for k, v in result.data["cohort_activity"].items()}
    assert set(maps) == {"serial", "uniform", "normal", "zipfian"}

    # Distributions are the differential factor: pairwise L1 distances
    # between maps must be clearly non-zero.
    names = list(maps)
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            distance = float(np.abs(maps[a] - maps[b]).mean())
            assert distance > 0.01, f"{a} vs {b} rot maps are identical"

    # Hot-value protection: zipfian keeps more of the old update
    # cohorts than uniform does.
    assert maps["zipfian"][1:5].mean() > maps["uniform"][1:5].mean()

    # The freshest cohort is protected by the high-water mark.
    for name, fractions in maps.items():
        assert fractions[-1] == 1.0, f"{name}: fresh cohort must survive"

    # Budget invariant (1000 + 10x200 inserted, 1000 active).
    sizes = np.array([1000] + [200] * 10)
    for fractions in maps.values():
        assert int(round((fractions * sizes).sum())) == 1000
