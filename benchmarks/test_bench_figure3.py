"""Bench F3 — Figure 3: range query precision over the timeline.

Regenerates the precision-vs-batches series at upd-perc=0.80 for all
five policies on uniform and zipfian data, asserting:

* precision starts near the one-round floor (~0.55) and decays
  monotonically, as the paper's curves do;
* by batch 10 every value-blind policy sits near the active-fraction
  floor 1/(1+0.8·10) ≈ 0.11 — "converges to the same values in the
  long run";
* rot retains clearly more precision on zipfian data (the learned
  frequency shield), the one policy split this substrate reproduces.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import run_figure3

from conftest import BENCH_SEED


def test_figure3_range_precision(once):
    result = once(
        run_figure3,
        seed=BENCH_SEED,
        queries_per_epoch=300,
        distributions=("uniform", "zipfian"),
    )
    panels = result.data["precision"]

    for dist, series_by_policy in panels.items():
        for policy, series in series_by_policy.items():
            series = np.asarray(series)
            assert series.shape == (10,)
            # Paper curves decay from ~0.55-0.9 toward ~0.1.
            assert 0.4 < series[0] <= 1.0, f"{dist}/{policy} start {series[0]}"
            assert series[-1] < 0.35, f"{dist}/{policy} end {series[-1]}"
            # Monotone decay up to small sampling noise.
            assert np.all(np.diff(series) < 0.03), f"{dist}/{policy} not decaying"

    # Long-run convergence across distributions (value-blind policies).
    for policy in ("fifo", "uniform", "ante", "area"):
        finals = [panels[d][policy][-1] for d in panels]
        assert max(finals) - min(finals) < 0.05, f"{policy} diverges long-run"

    # Rot's learned shield pays off on skewed data.
    assert panels["zipfian"]["rot"][-1] > 1.3 * panels["zipfian"]["uniform"][-1]
    assert panels["zipfian"]["rot"][0] > panels["uniform"]["rot"][0]


def test_figure3_floor_tracks_active_fraction(once):
    """E under value-blind amnesia ≈ active fraction 1/(1+0.8t)."""
    result = once(
        run_figure3,
        seed=BENCH_SEED + 1,
        queries_per_epoch=300,
        distributions=("uniform",),
        policies=("uniform",),
    )
    series = np.asarray(result.data["precision"]["uniform"]["uniform"])
    t = np.arange(1, 11)
    floor = 1.0 / (1.0 + 0.8 * t)
    assert np.all(np.abs(series - floor) < 0.08)
