"""Micro-benchmarks of the hot kernels.

These measure raw throughput of the substrate operations every
experiment leans on: bitmap flips, weighted victim sampling, query
execution, codec encode/decode, and index probes.  Useful for catching
performance regressions when extending the simulator.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.amnesia import (
    AreaAmnesia,
    RotAmnesia,
    UniformAmnesia,
    weighted_sample_without_replacement,
)
from repro.compression import make_codec
from repro.indexes import BlockRangeIndex, SortedIndex
from repro.query import QueryExecutor, RangePredicate, RangeQuery
from repro.storage import Table

from conftest import BENCH_SEED

N_ROWS = 100_000


@pytest.fixture(scope="module")
def big_table():
    rng = np.random.default_rng(BENCH_SEED)
    table = Table("bench", ["a"])
    table.insert_batch(0, {"a": rng.integers(0, 10_000, N_ROWS)})
    return table


def test_bench_insert_batch(benchmark):
    rng = np.random.default_rng(BENCH_SEED)
    values = rng.integers(0, 10_000, N_ROWS)

    def build():
        table = Table("bench", ["a"])
        table.insert_batch(0, {"a": values})
        return table

    table = benchmark(build)
    assert table.total_rows == N_ROWS


def test_bench_forget_bulk(benchmark):
    rng = np.random.default_rng(BENCH_SEED)
    values = rng.integers(0, 10_000, N_ROWS)
    victims = rng.choice(N_ROWS, size=N_ROWS // 2, replace=False)

    def forget():
        table = Table("bench", ["a"])
        table.insert_batch(0, {"a": values})
        return table.forget(victims, epoch=1)

    flipped = benchmark(forget)
    assert flipped == N_ROWS // 2


def test_bench_weighted_sampling(benchmark):
    rng = np.random.default_rng(BENCH_SEED)
    candidates = np.arange(N_ROWS)
    weights = rng.random(N_ROWS)
    out = benchmark(
        weighted_sample_without_replacement, candidates, weights, 1000, rng
    )
    assert out.size == 1000


def test_bench_range_query(benchmark, big_table):
    executor = QueryExecutor(big_table, record_access=False)
    query = RangeQuery(RangePredicate("a", 4000, 4200))
    result = benchmark(executor.execute_range, query, 1)
    assert result.oracle_count > 0


@pytest.mark.parametrize("policy_factory", [UniformAmnesia, RotAmnesia, AreaAmnesia])
def test_bench_policy_selection(benchmark, policy_factory):
    rng = np.random.default_rng(BENCH_SEED)
    table = Table("bench", ["a"])
    table.insert_batch(0, {"a": rng.integers(0, 10_000, 20_000)})
    policy = policy_factory()
    victims = benchmark(policy.select_victims, table, 2000, 1, rng)
    assert np.unique(victims).size == 2000


@pytest.mark.parametrize("codec_name", ["rle", "dict", "for"])
def test_bench_codec_roundtrip(benchmark, codec_name):
    rng = np.random.default_rng(BENCH_SEED)
    values = rng.integers(0, 1000, 65_536)
    codec = make_codec(codec_name)

    def roundtrip():
        return codec.decode(codec.encode(values))

    out = benchmark(roundtrip)
    assert np.array_equal(out, values)


def test_bench_sorted_index_probe(benchmark, big_table):
    index = SortedIndex(big_table, "a")
    probe = benchmark(index.lookup_range, 4000, 4200)
    assert probe.count > 0
    big_table.remove_observer(index)


def test_bench_brin_probe(benchmark, big_table):
    index = BlockRangeIndex(big_table, "a", block_size=512)
    probe = benchmark(index.lookup_range, 4000, 4200)
    assert probe.count > 0
    big_table.remove_observer(index)
