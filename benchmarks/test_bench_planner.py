"""Planner speedup benchmarks: pruned and cost-based plans vs the scan.

Builds a ≥1M-row time-correlated history (each cohort holds a
localised value window, like sensor timestamps), forgets a slice, and
fires selective (≤1% selectivity) range queries under ``plan="auto"``
and ``plan="scan"``.  Asserts both that the results are identical and
that the pruned path is at least 5× faster — the tentpole claim of the
planner PR.  The cost-model benchmark adds a coarse BRIN "trap": auto's
fixed index>zonemap preference walks into it, the cost model prices the
probe and sidesteps it, so ``cost`` must be at least as fast as
``auto``.  A sharded benchmark runs the same style of workload through
``PartitionedAmnesiaDatabase`` under several plan modes, and a fan-out
benchmark runs it with ``workers in {1, 4}`` — shards execute their
planner pipelines concurrently, numpy releases the GIL inside the
per-shard scans, and the merged results must stay bit-identical.

Every timed section feeds ``BENCH_planner.json`` at the repo root —
an ops/s trajectory artifact (per plan mode, shard count and worker
count, plus the host's CPU count) uploaded by CI so future PRs have a
perf baseline to diff against.  The ``streaming`` suite compares the
same aggregate-over-join executed materialized, streamed-hash and
sort-merge: identical exact moments, with the streamed peak working
set bounded by batch × build rows and ≥10× under the full pair set.  With ``--quick`` the history shrinks
for CI smoke runs and the wall-clock floors relax (shape and
equivalence assertions still run).  Fan-out speed floors additionally
gate on the visible CPU count: threads cannot beat sequential on a
single core, and the measured ratio is recorded either way.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import BENCH_SEED
from repro.amnesia import FifoAmnesia
from repro.indexes import BlockRangeIndex, SortedIndex
from repro.partitioning import PartitionedAmnesiaDatabase
from repro.query import QueryExecutor, QueryPlanner, RangePredicate, RangeQuery
from repro.stats import ExactMoments, TableHistogramStats
from repro.storage import (
    Catalog,
    CohortZoneMap,
    CompressedCohortStore,
    Table,
)

FULL_ROWS = 1_000_000
QUICK_ROWS = 125_000
COHORTS = 250
#: Query window width as a fraction of the domain (0.5% selectivity).
WIDTH_FRACTION = 0.005
QUERIES = 40
REPEATS = 3

#: Sharded-store benchmark topology.
SHARDS = 8
SHARDED_FULL_ROWS = 256_000
SHARDED_QUICK_ROWS = 32_000
SHARDED_MODES = ("scan", "auto", "cost")

#: Fan-out benchmark: worker counts over the 1M-row sharded suite.
#: Scan mode is the fan-out stress case — every query executes every
#: shard in full — so it is where parallelism must pay off.
FANOUT_WORKERS = (1, 4)
FANOUT_FULL_ROWS = 1_000_000
FANOUT_QUICK_ROWS = 256_000
#: Cores visible to this process; thread fan-out can only beat the
#: sequential baseline when there is real parallel hardware under it.
CPUS = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
    os.cpu_count() or 1
)

#: Cross-table join benchmark: two sensor tables joined on value over
#: selective hot windows, timed per worker count and plan mode.
JOIN_FULL_ROWS = 256_000
JOIN_QUICK_ROWS = 32_000

#: Concurrent-ingest suite: the batched enqueue/flush write path timed
#: at ``workers in {1, 4}`` over a 1M-row stream, then a mixed
#: read/write phase on the same store.  Scan plan mode, like the other
#: fan-out stress cases: per-shard applier work is real numpy, so the
#: pool has something to overlap.
INGEST_FULL_ROWS = 1_000_000
INGEST_QUICK_ROWS = 128_000
INGEST_BATCHES = 50
MIXED_ROUNDS = 8
MIXED_QUERIES_PER_ROUND = 6

#: Skewed (Zipf) suite: histogram vs uniform statistics.  The sharded
#: run measures adaptive rebalancing with median vs midpoint splits on
#: a Zipf-hot stream (cost plan mode, single-threaded, so its floor
#: gates unconditionally — no CPU-count gate needed); the q-error run
#: measures estimate accuracy on the same kind of stream; the blocked
#: join measures the pair-discovery working set.
ZIPF_FULL_ROWS = 1_000_000
ZIPF_QUICK_ROWS = 125_000
ZIPF_EXPONENT = 1.3
#: Fewer, fatter cohorts than the time-correlated suite: Zipf cohorts
#: all span the whole domain (no zone-map pruning), so the interesting
#: cost is rows-in-covered-shards, not per-cohort loop overhead.
ZIPF_COHORTS = 50
ZIPF_REBALANCE_ROUNDS = 6
ZIPF_WARMUP_QUERIES = 30
#: Warm-up windows are wide (spreading traffic over the hot head, so
#: median cuts keep subdividing it); the timed probes are width-1 and
#: shifted off the two hottest values, so their cost is dominated by
#: the rows the covered shards hold — the thing the split policy moves.
ZIPF_WARMUP_WIDTH = 300
ZIPF_TIMED_SHIFT = 2
BLOCKED_JOIN_ROWS = 48_000
BLOCKED_JOIN_QUICK_ROWS = 12_000
BLOCKED_JOIN_BLOCK = 2_048

#: Streaming suite: aggregate-over-join on ~1M rows (2 × 500k sides)
#: sharing a hot key, the working-set stress the streaming engine
#: exists for.  The materializing baseline holds the full pair set at
#: once; the streamed aggregate folds batches into exact moments, so
#: its recorded peak must stay ≤ batch × build rows and ≥10× under the
#: full |output|.  A second catalog adds ``SortedIndex`` leaves so the
#: cost model flips the same query to sort-merge (peak ≤ batch, full
#: stop).  Speed floors gate on ≥4 visible cores, per the carry-over
#: convention for timing-sensitive assertions.
STREAM_FULL_ROWS = 500_000
STREAM_QUICK_ROWS = 50_000
STREAM_BATCH = 2_048
STREAM_HOT_FRACTION = 0.002

#: Compressed-execution suite: cold cohorts demoted into best-codec
#: blocks, range predicates answered on the encoded form.  The
#: retention comparison is the paper's C2 claim made concrete: at a
#: fixed byte budget over a Zipf stream, the compressed table must
#: retain strictly more history before forced forgetting than the raw
#: 8-bytes-per-value layout — deterministic arithmetic, asserted
#: unconditionally (quick included).  The ops/s comparison times the
#: compressed match path against the scan baseline and the raw
#: zone-map path on the time-correlated history; its floor gates on
#: full-size runs with ≥4 visible cores, per the carry-over
#: convention.
COMPRESSED_RETENTION_ROWS = 250_000
COMPRESSED_RETENTION_QUICK_ROWS = 50_000
#: Fixed byte budget as a fraction of the stream's raw footprint.
RETENTION_BUDGET_FRACTION = 0.25

#: Serving suite: the multi-tenant service driven in process (no
#: socket noise), one selective shape pool cycled so the second pass
#: onward hits the result cache.  Cold = empty caches, warm = primed.
SERVE_FULL_ROWS = 200_000
SERVE_QUICK_ROWS = 25_000
SERVE_SHAPES = 25
SERVE_ROUNDS = 4

#: Trajectory artifact consumed by CI (ops/s per plan mode + shards).
ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_planner.json"

_ARTIFACT: dict = {}


@pytest.fixture(scope="module", autouse=True)
def artifact(quick):
    """Collect ops/s figures across tests; write the JSON at teardown."""
    _ARTIFACT.clear()
    _ARTIFACT.update(
        {
            "suite": "planner",
            "seed": BENCH_SEED,
            "quick": bool(quick),
            "queries": QUERIES,
            "cpus": CPUS,
            "single_table": {"modes": {}},
            "sharded": {"shards": SHARDS, "modes": {}, "workers": {}},
            "join": {"modes": {}, "workers": {}},
            "ingest": {"shards": SHARDS, "workers": {}, "mixed": {}},
            "skewed": {"modes": {}, "qerror": {}, "blocked_join": {}},
            "streaming": {"modes": {}},
            "compressed": {"modes": {}, "retention": {}},
            "serve": {"modes": {}},
        }
    )
    yield _ARTIFACT
    ARTIFACT_PATH.write_text(
        json.dumps(_ARTIFACT, indent=2, sort_keys=True) + "\n"
    )


def _record(section: str, mode: str, seconds: float, n_queries: int) -> None:
    _ARTIFACT[section]["modes"][mode] = {
        "seconds": round(seconds, 6),
        "ops_per_s": round(n_queries / seconds, 2) if seconds > 0 else None,
    }


def _build(rows: int) -> tuple[Table, CohortZoneMap]:
    """A time-correlated history: cohort i holds values in window i."""
    rng = np.random.default_rng(BENCH_SEED)
    table = Table("bench_planner", ["a"])
    zone_map = CohortZoneMap(table)  # maintained incrementally from day 0
    span = rows // COHORTS
    for epoch in range(COHORTS):
        values = rng.integers(epoch * span, (epoch + 1) * span, span)
        table.insert_batch(epoch, values_by_column={"a": values})
    # Forget the oldest 10% so the missed (M_F) side is exercised too.
    table.forget(np.arange(rows // 10), epoch=COHORTS)
    return table, zone_map


def _queries(rows: int) -> list[RangeQuery]:
    rng = np.random.default_rng(BENCH_SEED + 1)
    width = max(1, int(rows * WIDTH_FRACTION))
    lows = rng.integers(0, rows - width, QUERIES)
    return [RangeQuery(RangePredicate("a", int(low), int(low) + width)) for low in lows]


def _run_all(executor: QueryExecutor, queries) -> list[tuple[int, int]]:
    return [
        (r.rf, r.mf)
        for r in (executor.execute_range(q, epoch=COHORTS) for q in queries)
    ]


def _time_best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def history(quick):
    rows = QUICK_ROWS if quick else FULL_ROWS
    table, zone_map = _build(rows)
    return rows, table, zone_map, _queries(rows)


def test_auto_plan_at_least_5x_faster_than_scan(history):
    rows, table, zone_map, queries = history
    scan = QueryExecutor(table, record_access=False)
    auto = QueryExecutor(
        table,
        record_access=False,
        planner=QueryPlanner(table, mode="auto", zone_map=zone_map),
    )
    # Identical answers first (rf AND mf — the oracle side must survive
    # pruning), then the speed claim.
    assert _run_all(scan, queries) == _run_all(auto, queries)
    scan_time = _time_best_of(lambda: _run_all(scan, queries))
    auto_time = _time_best_of(lambda: _run_all(auto, queries))
    ratio = scan_time / auto_time
    _ARTIFACT["rows"] = rows
    _record("single_table", "scan", scan_time, len(queries))
    _record("single_table", "auto", auto_time, len(queries))
    _ARTIFACT["single_table"]["auto_speedup_over_scan"] = round(ratio, 2)
    print(
        f"\nplanner speedup on {rows} rows: scan {scan_time * 1e3:.1f}ms "
        f"vs auto {auto_time * 1e3:.1f}ms ({ratio:.1f}x)"
    )
    if rows >= FULL_ROWS:
        # The hard floor only gates full-size runs; --quick (CI smoke)
        # still checks equivalence and pruning but not wall-clock, so
        # shared-runner timing noise cannot redden the suite.
        assert ratio >= 5.0, (
            f"expected >=5x speedup on {rows} rows, got {ratio:.1f}x"
        )
    stats = auto.planner.stats()
    assert stats["paths"]["zonemap"] == len(queries) * (REPEATS + 1)
    assert stats["pruned_fraction"] > 0.9


def test_cost_mode_at_least_matches_auto(history):
    """Acceptance: cost ≥ auto on the 1M-row suite.

    Both planners see the same structures: the zone map plus a coarse
    BRIN whose blocks span several cohorts.  ``auto`` prefers the index
    unconditionally and pays the oversized probe; ``cost`` prices the
    probe against the pruned scan and routes around it.
    """
    rows, table, zone_map, queries = history
    # Blocks span ~25 cohorts: the probe considers an order of magnitude
    # more rows than the pruned scan, so the pricing decision dominates
    # the (per-query) estimation overhead.
    coarse = BlockRangeIndex(table, "a", block_size=max(rows // 10, 1))
    auto = QueryExecutor(
        table,
        record_access=False,
        planner=QueryPlanner(
            table, mode="auto", zone_map=zone_map, indexes=[coarse]
        ),
    )
    cost = QueryExecutor(
        table,
        record_access=False,
        planner=QueryPlanner(
            table, mode="cost", zone_map=zone_map, indexes=[coarse]
        ),
    )
    assert _run_all(auto, queries) == _run_all(cost, queries)
    # Auto walks into the trap on every query; the cost model routes
    # most probes around it (it may still pick the BRIN where the probe
    # genuinely is cheaper, e.g. against fully forgotten regions).
    cost_paths = cost.planner.stats()["paths"]
    assert cost_paths["zonemap"] >= len(queries) * 0.75
    assert auto.planner.stats()["paths"]["index"] == len(queries)
    auto_time = _time_best_of(lambda: _run_all(auto, queries))
    cost_time = _time_best_of(lambda: _run_all(cost, queries))
    ratio = auto_time / cost_time
    _record("single_table", "auto_with_coarse_index", auto_time, len(queries))
    _record("single_table", "cost", cost_time, len(queries))
    _ARTIFACT["single_table"]["cost_speedup_over_auto"] = round(ratio, 2)
    print(
        f"\ncost-model gain on {rows} rows: auto {auto_time * 1e3:.1f}ms "
        f"vs cost {cost_time * 1e3:.1f}ms ({ratio:.1f}x)"
    )
    if rows >= FULL_ROWS:
        # Quick (CI smoke) runs assert plan shapes only; full runs hold
        # the acceptance line that cost never loses to the heuristic.
        assert ratio >= 1.0, (
            f"cost mode slower than auto on {rows} rows ({ratio:.2f}x)"
        )


def _build_sharded(rows: int, plan: str) -> PartitionedAmnesiaDatabase:
    """Time-correlated stream routed into a range-sharded store."""
    rng = np.random.default_rng(BENCH_SEED + 2)
    boundaries = np.linspace(0, rows, SHARDS + 1).astype(int).tolist()
    store = PartitionedAmnesiaDatabase(
        "a",
        boundaries,
        total_budget=rows // 2,
        policy_factory=FifoAmnesia,
        seed=BENCH_SEED,
        plan=plan,
    )
    span = rows // COHORTS
    for epoch in range(COHORTS):
        store.insert({"a": rng.integers(epoch * span, (epoch + 1) * span, span)})
    return store


def _run_sharded(store: PartitionedAmnesiaDatabase, queries) -> list:
    return [
        (r.rf, r.mf)
        for r in (
            store.range_query(q.predicate.low, q.predicate.high)
            for q in queries
        )
    ]


def test_bench_sharded_store_across_plan_modes(quick):
    """Shard-pruned, planner-routed execution on every plan mode.

    Results must merge identically whatever the mode; ops/s per mode
    and the shard count land in the trajectory artifact.
    """
    rows = SHARDED_QUICK_ROWS if quick else SHARDED_FULL_ROWS
    queries = _queries(rows)
    stores = {mode: _build_sharded(rows, mode) for mode in SHARDED_MODES}
    _ARTIFACT["sharded"]["rows"] = rows
    baseline = _run_sharded(stores["scan"], queries)
    timings = {}
    for mode, store in stores.items():
        assert _run_sharded(store, queries) == baseline, mode
        timings[mode] = _time_best_of(lambda s=store: _run_sharded(s, queries))
        _record("sharded", mode, timings[mode], len(queries))
    _ARTIFACT["sharded"]["cost_speedup_over_scan"] = round(
        timings["scan"] / timings["cost"], 2
    )
    # Selective queries touch ~1 shard; the planner must have pruned
    # most of the fan-out in the non-scan modes.
    pruned = sum(stores["cost"].stats()["shard_prunes"])
    assert pruned > 0
    print(
        "\nsharded ops/s: "
        + ", ".join(
            f"{mode}={len(queries) / timings[mode]:.0f}"
            for mode in SHARDED_MODES
        )
    )


def test_bench_sharded_worker_fanout(quick):
    """Acceptance: the ``workers`` dimension of the sharded suite.

    One store, scan mode (every query pays the full per-shard scan, so
    the fan-out has real work to overlap), timed at ``workers=1`` and
    ``workers=4``.  Results must be bit-identical; the ops/s per worker
    count and the speedup land in the trajectory artifact along with
    the CPU count.  The throughput floors — 4-worker ≥ sequential in
    ``--quick`` (CI smoke), ≥ 1.5× sequential on the full 1M-row run —
    only gate hosts with ≥ 4 visible cores, because a thread pool on a
    single core can only lose; the measured ratio is recorded
    regardless, so the artifact still tells the story.
    """
    rows = FANOUT_QUICK_ROWS if quick else FANOUT_FULL_ROWS
    queries = _queries(rows)
    store = _build_sharded(rows, "scan")
    _ARTIFACT["sharded"]["fanout_rows"] = rows
    results = {}
    timings = {}
    for workers in FANOUT_WORKERS:
        store.workers = workers
        results[workers] = _run_sharded(store, queries)
        timings[workers] = _time_best_of(lambda: _run_sharded(store, queries))
        _ARTIFACT["sharded"]["workers"][str(workers)] = {
            "seconds": round(timings[workers], 6),
            "ops_per_s": round(len(queries) / timings[workers], 2),
        }
    # Bit-identical first: the merge is ordered, so the fan-out cannot
    # leak completion order into counts.
    assert results[4] == results[1]
    speedup = timings[1] / timings[4]
    _ARTIFACT["sharded"]["fanout_speedup"] = round(speedup, 2)
    print(
        f"\nsharded fan-out on {rows} rows ({CPUS} cpus): "
        f"workers=1 {timings[1] * 1e3:.1f}ms vs "
        f"workers=4 {timings[4] * 1e3:.1f}ms ({speedup:.2f}x)"
    )
    store.close()
    if CPUS >= 4:
        # Quick (CI smoke) nominally wants parallel >= sequential; the
        # 0.9 floor leaves 10% headroom for shared-runner timing noise
        # on the small workload, while still catching a fan-out that
        # actually serializes (which measures far lower).  Full-size
        # runs hold the acceptance line.
        floor = 1.5 if rows >= FANOUT_FULL_ROWS else 0.9
        assert speedup >= floor, (
            f"expected >={floor}x fan-out speedup on {rows} rows with "
            f"{CPUS} cpus, got {speedup:.2f}x"
        )


def _build_join_catalog(rows: int, plan: str) -> Catalog:
    """Two time-correlated sensor tables in one catalog."""
    rng = np.random.default_rng(BENCH_SEED + 3)
    catalog = Catalog(plan=plan, workers=1)
    span = rows // COHORTS
    for name in ("s1", "s2"):
        table = catalog.create_table(name, ["a"])
        for epoch in range(COHORTS):
            table.insert_batch(
                epoch, {"a": rng.integers(epoch * span, (epoch + 1) * span, span)}
            )
        table.forget(np.arange(rows // 10), epoch=COHORTS)
    return catalog


def _join_specs(rows: int) -> list[str]:
    rng = np.random.default_rng(BENCH_SEED + 4)
    width = max(1, int(rows * WIDTH_FRACTION))
    # Two windows pinned into the forgotten decile (the oldest 10% of
    # this time-correlated history) so the M_F side of the join is
    # always exercised; the rest sweep the domain at random.
    lows = [0, rows // 20] + rng.integers(
        0, rows - width, QUERIES - 2
    ).tolist()
    return [
        f"join:s1,s2:on=value,low={int(low)},high={int(low) + width}"
        for low in lows
    ]


def _run_joins(catalog: Catalog, specs) -> list[tuple[int, int]]:
    return [
        (r.rf, r.mf)
        for r in (catalog.query(spec, epoch=COHORTS) for spec in specs)
    ]


def test_bench_cross_table_join(quick):
    """Acceptance: the ``join`` ops/s dimension of the trajectory.

    Selective equi-joins between two sensor tables run through
    ``Catalog.query`` under scan mode (every leaf pays the full table
    scan — the fan-out stress case) at ``workers in {1, 4}``, and under
    auto mode (zone-map-pruned leaves) for the planned-path ops/s.
    Results must be bit-identical across widths and modes.  The
    fan-out throughput floors — 4-worker ≥ 0.8× sequential in
    ``--quick``, ≥ 1.2× on the full-size run (two leaf scans can
    overlap at most 2×, and the single-threaded hash build bounds the
    gain below that) — gate on ≥ 4 visible cores, per the established
    convention; the measured ratio is recorded either way.
    """
    rows = JOIN_QUICK_ROWS if quick else JOIN_FULL_ROWS
    specs = _join_specs(rows)
    catalog = _build_join_catalog(rows, "scan")
    _ARTIFACT["join"]["rows"] = rows
    results = {}
    timings = {}
    for workers in FANOUT_WORKERS:
        catalog.workers = workers
        results[workers] = _run_joins(catalog, specs)
        timings[workers] = _time_best_of(lambda: _run_joins(catalog, specs))
        _ARTIFACT["join"]["workers"][str(workers)] = {
            "seconds": round(timings[workers], 6),
            "ops_per_s": round(len(specs) / timings[workers], 2),
        }
    assert results[4] == results[1]
    # The workload must actually join something, and must see both
    # sides' forgetting (forgotten rows sit in the oldest 10%).
    assert sum(rf for rf, _ in results[1]) > 0
    assert sum(mf for _, mf in results[1]) > 0
    speedup = timings[1] / timings[4]
    _ARTIFACT["join"]["fanout_speedup"] = round(speedup, 2)
    _record("join", "scan", timings[1], len(specs))

    auto_catalog = _build_join_catalog(rows, "auto")
    assert _run_joins(auto_catalog, specs) == results[1]
    auto_time = _time_best_of(lambda: _run_joins(auto_catalog, specs))
    _record("join", "auto", auto_time, len(specs))
    _ARTIFACT["join"]["auto_speedup_over_scan"] = round(
        timings[1] / auto_time, 2
    )
    print(
        f"\ncross-table join on 2x{rows} rows ({CPUS} cpus): "
        f"workers=1 {timings[1] * 1e3:.1f}ms vs "
        f"workers=4 {timings[4] * 1e3:.1f}ms ({speedup:.2f}x); "
        f"auto {auto_time * 1e3:.1f}ms "
        f"({timings[1] / auto_time:.1f}x over scan)"
    )
    if CPUS >= 4:
        floor = 1.2 if rows >= JOIN_FULL_ROWS else 0.8
        assert speedup >= floor, (
            f"expected >={floor}x join fan-out speedup on {rows} rows "
            f"with {CPUS} cpus, got {speedup:.2f}x"
        )


def _ingest_batches(rows: int) -> list[np.ndarray]:
    rng = np.random.default_rng(BENCH_SEED + 10)
    size = rows // INGEST_BATCHES
    return [rng.integers(0, rows, size) for _ in range(INGEST_BATCHES)]


def _build_ingest_store(rows: int, workers: int) -> PartitionedAmnesiaDatabase:
    boundaries = np.linspace(0, rows, SHARDS + 1).astype(int).tolist()
    return PartitionedAmnesiaDatabase(
        "a",
        boundaries,
        total_budget=rows // 2,
        policy_factory=FifoAmnesia,
        seed=BENCH_SEED,
        plan="scan",
        workers=workers,
    )


def _shard_state(store: PartitionedAmnesiaDatabase) -> list:
    return [
        (
            partition.db.table.values("a").tolist(),
            partition.db.table.insert_epochs().tolist(),
            partition.db.table.active_mask().tolist(),
        )
        for partition in store.partitions
    ]


def test_bench_concurrent_ingest(quick):
    """Acceptance: the mixed read/write (``ingest``) suite.

    Phase 1 times pure batched ingest — every batch enqueued and
    flushed through the per-shard appliers — at ``workers in {1, 4}``
    over the 1M-row stream.  Phase 2 times a mixed read/write loop
    (enqueue/flush rounds interleaved with selective range queries) on
    the stores phase 1 built.  Final shard state and every mixed-phase
    result must be bit-identical across widths; rows/s, ops/s and the
    speedups land in the trajectory artifact.  The ingest throughput
    floor — 4-worker ≥ 1.5× sequential on the full-size run, ≥ 0.9× in
    ``--quick`` (noise headroom on the small workload) — gates on ≥ 4
    visible cores, per the established convention.
    """
    rows = INGEST_QUICK_ROWS if quick else INGEST_FULL_ROWS
    batches = _ingest_batches(rows)
    width = max(1, int(rows * WIDTH_FRACTION))
    query_rng = np.random.default_rng(BENCH_SEED + 11)
    mixed_lows = query_rng.integers(
        0, rows - width, MIXED_ROUNDS * MIXED_QUERIES_PER_ROUND
    ).tolist()
    mixed_batches = [
        query_rng.integers(0, rows, len(batches[0]))
        for _ in range(MIXED_ROUNDS * 2)
    ]
    _ARTIFACT["ingest"]["rows"] = rows
    stores = {}
    ingest_timings = {}
    mixed_timings = {}
    mixed_results = {}
    for workers in FANOUT_WORKERS:
        store = _build_ingest_store(rows, workers)
        start = time.perf_counter()
        for batch in batches:
            store.enqueue({"a": batch})
            store.flush()
        ingest_timings[workers] = time.perf_counter() - start
        assert store.ingest_epoch == INGEST_BATCHES
        _ARTIFACT["ingest"]["workers"][str(workers)] = {
            "seconds": round(ingest_timings[workers], 6),
            "rows_per_s": round(rows / ingest_timings[workers], 2),
        }
        stores[workers] = store

    # Bit-identity before any floor: the applier fan-out must land
    # exactly the sequential state, shard by shard.
    assert _shard_state(stores[4]) == _shard_state(stores[1])

    for workers, store in stores.items():
        results = []
        start = time.perf_counter()
        for round_index in range(MIXED_ROUNDS):
            store.enqueue({"a": mixed_batches[2 * round_index]})
            store.enqueue({"a": mixed_batches[2 * round_index + 1]})
            store.flush()
            for q in range(MIXED_QUERIES_PER_ROUND):
                low = mixed_lows[round_index * MIXED_QUERIES_PER_ROUND + q]
                result = store.range_query(low, low + width)
                results.append((result.rf, result.mf))
        mixed_timings[workers] = time.perf_counter() - start
        mixed_results[workers] = results
        ops = MIXED_ROUNDS * (MIXED_QUERIES_PER_ROUND + 1)
        _ARTIFACT["ingest"]["mixed"][str(workers)] = {
            "seconds": round(mixed_timings[workers], 6),
            "ops_per_s": round(ops / mixed_timings[workers], 2),
        }
    assert mixed_results[4] == mixed_results[1]
    assert _shard_state(stores[4]) == _shard_state(stores[1])
    for store in stores.values():
        store.close()

    ingest_speedup = ingest_timings[1] / ingest_timings[4]
    mixed_speedup = mixed_timings[1] / mixed_timings[4]
    _ARTIFACT["ingest"]["fanout_speedup"] = round(ingest_speedup, 2)
    _ARTIFACT["ingest"]["mixed_fanout_speedup"] = round(mixed_speedup, 2)
    print(
        f"\nconcurrent ingest of {rows} rows ({CPUS} cpus): "
        f"workers=1 {ingest_timings[1] * 1e3:.1f}ms vs "
        f"workers=4 {ingest_timings[4] * 1e3:.1f}ms "
        f"({ingest_speedup:.2f}x); mixed r/w {mixed_speedup:.2f}x"
    )
    if CPUS >= 4:
        floor = 1.5 if rows >= INGEST_FULL_ROWS else 0.9
        assert ingest_speedup >= floor, (
            f"expected >={floor}x ingest fan-out speedup on {rows} rows "
            f"with {CPUS} cpus, got {ingest_speedup:.2f}x"
        )


def _zipf_values(rng, n: int, domain: int) -> np.ndarray:
    """Zipf-skewed values in [0, domain): heavy mass on a hot head."""
    return np.minimum(rng.zipf(ZIPF_EXPONENT, n) - 1, domain - 1)


def _zipf_warmup(rows: int) -> list[tuple[int, int]]:
    """Wide windows at Zipf-drawn anchors: the traffic that teaches the
    adaptive rebalancer where the hot value mass lives."""
    rng = np.random.default_rng(BENCH_SEED + 5)
    lows = _zipf_values(rng, ZIPF_WARMUP_QUERIES, rows)
    return [(int(low), int(low) + ZIPF_WARMUP_WIDTH) for low in lows]


def _zipf_timed(rows: int) -> list[tuple[int, int]]:
    """Width-1 probes at (shifted) Zipf anchors: selective enough that
    their cost is the rows held by the shards they cover."""
    rng = np.random.default_rng(BENCH_SEED + 9)
    lows = np.minimum(
        ZIPF_TIMED_SHIFT + _zipf_values(rng, QUERIES, rows), rows - 2
    )
    return [(int(low), int(low) + 1) for low in lows]


def _build_zipf_sharded(rows: int, stats: str) -> PartitionedAmnesiaDatabase:
    rng = np.random.default_rng(BENCH_SEED + 6)
    store = PartitionedAmnesiaDatabase(
        "a",
        [0, rows // 2, rows],
        total_budget=rows // 2,
        policy_factory=FifoAmnesia,
        seed=BENCH_SEED,
        plan="cost",
        rebalance="adaptive",
        split_threshold=1.5,
        max_partitions=10,
        stats=stats,
    )
    span = rows // ZIPF_COHORTS
    for _ in range(ZIPF_COHORTS):
        store.insert({"a": _zipf_values(rng, span, rows)})
    return store


def test_bench_skewed_hist_splits_beat_midpoint(quick):
    """Acceptance: histogram-cost ≥ uniform-cost ops/s on the Zipf
    sharded suite.

    Same Zipf stream, same adaptive rebalancing cadence, same hot
    point queries — the only knob is ``stats``: ``uniform`` cuts hot
    shards at range midpoints (which, on a Zipf stream whose mass sits
    at the head, leave one side holding almost all rows *and* traffic),
    ``hist`` cuts at the traffic-weighted median, so the hot region's
    rows split in half each round and selective hot probes touch a
    fraction of the store.  Single-threaded, so the floor gates
    unconditionally (no CPU-count gate): full-size runs must show
    hist ≥ uniform; ``--quick`` keeps 10% noise headroom.
    """
    rows = ZIPF_QUICK_ROWS if quick else ZIPF_FULL_ROWS
    _ARTIFACT["skewed"]["rows"] = rows
    warmup = _zipf_warmup(rows)
    timed = _zipf_timed(rows)
    timings = {}
    for stats in ("uniform", "hist"):
        store = _build_zipf_sharded(rows, stats)
        for _ in range(ZIPF_REBALANCE_ROUNDS):
            for low, high in warmup:
                store.range_query(low, high)
            store.rebalance(policy="adaptive")
        timings[stats] = _time_best_of(
            lambda s=store: [s.range_query(low, high) for low, high in timed]
        )
        _record("skewed", stats, timings[stats], len(timed))
        _ARTIFACT["skewed"][f"{stats}_boundaries"] = list(store.boundaries)
        if stats == "hist":
            assert any("at median" in e for e in store.adaptations)
        else:
            assert any("at midpoint" in e for e in store.adaptations)
        store.close()
    ratio = timings["uniform"] / timings["hist"]
    _ARTIFACT["skewed"]["hist_speedup_over_uniform"] = round(ratio, 2)
    print(
        f"\nzipf sharded on {rows} rows: uniform(midpoint) "
        f"{timings['uniform'] * 1e3:.1f}ms vs hist(median) "
        f"{timings['hist'] * 1e3:.1f}ms ({ratio:.2f}x)"
    )
    floor = 1.0 if rows >= ZIPF_FULL_ROWS else 0.9
    assert ratio >= floor, (
        f"histogram-cost slower than uniform-cost on {rows} Zipf rows "
        f"({ratio:.2f}x, floor {floor}x)"
    )


def test_bench_skewed_qerror(quick):
    """Acceptance: recorded q-error improves under histogram stats.

    One Zipf table, one zone map, two estimate sources; mean/max
    q-error over a skew-matched probe mix lands in the artifact and
    the histogram mean must beat per-cohort uniformity.  Deterministic
    (no timing), so it gates in ``--quick`` too.
    """
    rows = (ZIPF_QUICK_ROWS if quick else ZIPF_FULL_ROWS) // 4
    rng = np.random.default_rng(BENCH_SEED + 7)
    table = Table("bench_zipf", ["a"])
    zone_map = CohortZoneMap(table)
    span = rows // COHORTS
    for epoch in range(COHORTS):
        table.insert_batch(epoch, {"a": _zipf_values(rng, span, rows)})
    table.forget(np.arange(rows // 10), epoch=COHORTS)
    stats = TableHistogramStats(table, bins=256)
    values = table.values("a")
    # Width-64 windows around skew-matched anchors: wide enough that
    # the histogram's uniform-within-bin floor is not the story.
    probes = [(low, low + 64) for low, _ in _zipf_timed(rows)]

    def qerror(est: float, actual: int) -> float:
        est, actual = max(est, 1.0), max(float(actual), 1.0)
        return max(est / actual, actual / est)

    errors: dict[str, list[float]] = {"uniform": [], "hist": []}
    for low, high in probes:
        actual = int(((values >= low) & (values < high)).sum())
        errors["uniform"].append(
            qerror(zone_map.estimate("a", low, high).est_rows, actual)
        )
        errors["hist"].append(
            qerror(
                zone_map.estimate("a", low, high, stats=stats).est_rows,
                actual,
            )
        )
    for source, errs in errors.items():
        _ARTIFACT["skewed"]["qerror"][source] = {
            "mean": round(float(np.mean(errs)), 2),
            "max": round(float(np.max(errs)), 2),
        }
    print(
        f"\nzipf q-error on {rows} rows: "
        + ", ".join(
            f"{source} mean={np.mean(errs):.1f} max={np.max(errs):.1f}"
            for source, errs in errors.items()
        )
    )
    assert np.mean(errors["hist"]) < np.mean(errors["uniform"])


def test_bench_skewed_blocked_join(quick):
    """Acceptance: blocked-join peak pairs ≤ block size × build rows.

    Two tables sharing a hot key (1% of rows on each side): the full
    hash join materializes the whole pair set during discovery, the
    blocked probe caps the working set per block.  Both streams must be
    bit-identical; the peak pair counts and ops/s land in the artifact.
    """
    rows = BLOCKED_JOIN_QUICK_ROWS if quick else BLOCKED_JOIN_ROWS
    rng = np.random.default_rng(BENCH_SEED + 8)
    catalog = Catalog(plan="auto", workers=1)
    for name in ("s1", "s2"):
        table = catalog.create_table(name, ["a"])
        values = rng.integers(0, rows * 4, rows)
        values[rng.random(rows) < 0.01] = 7  # shared hot key
        table.insert_batch(0, {"a": values})
        table.forget(np.arange(rows // 10), epoch=1)
    from repro.query import build_plan

    full_node = build_plan(catalog, "join:s1,s2:on=value")
    blocked_node = build_plan(
        catalog, f"join:s1,s2:on=value,block={BLOCKED_JOIN_BLOCK}"
    )
    full = catalog.query(full_node, epoch=1)
    blocked = catalog.query(blocked_node, epoch=1)
    assert blocked.rows.tolist() == full.rows.tolist()
    assert blocked.forgotten.tolist() == full.forgotten.tolist()
    build_rows = min(r.oracle_count for r in full.inputs)
    assert full_node.peak_pairs == full.oracle_count
    assert 0 < blocked_node.peak_pairs <= BLOCKED_JOIN_BLOCK * build_rows
    assert blocked_node.peak_pairs < full_node.peak_pairs
    full_time = _time_best_of(lambda: catalog.query(full_node, epoch=1))
    blocked_time = _time_best_of(lambda: catalog.query(blocked_node, epoch=1))
    _ARTIFACT["skewed"]["blocked_join"] = {
        "rows": rows,
        "block": BLOCKED_JOIN_BLOCK,
        "build_rows": build_rows,
        "full_peak_pairs": int(full_node.peak_pairs),
        "blocked_peak_pairs": int(blocked_node.peak_pairs),
        "peak_shrink": round(
            full_node.peak_pairs / max(blocked_node.peak_pairs, 1), 2
        ),
        "full_seconds": round(full_time, 6),
        "blocked_seconds": round(blocked_time, 6),
    }
    print(
        f"\nblocked join on 2x{rows} rows: peak pairs "
        f"{full_node.peak_pairs:,} -> {blocked_node.peak_pairs:,} "
        f"({full_node.peak_pairs / max(blocked_node.peak_pairs, 1):.1f}x "
        f"smaller working set); full {full_time * 1e3:.1f}ms vs "
        f"blocked {blocked_time * 1e3:.1f}ms"
    )
    catalog.close()


def _build_stream_catalog(rows: int, *, ordered: bool) -> Catalog:
    """Two hot-key-sharing sensor tables; ``ordered`` adds a
    ``SortedIndex`` per leaf so the cost model can pick sort-merge."""
    rng = np.random.default_rng(BENCH_SEED + 12)
    catalog = Catalog(plan="auto", workers=1)
    for name in ("s1", "s2"):
        table = catalog.create_table(name, ["a"])
        values = rng.integers(0, rows, rows)
        values[rng.random(rows) < STREAM_HOT_FRACTION] = 7  # shared hot key
        table.insert_batch(0, {"a": values})
        table.forget(np.arange(rows // 10), epoch=1)
        if ordered:
            catalog.create_index(name, "a", SortedIndex)
    return catalog


def test_bench_streaming_aggregate_over_join(quick):
    """Acceptance: the ``streaming`` suite of the trajectory artifact.

    The same aggregate-over-join runs three ways on identical data:
    materialized (full pair set, then moments — the pre-streaming
    shape), streamed-hash (probe batches against the build side), and
    sort-merge (``SortedIndex`` on both leaves flips the cost model's
    strategy choice).  All three must produce bit-identical exact
    moments and RF/MF counts.  The memory claims are deterministic and
    gate everywhere, quick included: streamed peak pairs ≤ batch ×
    build rows and ≥10× under the materialized |output|; sort-merge
    peak ≤ batch outright.  The wall-clock floor — streaming must cost
    at most 2× the materialized single-shot run, i.e. the working-set
    bound is not bought with an order-of-magnitude slowdown — gates on
    full-size runs with ≥4 visible cores, per the carry-over
    convention; the measured ratios land in the artifact regardless.
    """
    rows = STREAM_QUICK_ROWS if quick else STREAM_FULL_ROWS
    from repro.query import build_plan

    catalog = _build_stream_catalog(rows, ordered=False)
    spec = "join:s1,s2:on=value"
    mat_node = build_plan(catalog, spec)
    mat = catalog.query(mat_node, epoch=1)
    total_pairs = mat.oracle_count
    build_rows = min(r.oracle_count for r in mat.inputs)
    assert mat_node.peak_pairs == total_pairs  # the baseline holds it all
    expected_active = ExactMoments.of(mat.rows[~mat.forgotten, 0])
    expected_missed = ExactMoments.of(mat.rows[mat.forgotten, 0])

    agg_node = build_plan(catalog, spec + ",agg=value")
    join_node = agg_node.children[0]
    agg = catalog.query(agg_node, epoch=1, batch_size=STREAM_BATCH)
    assert agg.strategy == f"streamed-hash(batch={STREAM_BATCH})"
    assert (agg.active, agg.missed) == (expected_active, expected_missed)
    assert (agg.rf, agg.mf) == (mat.rf, mat.mf)
    # The tentpole bound: the streamed peak is capped by batch × build
    # rows and, at this bench shape, at least 10x under the pair set.
    assert 0 < join_node.peak_pairs <= STREAM_BATCH * build_rows
    assert join_node.peak_pairs * 10 <= total_pairs
    streamed_peak = join_node.peak_pairs

    ordered_catalog = _build_stream_catalog(rows, ordered=True)
    merge_node = build_plan(ordered_catalog, spec + ",agg=value")
    merge_join = merge_node.children[0]
    merge = ordered_catalog.query(merge_node, epoch=1, batch_size=STREAM_BATCH)
    assert merge.strategy == f"sort-merge(batch={STREAM_BATCH})"
    assert (merge.active, merge.missed) == (expected_active, expected_missed)
    # Key-group slabs cap the merge's working set at the batch size
    # even though the hot key alone joins far wider than one batch.
    assert 0 < merge_join.peak_pairs <= STREAM_BATCH

    mat_time = _time_best_of(lambda: catalog.query(mat_node, epoch=1))
    streamed_time = _time_best_of(
        lambda: catalog.query(agg_node, epoch=1, batch_size=STREAM_BATCH)
    )
    merge_time = _time_best_of(
        lambda: ordered_catalog.query(
            merge_node, epoch=1, batch_size=STREAM_BATCH
        )
    )
    _record("streaming", "materialized", mat_time, 1)
    _record("streaming", "streamed-hash", streamed_time, 1)
    _record("streaming", "sort-merge", merge_time, 1)
    _ARTIFACT["streaming"].update(
        {
            "rows": rows,
            "batch": STREAM_BATCH,
            "total_pairs": int(total_pairs),
            "build_rows": int(build_rows),
            "materialized_peak_pairs": int(mat_node.peak_pairs),
            "streamed_peak_pairs": int(streamed_peak),
            "merge_peak_pairs": int(merge_join.peak_pairs),
            "peak_shrink": round(total_pairs / max(streamed_peak, 1), 2),
            "streamed_vs_materialized": round(mat_time / streamed_time, 2),
            "merge_vs_materialized": round(mat_time / merge_time, 2),
        }
    )
    print(
        f"\nstreaming aggregate-over-join on 2x{rows} rows ({CPUS} cpus): "
        f"peak pairs {total_pairs:,} -> {streamed_peak:,} streamed "
        f"({total_pairs / max(streamed_peak, 1):.0f}x smaller), "
        f"{merge_join.peak_pairs:,} sort-merge; materialized "
        f"{mat_time * 1e3:.1f}ms vs streamed {streamed_time * 1e3:.1f}ms "
        f"vs merge {merge_time * 1e3:.1f}ms"
    )
    catalog.close()
    ordered_catalog.close()
    if CPUS >= 4 and rows >= STREAM_FULL_ROWS:
        ratio = mat_time / streamed_time
        assert ratio >= 0.5, (
            f"streaming cost more than 2x the materialized run on "
            f"{rows} rows with {CPUS} cpus ({ratio:.2f}x)"
        )


def test_bench_compressed_retention_beats_raw(quick):
    """Acceptance: the C2 retention claim, asserted on real codecs.

    A Zipf stream (the C2 shape: heavy mass on a hot head) is cut into
    cohorts and every cohort demoted through ``best_codec``.  At a
    fixed byte budget — a quarter of the stream's raw footprint — the
    compressed table must retain strictly more rows of history before
    forced forgetting than the raw 8-bytes-per-value layout.
    Deterministic encoding arithmetic, no timing: the assert gates
    unconditionally, quick runs included.  Bytes per retained tuple and
    the retention gain land in the trajectory artifact.
    """
    rows = (
        COMPRESSED_RETENTION_QUICK_ROWS if quick
        else COMPRESSED_RETENTION_ROWS
    )
    rng = np.random.default_rng(BENCH_SEED + 13)
    table = Table("bench_compressed_retention", ["a"])
    span = rows // ZIPF_COHORTS
    for epoch in range(ZIPF_COHORTS):
        table.insert_batch(epoch, {"a": _zipf_values(rng, span, rows)})
    store = CompressedCohortStore(table)
    store.demote_cold(current_epoch=ZIPF_COHORTS + store.min_age)
    assert store.demoted_count == ZIPF_COHORTS
    report = store.byte_report()

    budget_bytes = int(rows * 8 * RETENTION_BUDGET_FRACTION)
    raw_retained = budget_bytes // 8
    # Fill the budget newest-cohort-first, the way amnesia keeps the
    # recent past and forgets the deep one.
    compressed_retained = 0
    bytes_used = 0
    for ordinal in reversed(range(ZIPF_COHORTS)):
        cohort = table.cohorts[ordinal]
        _, block = store.block_at(cohort.start, cohort.stop, "a")
        if bytes_used + block.nbytes > budget_bytes:
            break
        bytes_used += block.nbytes
        compressed_retained += cohort.size
    gain = compressed_retained / raw_retained
    _ARTIFACT["compressed"]["retention"] = {
        "rows": rows,
        "budget_bytes": budget_bytes,
        "raw_retained_rows": raw_retained,
        "compressed_retained_rows": compressed_retained,
        "retention_gain": round(gain, 2),
        "bytes_per_retained_tuple": round(
            bytes_used / max(compressed_retained, 1), 4
        ),
        "compression_ratio": round(report["ratio"], 4),
        "codecs": store.stats()["codecs"],
    }
    print(
        f"\ncompressed retention on {rows} Zipf rows at "
        f"{budget_bytes:,}-byte budget: raw keeps {raw_retained:,} rows, "
        f"compressed keeps {compressed_retained:,} "
        f"({gain:.1f}x, {bytes_used / max(compressed_retained, 1):.2f} "
        f"bytes/tuple vs 8)"
    )
    # The acceptance line: strictly more history at the same budget.
    assert compressed_retained > raw_retained


def test_bench_compressed_scan_ops(history):
    """Acceptance: the compressed-scan ops/s dimension.

    The time-correlated history with every cohort demoted, probed by
    the same selective queries through three paths: the trust-nothing
    scan, the raw zone-map path, and the zone-map path answering from
    compressed blocks.  Results must be bit-identical; ops/s per path
    and the speedup land in the artifact.  The floor — compressed ≥ 5×
    over scan, i.e. pruning still pays after the demotion — gates on
    full-size runs with ≥ 4 visible cores, per the established
    convention.
    """
    rows, table, zone_map, queries = history
    store = CompressedCohortStore(table)
    store.demote_cold(current_epoch=COHORTS + store.min_age)
    assert store.demoted_count == COHORTS
    scan = QueryExecutor(table, record_access=False)
    raw_pruned = QueryExecutor(
        table,
        record_access=False,
        planner=QueryPlanner(table, mode="zonemap", zone_map=zone_map),
    )
    compressed = QueryExecutor(
        table,
        record_access=False,
        planner=QueryPlanner(
            table, mode="zonemap", zone_map=zone_map, compressed=store
        ),
    )
    baseline = _run_all(scan, queries)
    assert _run_all(raw_pruned, queries) == baseline
    assert _run_all(compressed, queries) == baseline
    # The equivalence must have been answered from the encoded form,
    # not via quick reject alone.
    store_stats = store.stats()
    assert store_stats["blocks_direct"] + store_stats["blocks_decoded"] > 0
    scan_time = _time_best_of(lambda: _run_all(scan, queries))
    raw_time = _time_best_of(lambda: _run_all(raw_pruned, queries))
    compressed_time = _time_best_of(lambda: _run_all(compressed, queries))
    ratio = scan_time / compressed_time
    _record("compressed", "scan", scan_time, len(queries))
    _record("compressed", "zonemap_raw", raw_time, len(queries))
    _record("compressed", "zonemap_compressed", compressed_time, len(queries))
    _ARTIFACT["compressed"]["speedup_over_scan"] = round(ratio, 2)
    _ARTIFACT["compressed"]["vs_raw_pruned"] = round(
        raw_time / compressed_time, 2
    )
    _ARTIFACT["compressed"]["byte_report"] = {
        k: round(v, 4) if isinstance(v, float) else v
        for k, v in store.byte_report().items()
    }
    print(
        f"\ncompressed scan on {rows} rows ({CPUS} cpus): scan "
        f"{scan_time * 1e3:.1f}ms vs raw-pruned {raw_time * 1e3:.1f}ms "
        f"vs compressed {compressed_time * 1e3:.1f}ms "
        f"({ratio:.1f}x over scan)"
    )
    if CPUS >= 4 and rows >= FULL_ROWS:
        assert ratio >= 5.0, (
            f"expected >=5x compressed-path speedup over scan on "
            f"{rows} rows with {CPUS} cpus, got {ratio:.1f}x"
        )


def test_bench_serving_cached_vs_uncached(quick):
    """Acceptance: the ``serve`` suite of the trajectory artifact.

    The multi-tenant :class:`~repro.serving.QueryService` answers one
    pool of selective range shapes three ways on identical data:
    uncached (``Catalog.execute`` directly), cold (empty caches — every
    query plans and matches, then stores), and warm (primed — every
    query is a result-cache hit whose active positions are replayed
    through the access counters).  Answers must be bit-identical across
    all three, asserted two ways: rf/mf equality against the uncached
    run on the cold pass, and a paranoid service pass at the end that
    re-executes every hit and proves ``stale_hits == 0``.  A second
    service with a one-entry result cache isolates the *plan* cache:
    result lookups keep missing while the planner generation stands
    still, so plan hits (not result hits) carry its hit rate above
    zero.  The warm-at-least-as-fast-as-cold floor gates on full-size
    runs with ≥4 visible cores, per the carry-over convention; the
    measured ratios land in the artifact regardless.
    """
    from repro.serving import QueryService, ResultCache

    rows = SERVE_QUICK_ROWS if quick else SERVE_FULL_ROWS
    rng = np.random.default_rng(BENCH_SEED)
    catalog = Catalog(plan="cost", stats="hist")
    table = catalog.create_table("serve_obs", ["value"])
    table.insert_batch(0, {"value": rng.integers(0, rows, size=rows)})
    width = max(1, int(rows * WIDTH_FRACTION))
    lows = [int(low) for low in rng.integers(0, rows - width, size=SERVE_SHAPES)]
    queries = [
        RangeQuery(RangePredicate("value", low, low + width)) for low in lows
    ]

    service = QueryService(catalog)
    service.register_tenant("bench", tables={"serve_obs"})
    token = service.open_session("bench").token
    requests = [
        {
            "op": "query",
            "token": token,
            "source": "serve_obs",
            "kind": "range",
            "predicate": {
                "type": "range",
                "column": "value",
                "low": low,
                "high": low + width,
            },
        }
        for low in lows
    ]

    def run_pass():
        return [service.handle(request) for request in requests]

    def clear_caches():
        service.plan_cache.clear()
        service.result_cache.invalidate_source("serve_obs")

    # Bit-identity of the cold pass against the uncached executor.
    uncached = [catalog.execute("serve_obs", query, epoch=0) for query in queries]
    cold_responses = run_pass()
    assert [(r["rf"], r["mf"]) for r in cold_responses] == [
        (r.rf, r.mf) for r in uncached
    ]
    assert not any(r["cached"] for r in cold_responses)
    assert all(r["cached"] for r in run_pass())  # primed: all hits

    uncached_time = _time_best_of(
        lambda: [
            catalog.execute("serve_obs", query, epoch=0) for query in queries
        ]
    )

    def cold_pass():
        clear_caches()
        run_pass()

    cold_time = _time_best_of(cold_pass)
    run_pass()  # re-prime after the last clear
    warm_time = _time_best_of(
        lambda: [run_pass() for _ in range(SERVE_ROUNDS)]
    ) / SERVE_ROUNDS
    result_stats = service.result_cache.stats()
    assert result_stats["hits"] > 0 and result_stats["hit_rate"] > 0

    # Plan-cache isolation: a one-entry result cache keeps missing, so
    # repeat shapes are answered by cached *plans* under a standing
    # generation.
    plan_service = QueryService(catalog, result_cache=ResultCache(max_entries=1))
    plan_service.register_tenant("bench", tables={"serve_obs"})
    plan_token = plan_service.open_session("bench").token
    for _ in range(2):
        for request in requests:
            plan_service.handle(dict(request, token=plan_token))
    plan_stats = plan_service.plan_cache.stats()
    assert plan_stats["hits"] >= SERVE_SHAPES  # second round reuses plans
    assert plan_stats["hit_rate"] > 0

    # Zero stale answers, asserted: the paranoid service re-executes
    # every hit under the source lock and compares payloads.
    paranoid = QueryService(catalog, paranoid=True)
    paranoid.register_tenant("bench", tables={"serve_obs"})
    paranoid_token = paranoid.open_session("bench").token
    for _ in range(2):
        for request in requests:
            paranoid.handle(dict(request, token=paranoid_token))
    paranoid_stats = paranoid.stats()
    assert paranoid_stats["stale_hits"] == 0
    assert paranoid_stats["result_cache"]["hits"] == SERVE_SHAPES

    n = len(requests)
    _record("serve", "uncached", uncached_time, n)
    _record("serve", "cold", cold_time, n)
    _record("serve", "warm", warm_time, n)
    ratio = cold_time / warm_time
    _ARTIFACT["serve"].update(
        {
            "rows": rows,
            "shapes": SERVE_SHAPES,
            "ops_s": round(n / warm_time, 2) if warm_time > 0 else None,
            "cache_hit_rate": round(result_stats["hit_rate"], 4),
            "plan_cache_hit_rate": round(plan_stats["hit_rate"], 4),
            "warm_speedup_over_cold": round(ratio, 2),
        }
    )
    print(
        f"\nserving on {rows} rows ({CPUS} cpus): uncached "
        f"{uncached_time * 1e3:.1f}ms vs cold {cold_time * 1e3:.1f}ms vs "
        f"warm {warm_time * 1e3:.1f}ms per {n}-query pass "
        f"({ratio:.1f}x warm speedup, result hit rate "
        f"{result_stats['hit_rate']:.2f}, plan hit rate "
        f"{plan_stats['hit_rate']:.2f})"
    )
    service.close()
    plan_service.close()
    paranoid.close()
    catalog.close()
    if CPUS >= 4 and rows >= SERVE_FULL_ROWS:
        assert ratio >= 1.0, (
            f"warm cache-hit serving slower than cold planning on "
            f"{rows} rows with {CPUS} cpus ({ratio:.2f}x)"
        )


def test_bench_planner_auto(history, once):
    _, table, zone_map, queries = history
    executor = QueryExecutor(
        table,
        record_access=False,
        planner=QueryPlanner(table, mode="auto", zone_map=zone_map),
    )
    results = once(_run_all, executor, queries)
    assert len(results) == QUERIES


def test_bench_planner_scan(history, once):
    _, table, _, queries = history
    executor = QueryExecutor(table, record_access=False)
    results = once(_run_all, executor, queries)
    assert len(results) == QUERIES
