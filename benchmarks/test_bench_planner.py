"""Planner speedup benchmarks: pruned and cost-based plans vs the scan.

Builds a ≥1M-row time-correlated history (each cohort holds a
localised value window, like sensor timestamps), forgets a slice, and
fires selective (≤1% selectivity) range queries under ``plan="auto"``
and ``plan="scan"``.  Asserts both that the results are identical and
that the pruned path is at least 5× faster — the tentpole claim of the
planner PR.  The cost-model benchmark adds a coarse BRIN "trap": auto's
fixed index>zonemap preference walks into it, the cost model prices the
probe and sidesteps it, so ``cost`` must be at least as fast as
``auto``.  A sharded benchmark runs the same style of workload through
``PartitionedAmnesiaDatabase`` under several plan modes, and a fan-out
benchmark runs it with ``workers in {1, 4}`` — shards execute their
planner pipelines concurrently, numpy releases the GIL inside the
per-shard scans, and the merged results must stay bit-identical.

Every timed section feeds ``BENCH_planner.json`` at the repo root —
an ops/s trajectory artifact (per plan mode, shard count and worker
count, plus the host's CPU count) uploaded by CI so future PRs have a
perf baseline to diff against.  With ``--quick`` the history shrinks
for CI smoke runs and the wall-clock floors relax (shape and
equivalence assertions still run).  Fan-out speed floors additionally
gate on the visible CPU count: threads cannot beat sequential on a
single core, and the measured ratio is recorded either way.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import BENCH_SEED
from repro.amnesia import FifoAmnesia
from repro.indexes import BlockRangeIndex
from repro.partitioning import PartitionedAmnesiaDatabase
from repro.query import QueryExecutor, QueryPlanner, RangePredicate, RangeQuery
from repro.storage import Catalog, CohortZoneMap, Table

FULL_ROWS = 1_000_000
QUICK_ROWS = 125_000
COHORTS = 250
#: Query window width as a fraction of the domain (0.5% selectivity).
WIDTH_FRACTION = 0.005
QUERIES = 40
REPEATS = 3

#: Sharded-store benchmark topology.
SHARDS = 8
SHARDED_FULL_ROWS = 256_000
SHARDED_QUICK_ROWS = 32_000
SHARDED_MODES = ("scan", "auto", "cost")

#: Fan-out benchmark: worker counts over the 1M-row sharded suite.
#: Scan mode is the fan-out stress case — every query executes every
#: shard in full — so it is where parallelism must pay off.
FANOUT_WORKERS = (1, 4)
FANOUT_FULL_ROWS = 1_000_000
FANOUT_QUICK_ROWS = 256_000
#: Cores visible to this process; thread fan-out can only beat the
#: sequential baseline when there is real parallel hardware under it.
CPUS = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
    os.cpu_count() or 1
)

#: Cross-table join benchmark: two sensor tables joined on value over
#: selective hot windows, timed per worker count and plan mode.
JOIN_FULL_ROWS = 256_000
JOIN_QUICK_ROWS = 32_000

#: Trajectory artifact consumed by CI (ops/s per plan mode + shards).
ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_planner.json"

_ARTIFACT: dict = {}


@pytest.fixture(scope="module", autouse=True)
def artifact(quick):
    """Collect ops/s figures across tests; write the JSON at teardown."""
    _ARTIFACT.clear()
    _ARTIFACT.update(
        {
            "suite": "planner",
            "seed": BENCH_SEED,
            "quick": bool(quick),
            "queries": QUERIES,
            "cpus": CPUS,
            "single_table": {"modes": {}},
            "sharded": {"shards": SHARDS, "modes": {}, "workers": {}},
            "join": {"modes": {}, "workers": {}},
        }
    )
    yield _ARTIFACT
    ARTIFACT_PATH.write_text(
        json.dumps(_ARTIFACT, indent=2, sort_keys=True) + "\n"
    )


def _record(section: str, mode: str, seconds: float, n_queries: int) -> None:
    _ARTIFACT[section]["modes"][mode] = {
        "seconds": round(seconds, 6),
        "ops_per_s": round(n_queries / seconds, 2) if seconds > 0 else None,
    }


def _build(rows: int) -> tuple[Table, CohortZoneMap]:
    """A time-correlated history: cohort i holds values in window i."""
    rng = np.random.default_rng(BENCH_SEED)
    table = Table("bench_planner", ["a"])
    zone_map = CohortZoneMap(table)  # maintained incrementally from day 0
    span = rows // COHORTS
    for epoch in range(COHORTS):
        values = rng.integers(epoch * span, (epoch + 1) * span, span)
        table.insert_batch(epoch, values_by_column={"a": values})
    # Forget the oldest 10% so the missed (M_F) side is exercised too.
    table.forget(np.arange(rows // 10), epoch=COHORTS)
    return table, zone_map


def _queries(rows: int) -> list[RangeQuery]:
    rng = np.random.default_rng(BENCH_SEED + 1)
    width = max(1, int(rows * WIDTH_FRACTION))
    lows = rng.integers(0, rows - width, QUERIES)
    return [RangeQuery(RangePredicate("a", int(low), int(low) + width)) for low in lows]


def _run_all(executor: QueryExecutor, queries) -> list[tuple[int, int]]:
    return [
        (r.rf, r.mf)
        for r in (executor.execute_range(q, epoch=COHORTS) for q in queries)
    ]


def _time_best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def history(quick):
    rows = QUICK_ROWS if quick else FULL_ROWS
    table, zone_map = _build(rows)
    return rows, table, zone_map, _queries(rows)


def test_auto_plan_at_least_5x_faster_than_scan(history):
    rows, table, zone_map, queries = history
    scan = QueryExecutor(table, record_access=False)
    auto = QueryExecutor(
        table,
        record_access=False,
        planner=QueryPlanner(table, mode="auto", zone_map=zone_map),
    )
    # Identical answers first (rf AND mf — the oracle side must survive
    # pruning), then the speed claim.
    assert _run_all(scan, queries) == _run_all(auto, queries)
    scan_time = _time_best_of(lambda: _run_all(scan, queries))
    auto_time = _time_best_of(lambda: _run_all(auto, queries))
    ratio = scan_time / auto_time
    _ARTIFACT["rows"] = rows
    _record("single_table", "scan", scan_time, len(queries))
    _record("single_table", "auto", auto_time, len(queries))
    _ARTIFACT["single_table"]["auto_speedup_over_scan"] = round(ratio, 2)
    print(
        f"\nplanner speedup on {rows} rows: scan {scan_time * 1e3:.1f}ms "
        f"vs auto {auto_time * 1e3:.1f}ms ({ratio:.1f}x)"
    )
    if rows >= FULL_ROWS:
        # The hard floor only gates full-size runs; --quick (CI smoke)
        # still checks equivalence and pruning but not wall-clock, so
        # shared-runner timing noise cannot redden the suite.
        assert ratio >= 5.0, (
            f"expected >=5x speedup on {rows} rows, got {ratio:.1f}x"
        )
    stats = auto.planner.stats()
    assert stats["paths"]["zonemap"] == len(queries) * (REPEATS + 1)
    assert stats["pruned_fraction"] > 0.9


def test_cost_mode_at_least_matches_auto(history):
    """Acceptance: cost ≥ auto on the 1M-row suite.

    Both planners see the same structures: the zone map plus a coarse
    BRIN whose blocks span several cohorts.  ``auto`` prefers the index
    unconditionally and pays the oversized probe; ``cost`` prices the
    probe against the pruned scan and routes around it.
    """
    rows, table, zone_map, queries = history
    # Blocks span ~25 cohorts: the probe considers an order of magnitude
    # more rows than the pruned scan, so the pricing decision dominates
    # the (per-query) estimation overhead.
    coarse = BlockRangeIndex(table, "a", block_size=max(rows // 10, 1))
    auto = QueryExecutor(
        table,
        record_access=False,
        planner=QueryPlanner(
            table, mode="auto", zone_map=zone_map, indexes=[coarse]
        ),
    )
    cost = QueryExecutor(
        table,
        record_access=False,
        planner=QueryPlanner(
            table, mode="cost", zone_map=zone_map, indexes=[coarse]
        ),
    )
    assert _run_all(auto, queries) == _run_all(cost, queries)
    # Auto walks into the trap on every query; the cost model routes
    # most probes around it (it may still pick the BRIN where the probe
    # genuinely is cheaper, e.g. against fully forgotten regions).
    cost_paths = cost.planner.stats()["paths"]
    assert cost_paths["zonemap"] >= len(queries) * 0.75
    assert auto.planner.stats()["paths"]["index"] == len(queries)
    auto_time = _time_best_of(lambda: _run_all(auto, queries))
    cost_time = _time_best_of(lambda: _run_all(cost, queries))
    ratio = auto_time / cost_time
    _record("single_table", "auto_with_coarse_index", auto_time, len(queries))
    _record("single_table", "cost", cost_time, len(queries))
    _ARTIFACT["single_table"]["cost_speedup_over_auto"] = round(ratio, 2)
    print(
        f"\ncost-model gain on {rows} rows: auto {auto_time * 1e3:.1f}ms "
        f"vs cost {cost_time * 1e3:.1f}ms ({ratio:.1f}x)"
    )
    if rows >= FULL_ROWS:
        # Quick (CI smoke) runs assert plan shapes only; full runs hold
        # the acceptance line that cost never loses to the heuristic.
        assert ratio >= 1.0, (
            f"cost mode slower than auto on {rows} rows ({ratio:.2f}x)"
        )


def _build_sharded(rows: int, plan: str) -> PartitionedAmnesiaDatabase:
    """Time-correlated stream routed into a range-sharded store."""
    rng = np.random.default_rng(BENCH_SEED + 2)
    boundaries = np.linspace(0, rows, SHARDS + 1).astype(int).tolist()
    store = PartitionedAmnesiaDatabase(
        "a",
        boundaries,
        total_budget=rows // 2,
        policy_factory=FifoAmnesia,
        seed=BENCH_SEED,
        plan=plan,
    )
    span = rows // COHORTS
    for epoch in range(COHORTS):
        store.insert({"a": rng.integers(epoch * span, (epoch + 1) * span, span)})
    return store


def _run_sharded(store: PartitionedAmnesiaDatabase, queries) -> list:
    return [
        (r.rf, r.mf)
        for r in (
            store.range_query(q.predicate.low, q.predicate.high)
            for q in queries
        )
    ]


def test_bench_sharded_store_across_plan_modes(quick):
    """Shard-pruned, planner-routed execution on every plan mode.

    Results must merge identically whatever the mode; ops/s per mode
    and the shard count land in the trajectory artifact.
    """
    rows = SHARDED_QUICK_ROWS if quick else SHARDED_FULL_ROWS
    queries = _queries(rows)
    stores = {mode: _build_sharded(rows, mode) for mode in SHARDED_MODES}
    _ARTIFACT["sharded"]["rows"] = rows
    baseline = _run_sharded(stores["scan"], queries)
    timings = {}
    for mode, store in stores.items():
        assert _run_sharded(store, queries) == baseline, mode
        timings[mode] = _time_best_of(lambda s=store: _run_sharded(s, queries))
        _record("sharded", mode, timings[mode], len(queries))
    _ARTIFACT["sharded"]["cost_speedup_over_scan"] = round(
        timings["scan"] / timings["cost"], 2
    )
    # Selective queries touch ~1 shard; the planner must have pruned
    # most of the fan-out in the non-scan modes.
    pruned = sum(stores["cost"].stats()["shard_prunes"])
    assert pruned > 0
    print(
        "\nsharded ops/s: "
        + ", ".join(
            f"{mode}={len(queries) / timings[mode]:.0f}"
            for mode in SHARDED_MODES
        )
    )


def test_bench_sharded_worker_fanout(quick):
    """Acceptance: the ``workers`` dimension of the sharded suite.

    One store, scan mode (every query pays the full per-shard scan, so
    the fan-out has real work to overlap), timed at ``workers=1`` and
    ``workers=4``.  Results must be bit-identical; the ops/s per worker
    count and the speedup land in the trajectory artifact along with
    the CPU count.  The throughput floors — 4-worker ≥ sequential in
    ``--quick`` (CI smoke), ≥ 1.5× sequential on the full 1M-row run —
    only gate hosts with ≥ 4 visible cores, because a thread pool on a
    single core can only lose; the measured ratio is recorded
    regardless, so the artifact still tells the story.
    """
    rows = FANOUT_QUICK_ROWS if quick else FANOUT_FULL_ROWS
    queries = _queries(rows)
    store = _build_sharded(rows, "scan")
    _ARTIFACT["sharded"]["fanout_rows"] = rows
    results = {}
    timings = {}
    for workers in FANOUT_WORKERS:
        store.workers = workers
        results[workers] = _run_sharded(store, queries)
        timings[workers] = _time_best_of(lambda: _run_sharded(store, queries))
        _ARTIFACT["sharded"]["workers"][str(workers)] = {
            "seconds": round(timings[workers], 6),
            "ops_per_s": round(len(queries) / timings[workers], 2),
        }
    # Bit-identical first: the merge is ordered, so the fan-out cannot
    # leak completion order into counts.
    assert results[4] == results[1]
    speedup = timings[1] / timings[4]
    _ARTIFACT["sharded"]["fanout_speedup"] = round(speedup, 2)
    print(
        f"\nsharded fan-out on {rows} rows ({CPUS} cpus): "
        f"workers=1 {timings[1] * 1e3:.1f}ms vs "
        f"workers=4 {timings[4] * 1e3:.1f}ms ({speedup:.2f}x)"
    )
    store.close()
    if CPUS >= 4:
        # Quick (CI smoke) nominally wants parallel >= sequential; the
        # 0.9 floor leaves 10% headroom for shared-runner timing noise
        # on the small workload, while still catching a fan-out that
        # actually serializes (which measures far lower).  Full-size
        # runs hold the acceptance line.
        floor = 1.5 if rows >= FANOUT_FULL_ROWS else 0.9
        assert speedup >= floor, (
            f"expected >={floor}x fan-out speedup on {rows} rows with "
            f"{CPUS} cpus, got {speedup:.2f}x"
        )


def _build_join_catalog(rows: int, plan: str) -> Catalog:
    """Two time-correlated sensor tables in one catalog."""
    rng = np.random.default_rng(BENCH_SEED + 3)
    catalog = Catalog(plan=plan, workers=1)
    span = rows // COHORTS
    for name in ("s1", "s2"):
        table = catalog.create_table(name, ["a"])
        for epoch in range(COHORTS):
            table.insert_batch(
                epoch, {"a": rng.integers(epoch * span, (epoch + 1) * span, span)}
            )
        table.forget(np.arange(rows // 10), epoch=COHORTS)
    return catalog


def _join_specs(rows: int) -> list[str]:
    rng = np.random.default_rng(BENCH_SEED + 4)
    width = max(1, int(rows * WIDTH_FRACTION))
    # Two windows pinned into the forgotten decile (the oldest 10% of
    # this time-correlated history) so the M_F side of the join is
    # always exercised; the rest sweep the domain at random.
    lows = [0, rows // 20] + rng.integers(
        0, rows - width, QUERIES - 2
    ).tolist()
    return [
        f"join:s1,s2:on=value,low={int(low)},high={int(low) + width}"
        for low in lows
    ]


def _run_joins(catalog: Catalog, specs) -> list[tuple[int, int]]:
    return [
        (r.rf, r.mf)
        for r in (catalog.query(spec, epoch=COHORTS) for spec in specs)
    ]


def test_bench_cross_table_join(quick):
    """Acceptance: the ``join`` ops/s dimension of the trajectory.

    Selective equi-joins between two sensor tables run through
    ``Catalog.query`` under scan mode (every leaf pays the full table
    scan — the fan-out stress case) at ``workers in {1, 4}``, and under
    auto mode (zone-map-pruned leaves) for the planned-path ops/s.
    Results must be bit-identical across widths and modes.  The
    fan-out throughput floors — 4-worker ≥ 0.8× sequential in
    ``--quick``, ≥ 1.2× on the full-size run (two leaf scans can
    overlap at most 2×, and the single-threaded hash build bounds the
    gain below that) — gate on ≥ 4 visible cores, per the established
    convention; the measured ratio is recorded either way.
    """
    rows = JOIN_QUICK_ROWS if quick else JOIN_FULL_ROWS
    specs = _join_specs(rows)
    catalog = _build_join_catalog(rows, "scan")
    _ARTIFACT["join"]["rows"] = rows
    results = {}
    timings = {}
    for workers in FANOUT_WORKERS:
        catalog.workers = workers
        results[workers] = _run_joins(catalog, specs)
        timings[workers] = _time_best_of(lambda: _run_joins(catalog, specs))
        _ARTIFACT["join"]["workers"][str(workers)] = {
            "seconds": round(timings[workers], 6),
            "ops_per_s": round(len(specs) / timings[workers], 2),
        }
    assert results[4] == results[1]
    # The workload must actually join something, and must see both
    # sides' forgetting (forgotten rows sit in the oldest 10%).
    assert sum(rf for rf, _ in results[1]) > 0
    assert sum(mf for _, mf in results[1]) > 0
    speedup = timings[1] / timings[4]
    _ARTIFACT["join"]["fanout_speedup"] = round(speedup, 2)
    _record("join", "scan", timings[1], len(specs))

    auto_catalog = _build_join_catalog(rows, "auto")
    assert _run_joins(auto_catalog, specs) == results[1]
    auto_time = _time_best_of(lambda: _run_joins(auto_catalog, specs))
    _record("join", "auto", auto_time, len(specs))
    _ARTIFACT["join"]["auto_speedup_over_scan"] = round(
        timings[1] / auto_time, 2
    )
    print(
        f"\ncross-table join on 2x{rows} rows ({CPUS} cpus): "
        f"workers=1 {timings[1] * 1e3:.1f}ms vs "
        f"workers=4 {timings[4] * 1e3:.1f}ms ({speedup:.2f}x); "
        f"auto {auto_time * 1e3:.1f}ms "
        f"({timings[1] / auto_time:.1f}x over scan)"
    )
    if CPUS >= 4:
        floor = 1.2 if rows >= JOIN_FULL_ROWS else 0.8
        assert speedup >= floor, (
            f"expected >={floor}x join fan-out speedup on {rows} rows "
            f"with {CPUS} cpus, got {speedup:.2f}x"
        )


def test_bench_planner_auto(history, once):
    _, table, zone_map, queries = history
    executor = QueryExecutor(
        table,
        record_access=False,
        planner=QueryPlanner(table, mode="auto", zone_map=zone_map),
    )
    results = once(_run_all, executor, queries)
    assert len(results) == QUERIES


def test_bench_planner_scan(history, once):
    _, table, _, queries = history
    executor = QueryExecutor(table, record_access=False)
    results = once(_run_all, executor, queries)
    assert len(results) == QUERIES
