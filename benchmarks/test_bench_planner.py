"""Planner speedup benchmark: zone-map pruning vs the naive full scan.

Builds a ≥1M-row time-correlated history (each cohort holds a
localised value window, like sensor timestamps), forgets a slice, and
fires selective (≤1% selectivity) range queries under ``plan="auto"``
and ``plan="scan"``.  Asserts both that the results are identical and
that the pruned path is at least 5× faster — the tentpole claim of the
planner PR.  With ``--quick`` the history shrinks for CI smoke runs and
the speedup floor relaxes.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import BENCH_SEED
from repro.query import QueryExecutor, QueryPlanner, RangePredicate, RangeQuery
from repro.storage import CohortZoneMap, Table

FULL_ROWS = 1_000_000
QUICK_ROWS = 125_000
COHORTS = 250
#: Query window width as a fraction of the domain (0.5% selectivity).
WIDTH_FRACTION = 0.005
QUERIES = 40
REPEATS = 3


def _build(rows: int) -> tuple[Table, CohortZoneMap]:
    """A time-correlated history: cohort i holds values in window i."""
    rng = np.random.default_rng(BENCH_SEED)
    table = Table("bench_planner", ["a"])
    zone_map = CohortZoneMap(table)  # maintained incrementally from day 0
    span = rows // COHORTS
    for epoch in range(COHORTS):
        values = rng.integers(epoch * span, (epoch + 1) * span, span)
        table.insert_batch(epoch, values_by_column={"a": values})
    # Forget the oldest 10% so the missed (M_F) side is exercised too.
    table.forget(np.arange(rows // 10), epoch=COHORTS)
    return table, zone_map


def _queries(rows: int) -> list[RangeQuery]:
    rng = np.random.default_rng(BENCH_SEED + 1)
    width = max(1, int(rows * WIDTH_FRACTION))
    lows = rng.integers(0, rows - width, QUERIES)
    return [RangeQuery(RangePredicate("a", int(low), int(low) + width)) for low in lows]


def _run_all(executor: QueryExecutor, queries) -> list[tuple[int, int]]:
    return [
        (r.rf, r.mf)
        for r in (executor.execute_range(q, epoch=COHORTS) for q in queries)
    ]


def _time_best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def history(quick):
    rows = QUICK_ROWS if quick else FULL_ROWS
    table, zone_map = _build(rows)
    return rows, table, zone_map, _queries(rows)


def test_auto_plan_at_least_5x_faster_than_scan(history):
    rows, table, zone_map, queries = history
    scan = QueryExecutor(table, record_access=False)
    auto = QueryExecutor(
        table,
        record_access=False,
        planner=QueryPlanner(table, mode="auto", zone_map=zone_map),
    )
    # Identical answers first (rf AND mf — the oracle side must survive
    # pruning), then the speed claim.
    assert _run_all(scan, queries) == _run_all(auto, queries)
    scan_time = _time_best_of(lambda: _run_all(scan, queries))
    auto_time = _time_best_of(lambda: _run_all(auto, queries))
    ratio = scan_time / auto_time
    print(
        f"\nplanner speedup on {rows} rows: scan {scan_time * 1e3:.1f}ms "
        f"vs auto {auto_time * 1e3:.1f}ms ({ratio:.1f}x)"
    )
    if rows >= FULL_ROWS:
        # The hard floor only gates full-size runs; --quick (CI smoke)
        # still checks equivalence and pruning but not wall-clock, so
        # shared-runner timing noise cannot redden the suite.
        assert ratio >= 5.0, (
            f"expected >=5x speedup on {rows} rows, got {ratio:.1f}x"
        )
    stats = auto.planner.stats()
    assert stats["paths"]["zonemap"] == len(queries) * (REPEATS + 1)
    assert stats["pruned_fraction"] > 0.9


def test_bench_planner_auto(history, once):
    _, table, zone_map, queries = history
    executor = QueryExecutor(
        table,
        record_access=False,
        planner=QueryPlanner(table, mode="auto", zone_map=zone_map),
    )
    results = once(_run_all, executor, queries)
    assert len(results) == QUERIES


def test_bench_planner_scan(history, once):
    _, table, _, queries = history
    executor = QueryExecutor(table, record_access=False)
    results = once(_run_all, executor, queries)
    assert len(results) == QUERIES
