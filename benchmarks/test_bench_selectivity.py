"""Bench T3 — §4.2: the selectivity factor does not improve precision.

"Increasing the selectivity factor does not improve the precision,
because it affects the complete database, active and forgotten."

The sweep spans nearly two decades of S; final E must stay within a
narrow band for every policy.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import run_selectivity

from conftest import BENCH_SEED


def test_selectivity_sweep_is_flat(once):
    result = once(
        run_selectivity,
        seed=BENCH_SEED,
        queries_per_epoch=200,
    )
    finals = result.data["final_precision"]
    for policy, by_s in finals.items():
        values = np.array(list(by_s.values()))
        spread = float(values.max() - values.min())
        assert spread < 0.05, f"{policy}: E varies {spread} across S"
        # All values pinned near the active-fraction floor ≈ 0.111.
        assert np.all(np.abs(values - 0.111) < 0.06), f"{policy}: {values}"
