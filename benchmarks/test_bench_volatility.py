"""Bench T1 — §4.2: low (10%) vs high (80%) update volatility.

"We experimented with both low (10%) and high update volatility (80%)"
— the shape: high volatility forgets more per round, so precision
decays strictly faster for every policy.
"""

from __future__ import annotations

from repro.experiments import run_volatility

from conftest import BENCH_SEED


def test_volatility_low_vs_high(once):
    result = once(
        run_volatility,
        seed=BENCH_SEED,
        queries_per_epoch=200,
    )
    panels = result.data["precision"]
    low = panels["0.1"]
    high = panels["0.8"]

    for policy in low:
        low_series = low[policy]
        high_series = high[policy]
        # Strict dominance at every timeline point.
        for t, (lo, hi) in enumerate(zip(low_series, high_series)):
            assert lo > hi, f"{policy} at t={t}: low {lo} <= high {hi}"
        # And by a wide margin at the end (~0.52 vs ~0.12 analytically).
        assert low_series[-1] > 2.5 * high_series[-1]

    # Analytic anchors: 1/(1+0.1·10) = 0.5, 1/(1+0.8·10) ≈ 0.111.
    assert abs(low["uniform"][-1] - 0.5) < 0.08
    assert abs(high["uniform"][-1] - 0.111) < 0.05
