"""Root pytest configuration.

Lives at the repo root so the ``--quick`` option is registered no
matter which directory the run targets (options can only be added from
initial conftests, and ``benchmarks/conftest.py`` is not initial when
pytest is invoked from the root).
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help=(
            "shrink benchmark workloads for CI smoke runs (the planner "
            "benchmark drops from 1M to ~125k rows)"
        ),
    )


@pytest.fixture(scope="session")
def quick(request):
    """True when the suite runs with --quick (CI smoke mode)."""
    return request.config.getoption("--quick")
