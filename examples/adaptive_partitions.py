#!/usr/bin/env python
"""Adaptive partitioning: budget follows the workload.

§4.4: "it might be worth to study amnesia in the context of adaptive
partitioning.  Each partition can then be tuned to provide the best
precision for a subset of the workload."

A two-partition store ingests a uniform stream while the dashboard only
ever reads the low half of the domain.  With rebalancing on, the hot
partition's budget — and therefore its precision — grows at the cold
partition's expense.

Run with::

    python examples/adaptive_partitions.py
"""

from __future__ import annotations

import numpy as np

from repro.amnesia import UniformAmnesia
from repro.partitioning import PartitionedAmnesiaDatabase
from repro.plotting import render_table

DOMAIN = 10_000
HOT_HIGH = 3_000
TOTAL_BUDGET = 2_000
BATCHES = 10
BATCH_SIZE = 2_000


def run(adaptive: bool) -> dict:
    store = PartitionedAmnesiaDatabase(
        "a",
        (0, DOMAIN // 2, DOMAIN),
        TOTAL_BUDGET,
        policy_factory=UniformAmnesia,
        seed=99,
    )
    rng = np.random.default_rng(4)
    hot = cold = None
    for _ in range(BATCHES):
        store.insert({"a": rng.integers(0, DOMAIN, BATCH_SIZE)})
        for _ in range(25):
            hot = store.range_query(0, HOT_HIGH)
        cold = store.range_query(DOMAIN // 2, DOMAIN)
        if adaptive:
            store.rebalance(floor=TOTAL_BUDGET // 10)
    return {
        "mode": "adaptive" if adaptive else "static",
        "hot-range precision": round(hot.precision, 3),
        "cold-range precision": round(cold.precision, 3),
        "budgets": store.stats()["budgets"],
    }


def main() -> None:
    rows = [run(adaptive=False), run(adaptive=True)]
    print(
        render_table(
            list(rows[0].keys()),
            [list(r.values()) for r in rows],
            title=(
                f"Adaptive vs static partition budgets "
                f"({BATCHES * BATCH_SIZE:,} tuples into {TOTAL_BUDGET:,})"
            ),
        )
    )
    print(
        "\nWith rebalancing, the partition serving the dashboard's "
        "queries keeps\nmost of the budget: better precision exactly "
        "where the workload looks."
    )


if __name__ == "__main__":
    main()
