#!/usr/bin/env python
"""Concurrent ingest: writer threads enqueue, a flush publishes.

The partitioned store's write path is a queue/applier seam: ``enqueue``
routes a batch to per-shard queues under a short critical section (no
shard locks held), ``flush`` drains every queue through batched
appliers on the shard fan-out pool and advances the published ingest
epoch — the barrier readers synchronize on, so a query sees either all
of a batch or none of it, never a torn middle.

Three demonstrations, all on one store:

1. Writer threads ingesting disjoint key ranges land exactly the rows
   a single sequential writer would.
2. Reader threads free-running against the ingest only ever observe
   batch-boundary row counts (epoch-snapshot atomicity).
3. A mid-run checkpoint of the store restores — queue drained, epoch
   published — and answers queries identically.

Run with::

    python examples/concurrent_ingest.py
"""

from __future__ import annotations

import os
import tempfile
import threading

import numpy as np

from repro.amnesia import FifoAmnesia
from repro.partitioning import PartitionedAmnesiaDatabase
from repro.plotting import render_table
from repro.storage import load_store

DOMAIN = 10_000
TOTAL_BUDGET = 50_000  # generous: keeps every row (atomicity is starkest)
BATCHES_PER_WRITER = 20
BATCH_SIZE = 500


def build(workers: int) -> PartitionedAmnesiaDatabase:
    return PartitionedAmnesiaDatabase(
        "a",
        (0, DOMAIN // 4, DOMAIN // 2, 3 * DOMAIN // 4, DOMAIN),
        TOTAL_BUDGET,
        policy_factory=FifoAmnesia,
        seed=99,
        workers=workers,
    )


def ingest(store, batches) -> None:
    for batch in batches:
        store.insert({"a": batch})


def main() -> None:
    rng = np.random.default_rng(4)
    low = [
        rng.integers(0, DOMAIN // 2, BATCH_SIZE)
        for _ in range(BATCHES_PER_WRITER)
    ]
    high = [
        rng.integers(DOMAIN // 2, DOMAIN, BATCH_SIZE)
        for _ in range(BATCHES_PER_WRITER)
    ]

    # 1. Two writer threads vs one sequential writer.
    concurrent = build(workers=4)
    observed: list[int] = []
    stop = threading.Event()

    # 2. Free-running readers record row counts while ingest runs.
    def reader() -> None:
        while not stop.is_set():
            result = concurrent.range_query(0, DOMAIN)
            observed.append(result.rf + result.mf)

    readers = [threading.Thread(target=reader) for _ in range(2)]
    writers = [
        threading.Thread(target=ingest, args=(concurrent, low)),
        threading.Thread(target=ingest, args=(concurrent, high)),
    ]
    for thread in readers + writers:
        thread.start()
    for thread in writers:
        thread.join()
    stop.set()
    for thread in readers:
        thread.join()

    sequential = build(workers=1)
    ingest(sequential, low)
    ingest(sequential, high)

    boundary_counts = {BATCH_SIZE * n for n in range(2 * BATCHES_PER_WRITER + 1)}
    torn = [count for count in observed if count not in boundary_counts]

    # 3. Checkpoint the live store mid-story and restore it.
    path = os.path.join(tempfile.mkdtemp(), "ingest.npz")
    concurrent.checkpoint(path)
    restored = load_store(path, policy_factory=FifoAmnesia)

    probe = (DOMAIN // 4, 3 * DOMAIN // 4)
    rows = [
        [
            name,
            store.ingest_epoch,
            sum(p.db.total_rows for p in store.partitions),
            store.range_query(*probe).rf,
        ]
        for name, store in (
            ("2 writer threads", concurrent),
            ("sequential", sequential),
            ("restored checkpoint", restored),
        )
    ]
    print(
        render_table(
            ["store", "ingest epoch", "total rows", f"rf[{probe[0]}:{probe[1]}]"],
            rows,
            title="concurrent ingest == sequential == restored",
        )
    )
    print(
        f"reader snapshots observed: {len(observed)} "
        f"(torn: {len(torn)} — every count sat on a batch boundary)"
    )
    assert not torn
    assert rows[0][2] == rows[1][2]
    assert rows[0][3] == rows[2][3]
    for store in (concurrent, sequential, restored):
        store.close()


if __name__ == "__main__":
    main()
