#!/usr/bin/env python
"""Cross-table queries: where two forgetting streams meet.

Two Zipf-skewed sensor streams live in one catalog under *different*
amnesia policies (s1 rots with an access-frequency shield, s2 is plain
FIFO), plus a range-sharded third stream.  Cross-table plan nodes
compose the existing per-table planners:

* ``union:s1,s2`` concatenates the streams, keeping each input's exact
  RF/MF/precision accounting;
* ``join:s1,s2:on=value`` hash-joins them (build side picked by
  estimated rows) — a join output row is *forgotten* iff either
  contributing row was, which no single-table planner can express;
* a ``JoinNode`` over a ``ShardedScanNode`` shows a partitioned store
  feeding the same algebra through its per-shard planners;
* ``join:s1,s2:on=value,agg=value`` runs the streaming engine: the
  aggregate folds the join's batches into exact moments without ever
  materializing the pair matrix.

Leaf scans fan out on the catalog's worker pool with ordered merges,
so every number below is bit-identical at any worker count.

Run with ``PYTHONPATH=src python examples/cross_table_join.py``.
"""

from __future__ import annotations

import numpy as np

from repro.amnesia import FifoAmnesia, make_policy
from repro.core.database import AmnesiaDatabase
from repro.partitioning import PartitionedAmnesiaDatabase
from repro.query import JoinNode, ShardedScanNode, TableScanNode
from repro.storage import Catalog

DOMAIN = 2_000
BUDGET = 400
BATCH = 300
BATCHES = 6
SEED = 42


def zipf_values(rng: np.random.Generator, n: int) -> np.ndarray:
    """Zipf-skewed values clamped into the domain (hot keys near 0)."""
    return np.minimum(rng.zipf(1.6, n), DOMAIN - 1).astype(np.int64)


def main() -> None:
    catalog = Catalog(plan="cost", workers=4)
    sensors = {
        "s1": AmnesiaDatabase(
            BUDGET, make_policy("rot"), seed=SEED + 1, table_name="s1"
        ),
        "s2": AmnesiaDatabase(
            BUDGET, FifoAmnesia(), seed=SEED + 2, table_name="s2"
        ),
    }
    for db in sensors.values():
        catalog.register(db.table)
    sharded = PartitionedAmnesiaDatabase(
        "a",
        np.linspace(0, DOMAIN, 5).astype(int).tolist(),
        total_budget=BUDGET,
        policy_factory=FifoAmnesia,
        seed=SEED + 3,
        plan="cost",
        workers=4,
    )
    catalog.register_sharded("s3", sharded)

    rng = np.random.default_rng(SEED)
    print(f"=== {BATCHES} batches x {BATCH} rows per stream ===")
    for batch in range(1, BATCHES + 1):
        for db in sensors.values():
            db.insert({"a": zipf_values(rng, BATCH)})
        sharded.insert({"a": zipf_values(rng, BATCH)})
        union = catalog.query("union:s1,s2,s3", epoch=batch)
        join = catalog.query("join:s1,s2:on=value,low=0,high=64", epoch=batch)
        print(
            f"batch {batch}: union rf={union.rf:5d} mf={union.mf:5d} "
            f"P={union.precision:.3f} | hot-range join rf={join.rf:6d} "
            f"mf={join.mf:6d} P={join.precision:.3f}"
        )
    print()

    print("=== per-input accounting survives the union ===")
    union = catalog.query("union:s1,s2,s3", epoch=BATCHES)
    for name, part in zip(("s1", "s2", "s3"), union.inputs):
        print(
            f"  {name}: rf={part.rf:5d} mf={part.mf:5d} "
            f"precision={part.precision:.3f}"
        )
    print()

    print("=== sharded stream as a join input (explicit node tree) ===")
    node = JoinNode(
        TableScanNode("s1", 0, 256),
        ShardedScanNode("s3", 0, 256),
        on="value",
    )
    print(catalog.explain_query(node))
    result = catalog.query(node, epoch=BATCHES)
    print(
        f"join rf={result.rf} mf={result.mf} precision={result.precision:.3f}"
    )
    print()

    print("=== streamed aggregate over the join (no pair matrix) ===")
    agg = catalog.query(
        "join:s1,s2:on=value,agg=value", epoch=BATCHES, batch_size=256
    )
    print(
        f"SUM(l.value) over surviving pairs = {agg.active.total} "
        f"({agg.strategy}, rf={agg.rf}, mf={agg.mf}, "
        f"P={agg.precision:.3f})"
    )
    joined = catalog.query("join:s1,s2:on=value", epoch=BATCHES)
    print(
        f"the materialized run holds all {joined.oracle_count} pairs at "
        f"once; the streamed aggregate saw them 256 probe rows at a time"
    )
    print()

    print("=== catalog plan report (tables, shards, last cross plan) ===")
    print(catalog.plan_report())
    catalog.close()
    sharded.close()


if __name__ == "__main__":
    main()
