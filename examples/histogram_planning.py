"""Histogram statistics: where uniformity misplans and histograms don't.

The cost model's original statistic is per-cohort *uniformity* — fine
for benchmark-style uniform streams, wrong for the Zipf workloads of
§2.2 where a handful of hot values carry most of the mass.  This
script builds exactly that situation twice, once per statistics mode
(``stats="uniform"`` vs ``stats="hist"``), and shows three consumers
of the sharper estimates:

1. **EXPLAIN trees** — a join between a Zipf-hot sensor and a small
   narrow-domain dimension table, bounded to the hot window.
   Uniformity underestimates the hot side (its mass hides inside a
   wide value span) and overestimates the dimension side (narrow span),
   so it predicts the *wrong build side*; the histogram prediction
   matches what execution actually does.
2. **q-error** — estimated vs actual match counts for hot probes.
3. **Median shard splits** — under ``--stats hist`` the adaptive
   partitioner cuts a hot shard at the traffic-weighted value median
   instead of the range midpoint, so a Zipf-hot shard splits into two
   halves that actually share the rows.

Run with ``PYTHONPATH=src python examples/histogram_planning.py``.
"""

from __future__ import annotations

import numpy as np

from repro.amnesia import FifoAmnesia
from repro.partitioning import PartitionedAmnesiaDatabase
from repro.storage import Catalog

DOMAIN = 2_000
HOT_ROWS = 4_000
DIM_ROWS = 1_200
HOT_WINDOW = (0, 16)


def zipf_values(rng: np.random.Generator, n: int) -> np.ndarray:
    """Zipf-skewed values: most of the mass on a hot head near 0."""
    return np.minimum((rng.zipf(1.3, n) - 1) * 4, DOMAIN - 1)


def build_catalog(stats: str) -> Catalog:
    catalog = Catalog(plan="cost", stats=stats)
    rng = np.random.default_rng(11)
    hot = catalog.create_table("sensor", ["a"])
    hot.insert_batch(0, {"a": zipf_values(rng, HOT_ROWS)})
    hot.forget(np.arange(0, HOT_ROWS, 10), epoch=1)
    dim = catalog.create_table("dim", ["a"])
    dim.insert_batch(0, {"a": rng.integers(0, 64, DIM_ROWS)})
    return catalog


def main() -> None:
    spec = (
        f"join:sensor,dim:on=value,low={HOT_WINDOW[0]},high={HOT_WINDOW[1]}"
    )
    catalogs = {stats: build_catalog(stats) for stats in ("uniform", "hist")}

    print("-- EXPLAIN under both statistics sources " + "-" * 22)
    for stats, catalog in catalogs.items():
        print(f"\nstats={stats!r}:")
        print(catalog.explain_query(spec))
    result = catalogs["hist"].query(spec, epoch=1)
    left, right = result.inputs
    print(
        f"\nexecution: left(sensor)={left.oracle_count} rows, "
        f"right(dim)={right.oracle_count} rows -> actual build side: "
        f"{'right' if right.oracle_count <= left.oracle_count else 'left'}"
    )
    print(
        "uniformity predicted build≈left (it cannot see the hot head); "
        "the histogram prediction matches execution."
    )

    print("\n-- estimate accuracy on hot probes " + "-" * 28)
    values = catalogs["hist"].get("sensor").values("a")
    planners = {
        stats: catalog.planner("sensor") for stats, catalog in catalogs.items()
    }
    print(f"{'probe':>14} {'actual':>8} {'uniform':>10} {'hist':>10}")
    for low, high in ((0, 4), (0, 16), (4, 64), (256, 1024)):
        actual = int(((values >= low) & (values < high)).sum())
        row = [f"[{low}, {high}):".rjust(14), f"{actual:>8}"]
        for stats in ("uniform", "hist"):
            estimate = planners[stats].estimate("a", low, high)
            row.append(f"{estimate.est_rows:>10.1f}")
        print(" ".join(row))

    print("\n-- adaptive splits: midpoint vs median " + "-" * 24)
    for stats in ("uniform", "hist"):
        store = PartitionedAmnesiaDatabase(
            "a",
            [0, DOMAIN // 2, DOMAIN],
            total_budget=2_000,
            policy_factory=FifoAmnesia,
            seed=3,
            plan="cost",
            rebalance="adaptive",
            split_threshold=1.5,
            stats=stats,
        )
        rng = np.random.default_rng(5)
        for _ in range(6):
            store.insert({"a": zipf_values(rng, 600)})
        for low in (0, 2, 0, 8, 1, 0):
            store.range_query(low, low + 4)
        store.rebalance()
        rows = [p.db.total_rows for p in store.partitions]
        print(f"stats={stats!r}: boundaries {store.boundaries}, rows/shard {rows}")
        for event in store.adaptations:
            print(f"  {event}")
        store.close()

    for catalog in catalogs.values():
        catalog.close()


if __name__ == "__main__":
    main()
