#!/usr/bin/env python
"""Regenerate every figure and table of the paper in one run.

Equivalent to ``python -m repro run all`` but callable as a script and
with a compact progress trail.  Expect a few minutes at the paper's
full query counts.

Run with::

    python examples/paper_figures.py [--fast]
"""

from __future__ import annotations

import sys
import time

from repro.experiments import EXPERIMENTS

#: Reduced query batches for --fast runs (shape-preserving).
_FAST_OVERRIDES = {
    "F2": {"queries_per_epoch": 300},
    "F3": {"queries_per_epoch": 200},
    "T1": {"queries_per_epoch": 200},
    "T2": {"queries_per_epoch": 20},
    "T3": {"queries_per_epoch": 200},
    "A2": {"queries_per_epoch": 200},
}


def main(argv: list[str]) -> int:
    fast = "--fast" in argv
    for experiment_id, runner in EXPERIMENTS.items():
        kwargs = _FAST_OVERRIDES.get(experiment_id, {}) if fast else {}
        started = time.perf_counter()
        result = runner(**kwargs)
        elapsed = time.perf_counter() - started
        print(result.render())
        print(f"\n[{experiment_id} completed in {elapsed:.1f}s]\n")
        print("=" * 72)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
