#!/usr/bin/env python
"""Parallel shard fan-out + adaptive boundaries under a skewed stream.

Two of the sharded store's newest tricks in one run:

* ``workers=4`` — per-shard planner pipelines execute on a thread
  pool; the ordered merge keeps every count and aggregate bit-identical
  to sequential execution, so parallelism is purely a throughput knob.
* ``rebalance="adaptive"`` — a Zipf-skewed query stream hammers the
  low end of the domain; rebalancing reads the coverage-based row
  traffic, *splits the hot shard's boundary* and merges the coldest
  adjacent pair, so the partition layout itself — not just the budgets
  — converges on where the workload looks.

Run with ``PYTHONPATH=src python examples/parallel_shards.py``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.amnesia import UniformAmnesia
from repro.partitioning import PartitionedAmnesiaDatabase

DOMAIN = 20_000
SHARDS = 4
BATCHES = 8
BATCH = 2_000
QUERIES_PER_BATCH = 30
#: Zipf exponent for the query anchors: most queries land near 0.
ZIPF_A = 1.8


def build(workers: int) -> PartitionedAmnesiaDatabase:
    boundaries = np.linspace(0, DOMAIN, SHARDS + 1).astype(int).tolist()
    return PartitionedAmnesiaDatabase(
        "a",
        boundaries,
        total_budget=DOMAIN // 4,
        policy_factory=UniformAmnesia,
        seed=42,
        plan="cost",
        workers=workers,
        rebalance="adaptive",
        split_threshold=1.5,
    )


def drive(store: PartitionedAmnesiaDatabase, rng: np.random.Generator):
    """Skewed ingest + Zipf-anchored queries + adaptive rebalancing."""
    last = None
    for _ in range(BATCHES):
        store.insert({"a": rng.integers(0, DOMAIN, BATCH)})
        # Zipf-distributed query anchors: rank r maps to a window near
        # r * width, so low ranks (frequent) read the low domain.
        ranks = np.minimum(rng.zipf(ZIPF_A, QUERIES_PER_BATCH), 50) - 1
        for rank in ranks:
            low = int(rank) * (DOMAIN // 100)
            last = store.range_query(low, low + DOMAIN // 50)
        store.rebalance(floor=DOMAIN // 40)
    return last


def main() -> None:
    timings = {}
    for workers in (1, 4):
        store = build(workers)
        rng = np.random.default_rng(7)
        start = time.perf_counter()
        last = drive(store, rng)
        timings[workers] = time.perf_counter() - start
        if workers == 4:
            print(f"store: {store!r}\n")
            print("-- adaptive boundary trajectory " + "-" * 30)
            for event in store.adaptations:
                print(f"  {event}")
            print(f"\nfinal boundaries: {list(store.boundaries)}")
            print(f"final budgets:    {store.stats()['budgets']}")
            print(
                f"\nlast hot-range query: rf={last.rf} mf={last.mf} "
                f"precision={last.precision:.3f}"
            )
        store.close()
    print("\n-- fan-out timing (same results, bit-identical) " + "-" * 14)
    for workers, seconds in timings.items():
        print(f"  workers={workers}: {seconds * 1e3:7.1f}ms")
    print(
        "\nThe hot low-domain shards split until the layout mirrors the\n"
        "Zipf skew; with >1 core, the 4-worker run finishes faster while\n"
        "returning exactly the same counts."
    )


if __name__ == "__main__":
    main()
