#!/usr/bin/env python
"""Quickstart: a database that forgets.

Builds an :class:`~repro.AmnesiaDatabase` with a 10 000-tuple budget and
rot amnesia, streams in 50 000 sensor-style readings, and shows what the
amnesiac database still knows — and what it silently lost — using the
library's exact precision accounting.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import AmnesiaDatabase
from repro.amnesia import RotAmnesia

BUDGET = 10_000
BATCHES = 10
BATCH_SIZE = 5_000
DOMAIN = 100_000


def main() -> None:
    rng = np.random.default_rng(7)
    db = AmnesiaDatabase(budget=BUDGET, policy=RotAmnesia(high_water_mark=1))

    print(f"Streaming {BATCHES} batches of {BATCH_SIZE} readings "
          f"into a {BUDGET}-tuple budget...\n")
    for batch in range(BATCHES):
        readings = rng.integers(0, DOMAIN, BATCH_SIZE)
        db.insert({"a": readings})
        # Query between batches so the rot policy can learn which
        # values the application cares about (the hot low range).
        for _ in range(50):
            low = int(rng.integers(0, DOMAIN // 10))
            db.range_query("a", low, low + DOMAIN // 100)

    stats = db.stats()
    print("Database state after the stream:")
    for key, value in stats.items():
        print(f"  {key:15s} {value}")

    print("\nWhat does a range query still see?")
    result = db.range_query("a", 0, DOMAIN // 10)  # the learned-hot range
    print(f"  hot range  : returned {result.rf:5d} tuples, "
          f"missed {result.mf:5d} -> precision {result.precision:.3f}")
    result = db.range_query("a", DOMAIN // 2, DOMAIN // 2 + DOMAIN // 10)
    print(f"  cold range : returned {result.rf:5d} tuples, "
          f"missed {result.mf:5d} -> precision {result.precision:.3f}")

    print("\nAnd the headline aggregate?")
    agg = db.aggregate("avg", "a")
    print(f"  SELECT AVG(a): amnesiac {agg.amnesiac_value:,.1f} vs "
          f"oracle {agg.oracle_value:,.1f} "
          f"(relative error {agg.relative_error:.4f})")

    print("\nHow did those queries actually run?  EXPLAIN says:")
    print(db.plan_report())

    print("\nThe rot policy kept the queried range much sharper than the "
          "rest —\nthat asymmetry is the paper's central trade.")


if __name__ == "__main__":
    main()
