#!/usr/bin/env python
"""Privacy-act retention: forgetting as a legal obligation.

"Observations that are constrained by a Data Privacy Act should be
forgotten within the legally defined time frame" (§1).  The
:class:`~repro.amnesia.PrivacyRetentionWrapper` turns any amnesia
policy into a compliant one: tuples past the retention limit are purged
*unconditionally*, even when that overshoots the storage budget; only
the remaining quota is spent at the inner policy's discretion.

Run with::

    python examples/retention_compliance.py
"""

from __future__ import annotations

import numpy as np

from repro import AmnesiaDatabase
from repro.amnesia import PrivacyRetentionWrapper, RotAmnesia
from repro.plotting import render_table

BUDGET = 4_000
BATCH_SIZE = 1_000
BATCHES = 10
#: Legal retention period, in insert batches.
MAX_AGE = 3


def main() -> None:
    policy = PrivacyRetentionWrapper(
        RotAmnesia(high_water_mark=1), max_age_epochs=MAX_AGE
    )
    db = AmnesiaDatabase(budget=BUDGET, policy=policy)
    rng = np.random.default_rng(11)

    rows = []
    for batch in range(1, BATCHES + 1):
        db.insert({"a": rng.integers(0, 100_000, BATCH_SIZE)})
        # A few queries so the inner rot policy has signal.
        for _ in range(20):
            low = int(rng.integers(0, 90_000))
            db.range_query("a", low, low + 2_000)

        # Compliance audit: no active tuple may exceed the legal age.
        table = db.table
        active = table.active_positions()
        ages = db.epoch - table.insert_epochs()[active]
        oldest = int(ages.max()) if active.size else 0
        rows.append(
            [
                batch,
                db.active_count,
                oldest,
                "PASS" if oldest < MAX_AGE else "VIOLATION",
            ]
        )

    print(
        render_table(
            ["batch", "active tuples", "oldest active age", "audit"],
            rows,
            title=(
                f"Retention compliance (limit: {MAX_AGE} batches, "
                f"budget: {BUDGET} tuples)"
            ),
        )
    )
    assert all(r[3] == "PASS" for r in rows), "retention violated!"
    print(
        "\nEvery audit passes: the privacy wrapper purges expired tuples "
        "before\nthe discretionary policy spends the rest of the quota.  "
        "Note the active\ncount can dip below budget right after a purge — "
        "the law outranks the\nstorage target."
    )


if __name__ == "__main__":
    main()
