"""Sharded execution through one planner core, with EXPLAIN output.

The §4.4 partitioned store now routes every read through per-shard
query planners: each shard declares its partition bounds as planner
*value bounds*, so "skip that shard" is a recorded ``pruned`` plan
rather than topology code, and inside a shard the ``cost`` mode prices
scan vs zone-map vs index paths from the cohort statistics.

This script builds a range-sharded sensor stream, fires a few queries
(including an out-of-domain one — edge shards hold clamped-in values,
and the open-ended bounds make sure queries still find them), previews
plans with ``explain()``, merges a windowed VAR across shards, and
prints the unified ``plan_report()``.

Run with ``PYTHONPATH=src python examples/sharded_explain.py``.
"""

from __future__ import annotations

import numpy as np

from repro.amnesia import FifoAmnesia
from repro.partitioning import PartitionedAmnesiaDatabase

DOMAIN = 40_000
SHARDS = 4
BATCHES = 40
BATCH = 1_000


def main() -> None:
    boundaries = np.linspace(0, DOMAIN, SHARDS + 1).astype(int).tolist()
    store = PartitionedAmnesiaDatabase(
        "a",
        boundaries,
        total_budget=DOMAIN // 4,
        policy_factory=FifoAmnesia,
        seed=42,
        plan="cost",
    )
    rng = np.random.default_rng(7)
    span = DOMAIN // BATCHES
    for epoch in range(BATCHES):
        # A time-correlated stream: each batch covers one value window,
        # so per-shard cohorts stay localised and zone maps can prune.
        store.insert({"a": rng.integers(epoch * span, (epoch + 1) * span, BATCH)})
    # A few stragglers outside the declared domain: routing clamps them
    # into the edge shards, values stay as recorded.
    store.insert({"a": np.array([-250, -80, DOMAIN + 500])})

    print(f"store: {store!r}")

    print("\n-- EXPLAIN a selective in-domain range " + "-" * 24)
    low, high = 2 * span, 2 * span + 400
    for shard, plan in store.explain(low, high):
        print(f"shard {shard}: {plan.describe()}")
    result = store.range_query(low, high)
    print(
        f"range [{low}, {high}): rf={result.rf} mf={result.mf} "
        f"precision={result.precision:.3f} "
        f"(executed {result.shards_executed}, pruned {result.shards_pruned})"
    )

    print("\n-- EXPLAIN an out-of-domain range " + "-" * 29)
    for shard, plan in store.explain(-300, 0):
        print(f"shard {shard}: {plan.describe()}")
    result = store.range_query(-300, 0)
    print(f"range [-300, 0): rf={result.rf} mf={result.mf} (the clamped rows)")

    print("\n-- windowed aggregates merged across shards " + "-" * 19)
    window = (DOMAIN // 4, 3 * DOMAIN // 4)  # spans two shard boundaries
    for function in ("avg", "var", "std"):
        amnesiac, oracle = store.aggregate(function, *window)
        print(
            f"{function.upper():>4} over [{window[0]}, {window[1]}): "
            f"amnesiac={amnesiac:.2f} oracle={oracle:.2f}"
        )

    print("\n-- unified plan report " + "-" * 40)
    print(store.plan_report())


if __name__ == "__main__":
    main()
