#!/usr/bin/env python
"""Scientific-instrument stream under a fixed memory budget.

The paper's opening scenario: "in a scientific instrument the sensors
transmit with smaller rates than what they are capable of" — the naive
fix is to drop data at the source.  This example keeps the full rate
and lets the DBMS forget instead, comparing three strategies on a
monitoring workload that mostly inspects *recent anomalies*:

* **fifo** — the stream-buffer baseline (only fresh data survives);
* **uniform** — blind reservoir-style forgetting;
* **rot** — query-aware forgetting that learns the anomaly band.

Run with::

    python examples/streaming_sensor.py
"""

from __future__ import annotations

import numpy as np

from repro import AmnesiaDatabase
from repro.amnesia import FifoAmnesia, RotAmnesia, UniformAmnesia
from repro.plotting import render_table

BUDGET = 5_000
BATCHES = 12
BATCH_SIZE = 2_000
#: Sensor reading range; anomalies live in the top decile.
DOMAIN = 10_000
ANOMALY_LOW = 9_000


def sensor_batch(rng: np.random.Generator) -> np.ndarray:
    """Mostly normal readings with a 3 % anomaly tail."""
    normal = rng.normal(DOMAIN / 2, DOMAIN / 10, BATCH_SIZE).astype(np.int64)
    normal = np.clip(normal, 0, DOMAIN)
    anomalies = rng.integers(ANOMALY_LOW, DOMAIN, max(BATCH_SIZE // 33, 1))
    batch = np.concatenate([normal[: BATCH_SIZE - anomalies.size], anomalies])
    rng.shuffle(batch)
    return batch


def run_strategy(name: str, policy) -> dict:
    rng = np.random.default_rng(42)  # same stream for every strategy
    db = AmnesiaDatabase(budget=BUDGET, policy=policy)
    anomaly_precision = []
    for _ in range(BATCHES):
        db.insert({"a": sensor_batch(rng)})
        # The monitoring dashboard hammers the anomaly band.
        for _ in range(30):
            result = db.range_query("a", ANOMALY_LOW, DOMAIN)
        anomaly_precision.append(result.precision)
    baseline = db.range_query("a", 0, ANOMALY_LOW)
    return {
        "strategy": name,
        "anomaly precision (final)": round(anomaly_precision[-1], 3),
        "anomaly precision (mean)": round(
            float(np.mean(anomaly_precision)), 3
        ),
        "bulk precision (final)": round(baseline.precision, 3),
        "tuples held": db.active_count,
    }


def main() -> None:
    ingested = BATCHES * BATCH_SIZE
    print(
        f"Sensor stream: {ingested:,} readings into a {BUDGET:,}-tuple "
        f"budget ({ingested / BUDGET:.0f}x oversubscribed).\n"
    )
    rows = [
        run_strategy("fifo (stream buffer)", FifoAmnesia()),
        run_strategy("uniform (reservoir)", UniformAmnesia()),
        run_strategy("rot (query-aware)", RotAmnesia(high_water_mark=1,
                                                     frequency_exponent=2.0)),
    ]
    print(
        render_table(
            list(rows[0].keys()),
            [list(r.values()) for r in rows],
            title="Anomaly-band monitoring under amnesia",
        )
    )
    print(
        "\nRot amnesia learns that the dashboard cares about the anomaly "
        "band and\nsacrifices bulk readings instead — FIFO and uniform "
        "treat both alike."
    )


if __name__ == "__main__":
    main()
