#!/usr/bin/env python
"""Tiered forgetting: cold storage + summaries instead of deletion.

A business-events table under a hot-tier budget: forgotten events are
simultaneously (a) archived to a Glacier-priced cold tier, so an
auditor can recover them on request, and (b) collapsed into summaries,
so routine dashboards keep exact whole-table aggregates — the paper's
two "lighter" dispositions working together.

Run with::

    python examples/tiered_archive.py
"""

from __future__ import annotations

import numpy as np

from repro import AmnesiaDatabase
from repro.amnesia import FifoAmnesia
from repro.coldstore import GLACIER_2016, ColdStore
from repro.lifecycle import (
    ColdStorageDisposition,
    DispositionExecutor,
    SummaryDisposition,
)
from repro.plotting import render_table
from repro.storage import TableObserver

BUDGET = 5_000
BATCHES = 8
BATCH_SIZE = 2_500


class TieredDisposition:
    """Compose cold archiving with summary keeping (both observers)."""

    def __init__(self) -> None:
        self.cold = ColdStorageDisposition(ColdStore(GLACIER_2016))
        self.summaries = SummaryDisposition()

    def on_insert(self, table, positions) -> None:
        self.cold.on_insert(table, positions)
        self.summaries.on_insert(table, positions)

    def on_forget(self, table, positions) -> None:
        self.cold.on_forget(table, positions)
        self.summaries.on_forget(table, positions)


def main() -> None:
    tiers = TieredDisposition()
    db = AmnesiaDatabase(
        budget=BUDGET, policy=FifoAmnesia(), disposition=tiers
    )
    rng = np.random.default_rng(3)
    for _ in range(BATCHES):
        db.insert({"a": rng.integers(0, 1_000_000, BATCH_SIZE)})

    table = db.table
    store = tiers.cold.store
    print(
        render_table(
            ["tier", "tuples", "bytes"],
            [
                ["hot (active)", table.active_count, table.active_count * 8],
                ["cold archive", store.tuple_count, store.stored_bytes],
                ["summaries", tiers.summaries.store.tuple_count,
                 tiers.summaries.store.nbytes],
            ],
            title="Where the data lives",
        )
    )

    # Dashboards: exact aggregates over ALL history via summaries.
    executor = DispositionExecutor(table, tiers.summaries)
    answer, oracle = executor.aggregate_with_summaries("avg", "a")
    print(f"\nAVG over full history via summaries : {answer:,.2f}")
    print(f"AVG over full history (oracle)      : {oracle:,.2f}")
    print(f"Amnesiac AVG without summaries      : "
          f"{db.aggregate('avg', 'a').amnesiac_value:,.2f}")

    # Audit: recover the 100 oldest forgotten events from the cold tier.
    oldest = table.forgotten_positions()[:100]
    recovered = tiers.cold.recover(oldest)
    print(f"\nRecovered {recovered['a'].size} archived events "
          f"(first values: {recovered['a'][:5].tolist()})")
    print(f"Cold retrieval spend so far          : "
          f"${store.retrieval_cost_so_far():.8f}")
    print(f"Cold retrieval latency budget        : "
          f"{store.retrieval_latency_so_far():.0f} h "
          f"(Glacier-class, {GLACIER_2016.cold_retrieval_latency_hours:.0f} h/trip)")
    print(f"Cold storage keep rate               : "
          f"${store.storage_cost(years=1.0):.8f}/yr "
          f"(vs ${GLACIER_2016.hot_storage_cost(store.stored_bytes, 1.0):.8f}/yr hot)")


if __name__ == "__main__":
    main()
