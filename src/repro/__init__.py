"""repro — A Database System with Amnesia (Kersten & Sidirourgos, CIDR 2017).

A production-quality reproduction of the paper's Data Amnesia
Simulator: a columnar DBMS skeleton whose tables *forget* tuples under
pluggable amnesia policies, with exact information-precision accounting
against the never-forgetting oracle.

Quick start::

    import numpy as np
    from repro import AmnesiaDatabase
    from repro.amnesia import RotAmnesia

    db = AmnesiaDatabase(budget=10_000, policy=RotAmnesia())
    db.insert({"a": np.random.default_rng(0).integers(0, 1000, 20_000)})
    result = db.range_query("a", 100, 200)
    print(result.rf, result.mf, result.precision)

Experiment reproduction lives in :mod:`repro.experiments`; see
``python -m repro --help`` for the command-line harness.
"""

from ._util.errors import (
    AmnesiaError,
    ColdStoreError,
    CompressionError,
    ConfigError,
    LifecycleError,
    QueryError,
    ReproError,
    SchemaError,
    StorageError,
)
from .core import AmnesiaDatabase, AmnesiaSimulator, SimulationConfig

__version__ = "1.0.0"

__all__ = [
    "AmnesiaDatabase",
    "AmnesiaSimulator",
    "SimulationConfig",
    "ReproError",
    "ConfigError",
    "StorageError",
    "SchemaError",
    "QueryError",
    "AmnesiaError",
    "ColdStoreError",
    "CompressionError",
    "LifecycleError",
    "__version__",
]
