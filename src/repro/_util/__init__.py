"""Internal utilities: errors, RNG plumbing, validation helpers.

Everything here is private to the library (the leading underscore is the
convention); public re-exports live in :mod:`repro`.
"""

from .errors import (
    AmnesiaError,
    ColdStoreError,
    CompressionError,
    ConfigError,
    IndexError_,
    InsufficientVictimsError,
    LifecycleError,
    QueryError,
    ReproError,
    SchemaError,
    StorageError,
    UnknownColumnError,
)
from .rng import DEFAULT_SEED, derive_seed, make_rng, spawn
from .validation import (
    as_int_array,
    check_fraction,
    check_in,
    check_non_negative_float,
    check_non_negative_int,
    check_positive_float,
    check_positive_int,
    check_probability,
)

__all__ = [
    "AmnesiaError",
    "ColdStoreError",
    "CompressionError",
    "ConfigError",
    "IndexError_",
    "InsufficientVictimsError",
    "LifecycleError",
    "QueryError",
    "ReproError",
    "SchemaError",
    "StorageError",
    "UnknownColumnError",
    "DEFAULT_SEED",
    "derive_seed",
    "make_rng",
    "spawn",
    "as_int_array",
    "check_fraction",
    "check_in",
    "check_non_negative_float",
    "check_non_negative_int",
    "check_positive_float",
    "check_positive_int",
    "check_probability",
]
