"""Exception hierarchy for the amnesia simulator.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` from misuse of NumPy,
for instance) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "StorageError",
    "SchemaError",
    "UnknownColumnError",
    "QueryError",
    "AmnesiaError",
    "InsufficientVictimsError",
    "IndexError_",
    "ColdStoreError",
    "CompressionError",
    "LifecycleError",
    "ServingError",
    "SessionError",
    "ScopeError",
    "AdmissionError",
    "TransientFault",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigError(ReproError, ValueError):
    """A configuration value is out of range or inconsistent."""


class StorageError(ReproError):
    """A storage-layer invariant was violated."""


class SchemaError(StorageError):
    """A table schema operation is invalid (duplicate column, bad arity)."""


class UnknownColumnError(SchemaError, KeyError):
    """A referenced column does not exist in the table."""

    def __init__(self, name: str, available: tuple[str, ...] = ()):
        self.name = name
        self.available = tuple(available)
        detail = f"unknown column {name!r}"
        if available:
            detail += f" (available: {', '.join(available)})"
        super().__init__(detail)

    def __str__(self) -> str:  # KeyError would repr() the message otherwise
        return self.args[0]


class QueryError(ReproError):
    """A query is malformed or cannot be evaluated."""


class AmnesiaError(ReproError):
    """An amnesia policy failed to produce a valid victim set."""


class InsufficientVictimsError(AmnesiaError):
    """The policy was asked for more victims than there are active tuples."""

    def __init__(self, requested: int, active: int):
        self.requested = requested
        self.active = active
        super().__init__(
            f"requested {requested} victims but only {active} active tuples"
        )


class IndexError_(ReproError):
    """An index maintenance or probe operation failed.

    The trailing underscore avoids shadowing the builtin ``IndexError``
    while keeping the name recognisable.
    """


class ColdStoreError(ReproError):
    """A cold-storage operation failed (missing segment, double archive)."""


class CompressionError(ReproError):
    """A codec could not encode or decode a block."""


class LifecycleError(ReproError):
    """A forgotten-data disposition was applied inconsistently."""


class ServingError(ReproError):
    """A serving-layer operation failed (see :mod:`repro.serving`)."""


class SessionError(ServingError):
    """A session token is unknown, expired, or malformed."""


class ScopeError(ServingError):
    """A tenant addressed a source or value range outside its scope."""


class AdmissionError(ServingError):
    """Admission control rejected the request (service at capacity)."""


class TransientFault(ReproError):
    """A transient, retryable failure (injected or environmental).

    Unlike a crash, a transient fault is part of the caller's contract:
    retry with backoff (see :class:`repro.serving.retry.RetryPolicy`).
    The serving layer maps it to HTTP 503 with a ``Retry-After`` header.
    """
