"""Deterministic thread-pool fan-out over independent work items.

The sharded store (and the catalog's multi-table batches) run per-shard
planner+executor pipelines that are mutually independent: each touches
one table and its own planner state.  :class:`FanOutPool` runs such
pipelines on a reusable :class:`~concurrent.futures.ThreadPoolExecutor`
and hands results back **in item order**, so callers merge exactly as
they would have sequentially — completion order never leaks into
results.

Two design points keep the parallel path honest:

* Items are *striped* into at most ``workers`` group tasks (item ``i``
  goes to group ``i % groups``) instead of one task per item, so
  dispatch overhead is paid per group, not per shard, and a skewed
  workload still spreads hot items across groups.
* ``workers <= 1`` (or a single item) bypasses the pool entirely and
  runs inline — the sequential path stays the zero-thread baseline the
  equivalence harness compares against.

Numpy releases the GIL inside its ufunc loops, so shard scans genuinely
overlap on multi-core hosts; on a single core the striping keeps the
degradation to dispatch overhead only.

:class:`EpochGate` is the write-side companion: a write-preferring
read/write gate whose published epoch counter is the snapshot handoff
for concurrent ingest — appliers drain per-shard queues under the
exclusive hold and the epoch advance publishes the batch atomically,
so readers never observe a half-applied batch.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager

__all__ = ["EpochGate", "FanOutPool"]


class EpochGate:
    """Write-preferring read/write gate with a published epoch counter.

    The concurrency seam of the concurrent ingest path: readers hold
    the gate *shared* for the duration of one query, a writer holds it
    *exclusive* for the duration of one batch application and calls
    :meth:`publish` before releasing — so the epoch advance is the
    barrier that makes a batch visible atomically.  A reader that
    observes published epoch N can never see a half-applied batch
    N + 1: the batch's per-shard inserts all happen between the
    writer's acquire and its release.

    Write preference (readers queue behind a *waiting* writer) keeps a
    steady query stream from starving ingest.  The gate is not
    reentrant — a reader must not re-enter :meth:`reading` while
    holding it, which the store's read paths never do (shard fan-out
    happens inside one ``reading()`` scope).
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writing = False
        self._waiting_writers = 0
        self._epoch = 0

    @property
    def epoch(self) -> int:
        """Number of batches published so far."""
        with self._cond:
            return self._epoch

    @contextmanager
    def reading(self):
        """Hold the gate shared; blocks while a writer holds or waits."""
        with self._cond:
            while self._writing or self._waiting_writers:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def writing(self):
        """Hold the gate exclusive (one writer, zero readers)."""
        with self._cond:
            self._waiting_writers += 1
            try:
                while self._writing or self._readers:
                    self._cond.wait()
            finally:
                self._waiting_writers -= 1
            self._writing = True
        try:
            yield
        finally:
            with self._cond:
                self._writing = False
                self._cond.notify_all()

    def publish(self, batches: int = 1) -> int:
        """Advance the published epoch; caller must hold :meth:`writing`.

        Returns the new epoch.  Requiring the exclusive hold is what
        ties visibility to the barrier: the epoch moves only while no
        reader can be mid-flight.
        """
        with self._cond:
            if not self._writing:
                raise RuntimeError("publish() requires the writing() hold")
            if batches < 0:
                raise RuntimeError(f"cannot publish {batches} batches")
            self._epoch += int(batches)
            return self._epoch

    def reset(self, epoch: int) -> None:
        """Force the published epoch (checkpoint restore only)."""
        with self._cond:
            self._epoch = int(epoch)

    def __repr__(self) -> str:
        return f"EpochGate(epoch={self.epoch})"


class FanOutPool:
    """A lazily created, reusable pool mapping a function over items.

    The pool is sized on first parallel use and grown if a later call
    asks for more workers; :meth:`close` releases the threads.  The
    object is safe to share between caller threads — submissions from
    concurrent queries interleave on the same executor.
    """

    def __init__(self) -> None:
        self._pool: ThreadPoolExecutor | None = None
        self._size = 0
        self._pool_lock = threading.Lock()

    def map_ordered(self, fn, items, workers: int) -> list:
        """``[fn(item) for item in items]``, possibly in parallel.

        Results are returned in ``items`` order regardless of which
        group task finished first.  Exceptions from any group propagate
        to the caller — but only after **every** group has finished.
        Callers use this as a barrier: a flush that releases its
        exclusive gate hold after map_ordered raises must know no
        applier thread is still mutating a shard behind it.  The first
        failure (in group order) is the one re-raised; crash-style
        ``BaseException`` faults propagate the same way.
        """
        items = list(items)
        n = len(items)
        if workers <= 1 or n <= 1:
            return [fn(item) for item in items]
        groups = min(int(workers), n)
        results: list = [None] * n

        def run_group(k: int) -> None:
            for i in range(k, n, groups):
                results[i] = fn(items[i])

        # Submit under the pool lock: a concurrent close() or a
        # grow-the-pool rebuild from another caller cannot shut this
        # executor down between sizing it and handing it the groups.
        with self._pool_lock:
            pool = self._ensure_locked(groups)
            futures = [pool.submit(run_group, k) for k in range(groups)]
        failure: BaseException | None = None
        for future in futures:
            try:
                future.result()
            except BaseException as exc:  # noqa: BLE001 - see docstring
                if failure is None:
                    failure = exc
        if failure is not None:
            raise failure
        return results

    def _ensure_locked(self, workers: int) -> ThreadPoolExecutor:
        """Size (or build) the executor; caller holds ``_pool_lock``."""
        if self._pool is None or self._size < workers:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
            self._pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-fanout"
            )
            self._size = workers
        return self._pool

    def close(self) -> None:
        """Shut the executor down (idempotent; pool rebuilds on reuse)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
                self._pool = None
                self._size = 0

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return f"FanOutPool(size={self._size})"
