"""Deterministic thread-pool fan-out over independent work items.

The sharded store (and the catalog's multi-table batches) run per-shard
planner+executor pipelines that are mutually independent: each touches
one table and its own planner state.  :class:`FanOutPool` runs such
pipelines on a reusable :class:`~concurrent.futures.ThreadPoolExecutor`
and hands results back **in item order**, so callers merge exactly as
they would have sequentially — completion order never leaks into
results.

Two design points keep the parallel path honest:

* Items are *striped* into at most ``workers`` group tasks (item ``i``
  goes to group ``i % groups``) instead of one task per item, so
  dispatch overhead is paid per group, not per shard, and a skewed
  workload still spreads hot items across groups.
* ``workers <= 1`` (or a single item) bypasses the pool entirely and
  runs inline — the sequential path stays the zero-thread baseline the
  equivalence harness compares against.

Numpy releases the GIL inside its ufunc loops, so shard scans genuinely
overlap on multi-core hosts; on a single core the striping keeps the
degradation to dispatch overhead only.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

__all__ = ["FanOutPool"]


class FanOutPool:
    """A lazily created, reusable pool mapping a function over items.

    The pool is sized on first parallel use and grown if a later call
    asks for more workers; :meth:`close` releases the threads.  The
    object is safe to share between caller threads — submissions from
    concurrent queries interleave on the same executor.
    """

    def __init__(self) -> None:
        self._pool: ThreadPoolExecutor | None = None
        self._size = 0
        self._pool_lock = threading.Lock()

    def map_ordered(self, fn, items, workers: int) -> list:
        """``[fn(item) for item in items]``, possibly in parallel.

        Results are returned in ``items`` order regardless of which
        group task finished first.  Exceptions from any group propagate
        to the caller.
        """
        items = list(items)
        n = len(items)
        if workers <= 1 or n <= 1:
            return [fn(item) for item in items]
        groups = min(int(workers), n)
        results: list = [None] * n

        def run_group(k: int) -> None:
            for i in range(k, n, groups):
                results[i] = fn(items[i])

        # Submit under the pool lock: a concurrent close() or a
        # grow-the-pool rebuild from another caller cannot shut this
        # executor down between sizing it and handing it the groups.
        with self._pool_lock:
            pool = self._ensure_locked(groups)
            futures = [pool.submit(run_group, k) for k in range(groups)]
        for future in futures:
            future.result()
        return results

    def _ensure_locked(self, workers: int) -> ThreadPoolExecutor:
        """Size (or build) the executor; caller holds ``_pool_lock``."""
        if self._pool is None or self._size < workers:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
            self._pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-fanout"
            )
            self._size = workers
        return self._pool

    def close(self) -> None:
        """Shut the executor down (idempotent; pool rebuilds on reuse)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
                self._pool = None
                self._size = 0

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return f"FanOutPool(size={self._size})"
