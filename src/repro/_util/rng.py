"""Deterministic random-number plumbing.

The simulator is a randomized process three times over: the data stream,
the query workload, and most amnesia policies all draw random numbers.
Reproducibility of every figure therefore hinges on disciplined seeding.

This module provides :func:`spawn`, which derives *named*, statistically
independent child generators from a root seed.  Naming (rather than
positional spawning) means adding a new consumer does not perturb the
streams of existing ones — experiment results stay stable as the library
grows.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["DEFAULT_SEED", "make_rng", "spawn", "derive_seed"]

#: Seed used whenever the caller does not supply one.  Chosen arbitrarily
#: but fixed so that ad-hoc runs are reproducible too.
DEFAULT_SEED = 20170108  # CIDR 2017 opening day


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed from ``root_seed`` and ``name``.

    The derivation hashes the pair with SHA-256, so child streams are
    independent for all practical purposes and insensitive to the order
    in which they are created.

    >>> derive_seed(1, "data") == derive_seed(1, "data")
    True
    >>> derive_seed(1, "data") != derive_seed(1, "queries")
    True
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    Accepts an integer seed, an existing generator (returned unchanged),
    or ``None`` (uses :data:`DEFAULT_SEED`).  Centralising this glue
    keeps ``rng`` arguments uniform across the library.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn(root_seed: int, name: str) -> np.random.Generator:
    """Return a named child generator derived from ``root_seed``.

    >>> a = spawn(42, "data")
    >>> b = spawn(42, "data")
    >>> float(a.random()) == float(b.random())
    True
    """
    return np.random.default_rng(derive_seed(root_seed, name))
