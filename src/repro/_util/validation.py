"""Small argument-validation helpers.

These raise :class:`~repro._util.errors.ConfigError` with uniform
messages.  Using helpers instead of inline ``if`` chains keeps the
constructors of configuration objects short and the error text
consistent across the library.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TypeVar

import numpy as np

from .errors import ConfigError

__all__ = [
    "check_positive_int",
    "check_non_negative_int",
    "check_fraction",
    "check_probability",
    "check_in",
    "check_positive_float",
    "check_non_negative_float",
    "as_int_array",
]

T = TypeVar("T")


def check_positive_int(value: int, name: str) -> int:
    """Return ``value`` if it is an integer >= 1, else raise ConfigError."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ConfigError(f"{name} must be an int, got {type(value).__name__}")
    if value < 1:
        raise ConfigError(f"{name} must be >= 1, got {value}")
    return int(value)


def check_non_negative_int(value: int, name: str) -> int:
    """Return ``value`` if it is an integer >= 0, else raise ConfigError."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ConfigError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ConfigError(f"{name} must be >= 0, got {value}")
    return int(value)


def check_fraction(value: float, name: str, *, inclusive_zero: bool = False) -> float:
    """Return ``value`` if it lies in ``(0, 1]`` (or ``[0, 1]``)."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ConfigError(f"{name} must be a number, got {value!r}") from None
    low_ok = value >= 0.0 if inclusive_zero else value > 0.0
    if not (low_ok and value <= 1.0):
        bound = "[0, 1]" if inclusive_zero else "(0, 1]"
        raise ConfigError(f"{name} must be in {bound}, got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Return ``value`` if it lies in ``[0, 1]``."""
    return check_fraction(value, name, inclusive_zero=True)


def check_positive_float(value: float, name: str) -> float:
    """Return ``value`` if it is a finite number > 0."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ConfigError(f"{name} must be a number, got {value!r}") from None
    if not np.isfinite(value) or value <= 0.0:
        raise ConfigError(f"{name} must be a finite number > 0, got {value}")
    return value


def check_non_negative_float(value: float, name: str) -> float:
    """Return ``value`` if it is a finite number >= 0."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ConfigError(f"{name} must be a number, got {value!r}") from None
    if not np.isfinite(value) or value < 0.0:
        raise ConfigError(f"{name} must be a finite number >= 0, got {value}")
    return value


def check_in(value: T, options: Sequence[T], name: str) -> T:
    """Return ``value`` if it is one of ``options``."""
    if value not in options:
        rendered = ", ".join(repr(o) for o in options)
        raise ConfigError(f"{name} must be one of {rendered}, got {value!r}")
    return value


def as_int_array(values, name: str) -> np.ndarray:
    """Coerce ``values`` to a 1-D ``int64`` array, validating shape."""
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ConfigError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size and not np.issubdtype(arr.dtype, np.integer):
        if not np.issubdtype(arr.dtype, np.floating):
            raise ConfigError(f"{name} must be numeric, got dtype {arr.dtype}")
        if not np.all(arr == np.floor(arr)):
            raise ConfigError(f"{name} must contain integers only")
    return arr.astype(np.int64, copy=False)
