"""Small argument-validation helpers.

These raise :class:`~repro._util.errors.ConfigError` with uniform
messages.  Using helpers instead of inline ``if`` chains keeps the
constructors of configuration objects short and the error text
consistent across the library.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TypeVar

import numpy as np

from .errors import ConfigError, QueryError

__all__ = [
    "check_positive_int",
    "check_non_negative_int",
    "check_fraction",
    "check_probability",
    "check_in",
    "check_positive_float",
    "check_non_negative_float",
    "as_int_array",
    "checked_int64",
]

T = TypeVar("T")


def check_positive_int(value: int, name: str) -> int:
    """Return ``value`` if it is an integer >= 1, else raise ConfigError."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ConfigError(f"{name} must be an int, got {type(value).__name__}")
    if value < 1:
        raise ConfigError(f"{name} must be >= 1, got {value}")
    return int(value)


def check_non_negative_int(value: int, name: str) -> int:
    """Return ``value`` if it is an integer >= 0, else raise ConfigError."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ConfigError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ConfigError(f"{name} must be >= 0, got {value}")
    return int(value)


def check_fraction(value: float, name: str, *, inclusive_zero: bool = False) -> float:
    """Return ``value`` if it lies in ``(0, 1]`` (or ``[0, 1]``)."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ConfigError(f"{name} must be a number, got {value!r}") from None
    low_ok = value >= 0.0 if inclusive_zero else value > 0.0
    if not (low_ok and value <= 1.0):
        bound = "[0, 1]" if inclusive_zero else "(0, 1]"
        raise ConfigError(f"{name} must be in {bound}, got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Return ``value`` if it lies in ``[0, 1]``."""
    return check_fraction(value, name, inclusive_zero=True)


def check_positive_float(value: float, name: str) -> float:
    """Return ``value`` if it is a finite number > 0."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ConfigError(f"{name} must be a number, got {value!r}") from None
    if not np.isfinite(value) or value <= 0.0:
        raise ConfigError(f"{name} must be a finite number > 0, got {value}")
    return value


def check_non_negative_float(value: float, name: str) -> float:
    """Return ``value`` if it is a finite number >= 0."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ConfigError(f"{name} must be a number, got {value!r}") from None
    if not np.isfinite(value) or value < 0.0:
        raise ConfigError(f"{name} must be a finite number >= 0, got {value}")
    return value


def check_in(value: T, options: Sequence[T], name: str) -> T:
    """Return ``value`` if it is one of ``options``."""
    if value not in options:
        rendered = ", ".join(repr(o) for o in options)
        raise ConfigError(f"{name} must be one of {rendered}, got {value!r}")
    return value


def as_int_array(values, name: str) -> np.ndarray:
    """Coerce ``values`` to a 1-D ``int64`` array, validating shape."""
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ConfigError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size and not np.issubdtype(arr.dtype, np.integer):
        if not np.issubdtype(arr.dtype, np.floating):
            raise ConfigError(f"{name} must be numeric, got dtype {arr.dtype}")
        if not np.all(arr == np.floor(arr)):
            raise ConfigError(f"{name} must contain integers only")
    return arr.astype(np.int64, copy=False)


def checked_int64(values, name: str) -> np.ndarray:
    """Coerce ``values`` to a 1-D ``int64`` array, refusing lossy casts.

    The insert-path twin of :func:`as_int_array`, raising
    :class:`~repro._util.errors.QueryError` (insert is a query-surface
    operation, not configuration).  A plain ``np.asarray(values,
    dtype=np.int64)`` silently truncates ``2.7`` to ``2``, folds NaN
    and infinities into sentinel integers, and wraps out-of-range
    unsigned values — all of which corrupt data without a diagnostic.
    This cast accepts exactly the inputs that survive a round trip:

    >>> checked_int64([1, 2, 3], "v").tolist()
    [1, 2, 3]
    >>> checked_int64(np.array([2.0, 4.0]), "v").tolist()
    [2, 4]
    >>> checked_int64([2.7], "v")
    Traceback (most recent call last):
        ...
    repro._util.errors.QueryError: v cannot be cast to int64 without loss (first offender: 2.7)
    """
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise QueryError(
            f"{name} must be one-dimensional, got shape {arr.shape}"
        )
    if arr.dtype == np.int64:
        return arr
    kind = arr.dtype.kind
    if kind not in "iuf" and not (kind == "b" and arr.dtype == np.bool_):
        raise QueryError(f"{name} must be numeric, got dtype {arr.dtype}")
    if arr.size == 0:
        return arr.astype(np.int64)
    if kind == "u":
        # Round-tripping cannot catch unsigned wraparound (2**64 - 1
        # casts to -1 and back to 2**64 - 1), so bound-check instead.
        if int(arr.max()) > np.iinfo(np.int64).max:
            raise QueryError(
                f"{name} cannot be cast to int64 without loss "
                f"(first offender: {int(arr.max())})"
            )
        return arr.astype(np.int64)
    if kind == "f" and not np.all(np.isfinite(arr)):
        bad = arr[~np.isfinite(arr)][0].item()
        raise QueryError(
            f"{name} must be finite integers, got {bad!r}"
        )
    with np.errstate(invalid="ignore", over="ignore"):
        cast = arr.astype(np.int64)
        lossy = cast.astype(arr.dtype, copy=False) != arr
    if lossy.any():
        raise QueryError(
            f"{name} cannot be cast to int64 without loss "
            f"(first offender: {arr[lossy][0].item()!r})"
        )
    return cast
