"""Amnesia strategies (paper §3 and §4.4).

Temporal: fifo, uniform, retrograde, anterograde.  Query-based: rot,
overuse.  Spatial: area.  Extensions: pair-preserving, distribution-
aligned, stratified, cost-based.  Combinators: privacy retention,
weighted mixtures.
"""

from .area import AreaAmnesia
from .base import AmnesiaPolicy
from .composite import CompositeAmnesia
from .decay import EbbinghausAmnesia
from .extensions import (
    CostBasedAmnesia,
    DistributionAlignedAmnesia,
    PairPreservingAmnesia,
    StratifiedAmnesia,
)
from .privacy import PrivacyRetentionWrapper
from .registry import (
    FIGURE1_POLICIES,
    FIGURE3_POLICIES,
    POLICY_NAMES,
    make_policy,
)
from .rot import OveruseAmnesia, RotAmnesia
from .sampling import (
    uniform_sample_without_replacement,
    weighted_sample_without_replacement,
)
from .temporal import (
    AnterogradeAmnesia,
    FifoAmnesia,
    RetrogradeAmnesia,
    UniformAmnesia,
)

__all__ = [
    "AmnesiaPolicy",
    "AreaAmnesia",
    "CompositeAmnesia",
    "EbbinghausAmnesia",
    "CostBasedAmnesia",
    "DistributionAlignedAmnesia",
    "PairPreservingAmnesia",
    "StratifiedAmnesia",
    "PrivacyRetentionWrapper",
    "FIGURE1_POLICIES",
    "FIGURE3_POLICIES",
    "POLICY_NAMES",
    "make_policy",
    "OveruseAmnesia",
    "RotAmnesia",
    "uniform_sample_without_replacement",
    "weighted_sample_without_replacement",
    "AnterogradeAmnesia",
    "FifoAmnesia",
    "RetrogradeAmnesia",
    "UniformAmnesia",
]
