"""Spatially biased amnesia (paper §3.3): mold areas.

Mimics spatially correlated decay ("areas already infected with mold"):
the policy maintains up to ``K`` *areas* — contiguous intervals of the
storage space it has already forgotten — and, per victim, either starts
a new mold spot at a random active tuple or extends one of the existing
areas in a random direction:

    "keep a list of areas of forgotten tuples, say K, and set n to a
    value between 1 .. K+1.  If n = K+1, then we start new mold for a
    tuple by randomly selecting a new active starting point.  Otherwise,
    we look into the database tiling and extend the n-th area of
    forgotten tuples in either direction."

The emergent map is the paper's "uniform-fifo combination": old regions
accumulate holes (fifo-ish darkening), young regions look uniformly
speckled.
"""

from __future__ import annotations

import numpy as np

from .._util.errors import ConfigError
from ..storage.table import Table
from .base import AmnesiaPolicy

__all__ = ["AreaAmnesia"]


class _CandidateFeed:
    """Shuffled stream of selectable positions with O(1) amortised pops.

    Entries may become stale (chosen through an area walk); pops skip
    them by consulting the shared selectable mask.
    """

    def __init__(self, mask: np.ndarray, rng: np.random.Generator):
        self._mask = mask
        order = np.flatnonzero(mask)
        rng.shuffle(order)
        self._order = order
        self._cursor = 0

    def pop(self) -> int | None:
        """Next still-selectable position, or None when exhausted."""
        while self._cursor < self._order.size:
            position = int(self._order[self._cursor])
            self._cursor += 1
            if self._mask[position]:
                return position
        return None


class AreaAmnesia(AmnesiaPolicy):
    """Forget by growing up to ``max_areas`` contiguous holes.

    Parameters
    ----------
    max_areas:
        The paper's K — the size of the mold-area list.  Each victim
        starts a new mold with probability ``1/(K+1)``, so *small* K
        seeds fresh specks constantly (uniform-like speckle) while
        *large* K concentrates forgetting into a few long-lived
        contiguous holes.  Ablation A1 sweeps this knob.
    """

    name = "area"

    def __init__(self, max_areas: int = 8):
        if max_areas < 1:
            raise ConfigError(f"max_areas must be >= 1, got {max_areas}")
        self.max_areas = int(max_areas)
        # Areas are inclusive [lo, hi] position intervals, oldest first.
        self._areas: list[list[int]] = []

    def reset(self) -> None:
        self._areas = []

    @property
    def areas(self) -> list[tuple[int, int]]:
        """Current mold areas as (lo, hi) tuples (for tests/analysis)."""
        return [(lo, hi) for lo, hi in self._areas]

    # -- internals ------------------------------------------------------

    @staticmethod
    def _walk(
        mask: np.ndarray, start: int, step: int
    ) -> int | None:
        """First selectable position from ``start`` moving by ``step``."""
        position = start
        limit = mask.shape[0]
        while 0 <= position < limit:
            if mask[position]:
                return position
            position += step
        return None

    def _extend_area(
        self, area: list[int], mask: np.ndarray, rng: np.random.Generator
    ) -> int | None:
        """Try to grow ``area`` one tuple in a random direction."""
        lo, hi = area
        go_left_first = rng.random() < 0.5
        directions = [(-1, lo - 1), (1, hi + 1)]
        if not go_left_first:
            directions.reverse()
        for step, start in directions:
            victim = self._walk(mask, start, step)
            if victim is not None:
                area[0] = min(area[0], victim)
                area[1] = max(area[1], victim)
                return victim
        return None

    def select_victims(self, table, n, epoch, rng, exclude=None):
        candidates = self._candidates(table, exclude)
        self._require(candidates, n)
        if n == 0:
            return np.empty(0, dtype=np.int64)

        # Selectable = active minus exclusions; consumed as we choose.
        mask = table.active_mask().copy()
        if exclude is not None and len(exclude):
            mask[np.asarray(exclude, dtype=np.int64)] = False
        feed = _CandidateFeed(mask, rng)

        victims = np.empty(n, dtype=np.int64)
        for i in range(n):
            victim = None
            # The paper's draw: n uniform in 1..K+1 with K the list
            # capacity.  n = K+1 starts a new mold; a draw naming a
            # not-yet-existing slot bootstraps one too.
            draw = int(rng.integers(1, self.max_areas + 2))
            if draw <= len(self._areas):
                victim = self._extend_area(self._areas[draw - 1], mask, rng)
            if victim is None:
                # New-mold draw, or the chosen area is wedged against
                # other holes and cannot grow.
                victim = feed.pop()
                if victim is None:
                    # Cannot happen: _require guaranteed n candidates and
                    # each iteration consumes exactly one.
                    raise RuntimeError("area amnesia exhausted candidates")
                if len(self._areas) >= self.max_areas:
                    # The list is full: the new mold recycles the
                    # stalest slot, keeping K live growth points.
                    self._areas.pop(0)
                self._areas.append([victim, victim])
            mask[victim] = False
            victims[i] = victim
        return victims

    def __repr__(self) -> str:
        return f"AreaAmnesia(max_areas={self.max_areas})"
