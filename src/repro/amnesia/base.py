"""Amnesia policy protocol.

A policy answers one question (paper §3): *given the current table
state, which ``n`` active tuples shall be forgotten?*  The simulator
then marks those tuples inactive, restoring the DBSIZE storage budget.

Policies never mutate the table themselves — they only select.  That
separation is what lets the same policy drive different forgotten-data
dispositions (mark-only, cold storage, summaries; see
:mod:`repro.lifecycle`).

Policies may keep private state across epochs (the area policy's hole
list, rot's learned frequencies); :meth:`AmnesiaPolicy.reset` restores
the initial state so one policy object can serve several runs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from .._util.errors import AmnesiaError, InsufficientVictimsError
from ..storage.table import Table

__all__ = ["AmnesiaPolicy"]


class AmnesiaPolicy(ABC):
    """Base class for all forgetting strategies.

    Subclasses implement :meth:`select_victims` and set :attr:`name`.
    ``allows_overshoot`` marks policies that may legitimately return
    *more* than ``n`` victims (the privacy wrapper must purge every
    expired tuple even when that shrinks the database below DBSIZE).
    """

    #: Short name used in registries, figures and CLI flags.
    name: str = "abstract"

    #: Whether select_victims may return more than ``n`` victims.
    allows_overshoot: bool = False

    @abstractmethod
    def select_victims(
        self,
        table: Table,
        n: int,
        epoch: int,
        rng: np.random.Generator,
        exclude: np.ndarray | None = None,
    ) -> np.ndarray:
        """Return positions of the tuples to forget.

        Parameters
        ----------
        table:
            Current table state (activity bitmap, epochs, frequencies).
        n:
            Number of victims required — exactly ``n`` unless the
            policy ``allows_overshoot``.
        epoch:
            The epoch performing the forgetting (for age computations).
        rng:
            Policy-owned random generator.
        exclude:
            Positions that must not be selected (used by composite
            policies to combine strategies without duplicate victims).
        """

    def on_insert(
        self, table: Table, positions: np.ndarray, epoch: int
    ) -> None:
        """Hook: called after each insert batch (default: no-op)."""

    def reset(self) -> None:
        """Restore initial policy state (default: stateless no-op)."""

    # -- shared helpers ----------------------------------------------------

    def _candidates(
        self, table: Table, exclude: np.ndarray | None
    ) -> np.ndarray:
        """Active positions minus the exclusion set."""
        active = table.active_positions()
        if exclude is None or len(exclude) == 0:
            return active
        exclude = np.asarray(exclude, dtype=np.int64)
        return np.setdiff1d(active, exclude, assume_unique=False)

    def _require(self, candidates: np.ndarray, n: int) -> None:
        """Raise unless ``n`` victims can be supplied."""
        if n < 0:
            raise AmnesiaError(f"victim count must be >= 0, got {n}")
        if n > candidates.size:
            raise InsufficientVictimsError(n, int(candidates.size))

    def validate_victims(
        self, table: Table, victims: np.ndarray, n: int
    ) -> np.ndarray:
        """Check a victim set: distinct, active, and of the right size.

        The simulator calls this on every selection; policies are
        untrusted in the sense that a buggy strategy should fail loudly
        here rather than silently corrupt the storage-budget invariant.
        """
        victims = np.asarray(victims, dtype=np.int64)
        if victims.ndim != 1:
            raise AmnesiaError(f"victims must be 1-D, got shape {victims.shape}")
        if np.unique(victims).size != victims.size:
            raise AmnesiaError(f"policy {self.name!r} returned duplicate victims")
        if victims.size != n and not (self.allows_overshoot and victims.size > n):
            raise AmnesiaError(
                f"policy {self.name!r} returned {victims.size} victims, expected {n}"
            )
        if victims.size and not table.is_active(victims).all():
            raise AmnesiaError(
                f"policy {self.name!r} selected already-forgotten tuples"
            )
        return victims

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
