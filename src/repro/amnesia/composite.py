"""Policy composition: weighted mixtures of amnesia strategies.

§4.4 calls for "better application specific amnesia algorithms"; in
practice a deployment rarely wants a single pure strategy.  A
:class:`CompositeAmnesia` splits each round's victim quota across
sub-policies by weight (multinomially, so the mixture is itself a
random process), excluding already-chosen victims so the combined set
is duplicate-free.
"""

from __future__ import annotations

import numpy as np

from .._util.errors import ConfigError
from .base import AmnesiaPolicy

__all__ = ["CompositeAmnesia"]


class CompositeAmnesia(AmnesiaPolicy):
    """Weighted mixture of amnesia policies.

    >>> from repro.amnesia import FifoAmnesia, UniformAmnesia
    >>> mix = CompositeAmnesia([(0.7, RotLike := UniformAmnesia()), (0.3, FifoAmnesia())])
    >>> mix.name
    'mix(uniform:0.70,fifo:0.30)'
    """

    def __init__(self, weighted_policies):
        pairs = list(weighted_policies)
        if not pairs:
            raise ConfigError("CompositeAmnesia needs at least one policy")
        weights = np.array([w for w, _ in pairs], dtype=np.float64)
        if (weights <= 0).any():
            raise ConfigError("mixture weights must be positive")
        for _, policy in pairs:
            if policy.allows_overshoot:
                raise ConfigError(
                    "overshooting policies (privacy wrappers) must wrap the "
                    "mixture, not sit inside it"
                )
        self._policies = [p for _, p in pairs]
        self._probs = weights / weights.sum()

    @property
    def name(self) -> str:  # type: ignore[override]
        parts = ",".join(
            f"{p.name}:{w:.2f}" for p, w in zip(self._policies, self._probs)
        )
        return f"mix({parts})"

    @property
    def policies(self) -> tuple[AmnesiaPolicy, ...]:
        """The mixture components."""
        return tuple(self._policies)

    def select_victims(self, table, n, epoch, rng, exclude=None):
        candidates = self._candidates(table, exclude)
        self._require(candidates, n)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        quotas = rng.multinomial(n, self._probs)
        chosen: list[np.ndarray] = []
        running_exclude = (
            np.asarray(exclude, dtype=np.int64)
            if exclude is not None and len(exclude)
            else np.empty(0, dtype=np.int64)
        )
        for policy, quota in zip(self._policies, quotas):
            if quota == 0:
                continue
            victims = policy.select_victims(
                table, int(quota), epoch, rng, exclude=running_exclude
            )
            victims = policy.validate_victims(table, victims, int(quota))
            chosen.append(victims)
            running_exclude = np.concatenate([running_exclude, victims])
        return (
            np.concatenate(chosen) if chosen else np.empty(0, dtype=np.int64)
        )

    def on_insert(self, table, positions, epoch):
        for policy in self._policies:
            policy.on_insert(table, positions, epoch)

    def reset(self) -> None:
        for policy in self._policies:
            policy.reset()

    def __repr__(self) -> str:
        inner = ", ".join(
            f"({w:.2f}, {p!r})" for p, w in zip(self._policies, self._probs)
        )
        return f"CompositeAmnesia([{inner}])"
