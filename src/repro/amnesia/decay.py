"""Human-forgetting-curve amnesia (paper §5).

The related-work section points at "neurological inspired models of the
human short term memory system" (Freedman & Adams; Bahr & Wood) as an
"effective tool for shrinking and managing the database".  This module
implements the classic Ebbinghaus retention model as an amnesia policy:

* a tuple's *memory strength* starts at ``base_strength`` and grows by
  ``reinforcement`` with every query result it appears in (spaced
  repetition: recall strengthens the trace);
* its retention probability after ``age`` epochs is
  ``exp(-age / strength)``;
* the forgetting weight is ``1 - retention`` — old, rarely recalled
  tuples fade, while anything the workload keeps touching survives.

Compared to :class:`~repro.amnesia.rot.RotAmnesia` (pure frequency with
an age gate) the decay policy trades smoothly between recency and
frequency with two interpretable knobs, no hard threshold.
"""

from __future__ import annotations

import numpy as np

from .._util.errors import ConfigError
from .base import AmnesiaPolicy
from .sampling import weighted_sample_without_replacement

__all__ = ["EbbinghausAmnesia"]


class EbbinghausAmnesia(AmnesiaPolicy):
    """Forget along the exponential human forgetting curve.

    Parameters
    ----------
    base_strength:
        Memory strength (in epochs) of a never-accessed tuple: the age
        at which its retention drops to ``1/e``.
    reinforcement:
        Strength added per recorded access.  0 reduces the policy to a
        purely temporal exponential-decay strategy.

    >>> policy = EbbinghausAmnesia(base_strength=2.0, reinforcement=1.0)
    >>> policy.name
    'ebbinghaus'
    """

    name = "ebbinghaus"

    def __init__(self, base_strength: float = 2.0, reinforcement: float = 1.0):
        if base_strength <= 0:
            raise ConfigError(
                f"base_strength must be > 0, got {base_strength}"
            )
        if reinforcement < 0:
            raise ConfigError(
                f"reinforcement must be >= 0, got {reinforcement}"
            )
        self.base_strength = float(base_strength)
        self.reinforcement = float(reinforcement)

    def retention(self, table, positions: np.ndarray, epoch: int) -> np.ndarray:
        """Retention probability of each tuple at ``epoch`` (for analysis)."""
        positions = np.asarray(positions, dtype=np.int64)
        ages = (epoch - table.insert_epochs()[positions]).astype(np.float64)
        ages = np.maximum(ages, 0.0)
        strength = (
            self.base_strength
            + self.reinforcement * table.access_counts()[positions]
        )
        return np.exp(-ages / strength)

    def select_victims(self, table, n, epoch, rng, exclude=None):
        candidates = self._candidates(table, exclude)
        self._require(candidates, n)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        weights = 1.0 - self.retention(table, candidates, epoch)
        return weighted_sample_without_replacement(candidates, weights, n, rng)

    def __repr__(self) -> str:
        return (
            f"EbbinghausAmnesia(base_strength={self.base_strength}, "
            f"reinforcement={self.reinforcement})"
        )
