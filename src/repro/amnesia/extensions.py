"""§4.4 extension policies: semantics-aware amnesia.

The paper closes its evaluation sketching smarter strategies; this
module implements them:

* :class:`PairPreservingAmnesia` — "the average query could be used to
  identify pairs of tuples to be forgotten instead of a single one.  It
  would retain the precision as long as possible."  Victims are chosen
  as antipodal *pairs* around the active mean, so the running AVG is
  almost unchanged by forgetting.
* :class:`DistributionAlignedAmnesia` — "we attempt to forget tuples
  that do not change the data distribution for all active records",
  i.e. keep the active histogram aligned with the all-time (oracle)
  histogram, the objective of self-tuning database samples (ICICLES).
* :class:`StratifiedAmnesia` — coverage-first variant: level the active
  population across value strata, so every region of the domain keeps
  witnesses (good for range queries at any location).
* :class:`CostBasedAmnesia` — "giving preference to ditching tuples
  that cause an explosion in either processing time or intermediate
  storage requirements"; the default cost signal is the tuple's result-
  set participation (its access count).
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from .._util.errors import ConfigError
from ..stats.histograms import EquiWidthHistogram
from ..storage.table import Table
from .base import AmnesiaPolicy
from .sampling import (
    uniform_sample_without_replacement,
    weighted_sample_without_replacement,
)

__all__ = [
    "PairPreservingAmnesia",
    "DistributionAlignedAmnesia",
    "StratifiedAmnesia",
    "CostBasedAmnesia",
]


class PairPreservingAmnesia(AmnesiaPolicy):
    """Forget antipodal pairs around the mean to preserve AVG.

    "If you are only interested in the average value over a series of
    observations, then you can safely drop two tuples that together do
    not affect the average measured" (§1).

    Victim pairs are formed by sorting candidates by value and matching
    the i-th smallest with the i-th largest; the ``n // 2`` pairs whose
    sums are closest to twice the active mean are forgotten.  For odd
    ``n`` the single extra victim is the tuple whose value is nearest
    the mean (removing it perturbs the mean least).
    """

    name = "pair"

    def __init__(self, column: str):
        if not column:
            raise ConfigError("pair-preserving amnesia needs a column name")
        self.column = column

    def select_victims(self, table, n, epoch, rng, exclude=None):
        candidates = self._candidates(table, exclude)
        self._require(candidates, n)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        values = table.values(self.column)[candidates].astype(np.float64)
        mean = values.mean()
        order = np.argsort(values, kind="stable")
        sorted_candidates = candidates[order]
        sorted_values = values[order]

        m = candidates.size
        n_pairs = n // 2
        half = m // 2
        lows = np.arange(half)
        highs = m - 1 - lows
        pair_errors = np.abs(sorted_values[lows] + sorted_values[highs] - 2.0 * mean)
        best = np.argsort(pair_errors, kind="stable")[:n_pairs]

        chosen = np.concatenate(
            [sorted_candidates[lows[best]], sorted_candidates[highs[best]]]
        )
        if n % 2 == 1:
            taken = np.zeros(m, dtype=bool)
            taken[lows[best]] = True
            taken[highs[best]] = True
            remaining = np.flatnonzero(~taken)
            centre = remaining[
                np.argmin(np.abs(sorted_values[remaining] - mean))
            ]
            chosen = np.append(chosen, sorted_candidates[centre])
        return chosen

    def __repr__(self) -> str:
        return f"PairPreservingAmnesia(column={self.column!r})"


def _per_bin_quota(
    active_counts: np.ndarray, excess: np.ndarray, n: int
) -> np.ndarray:
    """Integer removals per bin: follow ``excess`` but cap at bin counts.

    Starts from the clipped floor of the real-valued excess and then
    corrects the total one unit at a time, preferring bins whose
    remaining excess is largest (or smallest, when over-allocated).
    """
    quota = np.minimum(np.floor(np.clip(excess, 0.0, None)), active_counts)
    quota = quota.astype(np.int64)
    diff = n - int(quota.sum())
    while diff > 0:
        headroom = active_counts - quota
        candidates = np.flatnonzero(headroom > 0)
        best = candidates[np.argmax((excess - quota)[candidates])]
        quota[best] += 1
        diff -= 1
    while diff < 0:
        candidates = np.flatnonzero(quota > 0)
        worst = candidates[np.argmin((excess - quota)[candidates])]
        quota[worst] -= 1
        diff += 1
    return quota


class DistributionAlignedAmnesia(AmnesiaPolicy):
    """Keep the active value distribution aligned with the oracle's.

    Builds equi-width histograms of (a) every value ever inserted (the
    evolving "distribution of present and past", §4.4) and (b) the
    currently active values, then removes from each bin so that the
    post-forgetting active histogram is as close as possible to the
    oracle's shape.  Within a bin victims are drawn uniformly.
    """

    name = "dist"

    def __init__(self, column: str, bins: int = 64):
        if not column:
            raise ConfigError("distribution-aligned amnesia needs a column name")
        if bins < 1:
            raise ConfigError(f"bins must be >= 1, got {bins}")
        self.column = column
        self.bins = int(bins)

    def select_victims(self, table, n, epoch, rng, exclude=None):
        candidates = self._candidates(table, exclude)
        self._require(candidates, n)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        all_values = table.values(self.column)
        lo = int(all_values.min())
        hi = int(all_values.max())
        oracle = EquiWidthHistogram.from_values(all_values, lo, hi, bins=self.bins)
        candidate_values = all_values[candidates]
        bin_ids = oracle.bin_of(candidate_values)
        active_counts = np.bincount(bin_ids, minlength=self.bins)

        target = oracle.pmf() * (candidates.size - n)
        excess = active_counts - target
        quota = _per_bin_quota(active_counts, excess, n)

        victims = []
        for b in np.flatnonzero(quota):
            members = candidates[bin_ids == b]
            victims.append(
                uniform_sample_without_replacement(members, int(quota[b]), rng)
            )
        return np.concatenate(victims) if victims else np.empty(0, dtype=np.int64)

    def __repr__(self) -> str:
        return f"DistributionAlignedAmnesia(column={self.column!r}, bins={self.bins})"


class StratifiedAmnesia(AmnesiaPolicy):
    """Level the active population across value strata.

    Removes from the most populated bins first (water-filling), driving
    the active histogram toward a flat profile.  Where the distribution-
    aligned policy mirrors the data's shape, this one maximises *domain
    coverage* — every value region keeps roughly equally many witnesses,
    which favours uniformly located range queries.
    """

    name = "stratified"

    def __init__(self, column: str, bins: int = 64):
        if not column:
            raise ConfigError("stratified amnesia needs a column name")
        if bins < 1:
            raise ConfigError(f"bins must be >= 1, got {bins}")
        self.column = column
        self.bins = int(bins)

    def select_victims(self, table, n, epoch, rng, exclude=None):
        candidates = self._candidates(table, exclude)
        self._require(candidates, n)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        all_values = table.values(self.column)
        lo = int(all_values.min())
        hi = int(all_values.max())
        grid = EquiWidthHistogram(lo, hi, bins=self.bins)
        bin_ids = grid.bin_of(all_values[candidates])
        active_counts = np.bincount(bin_ids, minlength=self.bins)

        # Water-filling: find the level L such that removing down to L
        # from every over-full bin yields exactly n removals.
        counts = active_counts.astype(np.float64)
        level_lo, level_hi = 0.0, float(counts.max())
        for _ in range(64):
            mid = 0.5 * (level_lo + level_hi)
            removed = np.clip(counts - mid, 0.0, None).sum()
            if removed > n:
                level_lo = mid
            else:
                level_hi = mid
        excess = counts - level_hi
        quota = _per_bin_quota(active_counts, excess, n)

        victims = []
        for b in np.flatnonzero(quota):
            members = candidates[bin_ids == b]
            victims.append(
                uniform_sample_without_replacement(members, int(quota[b]), rng)
            )
        return np.concatenate(victims) if victims else np.empty(0, dtype=np.int64)

    def __repr__(self) -> str:
        return f"StratifiedAmnesia(column={self.column!r}, bins={self.bins})"


class CostBasedAmnesia(AmnesiaPolicy):
    """Forget the tuples that cost the most to keep processing.

    ``cost_fn(table, candidates)`` must return a non-negative cost per
    candidate; forgetting probability is proportional to it.  The
    default uses the access counter: a tuple that participates in many
    result sets inflates intermediate results everywhere it appears.
    """

    name = "cost"

    def __init__(
        self,
        cost_fn: Callable[[Table, np.ndarray], np.ndarray] | None = None,
    ):
        self.cost_fn = cost_fn

    def _costs(self, table: Table, candidates: np.ndarray) -> np.ndarray:
        if self.cost_fn is not None:
            costs = np.asarray(self.cost_fn(table, candidates), dtype=np.float64)
            if costs.shape != candidates.shape:
                raise ConfigError(
                    "cost_fn must return one cost per candidate"
                )
            return costs
        return table.access_counts()[candidates].astype(np.float64)

    def select_victims(self, table, n, epoch, rng, exclude=None):
        candidates = self._candidates(table, exclude)
        self._require(candidates, n)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        costs = self._costs(table, candidates)
        if (costs < 0).any():
            raise ConfigError("tuple costs must be non-negative")
        return weighted_sample_without_replacement(candidates, costs, n, rng)

    def __repr__(self) -> str:
        return f"CostBasedAmnesia(cost_fn={self.cost_fn!r})"
