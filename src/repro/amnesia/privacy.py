"""Privacy-driven retention limits.

"Evidently, observations that are constrained by a Data Privacy Act
should be forgotten within the legally defined time frame" (§1).

:class:`PrivacyRetentionWrapper` turns that legal constraint into a
policy combinator: every tuple older than ``max_age_epochs`` *must* be
forgotten this round — even if that overshoots the storage budget — and
only the remaining quota is delegated to the wrapped strategy.
"""

from __future__ import annotations

import numpy as np

from .._util.errors import ConfigError
from .base import AmnesiaPolicy

__all__ = ["PrivacyRetentionWrapper"]


class PrivacyRetentionWrapper(AmnesiaPolicy):
    """Hard retention ceiling composed with an inner policy.

    Parameters
    ----------
    inner:
        The discretionary policy that fills the quota once all expired
        tuples are accounted for.
    max_age_epochs:
        Legal retention period: a tuple inserted at epoch ``e`` must be
        gone once the current epoch reaches ``e + max_age_epochs``.

    Because the law wins over the storage budget, this wrapper
    ``allows_overshoot``: if more tuples expired than the quota asks
    for, all of them are returned and the database temporarily shrinks
    below DBSIZE.
    """

    allows_overshoot = True

    def __init__(self, inner: AmnesiaPolicy, max_age_epochs: int):
        if max_age_epochs < 1:
            raise ConfigError(
                f"max_age_epochs must be >= 1, got {max_age_epochs}"
            )
        self.inner = inner
        self.max_age_epochs = int(max_age_epochs)

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"privacy({self.inner.name})"

    def expired(self, table, epoch: int) -> np.ndarray:
        """Active positions whose legal retention has lapsed."""
        active = table.active_positions()
        ages = epoch - table.insert_epochs()[active]
        return active[ages >= self.max_age_epochs]

    def select_victims(self, table, n, epoch, rng, exclude=None):
        expired = self.expired(table, epoch)
        if exclude is not None and len(exclude):
            expired = np.setdiff1d(expired, np.asarray(exclude, dtype=np.int64))
        if expired.size >= n:
            # The law forgets more than the budget asked for.
            return expired
        remaining = n - expired.size
        merged_exclude = expired
        if exclude is not None and len(exclude):
            merged_exclude = np.union1d(expired, np.asarray(exclude, dtype=np.int64))
        discretionary = self.inner.select_victims(
            table, remaining, epoch, rng, exclude=merged_exclude
        )
        return np.concatenate([expired, np.asarray(discretionary, dtype=np.int64)])

    def on_insert(self, table, positions, epoch):
        self.inner.on_insert(table, positions, epoch)

    def reset(self) -> None:
        self.inner.reset()

    def __repr__(self) -> str:
        return (
            f"PrivacyRetentionWrapper(inner={self.inner!r}, "
            f"max_age_epochs={self.max_age_epochs})"
        )
