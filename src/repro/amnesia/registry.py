"""Policy registry: build amnesia strategies by short name.

The experiment harness, the CLI and the benchmarks all refer to
policies by the names the paper uses in its figure legends (``fifo``,
``uniform``, ``ante``, ``rot``, ``area`` ...).  The registry maps those
names to constructors and forwards keyword arguments, so parameter
sweeps stay one-liners.
"""

from __future__ import annotations

from .._util.errors import ConfigError
from .area import AreaAmnesia
from .base import AmnesiaPolicy
from .decay import EbbinghausAmnesia
from .extensions import (
    CostBasedAmnesia,
    DistributionAlignedAmnesia,
    PairPreservingAmnesia,
    StratifiedAmnesia,
)
from .rot import OveruseAmnesia, RotAmnesia
from .temporal import (
    AnterogradeAmnesia,
    FifoAmnesia,
    RetrogradeAmnesia,
    UniformAmnesia,
)

__all__ = ["POLICY_NAMES", "FIGURE1_POLICIES", "FIGURE3_POLICIES", "make_policy"]

_FACTORIES = {
    "fifo": FifoAmnesia,
    "uniform": UniformAmnesia,
    "retro": RetrogradeAmnesia,
    "ante": AnterogradeAmnesia,
    "rot": RotAmnesia,
    "overuse": OveruseAmnesia,
    "area": AreaAmnesia,
    "ebbinghaus": EbbinghausAmnesia,
    "pair": PairPreservingAmnesia,
    "dist": DistributionAlignedAmnesia,
    "stratified": StratifiedAmnesia,
    "cost": CostBasedAmnesia,
}

#: Names accepted by :func:`make_policy`.
POLICY_NAMES = tuple(_FACTORIES)

#: The strategies shown in the paper's Figure 1 (rot is Figure 2).
FIGURE1_POLICIES = ("fifo", "uniform", "ante", "area")

#: The strategies compared in Figure 3.
FIGURE3_POLICIES = ("fifo", "uniform", "ante", "rot", "area")


def make_policy(name: str, **kwargs) -> AmnesiaPolicy:
    """Construct a policy by short name.

    >>> make_policy("fifo").name
    'fifo'
    >>> make_policy("rot", high_water_mark=2).high_water_mark
    2
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown amnesia policy {name!r}; choose from {POLICY_NAMES}"
        ) from None
    return factory(**kwargs)
