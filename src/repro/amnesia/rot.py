"""Query-based amnesia (paper §3.2): rot and overuse.

These policies learn from the query workload.  The executor bumps a
per-tuple access counter whenever a tuple appears in a result set; the
policies convert that frequency into forgetting probabilities:

* :class:`RotAmnesia` — "a tuple that appears often in a query result
  might be considered more important and should not be forgotten
  easily."  Rarely accessed tuples rot away — but only once they have
  "been part of the database long enough" (the high-water mark), which
  prevents the policy from collapsing into anterograde amnesia by
  eating fresh tuples that simply haven't had a chance to be queried.
* :class:`OveruseAmnesia` — the §3.2 counter-policy: data that has been
  consumed "too many times" has served its purpose and is dropped in
  favour of uncurated observations.
"""

from __future__ import annotations

import numpy as np

from .._util.errors import ConfigError
from ..storage.table import Table
from .base import AmnesiaPolicy
from .sampling import weighted_sample_without_replacement

__all__ = ["RotAmnesia", "OveruseAmnesia"]


class RotAmnesia(AmnesiaPolicy):
    """Forget infrequently accessed tuples past a freshness water mark.

    Parameters
    ----------
    high_water_mark:
        Minimum age (in epochs) before a tuple becomes a rot candidate.
        With ``high_water_mark = 1`` (default) the tuples inserted in
        the current epoch are protected for one round.  If protecting
        young tuples leaves fewer candidates than victims are needed,
        the age gate is relaxed (youngest last) rather than failing.
    frequency_exponent:
        Strength of the frequency shield: the forgetting weight of a
        tuple accessed ``f`` times is ``1 / (1 + f) ** frequency_exponent``.
        0 degrades to uniform-over-candidates; larger values protect hot
        tuples more aggressively.
    """

    name = "rot"

    def __init__(self, high_water_mark: int = 1, frequency_exponent: float = 1.0):
        if high_water_mark < 0:
            raise ConfigError(
                f"high_water_mark must be >= 0, got {high_water_mark}"
            )
        if frequency_exponent < 0:
            raise ConfigError(
                f"frequency_exponent must be >= 0, got {frequency_exponent}"
            )
        self.high_water_mark = int(high_water_mark)
        self.frequency_exponent = float(frequency_exponent)

    def _weights(self, table: Table, candidates: np.ndarray) -> np.ndarray:
        freq = table.access_counts()[candidates].astype(np.float64)
        return (1.0 + freq) ** (-self.frequency_exponent)

    def select_victims(self, table, n, epoch, rng, exclude=None):
        candidates = self._candidates(table, exclude)
        self._require(candidates, n)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        ages = epoch - table.insert_epochs()[candidates]
        seasoned = candidates[ages >= self.high_water_mark]
        if seasoned.size >= n:
            pool = seasoned
        else:
            # Not enough seasoned tuples: take them all and fill the
            # remainder from the freshest candidates, oldest first.
            fresh = candidates[ages < self.high_water_mark]
            fresh_ages = epoch - table.insert_epochs()[fresh]
            fresh = fresh[np.argsort(-fresh_ages, kind="stable")]
            needed = n - seasoned.size
            pool = np.concatenate([seasoned, fresh[:needed]])
        weights = self._weights(table, pool)
        return weighted_sample_without_replacement(pool, weights, n, rng)

    def __repr__(self) -> str:
        return (
            f"RotAmnesia(high_water_mark={self.high_water_mark}, "
            f"frequency_exponent={self.frequency_exponent})"
        )


class OveruseAmnesia(AmnesiaPolicy):
    """Forget tuples that appeared in too many results.

    "No data should continue to appear in a result set, if that data
    has not been curated, analyzed, or consumed in any other way"
    (§3.2).  The forgetting weight of a tuple accessed ``f`` times is
    ``(1 + f) ** overuse_exponent``, so heavily consumed tuples are
    retired first and never-touched observations are maximally
    protected.
    """

    name = "overuse"

    def __init__(self, overuse_exponent: float = 1.0):
        if overuse_exponent < 0:
            raise ConfigError(
                f"overuse_exponent must be >= 0, got {overuse_exponent}"
            )
        self.overuse_exponent = float(overuse_exponent)

    def select_victims(self, table, n, epoch, rng, exclude=None):
        candidates = self._candidates(table, exclude)
        self._require(candidates, n)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        freq = table.access_counts()[candidates].astype(np.float64)
        weights = (1.0 + freq) ** self.overuse_exponent
        return weighted_sample_without_replacement(candidates, weights, n, rng)

    def __repr__(self) -> str:
        return f"OveruseAmnesia(overuse_exponent={self.overuse_exponent})"
