"""Sampling kernels shared by the randomized amnesia policies.

The central primitive is weighted sampling *without* replacement — every
randomized policy ("uniform", "anterograde", "rot", ...) reduces to
"draw n distinct victims from the active set with probability
proportional to a per-tuple weight".

The implementation uses the Efraimidis–Spirakis exponential-key trick:
draw ``k_i = Exp(1) / w_i`` and keep the ``n`` smallest keys.  This is
vectorised, O(m log n) via argpartition, and exactly equivalent to
sequential weighted draws without replacement.
"""

from __future__ import annotations

import numpy as np

from .._util.errors import AmnesiaError

__all__ = ["weighted_sample_without_replacement", "uniform_sample_without_replacement"]


def uniform_sample_without_replacement(
    candidates: np.ndarray, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``n`` distinct entries of ``candidates`` uniformly."""
    candidates = np.asarray(candidates, dtype=np.int64)
    if n < 0:
        raise AmnesiaError(f"cannot sample a negative count {n}")
    if n > candidates.size:
        raise AmnesiaError(
            f"cannot sample {n} victims from {candidates.size} candidates"
        )
    if n == 0:
        return np.empty(0, dtype=np.int64)
    return rng.choice(candidates, size=n, replace=False)


def weighted_sample_without_replacement(
    candidates: np.ndarray,
    weights: np.ndarray,
    n: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``n`` distinct candidates with probability ∝ ``weights``.

    Weights must be non-negative; zero-weight candidates are drawn only
    if the positive-weight pool is exhausted (they then fill the quota
    uniformly, which keeps the policy total-function even for degenerate
    weight vectors such as "every tuple has frequency 0").

    >>> rng = np.random.default_rng(0)
    >>> cands = np.arange(4)
    >>> w = np.array([0.0, 0.0, 1.0, 1.0])
    >>> sorted(weighted_sample_without_replacement(cands, w, 2, rng).tolist())
    [2, 3]
    """
    candidates = np.asarray(candidates, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.float64)
    if candidates.shape != weights.shape or candidates.ndim != 1:
        raise AmnesiaError(
            f"candidates {candidates.shape} and weights {weights.shape} "
            "must be equal-length 1-D arrays"
        )
    if n < 0:
        raise AmnesiaError(f"cannot sample a negative count {n}")
    if n > candidates.size:
        raise AmnesiaError(
            f"cannot sample {n} victims from {candidates.size} candidates"
        )
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if not np.isfinite(weights).all() or (weights < 0).any():
        raise AmnesiaError("weights must be finite and non-negative")

    positive = weights > 0
    n_positive = int(np.count_nonzero(positive))

    if n_positive == 0:
        return uniform_sample_without_replacement(candidates, n, rng)

    take_weighted = min(n, n_positive)
    pool = candidates[positive]
    pool_weights = weights[positive]
    # Efraimidis–Spirakis: smallest Exp(1)/w keys win.
    keys = rng.exponential(1.0, size=pool.size) / pool_weights
    if take_weighted == pool.size:
        chosen = pool
    else:
        idx = np.argpartition(keys, take_weighted - 1)[:take_weighted]
        chosen = pool[idx]

    if take_weighted == n:
        return chosen
    # Quota exceeds the positive-weight pool: fill uniformly from the rest.
    remainder = uniform_sample_without_replacement(
        candidates[~positive], n - take_weighted, rng
    )
    return np.concatenate([chosen, remainder])
