"""Temporally biased amnesia (paper §3.1).

Four strategies keyed on *when* a tuple arrived:

* :class:`FifoAmnesia` — a sliding buffer over the timeline: the oldest
  active tuples are forgotten deterministically.  The streaming-database
  scenario, and the extreme case of retrograde amnesia.
* :class:`UniformAmnesia` — every active tuple is equally likely to be
  forgotten at each round (reservoir-sampling-like); the paper's
  "easy to understand baseline".  Old tuples have survived more rounds,
  so the map still brightens toward the present.
* :class:`RetrogradeAmnesia` — "can't recall old memories": forgetting
  probability grows with age (a randomized softening of FIFO).
* :class:`AnterogradeAmnesia` — "can not accumulate new memories":
  recently added tuples are preferentially forgotten, so the initial
  database survives and updates are eaten oldest-update-first, opening
  the paper's "black hole" over the update timeline.
"""

from __future__ import annotations

import numpy as np

from .._util.errors import ConfigError
from ..storage.table import Table
from .base import AmnesiaPolicy
from .sampling import (
    uniform_sample_without_replacement,
    weighted_sample_without_replacement,
)

__all__ = [
    "FifoAmnesia",
    "UniformAmnesia",
    "RetrogradeAmnesia",
    "AnterogradeAmnesia",
]


class FifoAmnesia(AmnesiaPolicy):
    """Forget the oldest active tuples, deterministically.

    Row positions are assigned in insertion order, so "oldest" is simply
    "lowest position".  The active set is always the suffix of the
    timeline — exactly the paper's sliding stream buffer.
    """

    name = "fifo"

    def select_victims(self, table, n, epoch, rng, exclude=None):
        candidates = self._candidates(table, exclude)
        self._require(candidates, n)
        # Candidates are ascending by construction: take the head.
        return candidates[:n]


class UniformAmnesia(AmnesiaPolicy):
    """Forget uniformly at random among active tuples.

    "At any round of amnesia, a tuple has the same probability to be
    forgotten, but older tuples have been a candidate to be forgotten
    multiple times" (§3.1) — the geometric brightening of Figure 1's
    second band emerges from repetition, not from the per-round weights.
    """

    name = "uniform"

    def select_victims(self, table, n, epoch, rng, exclude=None):
        candidates = self._candidates(table, exclude)
        self._require(candidates, n)
        return uniform_sample_without_replacement(candidates, n, rng)


class _AgeBiasedAmnesia(AmnesiaPolicy):
    """Shared machinery: forgetting probability as a power of timeline rank.

    Each active tuple gets weight ``((rank + 1) / m) ** bias`` where
    ``rank`` orders candidates oldest→newest (retrograde) or
    newest→oldest (anterograde) and ``m`` is the candidate count.  A
    larger ``bias`` concentrates forgetting harder on the targeted end;
    ``bias = 0`` degrades to uniform amnesia.
    """

    #: Which end of the timeline the weight favours.
    _newest_heavy: bool = False

    def __init__(self, bias: float = 4.0):
        if bias < 0:
            raise ConfigError(f"bias must be >= 0, got {bias}")
        self.bias = float(bias)

    def _weights(self, candidates: np.ndarray) -> np.ndarray:
        m = candidates.size
        ranks = np.arange(1, m + 1, dtype=np.float64)
        if not self._newest_heavy:
            # Candidates ascend by position: rank 1 = oldest.  Weight
            # must peak at the oldest, so flip the ranks.
            ranks = ranks[::-1]
        return (ranks / m) ** self.bias

    def select_victims(self, table, n, epoch, rng, exclude=None):
        candidates = self._candidates(table, exclude)
        self._require(candidates, n)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        weights = self._weights(candidates)
        return weighted_sample_without_replacement(candidates, weights, n, rng)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(bias={self.bias})"


class RetrogradeAmnesia(_AgeBiasedAmnesia):
    """Old memories fade: forgetting probability grows with tuple age.

    ``bias → ∞`` approaches FIFO; the default ``bias = 4`` keeps a
    visible random fringe around the sliding window.
    """

    name = "retro"
    _newest_heavy = False


class AnterogradeAmnesia(_AgeBiasedAmnesia):
    """New memories don't stick: recent tuples are forgotten first.

    "This strategy prioritizes historical data, and a new piece of
    information is only remembered if it appears too often" (§3.1).
    With the default ``bias = 6`` most of each fresh update batch is
    forgotten within its first rounds, and surviving update tuples keep
    facing elevated risk while they remain among the newest —
    reproducing Figure 1's bright initial cohort ("retains most of the
    data at point 0"), black hole over the oldest updates, and
    partially bright tail.
    """

    name = "ante"
    _newest_heavy = True

    def __init__(self, bias: float = 6.0):
        super().__init__(bias=bias)
