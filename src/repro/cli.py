"""Command-line experiment harness.

Usage::

    python -m repro list                 # show the experiment index
    python -m repro run F1               # reproduce one experiment
    python -m repro run all              # reproduce everything
    python -m repro run F3 --seed 7      # override the root seed
    python -m repro run F3 --plan scan   # force the query access path
    python -m repro run F3 --stats hist  # histogram-backed estimates
    python -m repro run F3 --compress on # compressed cold cohorts
    python -m repro run F3 --checkpoint /tmp/ckpt.npz   # per-epoch saves
    python -m repro run F3 --faults "checkpoint.tmp:crash@2"  # injection
    python -m repro recover /tmp/ckpt.npz               # verify/restore

Every experiment prints the same rows/series the paper's figures and
tables report, rendered as ASCII heat maps, line charts and tables.
Exit codes: 0 success, 1 recovery failure, 2 bad usage, 3 an injected
crash fault fired (the run stopped exactly where the plan said).
"""

from __future__ import annotations

import argparse
import os
import sys

from ._util.errors import ConfigError, QueryError, StorageError
from .core.config import (
    COMPRESS_MODES,
    REBALANCE_POLICIES,
    STATS_MODES,
    default_batch_size,
    default_checkpoint,
    default_compress,
    default_cross_query,
    default_faults,
    default_plan,
    default_rebalance,
    default_stats,
    default_workers,
    set_default_batch_size,
    set_default_checkpoint,
    set_default_compress,
    set_default_cross_query,
    set_default_faults,
    set_default_plan,
    set_default_rebalance,
    set_default_stats,
    set_default_workers,
)
from .experiments import EXPERIMENTS
from .faults import FaultInjected, parse_fault_plan
from .query.planner import PLAN_MODES
from .query.plans import parse_query_spec

__all__ = ["main", "build_parser"]

_DESCRIPTIONS = {
    "F1": "Figure 1 — database amnesia map after 10 update batches",
    "F2": "Figure 2 — database rot map per data distribution",
    "F3": "Figure 3 — range query precision over the timeline",
    "T1": "§4.2 — low vs high update volatility",
    "T2": "§4.3 — aggregate (AVG) precision over a longer run",
    "T3": "§4.2 — selectivity factor sweep",
    "A1": "ablation — area policy hole count K",
    "A2": "ablation — rot high-water mark / frequency shield",
    "A2b": "ablation — anterograde recency bias",
    "A3": "§4.4 — pair-preserving amnesia vs baselines",
    "A4": "§4.4 — distribution-aligned amnesia drift",
    "C1": "§1 — storage economics of forgetting (Glacier model)",
    "C2": "§4.4 — compression postpones forgetting",
    "I1": "§1 — stop-indexing and summary disposition mechanics",
    "X1": "extension — human-forgetting-curve (Ebbinghaus) amnesia",
    "X2": "extension — adaptive partition budgets",
    "X3": "extension — referential integrity (restrict/cascade)",
    "X4": "extension — histogram micro-model summaries",
    "X5": "extension — cross-table union/join over forgetting streams",
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-amnesia",
        description=(
            "Reproduction harness for 'A Database System with Amnesia' "
            "(CIDR 2017)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument(
        "experiment",
        help=f"experiment id ({', '.join(EXPERIMENTS)}) or 'all'",
    )
    run.add_argument(
        "--seed", type=int, default=None, help="override the root seed"
    )
    run.add_argument(
        "--plan",
        choices=PLAN_MODES,
        default=None,
        help=(
            "query access-path mode for every simulator the experiment "
            "builds (default: auto; 'cost' picks paths from cardinality "
            "estimates; results are identical across modes)"
        ),
    )
    run.add_argument(
        "--stats",
        choices=STATS_MODES,
        default=None,
        help=(
            "cardinality-statistics source for every planner the "
            "experiment builds (default: uniform = per-cohort "
            "uniformity; 'hist' maintains per-column value histograms "
            "so estimates track skewed streams and adaptive shard "
            "splits cut at the traffic-weighted median; results are "
            "identical under either source)"
        ),
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "shard fan-out width for partitioned stores the experiment "
            "builds (default: 1 = sequential; results are identical at "
            "any width)"
        ),
    )
    run.add_argument(
        "--rebalance",
        choices=REBALANCE_POLICIES,
        default=None,
        help=(
            "traffic signal for partition rebalancing (default: hits; "
            "'rows' weighs queries by matched rows, 'adaptive' also "
            "splits hot shard boundaries and merges cold ones)"
        ),
    )
    run.add_argument(
        "--query",
        default=None,
        metavar="union:...|join:...",
        help=(
            "cross-table query spec for catalog-backed experiments "
            "(X5): 'union:s1,s2' concatenates per-sensor streams, "
            "'join:s1,s2:on=value' (or on=epoch) equi-joins them; "
            "optional low=/high= bound the scans "
            f"(default: {default_cross_query()!r})"
        ),
    )
    run.add_argument(
        "--batch-size",
        type=int,
        default=None,
        dest="batch_size",
        help=(
            "row-batch size for the streaming vectorized execution "
            "layer (batch iterators and streamed aggregates; default: "
            f"{default_batch_size()}; results are identical at any "
            "size — only the peak working set changes)"
        ),
    )
    run.add_argument(
        "--compress",
        choices=COMPRESS_MODES,
        default=None,
        help=(
            "compressed-execution mode for every store the experiment "
            "builds (default: off; 'on' demotes cold cohorts into "
            "best-codec compressed blocks and evaluates range "
            "predicates directly on the encoded form; results are "
            "identical under either mode)"
        ),
    )
    run.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help=(
            "checkpoint the simulator's table to PATH (atomically, "
            "with .prev rotation) after the initial load and after "
            "every epoch; 'repro recover PATH' restores the newest "
            "fully-valid snapshot"
        ),
    )
    run.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help=(
            "arm deterministic fault injection for the run (falls back "
            "to the REPRO_FAULTS env var): semicolon-separated "
            "'point:crash[@N]' / 'point:delay=S' / 'point:flaky=P' "
            "entries plus an optional 'seed=N'; e.g. "
            "'checkpoint.tmp:crash@2'.  An injected crash exits with "
            "code 3"
        ),
    )

    recover = sub.add_parser(
        "recover",
        help="restore (and verify) the newest valid checkpoint at PATH",
    )
    recover.add_argument(
        "path",
        help=(
            "checkpoint path as given to --checkpoint / save_store; "
            "PATH.prev is tried when PATH itself is torn or corrupt"
        ),
    )
    recover.add_argument(
        "--policy",
        default=None,
        metavar="NAME",
        help=(
            "amnesia policy to rebuild for database/sharded/catalog "
            "checkpoints (policies are rebuilt, not serialized); plain "
            "table checkpoints need none"
        ),
    )

    serve = sub.add_parser(
        "serve",
        help="serve a demo catalog over HTTP (multi-tenant, cached)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8080,
        help="TCP port to listen on (0 binds an ephemeral port)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="address to bind (default: loopback)"
    )
    serve.add_argument(
        "--plan",
        choices=PLAN_MODES,
        default="cost",
        help="access-path mode for the served catalog (default: cost)",
    )
    serve.add_argument(
        "--stats",
        choices=STATS_MODES,
        default="hist",
        help="statistics source for the served catalog (default: hist)",
    )
    serve.add_argument(
        "--rows",
        type=int,
        default=100_000,
        help="rows preloaded into the demo table (default: 100000)",
    )
    serve.add_argument(
        "--seed", type=int, default=20170108, help="demo-data seed"
    )
    serve.add_argument(
        "--lifetime",
        type=float,
        default=0.0,
        help=(
            "seconds to serve before shutting down cleanly "
            "(0 = serve until interrupted; smoke tests use a bound)"
        ),
    )
    return parser


def _run_serve(args, out) -> int:
    """Stand the demo catalog up behind the HTTP service.

    Two tenants over one shared table: ``alice`` sees everything,
    ``bob`` is clamped to the lower half of the value domain — the
    smallest setup that exercises sessions, scoping and both caches.
    """
    import numpy as np

    from .serving import QueryService, serve_in_thread
    from .storage import Catalog

    if args.rows < 1:
        print(f"--rows must be >= 1, got {args.rows}", file=sys.stderr)
        return 2
    rng = np.random.default_rng(args.seed)
    catalog = Catalog(plan=args.plan, stats=args.stats)
    table = catalog.create_table("obs", ["value", "sensor"])
    half = 50_000
    table.insert_batch(
        0,
        {
            "value": rng.integers(0, 2 * half, size=args.rows),
            "sensor": rng.integers(0, 16, size=args.rows),
        },
    )
    service = QueryService(catalog)
    service.register_tenant("alice", tables={"obs"})
    service.register_tenant(
        "bob", tables={"obs"}, value_bounds={"value": (0, half)}
    )
    server, thread = serve_in_thread(service, args.host, args.port)
    host, port = server.server_address
    print(
        f"serving catalog on http://{host}:{port} "
        f"(plan={args.plan}, stats={args.stats}, rows={args.rows}); "
        "tenants: alice (full), bob (value < 50000)",
        file=out,
    )
    try:
        if args.lifetime > 0:
            thread.join(args.lifetime)
        else:  # pragma: no cover - interactive only
            while thread.is_alive():
                thread.join(1.0)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.shutdown()
        thread.join()
        server.server_close()
        service.close()
        catalog.close()
    print("server stopped cleanly", file=out)
    return 0


def _run_recover(args, out) -> int:
    """Restore the newest valid checkpoint and report what was found."""
    from .storage import Table
    from .storage.io import recover_store

    policy_factory = None
    if args.policy is not None:
        from .amnesia import make_policy

        try:
            make_policy(args.policy)  # validate the name before any I/O
        except ConfigError as error:
            print(f"--policy: {error}", file=sys.stderr)
            return 2
        policy_factory = lambda: make_policy(args.policy)  # noqa: E731
    try:
        store, used = recover_store(args.path, policy_factory)
    except StorageError as error:
        print(f"recover failed: {error}", file=sys.stderr)
        return 1
    if isinstance(store, Table) or hasattr(store, "active_count"):
        detail = f"{store.active_count} active / {store.total_rows} rows"
    else:  # a Catalog: per-table counts live one level down
        detail = f"{len(store.names())} tables"
    print(
        f"recovered {type(store).__name__} from {used} ({detail})",
        file=out,
    )
    return 0


def _run_one(experiment_id: str, seed: int | None, out) -> None:
    runner = EXPERIMENTS[experiment_id]
    result = runner(seed=seed) if seed is not None else runner()
    print(result.render(), file=out)
    print(file=out)


def main(argv=None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for experiment_id in EXPERIMENTS:
            print(
                f"{experiment_id:4s} {_DESCRIPTIONS.get(experiment_id, '')}",
                file=out,
            )
        return 0

    if args.command == "serve":
        return _run_serve(args, out)

    if args.command == "recover":
        return _run_recover(args, out)

    # Validate before mutating any process default: an early error
    # return must not leak a half-applied configuration.
    if getattr(args, "workers", None) is not None and args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    if getattr(args, "batch_size", None) is not None and args.batch_size < 1:
        print(
            f"--batch-size must be >= 1, got {args.batch_size}",
            file=sys.stderr,
        )
        return 2
    if getattr(args, "query", None) is not None:
        try:
            parse_query_spec(args.query)
        except QueryError as error:
            print(f"--query: {error}", file=sys.stderr)
            return 2
    faults_spec = getattr(args, "faults", None)
    if faults_spec is None:
        faults_spec = os.environ.get("REPRO_FAULTS") or None
    if faults_spec is not None:
        try:
            parse_fault_plan(faults_spec)
        except ConfigError as error:
            print(f"--faults: {error}", file=sys.stderr)
            return 2
    previous_plan = default_plan()
    previous_stats = default_stats()
    previous_workers = default_workers()
    previous_rebalance = default_rebalance()
    previous_cross_query = default_cross_query()
    previous_batch_size = default_batch_size()
    previous_compress = default_compress()
    previous_faults = default_faults()
    previous_checkpoint = default_checkpoint()
    # Every set_default_* sits INSIDE the try: a setter raising midway
    # (or any failure in the run itself) must restore all nine process
    # defaults — a leaked half-applied configuration would silently
    # reshape every later in-process run.  Restoring the faults default
    # also re-arms (or disarms) the previous injection plan, so no
    # crash can leave a plan armed for the next in-process caller.
    try:
        if getattr(args, "plan", None) is not None:
            set_default_plan(args.plan)
        if getattr(args, "stats", None) is not None:
            set_default_stats(args.stats)
        if getattr(args, "workers", None) is not None:
            set_default_workers(args.workers)
        if getattr(args, "rebalance", None) is not None:
            set_default_rebalance(args.rebalance)
        if getattr(args, "query", None) is not None:
            set_default_cross_query(args.query)
        if getattr(args, "batch_size", None) is not None:
            set_default_batch_size(args.batch_size)
        if getattr(args, "compress", None) is not None:
            set_default_compress(args.compress)
        if faults_spec is not None:
            set_default_faults(faults_spec)
        if getattr(args, "checkpoint", None) is not None:
            set_default_checkpoint(args.checkpoint)
        target = args.experiment.upper()
        if target == "ALL":
            for experiment_id in EXPERIMENTS:
                _run_one(experiment_id, args.seed, out)
            return 0
        by_upper = {
            experiment_id.upper(): experiment_id for experiment_id in EXPERIMENTS
        }
        if target not in by_upper:
            print(
                f"unknown experiment {args.experiment!r}; "
                f"choose from {', '.join(EXPERIMENTS)} or 'all'",
                file=sys.stderr,
            )
            return 2
        _run_one(by_upper[target], args.seed, out)
        return 0
    except QueryError as error:
        # Grammar errors are caught before anything runs; binding
        # errors (e.g. --query naming a table the experiment does not
        # create) surface here, once a catalog tries to resolve the
        # spec — same clean diagnostic, no traceback.  Scoped to runs
        # that supplied --query: an internal QueryError from an
        # unrelated experiment must keep its stack trace.
        if getattr(args, "query", None) is None:
            raise
        print(f"query error: {error}", file=sys.stderr)
        return 2
    except FaultInjected as fault:
        # The armed plan stopped the run exactly where it said it
        # would — a simulated kill, not an error in the experiment.
        # Distinct exit code so crash-recover harnesses can tell
        # "crashed as planned" (3) from bad usage (2) or failure (1).
        print(f"crash fault injected: {fault}", file=sys.stderr)
        return 3
    finally:
        set_default_plan(previous_plan)
        set_default_stats(previous_stats)
        set_default_workers(previous_workers)
        set_default_rebalance(previous_rebalance)
        set_default_cross_query(previous_cross_query)
        set_default_batch_size(previous_batch_size)
        set_default_compress(previous_compress)
        set_default_faults(previous_faults)
        set_default_checkpoint(previous_checkpoint)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
