"""Cold-storage tier: archive of forgotten tuples + Glacier cost model."""

from .cost_model import GLACIER_2016, StorageCostModel, TierUsage
from .store import ColdSegment, ColdStore

__all__ = [
    "GLACIER_2016",
    "StorageCostModel",
    "TierUsage",
    "ColdSegment",
    "ColdStore",
]
