"""Storage-economics model (paper §1).

The paper grounds its motivation in 2016 cloud prices:

    "AWS Glacier charges $48 per TB/year ... data retrieval cost is
    $2.5–30 per TB and can take up to 12 hours."

:class:`StorageCostModel` captures those numbers (and a hot-tier
counterpart) so the cold-storage experiments can report dollar and
latency figures for each forgotten-data disposition.  The absolute
numbers matter less than the *ordering* they induce — hot retention is
cheap to read and expensive to keep; cold retention is the reverse;
deletion is free and destroys information.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._util.validation import check_non_negative_float, check_positive_float

__all__ = ["StorageCostModel", "GLACIER_2016", "TierUsage"]

_TB = 1024.0**4


@dataclass(frozen=True)
class StorageCostModel:
    """Prices and latencies for a two-tier (hot/cold) hierarchy.

    All prices are USD; sizes are bytes; durations are hours unless the
    field name says otherwise.
    """

    cold_storage_usd_per_tb_year: float = 48.0
    cold_retrieval_usd_per_tb: float = 30.0
    cold_retrieval_latency_hours: float = 12.0
    hot_storage_usd_per_tb_year: float = 360.0
    hot_retrieval_usd_per_tb: float = 0.0
    hot_retrieval_latency_hours: float = 50e-9 / 3600.0  # ~DRAM access

    def __post_init__(self) -> None:
        check_non_negative_float(
            self.cold_storage_usd_per_tb_year, "cold_storage_usd_per_tb_year"
        )
        check_non_negative_float(
            self.cold_retrieval_usd_per_tb, "cold_retrieval_usd_per_tb"
        )
        check_non_negative_float(
            self.cold_retrieval_latency_hours, "cold_retrieval_latency_hours"
        )
        check_positive_float(
            self.hot_storage_usd_per_tb_year, "hot_storage_usd_per_tb_year"
        )
        check_non_negative_float(
            self.hot_retrieval_usd_per_tb, "hot_retrieval_usd_per_tb"
        )
        check_non_negative_float(
            self.hot_retrieval_latency_hours, "hot_retrieval_latency_hours"
        )

    # -- storage -----------------------------------------------------------

    def cold_storage_cost(self, nbytes: int, years: float) -> float:
        """Dollars to keep ``nbytes`` in the cold tier for ``years``."""
        return (nbytes / _TB) * self.cold_storage_usd_per_tb_year * years

    def hot_storage_cost(self, nbytes: int, years: float) -> float:
        """Dollars to keep ``nbytes`` in the hot tier for ``years``."""
        return (nbytes / _TB) * self.hot_storage_usd_per_tb_year * years

    # -- retrieval ------------------------------------------------------------

    def cold_retrieval_cost(self, nbytes: int) -> float:
        """Dollars to pull ``nbytes`` back from the cold tier."""
        return (nbytes / _TB) * self.cold_retrieval_usd_per_tb

    def hot_retrieval_cost(self, nbytes: int) -> float:
        """Dollars to read ``nbytes`` from the hot tier."""
        return (nbytes / _TB) * self.hot_retrieval_usd_per_tb

    def breakeven_reads_per_year(self) -> float:
        """Cold-tier reads/year of the full dataset at which hot wins.

        Keeping data hot costs ``hot - cold`` extra dollars per TB-year;
        every cold read of the full dataset costs the retrieval fee.
        Above this read rate, hot retention is the cheaper choice —
        the quantitative core of the paper's "using this data becomes
        prohibitively more expensive over time" argument.
        """
        premium = self.hot_storage_usd_per_tb_year - self.cold_storage_usd_per_tb_year
        if self.cold_retrieval_usd_per_tb <= 0:
            return float("inf")
        return max(premium, 0.0) / self.cold_retrieval_usd_per_tb


#: The paper's quoted 2016 AWS Glacier price point.
GLACIER_2016 = StorageCostModel()


@dataclass
class TierUsage:
    """Running usage counters for one tier (mutable accumulator)."""

    stored_bytes: int = 0
    retrieved_bytes: int = 0
    retrieval_ops: int = 0

    def record_store(self, nbytes: int) -> None:
        """Account ``nbytes`` entering the tier."""
        self.stored_bytes += int(nbytes)

    def record_retrieval(self, nbytes: int) -> None:
        """Account ``nbytes`` read back from the tier."""
        self.retrieved_bytes += int(nbytes)
        self.retrieval_ops += 1
