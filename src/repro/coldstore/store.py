"""The cold tier: an archive for forgotten tuples.

"A more cost-effective option is to move forgotten data to cheap slow
cold-storage" (§1).  The :class:`ColdStore` simulates that tier: it
receives the values of forgotten tuples segment by segment, remembers
them by position, accounts storage/retrieval against a
:class:`~repro.coldstore.cost_model.StorageCostModel`, and can *recover*
tuples on explicit request — mirroring the paper's stance that cold
data "will never show up in query results, unless the user takes the
action and recovers" it (§5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util.errors import ColdStoreError
from .cost_model import StorageCostModel, TierUsage

__all__ = ["ColdSegment", "ColdStore"]

_INT64_BYTES = 8


@dataclass(frozen=True)
class ColdSegment:
    """One archived batch: positions plus their column values."""

    segment_id: int
    epoch: int
    positions: np.ndarray
    values_by_column: dict[str, np.ndarray]

    @property
    def nbytes(self) -> int:
        """Logical archived payload size."""
        per_row = _INT64_BYTES * (1 + len(self.values_by_column))
        return int(self.positions.size) * per_row


class ColdStore:
    """Archive of forgotten tuples with cost accounting.

    >>> import numpy as np
    >>> store = ColdStore()
    >>> _ = store.archive(epoch=1, positions=np.array([3, 4]),
    ...                   values_by_column={"a": np.array([30, 40])})
    >>> store.contains(np.array([3, 5])).tolist()
    [True, False]
    >>> store.retrieve(np.array([4]))["a"].tolist()
    [40]
    """

    def __init__(self, cost_model: StorageCostModel | None = None):
        self.cost_model = cost_model or StorageCostModel()
        self.usage = TierUsage()
        self._segments: list[ColdSegment] = []
        self._position_to_segment: dict[int, int] = {}

    # -- archiving ------------------------------------------------------

    def archive(
        self,
        epoch: int,
        positions: np.ndarray,
        values_by_column: dict[str, np.ndarray],
    ) -> ColdSegment:
        """Store one forgotten batch; positions must be new to the tier."""
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size == 0:
            raise ColdStoreError("cannot archive an empty segment")
        if np.unique(positions).size != positions.size:
            raise ColdStoreError("archive positions must be distinct")
        for name, values in values_by_column.items():
            if np.asarray(values).shape != positions.shape:
                raise ColdStoreError(
                    f"column {name!r} values must align with positions"
                )
        clashes = [p for p in positions.tolist() if p in self._position_to_segment]
        if clashes:
            raise ColdStoreError(
                f"positions already archived: {clashes[:5]}"
            )
        segment = ColdSegment(
            segment_id=len(self._segments),
            epoch=int(epoch),
            positions=positions.copy(),
            values_by_column={
                name: np.asarray(values, dtype=np.int64).copy()
                for name, values in values_by_column.items()
            },
        )
        self._segments.append(segment)
        for p in positions.tolist():
            self._position_to_segment[p] = segment.segment_id
        self.usage.record_store(segment.nbytes)
        return segment

    # -- introspection ----------------------------------------------------

    @property
    def segment_count(self) -> int:
        """Number of archived segments."""
        return len(self._segments)

    @property
    def tuple_count(self) -> int:
        """Number of archived tuples."""
        return len(self._position_to_segment)

    @property
    def stored_bytes(self) -> int:
        """Total logical bytes resident in the tier."""
        return self.usage.stored_bytes

    def contains(self, positions: np.ndarray) -> np.ndarray:
        """Boolean per position: is it archived here?"""
        positions = np.asarray(positions, dtype=np.int64)
        return np.array(
            [int(p) in self._position_to_segment for p in positions], dtype=bool
        )

    def segments(self) -> list[ColdSegment]:
        """All archived segments, oldest first."""
        return list(self._segments)

    # -- retrieval -------------------------------------------------------------

    def retrieve(self, positions: np.ndarray) -> dict[str, np.ndarray]:
        """Fetch archived values for ``positions`` (cost-accounted).

        Returns ``{column: values}`` aligned with the requested
        positions.  Raises if any position was never archived.
        """
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size == 0:
            raise ColdStoreError("cannot retrieve an empty position set")
        missing = [
            p for p in positions.tolist() if p not in self._position_to_segment
        ]
        if missing:
            raise ColdStoreError(f"positions not in cold storage: {missing[:5]}")

        columns = self._segments[0].values_by_column.keys() if self._segments else ()
        out = {name: np.empty(positions.size, dtype=np.int64) for name in columns}
        for i, p in enumerate(positions.tolist()):
            segment = self._segments[self._position_to_segment[p]]
            row = int(np.flatnonzero(segment.positions == p)[0])
            for name in out:
                out[name][i] = segment.values_by_column[name][row]
        nbytes = positions.size * _INT64_BYTES * (1 + len(out))
        self.usage.record_retrieval(nbytes)
        return out

    # -- economics ---------------------------------------------------------------

    def storage_cost(self, years: float) -> float:
        """Dollars to keep the current archive for ``years``."""
        return self.cost_model.cold_storage_cost(self.stored_bytes, years)

    def retrieval_cost_so_far(self) -> float:
        """Dollars spent on retrievals so far."""
        return self.cost_model.cold_retrieval_cost(self.usage.retrieved_bytes)

    def retrieval_latency_so_far(self) -> float:
        """Hours of retrieval latency incurred (one fetch = one trip)."""
        return self.usage.retrieval_ops * self.cost_model.cold_retrieval_latency_hours

    def __repr__(self) -> str:
        return (
            f"ColdStore(segments={self.segment_count}, tuples={self.tuple_count}, "
            f"bytes={self.stored_bytes})"
        )
