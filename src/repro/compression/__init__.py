"""Lossless integer codecs: compression postpones forgetting (§4.4)."""

from .bitpack import bits_needed, pack_ints, unpack_ints
from .codecs import (
    CODEC_NAMES,
    Codec,
    CompressedBlock,
    DictionaryCodec,
    FrameOfReferenceCodec,
    RawCodec,
    RleCodec,
    best_codec,
    make_codec,
)

__all__ = [
    "bits_needed",
    "pack_ints",
    "unpack_ints",
    "CODEC_NAMES",
    "Codec",
    "CompressedBlock",
    "DictionaryCodec",
    "FrameOfReferenceCodec",
    "RawCodec",
    "RleCodec",
    "best_codec",
    "make_codec",
]
