"""Bit-packing primitives.

Dictionary and frame-of-reference codecs reduce values to small
non-negative codes; packing those codes at their minimal bit width is
where the actual compression happens.  These helpers implement real
bit-level packing via :func:`numpy.packbits`, so reported footprints
are what a columnar engine would genuinely write.

Domain contract: packed values live in the **uint64 code domain**
``[0, 2**64 - 1]``.  :func:`pack_ints` interprets its input as uint64
(negative int64 inputs are rejected up front rather than silently
reinterpreted), and :func:`unpack_ints` reconstructs in uint64.  The
return dtype is chosen by the caller: the default ``dtype=np.int64``
is a *checked* narrowing — any recovered value ≥ 2**63 raises
:class:`CompressionError` instead of wrapping negative (the same
checked-cast doctrine the ingest path applies to user input) — while
``dtype=np.uint64`` hands back the full code domain for callers, like
the frame-of-reference codec, whose offsets legitimately span it.
"""

from __future__ import annotations

import numpy as np

from .._util.errors import CompressionError

__all__ = ["bits_needed", "pack_ints", "unpack_ints"]

_INT64_SIGN_BIT = 1 << 63


def bits_needed(max_value: int) -> int:
    """Bits required to represent values in ``[0, max_value]``.

    >>> bits_needed(0), bits_needed(1), bits_needed(255), bits_needed(256)
    (1, 1, 8, 9)
    """
    if max_value < 0:
        raise CompressionError(f"max_value must be >= 0, got {max_value}")
    return max(int(max_value).bit_length(), 1)


def pack_ints(values: np.ndarray, bits: int) -> np.ndarray:
    """Pack non-negative ints into a dense uint8 buffer at ``bits`` each.

    >>> packed = pack_ints(np.array([1, 2, 3]), bits=2)
    >>> packed.nbytes
    1
    >>> unpack_ints(packed, bits=2, count=3).tolist()
    [1, 2, 3]
    """
    raw = np.asarray(values)
    if np.issubdtype(raw.dtype, np.signedinteger) and raw.size and raw.min() < 0:
        raise CompressionError(
            f"pack_ints packs non-negative codes, got {int(raw.min())}"
        )
    values = raw.astype(np.uint64, copy=False)
    if not 1 <= bits <= 64:
        raise CompressionError(f"bits must be in [1, 64], got {bits}")
    if values.size and bits < 64 and int(values.max()) >= (1 << bits):
        raise CompressionError(
            f"value {int(values.max())} does not fit in {bits} bits"
        )
    if values.size == 0:
        return np.empty(0, dtype=np.uint8)
    # Expand each value into its `bits` binary digits (MSB first), then
    # let numpy fuse the bit matrix into bytes.
    shifts = np.arange(bits - 1, -1, -1, dtype=np.uint64)
    bit_matrix = ((values[:, None] >> shifts) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bit_matrix.ravel())


def unpack_ints(
    packed: np.ndarray, bits: int, count: int, *, dtype=np.int64
) -> np.ndarray:
    """Inverse of :func:`pack_ints`: recover ``count`` values.

    Reconstruction happens in uint64; ``dtype`` picks the return
    domain.  ``np.int64`` (the default) is checked — a recovered value
    ≥ 2**63 cannot be represented and raises :class:`CompressionError`
    rather than wrapping negative.  ``np.uint64`` returns the full
    code domain unchecked (every packed value fits by construction).
    """
    if not 1 <= bits <= 64:
        raise CompressionError(f"bits must be in [1, 64], got {bits}")
    if count < 0:
        raise CompressionError(f"count must be >= 0, got {count}")
    dtype = np.dtype(dtype)
    if dtype not in (np.dtype(np.int64), np.dtype(np.uint64)):
        raise CompressionError(
            f"unpack_ints returns int64 or uint64, got {dtype}"
        )
    if count == 0:
        return np.empty(0, dtype=dtype)
    packed = np.asarray(packed, dtype=np.uint8)
    needed_bits = count * bits
    unpacked = np.unpackbits(packed, count=needed_bits)
    bit_matrix = unpacked.reshape(count, bits).astype(np.uint64)
    shifts = np.arange(bits - 1, -1, -1, dtype=np.uint64)
    codes = (bit_matrix << shifts).sum(axis=1, dtype=np.uint64)
    if dtype == np.dtype(np.uint64):
        return codes
    if bits == 64 and codes.size and int(codes.max()) >= _INT64_SIGN_BIT:
        overflow = int(codes.max())
        raise CompressionError(
            f"unpacked value {overflow} does not fit in int64; "
            "request dtype=np.uint64 to read the full code domain"
        )
    return codes.astype(np.int64)
