"""Bit-packing primitives.

Dictionary and frame-of-reference codecs reduce values to small
non-negative codes; packing those codes at their minimal bit width is
where the actual compression happens.  These helpers implement real
bit-level packing via :func:`numpy.packbits`, so reported footprints
are what a columnar engine would genuinely write.
"""

from __future__ import annotations

import numpy as np

from .._util.errors import CompressionError

__all__ = ["bits_needed", "pack_ints", "unpack_ints"]


def bits_needed(max_value: int) -> int:
    """Bits required to represent values in ``[0, max_value]``.

    >>> bits_needed(0), bits_needed(1), bits_needed(255), bits_needed(256)
    (1, 1, 8, 9)
    """
    if max_value < 0:
        raise CompressionError(f"max_value must be >= 0, got {max_value}")
    return max(int(max_value).bit_length(), 1)


def pack_ints(values: np.ndarray, bits: int) -> np.ndarray:
    """Pack non-negative ints into a dense uint8 buffer at ``bits`` each.

    >>> packed = pack_ints(np.array([1, 2, 3]), bits=2)
    >>> packed.nbytes
    1
    >>> unpack_ints(packed, bits=2, count=3).tolist()
    [1, 2, 3]
    """
    values = np.asarray(values, dtype=np.uint64)
    if not 1 <= bits <= 64:
        raise CompressionError(f"bits must be in [1, 64], got {bits}")
    if values.size and int(values.max()) >= (1 << bits):
        raise CompressionError(
            f"value {int(values.max())} does not fit in {bits} bits"
        )
    if values.size == 0:
        return np.empty(0, dtype=np.uint8)
    # Expand each value into its `bits` binary digits (MSB first), then
    # let numpy fuse the bit matrix into bytes.
    shifts = np.arange(bits - 1, -1, -1, dtype=np.uint64)
    bit_matrix = ((values[:, None] >> shifts) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bit_matrix.ravel())


def unpack_ints(packed: np.ndarray, bits: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_ints`: recover ``count`` values."""
    if not 1 <= bits <= 64:
        raise CompressionError(f"bits must be in [1, 64], got {bits}")
    if count < 0:
        raise CompressionError(f"count must be >= 0, got {count}")
    if count == 0:
        return np.empty(0, dtype=np.int64)
    packed = np.asarray(packed, dtype=np.uint8)
    needed_bits = count * bits
    unpacked = np.unpackbits(packed, count=needed_bits)
    bit_matrix = unpacked.reshape(count, bits).astype(np.uint64)
    shifts = np.arange(bits - 1, -1, -1, dtype=np.uint64)
    return (bit_matrix << shifts).sum(axis=1).astype(np.int64)
