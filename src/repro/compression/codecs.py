"""Integer column codecs: RLE, dictionary, frame-of-reference.

"Data compression can be called upon to postpone the decisions to
forget data" (§4.4): at a fixed *byte* budget, a compressed column
holds more tuples, so fewer must be forgotten.  Experiment C2
quantifies exactly that trade per data distribution.

Every codec round-trips exactly (lossless) and reports its true encoded
footprint, including per-block metadata.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from .._util.errors import CompressionError
from .bitpack import bits_needed, pack_ints, unpack_ints

__all__ = [
    "CompressedBlock",
    "Codec",
    "RawCodec",
    "RleCodec",
    "DictionaryCodec",
    "FrameOfReferenceCodec",
    "CODEC_NAMES",
    "make_codec",
    "best_codec",
]

_INT64_BYTES = 8
#: Fixed per-block header: codec id, value count, two codec params.
_HEADER_BYTES = 16


@dataclass(frozen=True)
class CompressedBlock:
    """An encoded value block plus the facts needed to decode it."""

    codec_name: str
    n_values: int
    payload: dict
    nbytes: int

    @property
    def bytes_per_value(self) -> float:
        """Amortised encoded size (inf for empty blocks)."""
        if self.n_values == 0:
            return float("inf")
        return self.nbytes / self.n_values


class Codec(ABC):
    """A lossless integer-array codec."""

    #: Short name used in registries and experiment tables.
    name: str = "abstract"

    @abstractmethod
    def encode(self, values: np.ndarray) -> CompressedBlock:
        """Encode a 1-D int64 array."""

    @abstractmethod
    def decode(self, block: CompressedBlock) -> np.ndarray:
        """Recover the original array from an encoded block."""

    def _check_input(self, values) -> np.ndarray:
        values = np.asarray(values)
        if values.ndim != 1:
            raise CompressionError(
                f"codecs encode 1-D arrays, got shape {values.shape}"
            )
        return values.astype(np.int64, copy=False)

    def _check_block(self, block: CompressedBlock) -> None:
        if block.codec_name != self.name:
            raise CompressionError(
                f"block was encoded with {block.codec_name!r}, "
                f"not {self.name!r}"
            )

    def compressed_nbytes(self, values: np.ndarray) -> int:
        """Encoded footprint without keeping the block."""
        return self.encode(values).nbytes


class RawCodec(Codec):
    """Identity codec: the uncompressed baseline (8 bytes per value)."""

    name = "raw"

    def encode(self, values):
        values = self._check_input(values)
        return CompressedBlock(
            codec_name=self.name,
            n_values=int(values.size),
            payload={"values": values.copy()},
            nbytes=_HEADER_BYTES + values.size * _INT64_BYTES,
        )

    def decode(self, block):
        self._check_block(block)
        return block.payload["values"].copy()


class RleCodec(Codec):
    """Run-length encoding: (value, run length) pairs.

    Shines on serial or heavily clustered data (sorted columns); on
    random data it degrades to ~2x expansion, which the experiments
    deliberately expose.
    """

    name = "rle"

    def encode(self, values):
        values = self._check_input(values)
        if values.size == 0:
            return CompressedBlock(self.name, 0, {"runs": np.empty(0, dtype=np.int64), "lengths": np.empty(0, dtype=np.int64)}, _HEADER_BYTES)
        change = np.flatnonzero(np.diff(values) != 0)
        starts = np.concatenate([[0], change + 1])
        run_values = values[starts]
        lengths = np.diff(np.concatenate([starts, [values.size]]))
        nbytes = _HEADER_BYTES + run_values.size * 2 * _INT64_BYTES
        return CompressedBlock(
            codec_name=self.name,
            n_values=int(values.size),
            payload={"runs": run_values, "lengths": lengths},
            nbytes=nbytes,
        )

    def decode(self, block):
        self._check_block(block)
        return np.repeat(block.payload["runs"], block.payload["lengths"])


class DictionaryCodec(Codec):
    """Dictionary encoding: distinct values + bit-packed codes.

    Ideal for low-cardinality (Zipfian) data where few distinct values
    dominate the column.
    """

    name = "dict"

    def encode(self, values):
        values = self._check_input(values)
        if values.size == 0:
            return CompressedBlock(self.name, 0, {"dictionary": np.empty(0, dtype=np.int64), "packed": np.empty(0, dtype=np.uint8), "bits": 1}, _HEADER_BYTES)
        dictionary, codes = np.unique(values, return_inverse=True)
        bits = bits_needed(int(dictionary.size - 1))
        packed = pack_ints(codes, bits)
        nbytes = _HEADER_BYTES + dictionary.size * _INT64_BYTES + packed.nbytes
        return CompressedBlock(
            codec_name=self.name,
            n_values=int(values.size),
            payload={"dictionary": dictionary, "packed": packed, "bits": bits},
            nbytes=nbytes,
        )

    def decode(self, block):
        self._check_block(block)
        if block.n_values == 0:
            return np.empty(0, dtype=np.int64)
        codes = unpack_ints(
            block.payload["packed"], block.payload["bits"], block.n_values
        )
        return block.payload["dictionary"][codes]


class FrameOfReferenceCodec(Codec):
    """Frame of reference: subtract the block minimum, bit-pack the rest.

    The workhorse for bounded domains (all the paper's distributions
    live in [0, DOMAIN]): footprint is ``ceil(log2(spread))`` bits per
    value regardless of cardinality.
    """

    name = "for"

    def encode(self, values):
        values = self._check_input(values)
        if values.size == 0:
            return CompressedBlock(self.name, 0, {"reference": 0, "packed": np.empty(0, dtype=np.uint8), "bits": 1}, _HEADER_BYTES)
        reference = int(values.min())
        offsets = values - reference
        bits = bits_needed(int(offsets.max()))
        packed = pack_ints(offsets, bits)
        nbytes = _HEADER_BYTES + packed.nbytes
        return CompressedBlock(
            codec_name=self.name,
            n_values=int(values.size),
            payload={"reference": reference, "packed": packed, "bits": bits},
            nbytes=nbytes,
        )

    def decode(self, block):
        self._check_block(block)
        if block.n_values == 0:
            return np.empty(0, dtype=np.int64)
        offsets = unpack_ints(
            block.payload["packed"], block.payload["bits"], block.n_values
        )
        return offsets + block.payload["reference"]


_CODECS = {
    codec.name: codec
    for codec in (RawCodec(), RleCodec(), DictionaryCodec(), FrameOfReferenceCodec())
}

CODEC_NAMES = tuple(_CODECS)


def make_codec(name: str) -> Codec:
    """Look a codec up by short name (codecs are stateless singletons)."""
    try:
        return _CODECS[name]
    except KeyError:
        raise CompressionError(
            f"unknown codec {name!r}; choose from {CODEC_NAMES}"
        ) from None


def best_codec(values: np.ndarray) -> CompressedBlock:
    """Encode with every codec and keep the smallest block.

    This is the per-block "lightweight compression chooser" columnar
    engines run at load time.
    """
    blocks = [codec.encode(values) for codec in _CODECS.values()]
    return min(blocks, key=lambda b: b.nbytes)
