"""Integer column codecs: RLE, dictionary, frame-of-reference.

"Data compression can be called upon to postpone the decisions to
forget data" (§4.4): at a fixed *byte* budget, a compressed column
holds more tuples, so fewer must be forgotten.  Experiment C2
quantifies exactly that trade per data distribution, and the
``CompressedCohortStore`` (``storage/compressed.py``) routes cold
cohorts through :func:`best_codec` on the live query path.

Every codec round-trips exactly (lossless) over the **full int64
domain** and reports its true encoded footprint, including per-block
metadata.

Block format.  A :class:`CompressedBlock` is ``_HEADER_BYTES`` of
fixed header (codec id, value count, two codec params) plus a codec
payload:

- ``raw``:  the int64 values verbatim (8 bytes each).
- ``rle``:  parallel int64 ``runs`` / ``lengths`` arrays (16 bytes per
  run).
- ``dict``: the sorted int64 ``dictionary`` (``np.unique`` order, so
  codes are rank-in-sorted-order — range predicates binary-search it)
  plus codes bit-packed at ``bits = bits_needed(len(dictionary) - 1)``.
- ``for``:  an int64 ``reference`` (the block minimum) plus offsets
  bit-packed at ``bits = bits_needed(max_offset)``.

Offset-domain contract (the PR 9 bugfix): frame-of-reference offsets
``v - reference`` are computed **in uint64 two's-complement
arithmetic**, never int64.  For int64 values ``v >= r`` the wrapped
difference ``(v - r) mod 2**64`` equals the true spread exactly, and
the spread of a legal int64 block can reach ``2**64 - 1`` — an int64
subtraction overflows for any block wider than ``2**63 - 1`` and
previously crashed the chooser on valid input.  Decode adds the
reference back in uint64 and reinterprets the bit pattern via
``.view(np.int64)``, restoring every int64 exactly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from .._util.errors import CompressionError
from .bitpack import bits_needed, pack_ints, unpack_ints

__all__ = [
    "CompressedBlock",
    "Codec",
    "RawCodec",
    "RleCodec",
    "DictionaryCodec",
    "FrameOfReferenceCodec",
    "CODEC_NAMES",
    "make_codec",
    "best_codec",
]

_INT64_BYTES = 8
#: Fixed per-block header: codec id, value count, two codec params.
_HEADER_BYTES = 16


@dataclass(frozen=True)
class CompressedBlock:
    """An encoded value block plus the facts needed to decode it."""

    codec_name: str
    n_values: int
    payload: dict
    nbytes: int

    @property
    def bytes_per_value(self) -> float:
        """Amortised encoded size (inf for empty blocks)."""
        if self.n_values == 0:
            return float("inf")
        return self.nbytes / self.n_values


class Codec(ABC):
    """A lossless integer-array codec."""

    #: Short name used in registries and experiment tables.
    name: str = "abstract"

    @abstractmethod
    def encode(self, values: np.ndarray) -> CompressedBlock:
        """Encode a 1-D int64 array."""

    @abstractmethod
    def decode(self, block: CompressedBlock) -> np.ndarray:
        """Recover the original array from an encoded block."""

    def _check_input(self, values) -> np.ndarray:
        values = np.asarray(values)
        if values.ndim != 1:
            raise CompressionError(
                f"codecs encode 1-D arrays, got shape {values.shape}"
            )
        return values.astype(np.int64, copy=False)

    def _check_block(self, block: CompressedBlock) -> None:
        if block.codec_name != self.name:
            raise CompressionError(
                f"block was encoded with {block.codec_name!r}, "
                f"not {self.name!r}"
            )

    def compressed_nbytes(self, values: np.ndarray) -> int:
        """Encoded footprint without keeping the block."""
        return self.encode(values).nbytes


class RawCodec(Codec):
    """Identity codec: the uncompressed baseline (8 bytes per value)."""

    name = "raw"

    def encode(self, values):
        values = self._check_input(values)
        return CompressedBlock(
            codec_name=self.name,
            n_values=int(values.size),
            payload={"values": values.copy()},
            nbytes=_HEADER_BYTES + values.size * _INT64_BYTES,
        )

    def decode(self, block):
        self._check_block(block)
        return block.payload["values"].copy()


class RleCodec(Codec):
    """Run-length encoding: (value, run length) pairs.

    Shines on serial or heavily clustered data (sorted columns); on
    random data it degrades to ~2x expansion, which the experiments
    deliberately expose.
    """

    name = "rle"

    def encode(self, values):
        values = self._check_input(values)
        if values.size == 0:
            return CompressedBlock(self.name, 0, {"runs": np.empty(0, dtype=np.int64), "lengths": np.empty(0, dtype=np.int64)}, _HEADER_BYTES)
        change = np.flatnonzero(np.diff(values) != 0)
        starts = np.concatenate([[0], change + 1])
        run_values = values[starts]
        lengths = np.diff(np.concatenate([starts, [values.size]]))
        nbytes = _HEADER_BYTES + run_values.size * 2 * _INT64_BYTES
        return CompressedBlock(
            codec_name=self.name,
            n_values=int(values.size),
            payload={"runs": run_values, "lengths": lengths},
            nbytes=nbytes,
        )

    def decode(self, block):
        self._check_block(block)
        return np.repeat(block.payload["runs"], block.payload["lengths"])


class DictionaryCodec(Codec):
    """Dictionary encoding: distinct values + bit-packed codes.

    Ideal for low-cardinality (Zipfian) data where few distinct values
    dominate the column.
    """

    name = "dict"

    def encode(self, values):
        values = self._check_input(values)
        if values.size == 0:
            return CompressedBlock(self.name, 0, {"dictionary": np.empty(0, dtype=np.int64), "packed": np.empty(0, dtype=np.uint8), "bits": 1}, _HEADER_BYTES)
        dictionary, codes = np.unique(values, return_inverse=True)
        bits = bits_needed(int(dictionary.size - 1))
        packed = pack_ints(codes, bits)
        nbytes = _HEADER_BYTES + dictionary.size * _INT64_BYTES + packed.nbytes
        return CompressedBlock(
            codec_name=self.name,
            n_values=int(values.size),
            payload={"dictionary": dictionary, "packed": packed, "bits": bits},
            nbytes=nbytes,
        )

    def decode(self, block):
        self._check_block(block)
        if block.n_values == 0:
            return np.empty(0, dtype=np.int64)
        codes = unpack_ints(
            block.payload["packed"], block.payload["bits"], block.n_values
        )
        return block.payload["dictionary"][codes]


class FrameOfReferenceCodec(Codec):
    """Frame of reference: subtract the block minimum, bit-pack the rest.

    The workhorse for bounded domains (all the paper's distributions
    live in [0, DOMAIN]): footprint is ``ceil(log2(spread))`` bits per
    value regardless of cardinality.
    """

    name = "for"

    def encode(self, values):
        values = self._check_input(values)
        if values.size == 0:
            return CompressedBlock(self.name, 0, {"reference": 0, "packed": np.empty(0, dtype=np.uint8), "bits": 1}, _HEADER_BYTES)
        reference = int(values.min())
        # Offsets live in the uint64 domain: an int64 block's spread can
        # reach 2**64 - 1, which int64 subtraction would wrap (the old
        # crash on e.g. [-2**62, 2**62]).  Two's complement makes the
        # wrapped uint64 difference exact for every v >= reference.
        ref_u = np.uint64(reference & 0xFFFFFFFFFFFFFFFF)
        offsets = values.view(np.uint64) - ref_u
        bits = bits_needed(int(offsets.max()))
        packed = pack_ints(offsets, bits)
        nbytes = _HEADER_BYTES + packed.nbytes
        return CompressedBlock(
            codec_name=self.name,
            n_values=int(values.size),
            payload={"reference": reference, "packed": packed, "bits": bits},
            nbytes=nbytes,
        )

    def decode(self, block):
        self._check_block(block)
        if block.n_values == 0:
            return np.empty(0, dtype=np.int64)
        offsets = unpack_ints(
            block.payload["packed"],
            block.payload["bits"],
            block.n_values,
            dtype=np.uint64,
        )
        # Undo the encode-side wrap: add the reference back in uint64,
        # then reinterpret the bit pattern as int64 (exact inverse).
        reference = int(block.payload["reference"])
        ref_u = np.uint64(reference & 0xFFFFFFFFFFFFFFFF)
        return (offsets + ref_u).view(np.int64)


_CODECS = {
    codec.name: codec
    for codec in (RawCodec(), RleCodec(), DictionaryCodec(), FrameOfReferenceCodec())
}

CODEC_NAMES = tuple(_CODECS)


def make_codec(name: str) -> Codec:
    """Look a codec up by short name (codecs are stateless singletons)."""
    try:
        return _CODECS[name]
    except KeyError:
        raise CompressionError(
            f"unknown codec {name!r}; choose from {CODEC_NAMES}"
        ) from None


def best_codec(values: np.ndarray) -> CompressedBlock:
    """Encode with every codec and keep the smallest block.

    This is the per-block "lightweight compression chooser" columnar
    engines run at load time.  A codec that cannot encode a particular
    block is skipped, not fatal — the chooser never raises on a valid
    int64 block (raw always succeeds).  Invalid input (wrong shape,
    non-integral values) still raises crisply.  Ties on ``nbytes``
    break deterministically by registration order
    (raw, rle, dict, for) via the stability of :func:`min`.
    """
    # Validate once up front so bad input fails with the real reason
    # instead of "no codec could encode".
    probe = np.asarray(values)
    if probe.ndim != 1:
        raise CompressionError(
            f"codecs encode 1-D arrays, got shape {probe.shape}"
        )
    blocks = []
    for codec in _CODECS.values():
        try:
            blocks.append(codec.encode(values))
        except CompressionError:
            continue
    if not blocks:
        raise CompressionError(
            "no codec could encode the block; input is not a valid "
            "int64 array"
        )
    return min(blocks, key=lambda b: b.nbytes)
