"""Core: simulation configuration, the amnesia simulator, the facade."""

from .config import SimulationConfig
from .database import AmnesiaDatabase
from .simulator import AmnesiaSimulator

__all__ = ["SimulationConfig", "AmnesiaDatabase", "AmnesiaSimulator"]
