"""Simulation configuration.

One frozen dataclass captures every knob of the paper's experimental
setup (§2): the storage budget DBSIZE, the update volatility
(upd-perc), run length, query batch size and the root seed from which
all component generators are derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .._util.rng import DEFAULT_SEED
from .._util.validation import (
    check_fraction,
    check_in,
    check_non_negative_int,
    check_positive_int,
)
from ..query.planner import PLAN_MODES
from ..query.plans import parse_query_spec

__all__ = [
    "COMPRESS_MODES",
    "REBALANCE_POLICIES",
    "STATS_MODES",
    "SimulationConfig",
    "default_batch_size",
    "default_checkpoint",
    "default_compress",
    "default_cross_query",
    "default_faults",
    "default_plan",
    "default_rebalance",
    "default_stats",
    "default_workers",
    "set_default_batch_size",
    "set_default_checkpoint",
    "set_default_compress",
    "set_default_cross_query",
    "set_default_faults",
    "set_default_plan",
    "set_default_rebalance",
    "set_default_stats",
    "set_default_workers",
]

#: Shard-rebalancing traffic signals (see
#: :meth:`repro.partitioning.PartitionedAmnesiaDatabase.rebalance`):
#: ``hits`` splits budget by query-hit counts, ``rows`` by the
#: coverage-based rows-matched counters, ``adaptive`` additionally
#: splits hot shard boundaries and merges cold adjacent ones.  Defined
#: here (not in ``repro.partitioning``) so the config layer never
#: imports the partitioned store it configures.
REBALANCE_POLICIES = ("hits", "rows", "adaptive")

#: Statistics sources for the planner's cardinality estimates (and the
#: adaptive partitioner's split cuts): ``uniform`` keeps the zone map's
#: per-cohort uniformity assumption and midpoint splits, ``hist``
#: attaches per-column :class:`~repro.stats.TableHistogramStats` (value
#: histograms maintained through the observer protocol) so estimates
#: track skewed streams and hot shards split at the traffic-weighted
#: median.  Estimate-only for queries: results are bit-identical under
#: either mode.
STATS_MODES = ("uniform", "hist")

#: Process-wide default for :attr:`SimulationConfig.plan` — the CLI's
#: ``--plan`` flag sets it so every experiment picks the mode up without
#: threading a parameter through each runner.
_DEFAULT_PLAN = "auto"

#: Process-wide default for :attr:`SimulationConfig.stats` — the CLI's
#: ``--stats`` flag sets it, like ``--plan``.
_DEFAULT_STATS = "uniform"

#: Process-wide defaults for the sharded store's fan-out width and
#: rebalance policy — the CLI's ``--workers`` / ``--rebalance`` flags
#: set them, and every ``PartitionedAmnesiaDatabase`` built without
#: explicit values (the experiments, notably X2) picks them up.
_DEFAULT_WORKERS = 1
_DEFAULT_REBALANCE = "hits"

#: Process-wide default cross-table query spec (see
#: :func:`repro.query.plans.parse_query_spec`) — the CLI's ``--query``
#: flag sets it, and the cross-table experiment (X5) runs it.
_DEFAULT_CROSS_QUERY = "join:s1,s2:on=value"

#: Compressed-execution modes: ``off`` keeps every cohort raw, ``on``
#: demotes cold cohorts into best-codec compressed blocks
#: (:class:`~repro.storage.CompressedCohortStore`) that pruned access
#: paths evaluate directly.  Execution-only: results are bit-identical
#: under either mode; only bytes held and work per probed row change.
COMPRESS_MODES = ("off", "on")

#: Process-wide default for :attr:`SimulationConfig.compress` — the
#: CLI's ``--compress`` flag sets it, like ``--plan``.
_DEFAULT_COMPRESS = "off"

#: Process-wide default batch size (rows) for the streaming vectorized
#: execution layer (:meth:`repro.query.plans.PlanNode.batches` and the
#: streamed aggregates behind it) — the CLI's ``--batch-size`` flag
#: sets it.  Purely an execution knob: results are bit-identical at
#: any batch size; only the peak working set changes.
_DEFAULT_BATCH_SIZE = 4096

#: Process-wide fault-injection spec (see :mod:`repro.faults`) — the
#: CLI's ``--faults`` flag (or the ``REPRO_FAULTS`` env var) sets it;
#: setting it also arms/disarms the process-wide plan.  Empty means
#: disarmed: every injection point is a no-op.
_DEFAULT_FAULTS = ""

#: Process-wide per-epoch checkpoint path — the CLI's ``--checkpoint``
#: flag sets it; a :class:`~repro.core.simulator.AmnesiaSimulator` run
#: with :attr:`SimulationConfig.checkpoint` set saves its table there
#: (atomically, with rotation) after the initial load and after every
#: epoch, so ``repro recover`` always finds a fully-valid snapshot.
#: Empty disables checkpointing.
_DEFAULT_CHECKPOINT = ""


def default_plan() -> str:
    """The plan mode new configs default to."""
    return _DEFAULT_PLAN


def set_default_plan(mode: str) -> str:
    """Set the process-wide default plan mode; returns it."""
    global _DEFAULT_PLAN
    _DEFAULT_PLAN = check_in(mode, PLAN_MODES, "plan")
    return _DEFAULT_PLAN


def default_stats() -> str:
    """The statistics mode new configs and databases default to."""
    return _DEFAULT_STATS


def set_default_stats(mode: str) -> str:
    """Set the process-wide default statistics mode; returns it."""
    global _DEFAULT_STATS
    _DEFAULT_STATS = check_in(mode, STATS_MODES, "stats")
    return _DEFAULT_STATS


def default_workers() -> int:
    """The shard fan-out width new configs and stores default to."""
    return _DEFAULT_WORKERS


def set_default_workers(workers: int) -> int:
    """Set the process-wide default fan-out width; returns it."""
    global _DEFAULT_WORKERS
    _DEFAULT_WORKERS = check_positive_int(workers, "workers")
    return _DEFAULT_WORKERS


def default_cross_query() -> str:
    """The cross-table query spec new configs default to."""
    return _DEFAULT_CROSS_QUERY


def set_default_cross_query(spec: str) -> str:
    """Set the process-wide default cross-table query spec; returns it.

    The spec's *grammar* is validated here (kind, tables, options);
    table names bind only when a catalog executes it.
    """
    global _DEFAULT_CROSS_QUERY
    _DEFAULT_CROSS_QUERY = parse_query_spec(spec).render()
    return _DEFAULT_CROSS_QUERY


def default_batch_size() -> int:
    """The streaming-execution batch size new configs default to."""
    return _DEFAULT_BATCH_SIZE


def set_default_batch_size(rows: int) -> int:
    """Set the process-wide default streaming batch size; returns it."""
    global _DEFAULT_BATCH_SIZE
    _DEFAULT_BATCH_SIZE = check_positive_int(rows, "batch_size")
    return _DEFAULT_BATCH_SIZE


def default_compress() -> str:
    """The compressed-execution mode new configs and databases default to."""
    return _DEFAULT_COMPRESS


def set_default_compress(mode: str) -> str:
    """Set the process-wide default compressed-execution mode; returns it."""
    global _DEFAULT_COMPRESS
    _DEFAULT_COMPRESS = check_in(mode, COMPRESS_MODES, "compress")
    return _DEFAULT_COMPRESS


def default_faults() -> str:
    """The fault-injection spec currently in force ('' = disarmed)."""
    return _DEFAULT_FAULTS


def set_default_faults(spec: str) -> str:
    """Set (and arm) the process-wide fault-injection spec; returns it.

    The spec is parsed *before* anything changes — a malformed spec
    raises :class:`~repro._util.errors.ConfigError` and leaves the
    previous plan armed.  The empty string disarms injection entirely.
    """
    from ..faults import arm

    global _DEFAULT_FAULTS
    arm(spec)
    _DEFAULT_FAULTS = spec.strip()
    return _DEFAULT_FAULTS


def default_checkpoint() -> str:
    """The per-epoch checkpoint path new configs default to ('' = off)."""
    return _DEFAULT_CHECKPOINT


def set_default_checkpoint(path: str) -> str:
    """Set the process-wide default checkpoint path; returns it."""
    global _DEFAULT_CHECKPOINT
    _DEFAULT_CHECKPOINT = str(path).strip()
    return _DEFAULT_CHECKPOINT


def default_rebalance() -> str:
    """The rebalance policy new configs and stores default to."""
    return _DEFAULT_REBALANCE


def set_default_rebalance(policy: str) -> str:
    """Set the process-wide default rebalance policy; returns it."""
    global _DEFAULT_REBALANCE
    _DEFAULT_REBALANCE = check_in(policy, REBALANCE_POLICIES, "rebalance")
    return _DEFAULT_REBALANCE


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of one simulator run.

    Defaults reproduce the paper's headline setting:
    ``dbsize=1000, upd-perc=0.20``, 10 update batches, 1000 queries per
    batch (§2.3, §4.1).

    Attributes
    ----------
    dbsize:
        The constant storage budget in tuples (paper's DBSIZE).
    update_fraction:
        Fraction of DBSIZE inserted (and therefore forgotten) per epoch
        — the paper's ``upd-perc`` / volatility knob.
    epochs:
        Number of update batches after the initial load.
    queries_per_epoch:
        Size of the query batch fired before each update batch.  0
        disables querying (map-only runs such as Figure 1).
    column:
        Name of the value column under study.
    seed:
        Root seed; data, query and policy streams are derived from it
        by name so they are mutually independent.
    histogram_bins:
        Bin count for the divergence diagnostics (0 disables them).
    plan:
        Query access-path mode (see :mod:`repro.query.planner`):
        ``"auto"`` (default) prunes through cohort zone maps or
        indexes when possible, ``"scan"`` forces the historical
        full-oracle scan, ``"zonemap"``/``"index"`` force one path
        (falling back gracefully when its structure is missing), and
        ``"cost"`` prices every applicable path from the zone map's
        cardinality estimates and picks the cheapest.  Every mode
        returns bit-identical results; only the work done per query
        differs.
    stats:
        Cardinality-statistics source (one of :data:`STATS_MODES`):
        ``"uniform"`` (default) keeps the zone map's per-cohort
        uniformity assumption, ``"hist"`` maintains per-column value
        histograms (:class:`~repro.stats.TableHistogramStats`) through
        the observer protocol and feeds them to every cost estimate —
        sharp on skewed (Zipf) streams.  Query results are identical
        under either source; only estimates (and the adaptive
        partitioner's split cuts) change.
    workers:
        Thread-pool width for sharded (partitioned) execution: how many
        per-shard planner+executor pipelines may run concurrently.  1
        (default) executes shards sequentially; results are
        bit-identical at any width.  Consumed by runners that build
        partitioned stores from their config (X2 does); the
        single-table :class:`~repro.core.simulator.AmnesiaSimulator`
        validates and records it but has no shards to fan out over.
    rebalance:
        Traffic signal for :meth:`repro.partitioning.
        PartitionedAmnesiaDatabase.rebalance` — one of
        :data:`REBALANCE_POLICIES` (``hits``, ``rows``, ``adaptive``).
        Consumed the same way as ``workers``.
    cross_query:
        Cross-table query spec (``union:...`` / ``join:...`` — see
        :func:`repro.query.plans.parse_query_spec`) that catalog-backed
        runners execute each epoch; the CLI's ``--query`` flag sets the
        process default.  Consumed by the cross-table experiment (X5);
        single-table runners validate and record it but have only one
        table to scan.
    exec_batch:
        Batch size (rows) for the streaming vectorized execution layer
        (:meth:`repro.query.plans.PlanNode.batches` and streamed
        aggregates); the CLI's ``--batch-size`` flag sets the process
        default.  Distinct from the derived :attr:`batch_size`
        property, which is the paper's *update* batch (tuples inserted
        per epoch).  Execution-only: results are bit-identical at any
        value; only the peak working set changes.
    compress:
        Compressed-execution mode (one of :data:`COMPRESS_MODES`):
        ``"on"`` attaches a
        :class:`~repro.storage.CompressedCohortStore` that demotes
        cold cohorts into best-codec compressed blocks and lets pruned
        access paths evaluate range predicates directly on the encoded
        form; ``"off"`` (default) keeps every cohort raw.  The CLI's
        ``--compress`` flag sets the process default.  Execution-only:
        query results are bit-identical under either mode; only the
        bytes held per retained tuple and the work per probed row
        change.
    checkpoint:
        Path the simulator checkpoints its table to — atomically, with
        ``.prev`` rotation — after the initial load and after every
        epoch (see :func:`repro.storage.save_table` and
        :func:`repro.storage.recover_store`).  The CLI's
        ``--checkpoint`` flag sets the process default; the empty
        string (default) disables checkpointing.  Durability-only:
        the run's results are identical with or without it.
    """

    dbsize: int = 1000
    update_fraction: float = 0.20
    epochs: int = 10
    queries_per_epoch: int = 1000
    column: str = "a"
    seed: int = DEFAULT_SEED
    histogram_bins: int = 64
    plan: str = field(default_factory=default_plan)
    stats: str = field(default_factory=default_stats)
    workers: int = field(default_factory=default_workers)
    rebalance: str = field(default_factory=default_rebalance)
    cross_query: str = field(default_factory=default_cross_query)
    exec_batch: int = field(default_factory=default_batch_size)
    compress: str = field(default_factory=default_compress)
    checkpoint: str = field(default_factory=default_checkpoint)

    def __post_init__(self) -> None:
        check_positive_int(self.dbsize, "dbsize")
        check_fraction(self.update_fraction, "update_fraction")
        check_positive_int(self.epochs, "epochs")
        check_non_negative_int(self.queries_per_epoch, "queries_per_epoch")
        check_non_negative_int(self.histogram_bins, "histogram_bins")
        check_in(self.plan, PLAN_MODES, "plan")
        check_in(self.stats, STATS_MODES, "stats")
        check_positive_int(self.workers, "workers")
        check_in(self.rebalance, REBALANCE_POLICIES, "rebalance")
        check_positive_int(self.exec_batch, "exec_batch")
        check_in(self.compress, COMPRESS_MODES, "compress")
        parse_query_spec(self.cross_query)  # grammar check; binding is lazy
        if not self.column:
            raise ValueError("column name must be non-empty")
        if self.batch_size < 1:
            raise ValueError(
                f"dbsize * update_fraction must round to >= 1 tuple per "
                f"batch, got {self.dbsize} * {self.update_fraction}"
            )

    @property
    def batch_size(self) -> int:
        """Tuples inserted (and forgotten) per epoch: F = dbsize · upd-perc."""
        return int(round(self.dbsize * self.update_fraction))

    @property
    def total_insertions(self) -> int:
        """Tuples ever inserted over a full run."""
        return self.dbsize + self.epochs * self.batch_size

    def with_(self, **changes) -> "SimulationConfig":
        """Return a copy with the given fields replaced.

        >>> SimulationConfig().with_(update_fraction=0.8).batch_size
        800
        """
        return replace(self, **changes)
