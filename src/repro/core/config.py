"""Simulation configuration.

One frozen dataclass captures every knob of the paper's experimental
setup (§2): the storage budget DBSIZE, the update volatility
(upd-perc), run length, query batch size and the root seed from which
all component generators are derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .._util.rng import DEFAULT_SEED
from .._util.validation import (
    check_fraction,
    check_in,
    check_non_negative_int,
    check_positive_int,
)
from ..query.planner import PLAN_MODES

__all__ = ["SimulationConfig", "default_plan", "set_default_plan"]

#: Process-wide default for :attr:`SimulationConfig.plan` — the CLI's
#: ``--plan`` flag sets it so every experiment picks the mode up without
#: threading a parameter through each runner.
_DEFAULT_PLAN = "auto"


def default_plan() -> str:
    """The plan mode new configs default to."""
    return _DEFAULT_PLAN


def set_default_plan(mode: str) -> str:
    """Set the process-wide default plan mode; returns it."""
    global _DEFAULT_PLAN
    _DEFAULT_PLAN = check_in(mode, PLAN_MODES, "plan")
    return _DEFAULT_PLAN


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of one simulator run.

    Defaults reproduce the paper's headline setting:
    ``dbsize=1000, upd-perc=0.20``, 10 update batches, 1000 queries per
    batch (§2.3, §4.1).

    Attributes
    ----------
    dbsize:
        The constant storage budget in tuples (paper's DBSIZE).
    update_fraction:
        Fraction of DBSIZE inserted (and therefore forgotten) per epoch
        — the paper's ``upd-perc`` / volatility knob.
    epochs:
        Number of update batches after the initial load.
    queries_per_epoch:
        Size of the query batch fired before each update batch.  0
        disables querying (map-only runs such as Figure 1).
    column:
        Name of the value column under study.
    seed:
        Root seed; data, query and policy streams are derived from it
        by name so they are mutually independent.
    histogram_bins:
        Bin count for the divergence diagnostics (0 disables them).
    plan:
        Query access-path mode (see :mod:`repro.query.planner`):
        ``"auto"`` (default) prunes through cohort zone maps or
        indexes when possible, ``"scan"`` forces the historical
        full-oracle scan, ``"zonemap"``/``"index"`` force one path
        (falling back gracefully when its structure is missing), and
        ``"cost"`` prices every applicable path from the zone map's
        cardinality estimates and picks the cheapest.  Every mode
        returns bit-identical results; only the work done per query
        differs.
    """

    dbsize: int = 1000
    update_fraction: float = 0.20
    epochs: int = 10
    queries_per_epoch: int = 1000
    column: str = "a"
    seed: int = DEFAULT_SEED
    histogram_bins: int = 64
    plan: str = field(default_factory=default_plan)

    def __post_init__(self) -> None:
        check_positive_int(self.dbsize, "dbsize")
        check_fraction(self.update_fraction, "update_fraction")
        check_positive_int(self.epochs, "epochs")
        check_non_negative_int(self.queries_per_epoch, "queries_per_epoch")
        check_non_negative_int(self.histogram_bins, "histogram_bins")
        check_in(self.plan, PLAN_MODES, "plan")
        if not self.column:
            raise ValueError("column name must be non-empty")
        if self.batch_size < 1:
            raise ValueError(
                f"dbsize * update_fraction must round to >= 1 tuple per "
                f"batch, got {self.dbsize} * {self.update_fraction}"
            )

    @property
    def batch_size(self) -> int:
        """Tuples inserted (and forgotten) per epoch: F = dbsize · upd-perc."""
        return int(round(self.dbsize * self.update_fraction))

    @property
    def total_insertions(self) -> int:
        """Tuples ever inserted over a full run."""
        return self.dbsize + self.epochs * self.batch_size

    def with_(self, **changes) -> "SimulationConfig":
        """Return a copy with the given fields replaced.

        >>> SimulationConfig().with_(update_fraction=0.8).batch_size
        800
        """
        return replace(self, **changes)
