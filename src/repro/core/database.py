"""The public facade: a database that forgets.

:class:`AmnesiaDatabase` is the library's "downstream user" API: a
single-table columnar store with a tuple budget and a pluggable amnesia
policy.  Unlike the :class:`~repro.core.simulator.AmnesiaSimulator`
(which drives scripted experiments), the facade is event-driven — every
insert advances the timeline and triggers forgetting as soon as the
budget is exceeded, and queries can be issued at any point.

>>> import numpy as np
>>> from repro.amnesia import FifoAmnesia
>>> db = AmnesiaDatabase(budget=100, policy=FifoAmnesia(), columns=("a",))
>>> _ = db.insert({"a": np.arange(150)})
>>> db.active_count
100
>>> db.range_query("a", 0, 50).rf   # the first 50 rows were forgotten
0
"""

from __future__ import annotations

import numpy as np

from .._util.errors import ConfigError
from .._util.rng import DEFAULT_SEED, spawn
from .._util.validation import check_in, checked_int64
from ..amnesia.base import AmnesiaPolicy
from ..indexes.base import Index
from ..indexes.brin import BlockRangeIndex
from ..indexes.hash_index import HashIndex
from ..indexes.sorted_index import SortedIndex
from ..query.executor import QueryExecutor
from ..query.planner import PLAN_MODES, QueryPlanner
from ..query.predicates import RangePredicate
from ..query.queries import (
    AggregateFunction,
    AggregateQuery,
    AggregateResult,
    RangeQuery,
    RangeResult,
)
from ..stats.table_stats import TableHistogramStats
from ..storage.cohorts import CohortZoneMap
from ..storage.compressed import CompressedCohortStore
from ..storage.table import Table
from .config import (
    COMPRESS_MODES,
    STATS_MODES,
    default_compress,
    default_plan,
    default_stats,
)

__all__ = ["AmnesiaDatabase"]

_INDEX_KINDS = {
    "sorted": SortedIndex,
    "hash": HashIndex,
    "brin": BlockRangeIndex,
}


class AmnesiaDatabase:
    """A self-pruning columnar store with a fixed tuple budget.

    Parameters
    ----------
    budget:
        Maximum number of active tuples (the paper's DBSIZE).
    policy:
        Amnesia strategy invoked whenever an insert pushes the active
        count above the budget.
    columns:
        Column names (all int64).
    seed:
        Seed for the policy's random stream.
    disposition:
        Optional forgotten-data disposition (see :mod:`repro.lifecycle`).
    plan:
        Query access-path mode (see :mod:`repro.query.planner`).  Any
        mode other than ``"scan"`` attaches a cohort zone map so range
        queries can prune cohorts (and, under ``"cost"``, feed the
        cardinality estimates); ``"index"`` plans additionally need
        an index created via :meth:`create_index`.  ``None`` (default)
        resolves to :func:`repro.core.config.default_plan`, so the
        CLI's ``--plan`` flag also reaches facade-backed experiments.
    value_bounds:
        Optional ``{column: (low, high)}`` invariants handed to the
        planner — a range shard declares its partition bounds here so
        out-of-range probes are answered from statistics alone.
    stats:
        Cardinality-statistics source (see
        :data:`repro.core.config.STATS_MODES`): ``"hist"`` attaches
        per-column :class:`~repro.stats.TableHistogramStats` so the
        planner's estimates track skewed value distributions;
        ``"uniform"`` keeps the zone map's per-cohort uniformity
        assumption.  ``None`` (default) resolves to
        :func:`repro.core.config.default_stats`, so the CLI's
        ``--stats`` flag reaches facade-backed experiments.  Estimate
        -only: query results are identical under either source.
    compress:
        Compressed-execution mode (see
        :data:`repro.core.config.COMPRESS_MODES`): ``"on"`` attaches a
        :class:`~repro.storage.CompressedCohortStore` — after every
        insert's budget enforcement, cohorts old enough to be cold are
        demoted into best-codec compressed blocks, and the planner's
        pruned access paths evaluate range predicates directly on the
        encoded form.  Skipped in ``"scan"`` plan mode like the zone
        map: the trust-nothing baseline reads raw columns only.
        ``None`` (default) resolves to
        :func:`repro.core.config.default_compress`, so the CLI's
        ``--compress`` flag reaches facade-backed experiments.
        Execution-only: query results are bit-identical either way.
    """

    def __init__(
        self,
        budget: int,
        policy: AmnesiaPolicy,
        columns=("a",),
        seed: int = DEFAULT_SEED,
        disposition=None,
        table_name: str = "amnesia_db",
        plan: str | None = None,
        value_bounds: dict | None = None,
        stats: str | None = None,
        compress: str | None = None,
    ):
        if budget < 1:
            raise ConfigError(f"budget must be >= 1, got {budget}")
        self.budget = int(budget)
        self.policy = policy
        self.table = Table(table_name, columns)
        if plan is None:
            plan = default_plan()
        self.plan_mode = check_in(plan, PLAN_MODES, "plan")
        if stats is None:
            stats = default_stats()
        self.stats_mode = check_in(stats, STATS_MODES, "stats")
        zone_map = (
            CohortZoneMap(self.table) if self.plan_mode != "scan" else None
        )
        # Like the zone map, histogram statistics are skipped in scan
        # mode: the trust-nothing baseline consults no estimates, so
        # maintaining them would be pure observer overhead.
        table_stats = (
            TableHistogramStats(self.table)
            if self.stats_mode == "hist" and self.plan_mode != "scan"
            else None
        )
        if compress is None:
            compress = default_compress()
        self.compress_mode = check_in(compress, COMPRESS_MODES, "compress")
        # Like the zone map, the compressed store is skipped in scan
        # mode: the trust-nothing baseline must read raw columns only,
        # which is what makes compressed execution checkable against it.
        self.compressed = (
            CompressedCohortStore(self.table)
            if self.compress_mode == "on" and self.plan_mode != "scan"
            else None
        )
        self.planner = QueryPlanner(
            self.table,
            mode=self.plan_mode,
            zone_map=zone_map,
            value_bounds=value_bounds,
            stats=table_stats,
            compressed=self.compressed,
        )
        self.executor = QueryExecutor(
            self.table, record_access=True, planner=self.planner
        )
        self._policy_rng = spawn(seed, "facade-policy")
        self._epoch = 0
        self._disposition = disposition
        if disposition is not None:
            self.table.add_observer(disposition)

    @classmethod
    def partitioned(
        cls,
        column: str,
        boundaries,
        total_budget: int,
        policy_factory,
        **kwargs,
    ):
        """Build a range-sharded store instead of a single table.

        The facade's entry point to :class:`~repro.partitioning.
        PartitionedAmnesiaDatabase`: same planner-routed semantics per
        shard, plus parallel fan-out (``workers=``) and traffic-driven
        rebalancing (``rebalance=``) — see that class for the keyword
        arguments, which pass through unchanged.
        """
        from ..partitioning.partitioned import PartitionedAmnesiaDatabase

        return PartitionedAmnesiaDatabase(
            column, boundaries, total_budget, policy_factory, **kwargs
        )

    # -- state ---------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Current timeline position (one tick per insert call)."""
        return self._epoch

    @property
    def active_count(self) -> int:
        """Tuples currently visible to queries."""
        return self.table.active_count

    @property
    def total_rows(self) -> int:
        """Tuples ever inserted."""
        return self.table.total_rows

    @property
    def disposition(self):
        """The forgotten-data disposition, if any."""
        return self._disposition

    # -- writes -----------------------------------------------------------

    def advance_epoch_to(self, epoch: int) -> None:
        """Fast-forward the timeline without inserting.

        Used when a shard's history is migrated into a fresh database
        (partition boundary splits/merges): the batches were replayed
        with their original epochs, so the clock must resume from the
        source shard's epoch, not from zero.
        """
        if epoch < self._epoch:
            raise ConfigError(
                f"cannot rewind epoch from {self._epoch} to {epoch}"
            )
        self._epoch = int(epoch)

    def insert(self, values_by_column: dict) -> np.ndarray:
        """Insert a batch; forget down to the budget if needed.

        Returns the positions of the inserted rows.  Each call advances
        the epoch by one, so policies measuring age-in-epochs see every
        insert batch as a new cohort.  Values are cast to ``int64``
        with a lossless-cast check: a float like ``2.7`` raises
        :class:`~repro._util.errors.QueryError` instead of silently
        truncating to ``2``.
        """
        values_by_column = {
            name: checked_int64(
                values, f"insert values for column {name!r}"
            )
            for name, values in values_by_column.items()
        }
        self._epoch += 1
        positions = self.table.insert_batch(self._epoch, values_by_column)
        self.policy.on_insert(self.table, positions, self._epoch)
        self.enforce_budget()
        if self.compressed is not None:
            # Age-based demotion keyed on the insert timeline alone, so
            # every configuration demotes the same cohorts at the same
            # epochs (results are plan/worker independent either way).
            self.compressed.demote_cold(self._epoch)
        return positions

    def enforce_budget(self) -> None:
        """Forget down to the budget now (used after budget changes)."""
        excess = max(self.table.active_count - self.budget, 0)
        if excess == 0 and not self.policy.allows_overshoot:
            return
        # Overshooting policies (privacy wrappers) must run every epoch
        # even when the budget holds: mandatory purges do not wait for
        # storage pressure.
        victims = self.policy.select_victims(
            self.table, excess, self._epoch, self._policy_rng
        )
        victims = self.policy.validate_victims(self.table, victims, excess)
        if victims.size:
            self.table.forget(victims, self._epoch)

    # -- reads ---------------------------------------------------------------

    def range_query(self, column: str, low: int, high: int) -> RangeResult:
        """``SELECT * WHERE low <= column < high`` with precision bookkeeping."""
        query = RangeQuery(RangePredicate(column, low, high))
        return self.executor.execute_range(query, self._epoch)

    @staticmethod
    def _aggregate_query(
        function: AggregateFunction | str,
        column: str,
        low: int | None,
        high: int | None,
    ) -> AggregateQuery:
        """Validate window bounds and build the query (shared by both
        the scalar and the moments aggregate paths)."""
        if (low is None) != (high is None):
            raise ConfigError("supply both low and high, or neither")
        predicate = None
        if low is not None and high is not None:
            predicate = RangePredicate(column, low, high)
        return AggregateQuery(AggregateFunction(function), column, predicate)

    def aggregate(
        self,
        function: AggregateFunction | str,
        column: str,
        low: int | None = None,
        high: int | None = None,
    ) -> AggregateResult:
        """Aggregate over the whole table or over a range window."""
        query = self._aggregate_query(function, column, low, high)
        return self.executor.execute_aggregate(query, self._epoch)

    def aggregate_moments(
        self,
        function: AggregateFunction | str,
        column: str,
        low: int | None = None,
        high: int | None = None,
    ):
        """Mergeable twin of :meth:`aggregate`: (active, missed) moments.

        Same validation and planner-routed execution as
        :meth:`aggregate`, but returns per-view
        :class:`~repro.stats.StreamingMoments` for callers (the
        partitioned store) that must merge across databases before
        finalizing.
        """
        query = self._aggregate_query(function, column, low, high)
        return self.executor.execute_moments(query, self._epoch)

    # -- persistence ------------------------------------------------------

    def checkpoint(self, path):
        """Save this database to ``path`` (see :func:`repro.storage.save_store`).

        The checkpoint carries the table (values, activity, metadata,
        cohorts) plus the facade state a restore cannot rederive:
        budget, epoch, plan and stats modes, and the policy name.
        Restore with :func:`repro.storage.load_store`, supplying a
        ``policy_factory`` — policy objects themselves are not
        serialized (they rebuild their bookkeeping from the restored
        table, like indexes do).
        """
        from ..storage.io import save_store

        return save_store(self, path)

    # -- indexing ---------------------------------------------------------

    def create_index(self, column: str, kind: str = "sorted", **kwargs) -> Index:
        """Create an index on ``column`` and register it with the planner.

        ``kind`` is one of ``"sorted"``, ``"hash"``, ``"brin"``; extra
        keyword arguments go to the index constructor.  The index is
        built from the table's current state (late creation is safe)
        and maintained through the observer protocol afterwards.
        """
        factory = _INDEX_KINDS.get(kind)
        if factory is None:
            raise ConfigError(
                f"unknown index kind {kind!r}; "
                f"choose from {tuple(_INDEX_KINDS)}"
            )
        return self.planner.register_index(factory(self.table, column, **kwargs))

    # -- introspection -----------------------------------------------------------

    def explain(self, column: str, low: int, high: int):
        """Preview the access path for a range query without running it."""
        return self.planner.explain(RangePredicate(column, low, high))

    def plan_report(self) -> str:
        """EXPLAIN-style report of the planner's activity so far."""
        return self.planner.plan_report()

    def stats(self) -> dict:
        """Operational snapshot for dashboards and examples."""
        return {
            "epoch": self._epoch,
            "budget": self.budget,
            "active_rows": self.table.active_count,
            "total_rows": self.table.total_rows,
            "forgotten_rows": self.table.forgotten_count,
            "policy": self.policy.name,
            "cohorts": len(self.table.cohorts),
            "plan": self.plan_mode,
            "stats": self.stats_mode,
            "compress": self.compress_mode,
            "compressed": (
                None if self.compressed is None else self.compressed.byte_report()
            ),
        }

    def __repr__(self) -> str:
        return (
            f"AmnesiaDatabase(budget={self.budget}, policy={self.policy.name!r}, "
            f"active={self.active_count}/{self.total_rows})"
        )
