"""The Data Amnesia Simulator (paper §2).

Drives the full experimental loop in a "query dominant environment,
where a batch of queries is followed by a batch of updates, immediately
followed by applying an amnesia algorithm to guarantee that the
database is always of DBSIZE" (§2.3):

.. code-block:: text

    epoch 0:   load DBSIZE tuples
    epoch e:   run Q queries      -> precision metrics, access counts
               insert F tuples    -> cohort e
               forget >= F tuples -> storage budget restored
               snapshot           -> amnesia map row, epoch report

The simulator owns three independent random streams (data, queries,
policy), all derived from ``config.seed`` by name, so any component can
be swapped without perturbing the others' randomness.
"""

from __future__ import annotations

import numpy as np

from .._util.errors import ConfigError
from .._util.rng import spawn
from ..amnesia.base import AmnesiaPolicy
from ..datagen.distributions import ValueDistribution
from ..metrics.maps import AmnesiaMap
from ..metrics.precision import BatchPrecisionCollector
from ..metrics.reports import EpochReport, RunReport
from ..indexes.sorted_index import SortedIndex
from ..query.executor import QueryExecutor
from ..query.generators import RangeQueryGenerator
from ..query.planner import QueryPlanner
from ..stats.divergence import js_divergence
from ..stats.histograms import EquiWidthHistogram
from ..stats.table_stats import TableHistogramStats
from ..storage.cohorts import CohortZoneMap
from ..storage.compressed import CompressedCohortStore
from ..storage.table import Table
from .config import SimulationConfig

__all__ = ["AmnesiaSimulator"]


class AmnesiaSimulator:
    """Orchestrates one amnesia experiment.

    Parameters
    ----------
    config:
        Run parameters (budget, volatility, epochs, query batch size).
    distribution:
        Value distribution feeding the update stream.
    policy:
        The amnesia strategy under study.
    workload:
        Optional query generator (anything with a
        ``batch(table, n) -> list`` method).  Defaults to the paper's
        Figure 3 range-query generator at S = 0.01 anchored on active
        tuples.
    disposition:
        Optional forgotten-data disposition (see :mod:`repro.lifecycle`)
        registered as a table observer for the whole run.

    >>> from repro.amnesia import FifoAmnesia
    >>> from repro.datagen import UniformDistribution
    >>> sim = AmnesiaSimulator(
    ...     SimulationConfig(dbsize=100, epochs=2, queries_per_epoch=10),
    ...     UniformDistribution(1000),
    ...     FifoAmnesia(),
    ... )
    >>> report = sim.run()
    >>> [r.active_rows for r in report.epochs]
    [100, 100, 100]
    """

    def __init__(
        self,
        config: SimulationConfig,
        distribution: ValueDistribution,
        policy: AmnesiaPolicy,
        workload=None,
        disposition=None,
    ):
        self.config = config
        self.distribution = distribution
        self.policy = policy
        self._data_rng = spawn(config.seed, "data")
        self._policy_rng = spawn(config.seed, "policy")
        if workload is None and config.queries_per_epoch > 0:
            workload = RangeQueryGenerator(
                config.column,
                selectivity=0.01,
                anchor="active",
                rng=spawn(config.seed, "queries"),
            )
        self.workload = workload
        self.table = Table("amnesia_sim", [config.column])
        zone_map = (
            CohortZoneMap(self.table, columns=[config.column])
            if config.plan != "scan"
            else None
        )
        table_stats = (
            TableHistogramStats(self.table, columns=[config.column])
            if config.stats == "hist" and config.plan != "scan"
            else None
        )
        # Like the zone map, compressed execution is skipped in scan
        # mode: the trust-nothing baseline reads raw columns only.
        self.compressed = (
            CompressedCohortStore(self.table, columns=[config.column])
            if config.compress == "on" and config.plan != "scan"
            else None
        )
        self.planner = QueryPlanner(
            self.table,
            mode=config.plan,
            zone_map=zone_map,
            stats=table_stats,
            compressed=self.compressed,
        )
        if config.plan == "index":
            # Forced index mode would otherwise degrade to zone maps on
            # a bare table; give it the index it was asked to use.
            self.planner.register_index(SortedIndex(self.table, config.column))
        self.executor = QueryExecutor(
            self.table, record_access=True, planner=self.planner
        )
        self.map = AmnesiaMap()
        self._disposition = disposition
        if disposition is not None:
            self.table.add_observer(disposition)
        self._epoch = -1
        self._reports: list[EpochReport] = []

    # -- lifecycle -------------------------------------------------------

    @property
    def current_epoch(self) -> int:
        """Last completed epoch (-1 before the initial load)."""
        return self._epoch

    @property
    def reports(self) -> list[EpochReport]:
        """Epoch reports accumulated so far."""
        return list(self._reports)

    def plan_report(self) -> str:
        """EXPLAIN-style report of the planner's activity so far."""
        return self.planner.plan_report()

    def checkpoint(self, path, rotate: bool = False):
        """Save the simulator's table state to ``path``.

        Persists everything the table owns — values, activity bitmap,
        amnesia metadata, cohort log — via
        :func:`repro.storage.save_table`.  Restore with
        :func:`repro.storage.load_table`; config, policy and RNG
        streams rebuild from code (they are inputs, not state), so a
        resumed study re-declares them and adopts the restored table.
        With ``rotate=True`` the previous checkpoint survives as
        ``path.prev`` for :func:`repro.storage.recover_store`.
        """
        from ..storage.io import save_table

        return save_table(self.table, path, rotate=rotate)

    def _auto_checkpoint(self) -> None:
        """Per-epoch durability: checkpoint when the config asks for it.

        Rotation keeps the previous epoch's snapshot as ``.prev``, so
        a crash *during* this save (or anywhere between two saves)
        always leaves a fully-valid checkpoint for ``repro recover``.
        """
        if self.config.checkpoint:
            self.checkpoint(self.config.checkpoint, rotate=True)

    def load_initial(self) -> EpochReport:
        """Epoch 0: fill the table up to DBSIZE."""
        if self._epoch >= 0:
            raise ConfigError("initial load already performed")
        values = self.distribution.sample(self.config.dbsize, self._data_rng)
        self.table.insert_batch(0, {self.config.column: values})
        self.policy.on_insert(self.table, self.table.cohorts[0].positions(), 0)
        self._epoch = 0
        report = self._snapshot(inserted=self.config.dbsize, forgotten=0, precision=None)
        self._auto_checkpoint()
        return report

    def step(self) -> EpochReport:
        """Advance one epoch: queries, then inserts, then amnesia."""
        if self._epoch < 0:
            raise ConfigError("call load_initial() before step()")
        epoch = self._epoch + 1

        precision = self._run_query_batch(epoch)
        inserted = self._run_insert_batch(epoch)
        forgotten = self._run_amnesia(epoch)
        if self.compressed is not None:
            # Demote cohorts that just went cold; age-based, so the
            # demotion schedule depends only on the epoch sequence.
            self.compressed.demote_cold(epoch)

        self._epoch = epoch
        report = self._snapshot(
            inserted=inserted, forgotten=forgotten, precision=precision
        )
        self._auto_checkpoint()
        return report

    def run(self) -> RunReport:
        """Execute the configured number of epochs and return the report."""
        if self._epoch < 0:
            self.load_initial()
        while self._epoch < self.config.epochs:
            self.step()
        return RunReport(
            policy_name=self.policy.name,
            distribution_name=self.distribution.name,
            dbsize=self.config.dbsize,
            update_fraction=self.config.update_fraction,
            epochs=list(self._reports),
        )

    # -- phases ------------------------------------------------------------

    def _run_query_batch(self, epoch: int):
        if self.workload is None or self.config.queries_per_epoch == 0:
            return None
        collector = BatchPrecisionCollector()
        queries = self.workload.batch(self.table, self.config.queries_per_epoch)
        for query in queries:
            collector.add(self.executor.execute(query, epoch))
        return collector.summary()

    def _run_insert_batch(self, epoch: int) -> int:
        n = self.config.batch_size
        values = self.distribution.sample(n, self._data_rng)
        positions = self.table.insert_batch(epoch, {self.config.column: values})
        self.policy.on_insert(self.table, positions, epoch)
        return n

    def _run_amnesia(self, epoch: int) -> int:
        quota = max(self.table.active_count - self.config.dbsize, 0)
        if quota == 0 and not self.policy.allows_overshoot:
            # A previous overshoot (privacy purge) left the table under
            # budget; nothing to forget this round.
            return 0
        # Overshooting policies run every epoch: mandatory purges do
        # not wait for storage pressure.
        victims = self.policy.select_victims(
            self.table, quota, epoch, self._policy_rng
        )
        victims = self.policy.validate_victims(self.table, victims, quota)
        if victims.size == 0:
            return 0
        return self.table.forget(victims, epoch)

    # -- reporting --------------------------------------------------------------

    def _divergence(self) -> float | None:
        bins = self.config.histogram_bins
        if bins == 0:
            return None
        all_values = self.table.values(self.config.column)
        if all_values.size == 0:
            return None
        lo, hi = int(all_values.min()), int(all_values.max())
        oracle = EquiWidthHistogram.from_values(all_values, lo, hi, bins=bins)
        active = EquiWidthHistogram.from_values(
            self.table.active_values(self.config.column), lo, hi, bins=bins
        )
        return js_divergence(active.counts, oracle.counts)

    def _snapshot(self, inserted: int, forgotten: int, precision) -> EpochReport:
        activity = self.table.cohort_activity()
        self.map.add_snapshot(self._epoch, activity)
        report = EpochReport(
            epoch=self._epoch,
            active_rows=self.table.active_count,
            total_rows=self.table.total_rows,
            inserted=inserted,
            forgotten=forgotten,
            precision=precision,
            cohort_activity=activity,
            divergence_js=self._divergence(),
        )
        self._reports.append(report)
        return report
