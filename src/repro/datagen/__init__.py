"""Data generators: the paper's four value distributions + update streams."""

from .distributions import (
    DEFAULT_DOMAIN,
    DISTRIBUTION_NAMES,
    NormalDistribution,
    SerialDistribution,
    UniformDistribution,
    ValueDistribution,
    ZipfianDistribution,
    make_distribution,
)
from .streams import UpdateStream

__all__ = [
    "DEFAULT_DOMAIN",
    "DISTRIBUTION_NAMES",
    "NormalDistribution",
    "SerialDistribution",
    "UniformDistribution",
    "ValueDistribution",
    "ZipfianDistribution",
    "make_distribution",
    "UpdateStream",
]
