"""Value distributions for the simulated data streams.

Paper §2.1 uses four prototypical distributions over the integer range
``R = 0..DOMAIN``:

* **serial** — an auto-increment key, modelling temporal insertion order;
* **uniform** — benchmark-style data (TPC-H);
* **normal** — centred on the domain mean with a standard deviation of
  20 % of the domain;
* **skewed** — a (bounded) Zipfian, modelling the Pareto 80–20 rule,
  where *some random values* are dominant.

Every distribution draws from a caller-supplied
:class:`numpy.random.Generator`, so data streams are reproducible and
independent of query/policy randomness.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from .._util.errors import ConfigError
from .._util.validation import check_positive_int

__all__ = [
    "ValueDistribution",
    "SerialDistribution",
    "UniformDistribution",
    "NormalDistribution",
    "ZipfianDistribution",
    "DISTRIBUTION_NAMES",
    "make_distribution",
]

#: Default upper bound of the value domain (paper leaves it open; 10 000
#: gives 10 distinct values per tuple at the paper's dbsize=1000).
DEFAULT_DOMAIN = 10_000


class ValueDistribution(ABC):
    """A stream of integer attribute values in ``[0, domain]``.

    Subclasses may be stateful (``serial`` is); :meth:`reset` restores
    the initial state so a distribution object can be reused across
    simulator runs.
    """

    #: Short name used in factory lookups, figures and CLI flags.
    name: str = "abstract"

    def __init__(self, domain: int = DEFAULT_DOMAIN):
        self.domain = check_positive_int(domain, "domain")

    @abstractmethod
    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` values as an ``int64`` array."""

    def reset(self) -> None:
        """Restore initial state (no-op for stateless distributions)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(domain={self.domain})"


class SerialDistribution(ValueDistribution):
    """Monotonically increasing values: an auto-increment key.

    Models "both an auto-increment key and a temporal order of tuple
    insertions" (§2.1).  The counter is unbounded by design — an
    auto-increment key does not wrap — so ``domain`` only scales the
    other distributions it is compared against.

    >>> d = SerialDistribution()
    >>> d.sample(3, np.random.default_rng(0)).tolist()
    [0, 1, 2]
    >>> d.sample(2, np.random.default_rng(0)).tolist()
    [3, 4]
    """

    name = "serial"

    def __init__(self, domain: int = DEFAULT_DOMAIN, start: int = 0):
        super().__init__(domain)
        if start < 0:
            raise ConfigError(f"start must be >= 0, got {start}")
        self._start = int(start)
        self._next = int(start)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        n = check_positive_int(n, "n")
        out = np.arange(self._next, self._next + n, dtype=np.int64)
        self._next += n
        return out

    def reset(self) -> None:
        self._next = self._start


class UniformDistribution(ValueDistribution):
    """Independent uniform draws over ``[0, domain]`` (TPC-H style)."""

    name = "uniform"

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        n = check_positive_int(n, "n")
        return rng.integers(0, self.domain + 1, size=n, dtype=np.int64)


class NormalDistribution(ValueDistribution):
    """Normal draws around the domain mean, σ = 20 % of the domain.

    Values are clipped into ``[0, domain]``; with σ = 0.2·domain the
    clipped mass is ~1.2 % per tail, which matches the paper's loose
    "normal data distributions around the DOMAIN range mean" spec.
    """

    name = "normal"

    def __init__(self, domain: int = DEFAULT_DOMAIN, sigma_fraction: float = 0.20):
        super().__init__(domain)
        if not 0.0 < sigma_fraction <= 1.0:
            raise ConfigError(
                f"sigma_fraction must be in (0, 1], got {sigma_fraction}"
            )
        self.sigma_fraction = float(sigma_fraction)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        n = check_positive_int(n, "n")
        mean = self.domain / 2.0
        sigma = self.domain * self.sigma_fraction
        draws = rng.normal(loc=mean, scale=sigma, size=n)
        return np.clip(np.rint(draws), 0, self.domain).astype(np.int64)


class ZipfianDistribution(ValueDistribution):
    """Bounded Zipfian draws: a few (random) values dominate.

    Rank ``k`` (1-based) is drawn with probability proportional to
    ``k**-theta`` over ``domain + 1`` ranks, then mapped to a concrete
    value through a random permutation of the domain, fixed per
    instance — "some (random) values are dominant" (§2.1).  The default
    ``theta = 1.2`` produces roughly the Pareto 80–20 concentration the
    paper cites.

    Sampling uses the inverse-CDF method over a precomputed table, so a
    draw is one binary search per value.
    """

    name = "zipfian"

    #: Domains larger than this would make the CDF table unreasonably
    #: large; the simulator targets laptop-scale domains anyway.
    MAX_TABLE = 1 << 24

    def __init__(
        self,
        domain: int = DEFAULT_DOMAIN,
        theta: float = 1.2,
        permutation_seed: int | None = 0,
    ):
        super().__init__(domain)
        if theta <= 0.0:
            raise ConfigError(f"theta must be > 0, got {theta}")
        if domain + 1 > self.MAX_TABLE:
            raise ConfigError(
                f"domain {domain} too large for tabulated Zipf (max {self.MAX_TABLE - 1})"
            )
        self.theta = float(theta)
        self.permutation_seed = permutation_seed
        ranks = np.arange(1, self.domain + 2, dtype=np.float64)
        weights = ranks ** (-self.theta)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        if permutation_seed is None:
            self._perm = np.arange(self.domain + 1, dtype=np.int64)
        else:
            perm_rng = np.random.default_rng(permutation_seed)
            self._perm = perm_rng.permutation(self.domain + 1).astype(np.int64)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        n = check_positive_int(n, "n")
        u = rng.random(n)
        ranks = np.searchsorted(self._cdf, u, side="left")
        return self._perm[ranks]

    def rank_probabilities(self) -> np.ndarray:
        """Probability of each rank (descending), for analysis/tests."""
        pmf = np.diff(self._cdf, prepend=0.0)
        return pmf


DISTRIBUTION_NAMES = ("serial", "uniform", "normal", "zipfian")

_FACTORIES = {
    "serial": SerialDistribution,
    "uniform": UniformDistribution,
    "normal": NormalDistribution,
    "zipfian": ZipfianDistribution,
}


def make_distribution(
    name: str, domain: int = DEFAULT_DOMAIN, **kwargs
) -> ValueDistribution:
    """Build a distribution by short name.

    >>> make_distribution("uniform").name
    'uniform'
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown distribution {name!r}; choose from {DISTRIBUTION_NAMES}"
        ) from None
    return factory(domain=domain, **kwargs)
