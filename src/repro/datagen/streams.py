"""Update streams: turning distributions into insert batches.

The simulator's workload is "a batch of queries ... followed by a batch
of updates" (§2.3).  An :class:`UpdateStream` produces those update
batches: each batch is a dict ``{column: int64 array}`` ready for
:meth:`repro.storage.Table.insert_batch`.

A stream can drive several columns with distinct distributions, which
the multi-column examples use (e.g. a sensor id column plus a reading
column).
"""

from __future__ import annotations

import numpy as np

from .._util.errors import ConfigError
from .._util.rng import make_rng
from .._util.validation import check_positive_int
from .distributions import ValueDistribution

__all__ = ["UpdateStream"]


class UpdateStream:
    """Generates insert batches from per-column distributions.

    >>> from repro.datagen import SerialDistribution, UniformDistribution
    >>> stream = UpdateStream(
    ...     {"k": SerialDistribution(), "v": UniformDistribution(100)},
    ...     rng=42,
    ... )
    >>> batch = stream.next_batch(3)
    >>> batch["k"].tolist()
    [0, 1, 2]
    >>> len(batch["v"])
    3
    """

    def __init__(
        self,
        distributions: dict[str, ValueDistribution],
        rng: int | np.random.Generator | None = None,
    ):
        if not distributions:
            raise ConfigError("UpdateStream needs at least one column distribution")
        self._distributions = dict(distributions)
        self._rng = make_rng(rng)
        self._batches_produced = 0
        self._rows_produced = 0

    @property
    def column_names(self) -> tuple[str, ...]:
        """Columns this stream produces."""
        return tuple(self._distributions)

    @property
    def batches_produced(self) -> int:
        """How many batches have been generated so far."""
        return self._batches_produced

    @property
    def rows_produced(self) -> int:
        """How many rows have been generated so far."""
        return self._rows_produced

    def next_batch(self, n: int) -> dict[str, np.ndarray]:
        """Produce the next batch of ``n`` rows."""
        n = check_positive_int(n, "batch size")
        batch = {
            name: dist.sample(n, self._rng)
            for name, dist in self._distributions.items()
        }
        self._batches_produced += 1
        self._rows_produced += n
        return batch

    def reset(self, rng: int | np.random.Generator | None = None) -> None:
        """Reset stream state (and stateful distributions such as serial)."""
        for dist in self._distributions.values():
            dist.reset()
        if rng is not None:
            self._rng = make_rng(rng)
        self._batches_produced = 0
        self._rows_produced = 0
