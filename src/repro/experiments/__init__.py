"""Experiment reproductions: one module per paper figure/table + ablations.

See DESIGN.md §3 for the experiment index.  Every ``run_*`` function
returns an :class:`~repro.experiments.runner.ExperimentResult` whose
``data`` dict carries raw series for programmatic assertions and whose
``render()`` produces the printable report.
"""

from .ablations import (
    run_ante_bias_ablation,
    run_area_ablation,
    run_rot_ablation,
)
from .aggregates import run_aggregate_precision
from .coldstore_exp import run_coldstore_economics
from .cross_table import run_cross_table
from .compression_exp import run_compression_budget
from .dispositions_exp import run_dispositions
from .extensions_exp import run_distribution_alignment, run_pair_preservation
from .extras import (
    run_adaptive_partitioning,
    run_decay_comparison,
    run_histogram_summaries,
    run_referential_integrity,
)
from .figure1 import run_figure1
from .figure2 import run_figure2
from .figure3 import run_figure3
from .runner import ExperimentResult, default_config, run_once, sweep_policies
from .selectivity import run_selectivity
from .volatility import run_volatility

#: Experiment id -> runner, as indexed in DESIGN.md §3.
EXPERIMENTS = {
    "F1": run_figure1,
    "F2": run_figure2,
    "F3": run_figure3,
    "T1": run_volatility,
    "T2": run_aggregate_precision,
    "T3": run_selectivity,
    "A1": run_area_ablation,
    "A2": run_rot_ablation,
    "A2b": run_ante_bias_ablation,
    "A3": run_pair_preservation,
    "A4": run_distribution_alignment,
    "C1": run_coldstore_economics,
    "C2": run_compression_budget,
    "I1": run_dispositions,
    "X1": run_decay_comparison,
    "X2": run_adaptive_partitioning,
    "X3": run_referential_integrity,
    "X4": run_histogram_summaries,
    "X5": run_cross_table,
}

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "default_config",
    "run_once",
    "sweep_policies",
    "run_adaptive_partitioning",
    "run_cross_table",
    "run_decay_comparison",
    "run_histogram_summaries",
    "run_referential_integrity",
    "run_ante_bias_ablation",
    "run_area_ablation",
    "run_rot_ablation",
    "run_aggregate_precision",
    "run_coldstore_economics",
    "run_compression_budget",
    "run_dispositions",
    "run_distribution_alignment",
    "run_pair_preservation",
    "run_figure1",
    "run_figure2",
    "run_figure3",
    "run_selectivity",
    "run_volatility",
]
