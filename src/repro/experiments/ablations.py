"""Experiments A1/A2 — ablations over the under-specified knobs.

The paper leaves two policy parameters open; DESIGN.md commits to
defaults and these sweeps justify them:

* A1 — the area policy's hole count K ("say K"): K=1 grows one giant
  hole (FIFO-like contiguity), large K approaches uniform speckle.
* A2 — rot's high-water mark ("been part of the database long enough")
  and frequency exponent: hwm=0 lets rot eat fresh unqueried tuples
  (anterograde drift); exponent 0 removes the frequency shield
  entirely (degrades to uniform).
"""

from __future__ import annotations

import numpy as np

from ..plotting.tables import render_table
from .runner import ExperimentResult, default_config, run_once

__all__ = ["run_area_ablation", "run_rot_ablation", "run_ante_bias_ablation"]


def _transition_count(active_mask: np.ndarray) -> int:
    """Active/forgotten boundaries along the storage space.

    One giant hole has 2 boundaries; speckle has many.  This is the
    direct measure of how contiguous the mold areas grew.
    """
    if active_mask.size < 2:
        return 0
    return int(np.count_nonzero(np.diff(active_mask.astype(np.int8)) != 0))


def run_area_ablation(
    dbsize: int = 1000,
    update_fraction: float = 0.20,
    epochs: int = 10,
    queries_per_epoch: int = 200,
    seed: int | None = None,
    ks=(1, 4, 16, 64),
) -> ExperimentResult:
    """A1: sweep the number of concurrent mold areas."""
    overrides = {
        "dbsize": dbsize,
        "update_fraction": update_fraction,
        "epochs": epochs,
        "queries_per_epoch": queries_per_epoch,
    }
    if seed is not None:
        overrides["seed"] = seed
    config = default_config(**overrides)

    rows = []
    data = {}
    for k in ks:
        simulator, report = run_once(
            config, "uniform", "area", policy_kwargs={"max_areas": k}
        )
        transitions = _transition_count(simulator.table.active_mask())
        final_e = report.precision_series()[-1]
        rows.append(
            [k, round(final_e, 4), transitions, len(simulator.policy.areas)]
        )
        data[k] = {
            "final_E": final_e,
            "transitions": transitions,
            "cohorts": simulator.map.final_fractions().tolist(),
        }
    table = render_table(
        ["K (max areas)", "E final", "hole boundaries", "areas grown"],
        rows,
        title="A1: area amnesia hole-count sweep",
    )
    return ExperimentResult(
        experiment_id="A1",
        title="Area policy: number of mold areas",
        data={"by_k": data},
        tables=[table],
    )


def run_ante_bias_ablation(
    dbsize: int = 1000,
    update_fraction: float = 0.20,
    epochs: int = 10,
    seed: int | None = None,
    biases=(2.0, 4.0, 6.0, 8.0, 12.0),
) -> ExperimentResult:
    """A2b: sweep the anterograde recency-bias exponent.

    The paper specifies anterograde amnesia only as "choosing randomly
    mostly recently added tuples to be forgotten"; the bias exponent is
    our concretisation.  The sweep shows the Figure 1 trade: a larger
    bias retains more of the initial cohort ("retains most of the data
    at point 0") while deepening the black hole over the oldest
    updates — DESIGN.md's default of 6 sits where cohort 0 keeps a
    clear majority.
    """
    overrides = {
        "dbsize": dbsize,
        "update_fraction": update_fraction,
        "epochs": epochs,
        "queries_per_epoch": 0,
    }
    if seed is not None:
        overrides["seed"] = seed
    config = default_config(**overrides)

    rows = []
    data = {}
    for bias in biases:
        simulator, _ = run_once(
            config, "serial", "ante", policy_kwargs={"bias": bias}
        )
        fractions = simulator.map.final_fractions()
        initial = float(fractions[0])
        hole = float(fractions[1:5].mean())
        tail = float(fractions[-1])
        rows.append(
            [bias, round(initial, 4), round(hole, 4), round(tail, 4)]
        )
        data[bias] = {
            "initial_cohort": initial,
            "black_hole": hole,
            "newest_cohort": tail,
        }
    table = render_table(
        ["bias", "initial cohort active", "oldest updates active", "newest cohort active"],
        rows,
        title="A2b: anterograde recency-bias sweep (serial data)",
    )
    return ExperimentResult(
        experiment_id="A2b",
        title="Anterograde policy: recency bias",
        data={"by_bias": data},
        tables=[table],
    )


def run_rot_ablation(
    dbsize: int = 1000,
    update_fraction: float = 0.20,
    epochs: int = 10,
    queries_per_epoch: int = 500,
    seed: int | None = None,
    high_water_marks=(0, 1, 2, 4),
    frequency_exponents=(0.0, 1.0, 2.0),
    distribution: str = "zipfian",
) -> ExperimentResult:
    """A2: sweep rot's high-water mark and frequency shield."""
    overrides = {
        "dbsize": dbsize,
        "update_fraction": update_fraction,
        "epochs": epochs,
        "queries_per_epoch": queries_per_epoch,
    }
    if seed is not None:
        overrides["seed"] = seed
    config = default_config(**overrides)

    rows = []
    data = {}
    for hwm in high_water_marks:
        for exponent in frequency_exponents:
            _, report = run_once(
                config,
                distribution,
                "rot",
                policy_kwargs={
                    "high_water_mark": hwm,
                    "frequency_exponent": exponent,
                },
            )
            series = report.precision_series()
            final_e = series[-1]
            newest_fraction = report.final_epoch().cohort_activity.get(
                epochs, 0.0
            )
            rows.append(
                [hwm, exponent, round(final_e, 4), round(newest_fraction, 4)]
            )
            data[(hwm, exponent)] = {
                "final_E": final_e,
                "newest_cohort_active": newest_fraction,
            }
    table = render_table(
        ["high-water mark", "freq exponent", "E final", "newest cohort active"],
        rows,
        title=f"A2: rot amnesia knob sweep ({distribution} data)",
    )
    return ExperimentResult(
        experiment_id="A2",
        title="Rot policy: high-water mark and frequency shield",
        data={"by_knobs": {f"hwm={k[0]},exp={k[1]}": v for k, v in data.items()}},
        tables=[table],
    )
