"""Experiment T2 — §4.3: aggregate query precision.

"To study this, we increased the experimental run length and study the
query SELECT AVG(a) FROM t.  To our surprise the differences were
marginal and the graphs came out similar to Figure 3."

Two readings of "precision" are reported, because the paper's claim
covers both:

* *tuple precision* — the fraction of the tuples feeding the aggregate
  that survived (RF/(RF+MF)); this literally reproduces Figure 3's
  decay, confirming "similar to Figure 3";
* *value precision* — 1 − relative error of the AVG itself; this stays
  near 1.0 under value-blind policies, the paper's own §2.2 intuition
  that "the error introduced vanishes behind the noise".

A windowed variant (AVG over a ±5 % range, "the focus of aggregation
can be directed to a specific part of the database") runs alongside.
"""

from __future__ import annotations

import numpy as np

from .._util.rng import spawn
from ..amnesia.registry import FIGURE3_POLICIES
from ..plotting.linechart import render_linechart
from ..plotting.tables import render_table
from ..query.generators import AggregateQueryGenerator
from .runner import ExperimentResult, default_config, run_once

__all__ = ["run_aggregate_precision"]


def _avg_workload(column: str, seed: int, predicate_selectivity: float | None):
    return AggregateQueryGenerator(
        column,
        predicate_selectivity=predicate_selectivity,
        anchor="active",
        rng=spawn(seed, "t2-agg"),
    )


def run_aggregate_precision(
    dbsize: int = 1000,
    update_fraction: float = 0.80,
    epochs: int = 30,
    queries_per_epoch: int = 50,
    seed: int | None = None,
    distributions=("uniform", "zipfian"),
    policies=FIGURE3_POLICIES,
    predicate_selectivity: float | None = None,
) -> ExperimentResult:
    """Reproduce the §4.3 aggregate study over a longer run."""
    overrides = {
        "dbsize": dbsize,
        "update_fraction": update_fraction,
        "epochs": epochs + 1,
        "queries_per_epoch": queries_per_epoch,
    }
    if seed is not None:
        overrides["seed"] = seed
    config = default_config(**overrides)

    tuple_panels: dict[str, dict[str, list[float]]] = {}
    value_panels: dict[str, dict[str, list[float]]] = {}
    charts: list[str] = []
    tables: list[str] = []

    for dist_name in distributions:
        tuple_series: dict[str, list[float]] = {}
        value_series: dict[str, list[float]] = {}
        for policy_name in policies:
            workload = _avg_workload(
                config.column, config.seed, predicate_selectivity
            )
            policy_kwargs = {"column": config.column} if policy_name in ("pair", "dist", "stratified") else None
            _, report = run_once(
                config,
                dist_name,
                policy_name,
                workload=workload,
                policy_kwargs=policy_kwargs,
            )
            tuple_series[policy_name] = report.precision_series()[1:]
            value_series[policy_name] = report.aggregate_precision_series()[1:]
        tuple_panels[dist_name] = tuple_series
        value_panels[dist_name] = value_series

        charts.append(
            render_linechart(
                {k: np.asarray(v) for k, v in tuple_series.items()},
                title=(
                    f"§4.3 aggregate tuple precision — {dist_name} data "
                    f"(AVG, dbsize={dbsize}, upd-perc={update_fraction})"
                ),
                x_label="update batches survived",
            )
        )
        rows = []
        for name in policies:
            rows.append(
                [
                    name,
                    round(tuple_series[name][-1], 4),
                    round(value_series[name][-1], 4),
                    round(float(np.mean(value_series[name])), 4),
                ]
            )
        tables.append(
            render_table(
                ["policy", "tuple E (final)", "AVG precision (final)", "AVG precision (mean)"],
                rows,
                title=f"Aggregate precision after {epochs} batches — {dist_name} data",
            )
        )

    # The paper's headline: the spread between policies is marginal.
    spreads = {
        dist: max(v[-1] for v in panel.values()) - min(v[-1] for v in panel.values())
        for dist, panel in value_panels.items()
    }
    tables.append(
        render_table(
            ["distribution", "final AVG-precision spread across policies"],
            [[d, round(s, 4)] for d, s in spreads.items()],
            title="Policy spread (marginal differences, §4.3)",
        )
    )

    return ExperimentResult(
        experiment_id="T2",
        title="Aggregate query precision (SELECT AVG(a) FROM t)",
        data={
            "tuple_precision": tuple_panels,
            "value_precision": value_panels,
            "spreads": spreads,
        },
        tables=tables,
        charts=charts,
    )
