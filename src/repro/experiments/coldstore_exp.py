"""Experiment C1 — §1's storage economics.

The paper's motivating arithmetic: Glacier-class cold storage is cheap
to keep ($48/TB·yr in 2016) but expensive and slow to touch ($2.5–30/TB,
up to 12 h), while hot storage inverts the trade.  This experiment runs
the same amnesia workload under each forgotten-data disposition and
prices the outcome per TB of forgotten data, alongside what information
each disposition can still produce.
"""

from __future__ import annotations

import numpy as np

from ..coldstore.cost_model import GLACIER_2016
from ..lifecycle.dispositions import (
    ColdStorageDisposition,
    HardDeleteDisposition,
    MarkOnlyDisposition,
    SummaryDisposition,
    StopIndexingDisposition,
)
from ..plotting.tables import render_table
from .runner import ExperimentResult, default_config, run_once

__all__ = ["run_coldstore_economics"]

_TB = 1024.0**4


def run_coldstore_economics(
    dbsize: int = 1000,
    update_fraction: float = 0.20,
    epochs: int = 10,
    seed: int | None = None,
    recover_fraction: float = 0.01,
    horizon_years: float = 1.0,
) -> ExperimentResult:
    """Price each disposition on the paper's baseline workload."""
    model = GLACIER_2016
    dispositions = {
        "mark (keep hot)": MarkOnlyDisposition(),
        "stop-indexing": StopIndexingDisposition(),
        "delete": HardDeleteDisposition(),
        "cold storage": ColdStorageDisposition(),
        "summary": SummaryDisposition(),
    }
    overrides = {
        "dbsize": dbsize,
        "update_fraction": update_fraction,
        "epochs": epochs,
        "queries_per_epoch": 0,
    }
    if seed is not None:
        overrides["seed"] = seed
    config = default_config(**overrides)

    rows = []
    data = {}
    for label, disposition in dispositions.items():
        simulator, _ = run_once(
            config, "uniform", "uniform", disposition=disposition
        )
        table = simulator.table
        tuple_bytes = 8 * len(table.column_names)
        forgotten_bytes = table.forgotten_count * tuple_bytes

        # Where do the forgotten bytes live, and what do they cost?
        if isinstance(disposition, (MarkOnlyDisposition, StopIndexingDisposition)):
            keep_cost = model.hot_storage_cost(forgotten_bytes, horizon_years)
            resident_bytes = forgotten_bytes
            retention = "full (still on hot tier)"
        elif isinstance(disposition, ColdStorageDisposition):
            resident_bytes = disposition.store.stored_bytes
            keep_cost = model.cold_storage_cost(resident_bytes, horizon_years)
            retention = "full (on request)"
        elif isinstance(disposition, SummaryDisposition):
            resident_bytes = disposition.store.nbytes
            keep_cost = model.hot_storage_cost(resident_bytes, horizon_years)
            retention = "aggregates only"
        else:  # delete
            resident_bytes = 0
            keep_cost = 0.0
            retention = "none"

        # Cost of recovering a slice of the forgotten data.
        recover_bytes = int(forgotten_bytes * recover_fraction)
        if isinstance(disposition, ColdStorageDisposition):
            recover_cost = model.cold_retrieval_cost(recover_bytes)
            recover_hours = model.cold_retrieval_latency_hours
        elif isinstance(disposition, (MarkOnlyDisposition, StopIndexingDisposition)):
            recover_cost = model.hot_retrieval_cost(recover_bytes)
            recover_hours = model.hot_retrieval_latency_hours
        else:
            recover_cost = float("nan")
            recover_hours = float("nan")

        # Normalise to $/TB·yr of forgotten data so the scale of the
        # simulated run drops out (the paper argues in TB units).
        per_tb_year = (
            keep_cost / (forgotten_bytes / _TB) / horizon_years
            if forgotten_bytes
            else 0.0
        )
        rows.append(
            [
                label,
                table.forgotten_count,
                resident_bytes,
                round(per_tb_year, 2),
                round(recover_cost / max(recover_bytes / _TB, 1e-30), 2)
                if recover_bytes and not np.isnan(recover_cost)
                else None,
                round(recover_hours, 9) if not np.isnan(recover_hours) else None,
                retention,
            ]
        )
        data[label] = {
            "forgotten_tuples": table.forgotten_count,
            "resident_bytes": resident_bytes,
            "usd_per_tb_year": per_tb_year,
            "retention": retention,
        }

    rows.append(
        [
            "(breakeven)",
            None,
            None,
            None,
            None,
            None,
            f"hot wins above {model.breakeven_reads_per_year():.1f} full reads/yr",
        ]
    )
    table_text = render_table(
        [
            "disposition",
            "forgotten tuples",
            "aux bytes kept",
            "keep $/TB·yr",
            "recover $/TB",
            "recover latency (h)",
            "information retained",
        ],
        rows,
        title=(
            "C1: forgotten-data dispositions under the 2016 Glacier price "
            f"model (horizon {horizon_years} yr)"
        ),
    )
    return ExperimentResult(
        experiment_id="C1",
        title="Storage economics of forgetting",
        data={"dispositions": data},
        tables=[table_text],
    )
