"""Experiment C2 — §4.4: compression postpones forgetting.

"Data compression can be called upon to postpone the decisions to
forget data."  At a fixed *byte* budget, a compressed column packs more
tuples, so the storage-constrained database forgets later and retains
more precision.  The experiment measures, per data distribution:

1. bytes/value of each codec on a representative sample;
2. how many tuples the byte budget then holds;
3. the final error margin E of a simulator run whose DBSIZE is that
   tuple capacity (same insert stream for all codecs).
"""

from __future__ import annotations

import numpy as np

from .._util.rng import spawn
from ..compression.codecs import CODEC_NAMES, best_codec, make_codec
from ..datagen.distributions import DISTRIBUTION_NAMES, make_distribution
from ..plotting.tables import render_table
from .runner import ExperimentResult, default_config, run_once

__all__ = ["run_compression_budget"]


def run_compression_budget(
    budget_bytes: int = 16_384,
    batch_tuples: int = 400,
    epochs: int = 10,
    sample_size: int = 65_536,
    seed: int | None = None,
    distributions=DISTRIBUTION_NAMES,
) -> ExperimentResult:
    """Tuple capacity and precision at a fixed byte budget, per codec."""
    config_seed = default_config().seed if seed is None else seed

    codec_rows = []
    precision_rows = []
    data: dict[str, dict] = {}
    for dist_name in distributions:
        dist = make_distribution(dist_name)
        sample = dist.sample(sample_size, spawn(config_seed, f"c2-{dist_name}"))

        per_codec = {}
        for codec_name in CODEC_NAMES:
            block = make_codec(codec_name).encode(sample)
            per_codec[codec_name] = block.bytes_per_value
        best = best_codec(sample)
        codec_rows.append(
            [dist_name]
            + [round(per_codec[c], 3) for c in CODEC_NAMES]
            + [best.codec_name]
        )

        capacities = {
            "raw": int(budget_bytes / per_codec["raw"]),
            "best": int(budget_bytes / best.bytes_per_value),
        }
        finals = {}
        for label, capacity in capacities.items():
            capacity = max(capacity, batch_tuples + 1)
            config = default_config(
                dbsize=capacity,
                update_fraction=batch_tuples / capacity,
                epochs=epochs,
                queries_per_epoch=200,
                seed=config_seed,
            )
            _, report = run_once(config, dist_name, "uniform")
            finals[label] = report.precision_series()[-1]
        precision_rows.append(
            [
                dist_name,
                capacities["raw"],
                capacities["best"],
                round(finals["raw"], 4),
                round(finals["best"], 4),
            ]
        )
        data[dist_name] = {
            "bytes_per_value": per_codec,
            "best_codec": best.codec_name,
            "capacity_raw": capacities["raw"],
            "capacity_best": capacities["best"],
            "final_E_raw": finals["raw"],
            "final_E_best": finals["best"],
        }

    tables = [
        render_table(
            ["distribution"] + list(CODEC_NAMES) + ["best"],
            codec_rows,
            title=f"C2a: encoded bytes/value ({sample_size} samples)",
        ),
        render_table(
            [
                "distribution",
                "tuples @ budget (raw)",
                "tuples @ budget (best codec)",
                "E final (raw)",
                "E final (compressed)",
            ],
            precision_rows,
            title=(
                f"C2b: precision at a {budget_bytes} B budget "
                f"({batch_tuples} tuples/batch, {epochs} batches)"
            ),
        ),
    ]
    return ExperimentResult(
        experiment_id="C2",
        title="Compression postpones forgetting",
        data=data,
        tables=tables,
    )
