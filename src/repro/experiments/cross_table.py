"""X5 — cross-table queries over independently forgetting streams.

The paper studies one table under one amnesia policy; the moment
several per-sensor streams coexist (each with its own policy, budget
and therefore its own forgetting trajectory), recall becomes a
*cross-table* planning problem: a join must account for pairs that
either side has forgotten.  This experiment drives two Zipf-skewed
sensor streams under different policies, executes the configured
cross-table query (``SimulationConfig.cross_query``, settable via the
CLI's ``--query``) after every update batch, and reports how the
merged RF/MF/precision decays as the two amnesia streams interact.
"""

from __future__ import annotations

import numpy as np

from .._util.rng import DEFAULT_SEED, derive_seed
from ..amnesia.registry import make_policy
from ..core.config import SimulationConfig
from ..core.database import AmnesiaDatabase
from ..datagen.distributions import ZipfianDistribution
from ..indexes import SortedIndex
from ..plotting.tables import render_table
from ..query.plans import StreamedAggregate
from ..storage.catalog import Catalog
from .runner import ExperimentResult

__all__ = ["run_cross_table"]

#: Per-sensor amnesia: s1 rots (access-frequency-shielded), s2 is FIFO
#: — two genuinely different forgetting trajectories meeting in one
#: query.
SENSOR_POLICIES = {"s1": "rot", "s2": "fifo"}


def run_cross_table(
    budget: int = 250,
    batches: int = 8,
    batch_size: int = 200,
    domain: int = 1000,
    seed: int | None = None,
) -> ExperimentResult:
    """X5: precision of a union/join across two forgetting sensors."""
    seed = DEFAULT_SEED if seed is None else seed
    config = SimulationConfig(seed=seed)
    spec = config.cross_query
    catalog = Catalog(plan=config.plan, workers=config.workers)
    sensors = {}
    for name, policy_name in SENSOR_POLICIES.items():
        db = AmnesiaDatabase(
            budget=budget,
            policy=make_policy(policy_name),
            seed=derive_seed(seed, f"sensor-{name}"),
            table_name=name,
            plan=config.plan,
        )
        catalog.register(db.table)
        # A sorted index per sensor keeps each leaf's value stream
        # ordered by construction — which is what makes the streamed
        # aggregate's sort-merge join eligible (``--query ...,agg=...``
        # prices merge against hash and picks merge on ordered inputs).
        catalog.create_index(name, "a", SortedIndex)
        sensors[name] = db
    distribution = ZipfianDistribution(domain=domain)
    rng = np.random.default_rng(derive_seed(seed, "cross-table-data"))
    series = []
    for batch in range(1, batches + 1):
        for db in sensors.values():
            db.insert({"a": distribution.sample(batch_size, rng)})
        result = catalog.query(spec, epoch=batch, batch_size=config.exec_batch)
        inputs = result.inputs
        if isinstance(result, StreamedAggregate) and len(inputs) == 1:
            # The aggregate wraps one union/join; report that child's
            # per-sensor inputs, as the row-returning path would.
            inputs = inputs[0].inputs
        point = {
            "batch": batch,
            "rf": result.rf,
            "mf": result.mf,
            "precision": result.precision,
            "inputs": [(r.rf, r.mf, round(r.precision, 4)) for r in inputs],
        }
        if isinstance(result, StreamedAggregate):
            point["strategy"] = result.strategy
            point["aggregate"] = (
                result.active.as_dict() if result.rf else None
            )
        series.append(point)
    rows = [
        [
            point["batch"],
            point["rf"],
            point["mf"],
            round(point["precision"], 4),
            point["inputs"],
        ]
        for point in series
    ]
    table = render_table(
        ["batch", "RF", "MF", "precision", "per-input (rf, mf, P)"],
        rows,
        title=f"X5: {spec!r} across {list(SENSOR_POLICIES.values())} sensors",
    )
    explain = catalog.explain_query(spec)
    return ExperimentResult(
        experiment_id="X5",
        title="Cross-table union/join over forgetting streams",
        data={
            "spec": spec,
            "plan": config.plan,
            "workers": config.workers,
            "policies": dict(SENSOR_POLICIES),
            "series": series,
            "precision_series": [point["precision"] for point in series],
        },
        tables=[table, "plan tree:\n" + explain],
    )
