"""Experiment I1 — §1's disposition mechanics.

Two mechanisms the paper proposes instead of outright deletion are
exercised end to end:

* **stop-indexing** — "a complete scan will fetch all data, but a fast
  index-based query evaluation will skip the forgotten data": the same
  range query is answered by a full scan (recall 1.0, every tuple
  touched) and by sorted/BRIN index plans (amnesiac recall, a fraction
  of the tuples touched);
* **summaries** — whole-table aggregates answered from live tuples plus
  the min/max/avg/count summaries of everything forgotten are *exact*,
  while the mark-only database drifts.
"""

from __future__ import annotations

import numpy as np

from .._util.rng import spawn
from ..indexes.brin import BlockRangeIndex
from ..indexes.sorted_index import SortedIndex
from ..lifecycle.dispositions import (
    MarkOnlyDisposition,
    StopIndexingDisposition,
    SummaryDisposition,
)
from ..lifecycle.executor import DispositionExecutor
from ..plotting.tables import render_table
from ..query.queries import AggregateFunction
from .runner import ExperimentResult, default_config, run_once

__all__ = ["run_dispositions"]


def run_dispositions(
    dbsize: int = 2000,
    update_fraction: float = 0.50,
    epochs: int = 8,
    seed: int | None = None,
    n_probe_queries: int = 50,
) -> ExperimentResult:
    """Measure plan recall/cost under stop-indexing, and summary AVG."""
    overrides = {
        "dbsize": dbsize,
        "update_fraction": update_fraction,
        "epochs": epochs,
        "queries_per_epoch": 0,
    }
    if seed is not None:
        overrides["seed"] = seed
    config = default_config(**overrides)

    # -- stop-indexing: scan vs index plans ---------------------------------
    disposition = StopIndexingDisposition()
    simulator, _ = run_once(
        config, "uniform", "uniform", disposition=disposition
    )
    table = simulator.table
    sorted_index = SortedIndex(table, config.column)
    brin_index = BlockRangeIndex(table, config.column, block_size=128)

    rng = spawn(config.seed, "i1-probes")
    max_value = int(table.values(config.column).max())
    half_width = max(1, int(0.01 * max_value))

    plans = {
        "scan (stop-indexing)": DispositionExecutor(table, disposition),
        "sorted index": DispositionExecutor(table, disposition, index=sorted_index),
        "BRIN index": DispositionExecutor(table, disposition, index=brin_index),
    }
    totals = {name: {"recall": 0.0, "touched": 0} for name in plans}
    for _ in range(n_probe_queries):
        v = int(rng.integers(0, max_value + 1))
        low, high = v - half_width, v + half_width
        for name, executor in plans.items():
            if executor.index is None:
                outcome = executor.range_scan(config.column, low, high)
            else:
                outcome = executor.range_via_index(config.column, low, high)
            totals[name]["recall"] += outcome.recall
            totals[name]["touched"] += outcome.tuples_touched

    plan_rows = []
    plan_data = {}
    for name, acc in totals.items():
        recall = acc["recall"] / n_probe_queries
        touched = acc["touched"] / n_probe_queries
        plan_rows.append(
            [name, round(recall, 4), round(touched, 1), table.total_rows]
        )
        plan_data[name] = {"recall": recall, "tuples_touched": touched}

    # BRIN shines on clustered (serial) data, where value order follows
    # storage order and zone maps prune almost every block — add that
    # row so the index comparison shows both regimes.
    sim_serial, _ = run_once(config, "serial", "uniform",
                             disposition=StopIndexingDisposition())
    serial_table = sim_serial.table
    serial_brin = BlockRangeIndex(serial_table, config.column, block_size=128)
    serial_executor = DispositionExecutor(
        serial_table, StopIndexingDisposition(), index=serial_brin
    )
    serial_max = int(serial_table.values(config.column).max())
    serial_half = max(1, int(0.01 * serial_max))
    acc_recall, acc_touched = 0.0, 0
    for _ in range(n_probe_queries):
        v = int(rng.integers(0, serial_max + 1))
        outcome = serial_executor.range_via_index(
            config.column, v - serial_half, v + serial_half
        )
        acc_recall += outcome.recall
        acc_touched += outcome.tuples_touched
    plan_rows.append(
        [
            "BRIN index (clustered data)",
            round(acc_recall / n_probe_queries, 4),
            round(acc_touched / n_probe_queries, 1),
            serial_table.total_rows,
        ]
    )
    plan_data["BRIN index (clustered data)"] = {
        "recall": acc_recall / n_probe_queries,
        "tuples_touched": acc_touched / n_probe_queries,
    }

    # -- summaries: exact aggregates over forgotten data ------------------------
    summary_disposition = SummaryDisposition()
    sim2, _ = run_once(
        config, "uniform", "uniform", disposition=summary_disposition
    )
    executor = DispositionExecutor(sim2.table, summary_disposition)
    agg_rows = []
    agg_data = {}
    for function in (AggregateFunction.AVG, AggregateFunction.SUM,
                     AggregateFunction.COUNT, AggregateFunction.MIN,
                     AggregateFunction.MAX):
        with_summary, oracle = executor.aggregate_with_summaries(
            function, config.column
        )
        amnesiac = function.compute(sim2.table.active_values(config.column))
        denom = max(abs(oracle), 1.0)
        err_summary = abs(with_summary - oracle) / denom
        err_amnesiac = (
            abs(amnesiac - oracle) / denom if amnesiac is not None else 1.0
        )
        agg_rows.append(
            [function.value, round(err_amnesiac, 6), round(err_summary, 6)]
        )
        agg_data[function.value] = {
            "mark_only_error": err_amnesiac,
            "with_summaries_error": err_summary,
        }

    tables = [
        render_table(
            ["plan", "recall vs oracle", "tuples touched / query", "table rows"],
            plan_rows,
            title=(
                "I1a: stop-indexing visibility asymmetry "
                f"({table.total_rows} rows, {table.forgotten_count} forgotten)"
            ),
        ),
        render_table(
            ["aggregate", "rel. error (mark-only)", "rel. error (with summaries)"],
            agg_rows,
            title="I1b: whole-table aggregates answered with forgotten-data summaries",
        ),
    ]
    return ExperimentResult(
        experiment_id="I1",
        title="Forgotten-data disposition mechanics",
        data={"plans": plan_data, "aggregates": agg_data},
        tables=tables,
    )
