"""Experiments A3/A4 — the §4.4 semantics-aware extensions.

* A3: pair-preserving amnesia "would retain the [average] precision as
  long as possible" — compared against uniform amnesia on whole-table
  AVG error over a long run.
* A4: distribution-aligned amnesia keeps the active histogram close to
  the oracle's; measured as Jensen–Shannon divergence over time against
  uniform and fifo baselines.
"""

from __future__ import annotations

import numpy as np

from .._util.rng import spawn
from ..plotting.tables import render_table
from ..query.generators import AggregateQueryGenerator
from .runner import ExperimentResult, default_config, run_once

__all__ = ["run_pair_preservation", "run_distribution_alignment"]


def run_pair_preservation(
    dbsize: int = 1000,
    update_fraction: float = 0.50,
    epochs: int = 20,
    queries_per_epoch: int = 20,
    seed: int | None = None,
    distributions=("uniform", "normal", "zipfian"),
    policies=("pair", "uniform", "fifo"),
) -> ExperimentResult:
    """A3: AVG drift under pair-preserving vs baseline amnesia."""
    overrides = {
        "dbsize": dbsize,
        "update_fraction": update_fraction,
        "epochs": epochs,
        "queries_per_epoch": queries_per_epoch,
    }
    if seed is not None:
        overrides["seed"] = seed
    config = default_config(**overrides)

    rows = []
    data: dict[str, dict[str, float]] = {}
    for dist_name in distributions:
        data[dist_name] = {}
        for policy_name in policies:
            workload = AggregateQueryGenerator(
                config.column,
                predicate_selectivity=None,
                rng=spawn(config.seed, f"a3-{dist_name}-{policy_name}"),
            )
            policy_kwargs = (
                {"column": config.column} if policy_name == "pair" else None
            )
            _, report = run_once(
                config,
                dist_name,
                policy_name,
                workload=workload,
                policy_kwargs=policy_kwargs,
            )
            errors = [
                1.0 - p for p in report.aggregate_precision_series()
            ]
            mean_error = float(np.mean(errors))
            final_error = errors[-1]
            data[dist_name][policy_name] = mean_error
            rows.append(
                [dist_name, policy_name, round(mean_error, 6), round(final_error, 6)]
            )
    table = render_table(
        ["distribution", "policy", "mean AVG rel. error", "final AVG rel. error"],
        rows,
        title=f"A3: pair-preserving amnesia vs baselines ({epochs} batches)",
    )
    return ExperimentResult(
        experiment_id="A3",
        title="Pair-preserving amnesia retains AVG precision",
        data={"mean_error": data},
        tables=[table],
    )


def run_distribution_alignment(
    dbsize: int = 1000,
    update_fraction: float = 0.50,
    epochs: int = 20,
    seed: int | None = None,
    distributions=("zipfian", "normal"),
    policies=("dist", "stratified", "uniform", "fifo"),
) -> ExperimentResult:
    """A4: histogram divergence under distribution-aware amnesia."""
    overrides = {
        "dbsize": dbsize,
        "update_fraction": update_fraction,
        "epochs": epochs,
        "queries_per_epoch": 0,
    }
    if seed is not None:
        overrides["seed"] = seed
    config = default_config(**overrides)

    rows = []
    data: dict[str, dict[str, float]] = {}
    for dist_name in distributions:
        data[dist_name] = {}
        for policy_name in policies:
            policy_kwargs = (
                {"column": config.column}
                if policy_name in ("dist", "stratified")
                else None
            )
            _, report = run_once(
                config, dist_name, policy_name, policy_kwargs=policy_kwargs
            )
            divergences = [
                r.divergence_js for r in report.epochs if r.divergence_js is not None
            ]
            mean_js = float(np.mean(divergences))
            final_js = divergences[-1]
            data[dist_name][policy_name] = final_js
            rows.append(
                [dist_name, policy_name, round(mean_js, 6), round(final_js, 6)]
            )
    table = render_table(
        ["distribution", "policy", "mean JS divergence", "final JS divergence"],
        rows,
        title=f"A4: active-vs-oracle distribution drift ({epochs} batches)",
    )
    return ExperimentResult(
        experiment_id="A4",
        title="Distribution-aligned amnesia minimises histogram drift",
        data={"final_js": data},
        tables=[table],
    )
