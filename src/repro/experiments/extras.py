"""Experiments X1–X4 — the beyond-the-paper extensions, measured.

These quantify the features the paper only sketches (§4.4 adaptive
partitioning, §5 human-forgetting heuristics / referential integrity /
micro-model summaries) so DESIGN.md's extension rows have the same
evidence trail as the published figures.
"""

from __future__ import annotations

import numpy as np

from .._util.rng import DEFAULT_SEED
from ..amnesia.decay import EbbinghausAmnesia
from ..amnesia.registry import make_policy
from ..core.config import SimulationConfig
from ..core.simulator import AmnesiaSimulator
from ..datagen.distributions import ZipfianDistribution
from ..integrity.constraints import ForeignKey, ReferentialAmnesiaWrapper
from ..partitioning.partitioned import PartitionedAmnesiaDatabase
from ..plotting.tables import render_table
from ..storage.table import Table
from ..summaries.histogram_summary import HistogramSummaryStore
from .runner import ExperimentResult

__all__ = [
    "run_decay_comparison",
    "run_adaptive_partitioning",
    "run_referential_integrity",
    "run_histogram_summaries",
]


def run_decay_comparison(
    dbsize: int = 500,
    update_fraction: float = 0.50,
    epochs: int = 8,
    queries_per_epoch: int = 300,
    seed: int | None = None,
) -> ExperimentResult:
    """X1: Ebbinghaus decay vs rot vs uniform on skewed, queried data."""
    seed = DEFAULT_SEED if seed is None else seed
    config = SimulationConfig(
        dbsize=dbsize,
        update_fraction=update_fraction,
        epochs=epochs,
        queries_per_epoch=queries_per_epoch,
        seed=seed,
    )
    contenders = {
        "uniform": make_policy("uniform"),
        "rot": make_policy("rot", frequency_exponent=2.0),
        "ebbinghaus": EbbinghausAmnesia(base_strength=1.0, reinforcement=2.0),
    }
    rows = []
    data = {}
    for name, policy in contenders.items():
        simulator = AmnesiaSimulator(config, ZipfianDistribution(), policy)
        series = simulator.run().precision_series()
        rows.append([name, round(series[0], 4), round(series[-1], 4)])
        data[name] = {"first_E": series[0], "final_E": series[-1]}
    table = render_table(
        ["policy", "E first", "E final"],
        rows,
        title=f"X1: decay policies on zipfian data ({epochs} batches)",
    )
    return ExperimentResult(
        experiment_id="X1",
        title="Human-forgetting-curve amnesia",
        data={"by_policy": data},
        tables=[table],
    )


def run_adaptive_partitioning(
    total_budget: int = 400,
    batches: int = 10,
    batch_size: int = 400,
    seed: int | None = None,
) -> ExperimentResult:
    """X2: does traffic-driven budget rebalancing buy hot precision?"""
    seed = DEFAULT_SEED if seed is None else seed
    # The config snapshot carries the run knobs — its workers/rebalance
    # fields default from the process-wide values the CLI's --workers /
    # --rebalance flags set, and the store is built from the config.
    config = SimulationConfig(seed=seed)

    def run(adaptive: bool):
        store = PartitionedAmnesiaDatabase(
            "a", (0, 500, 1000), total_budget,
            policy_factory=make_policy_factory(), seed=seed,
            plan=config.plan, workers=config.workers,
            rebalance=config.rebalance,
        )
        rng = np.random.default_rng(seed)
        hot = None
        for _ in range(batches):
            store.insert({"a": rng.integers(0, 1000, batch_size)})
            for _ in range(25):
                hot = store.range_query(0, 300)
            if adaptive:
                store.rebalance(floor=total_budget // 10)
        stats = store.stats()
        return hot.precision, stats["budgets"], stats["boundaries"]

    def make_policy_factory():
        return lambda: make_policy("uniform")

    static_precision, static_budgets, _ = run(False)
    adaptive_precision, adaptive_budgets, adaptive_bounds = run(True)
    table = render_table(
        ["mode", "hot-range E final", "budgets", "boundaries"],
        [
            ["static", round(static_precision, 4), static_budgets, "-"],
            [
                "adaptive",
                round(adaptive_precision, 4),
                adaptive_budgets,
                adaptive_bounds,
            ],
        ],
        title="X2: adaptive partition budgets",
    )
    return ExperimentResult(
        experiment_id="X2",
        title="Adaptive partitioning",
        data={
            "static": static_precision,
            "adaptive": adaptive_precision,
        },
        tables=[table],
    )


def run_referential_integrity(
    n_parents: int = 500,
    n_children: int = 600,
    epochs: int = 5,
    seed: int | None = None,
) -> ExperimentResult:
    """X3: restrict vs cascade forgetting under a foreign key."""
    seed = DEFAULT_SEED if seed is None else seed

    def run(mode: str, quota: int):
        rng = np.random.default_rng(seed)
        parent = Table("orders", ["id"])
        child = Table("items", ["order_id"])
        parent.insert_batch(0, {"id": np.arange(n_parents)})
        child.insert_batch(
            0, {"order_id": rng.integers(0, n_parents, n_children)}
        )
        fk = ForeignKey(child, "order_id", parent, "id")
        policy = ReferentialAmnesiaWrapper(
            make_policy("uniform"), fk, mode=mode
        )
        for epoch in range(1, epochs + 1):
            victims = policy.select_victims(parent, quota, epoch, rng)
            parent.forget(victims, epoch)
            fk.check()
        return {
            "parents_forgotten": parent.forgotten_count,
            "children_cascaded": policy.cascaded_children,
            "violations": int(fk.violations().size),
        }

    restrict = run("restrict", quota=10)
    cascade = run("cascade", quota=50)
    table = render_table(
        ["mode", "parents forgotten", "children cascaded", "FK violations"],
        [
            ["restrict", restrict["parents_forgotten"],
             restrict["children_cascaded"], restrict["violations"]],
            ["cascade", cascade["parents_forgotten"],
             cascade["children_cascaded"], cascade["violations"]],
        ],
        title="X3: referential amnesia (orders -> items)",
    )
    return ExperimentResult(
        experiment_id="X3",
        title="Referential integrity under amnesia",
        data={"restrict": restrict, "cascade": cascade},
        tables=[table],
    )


def run_histogram_summaries(
    n_rows: int = 20_000,
    forget_fraction: float = 0.75,
    bins_sweep=(8, 16, 32, 64, 128),
    seed: int | None = None,
) -> ExperimentResult:
    """X4: MF estimation error vs histogram resolution."""
    seed = DEFAULT_SEED if seed is None else seed
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 10_000, n_rows)
    victims = rng.choice(n_rows, int(n_rows * forget_fraction), replace=False)
    forgotten_values = values[victims]
    keep_mask = np.ones(n_rows, dtype=bool)
    keep_mask[victims] = False
    active_values = values[keep_mask]

    rows = []
    data = {}
    for bins in bins_sweep:
        store = HistogramSummaryStore(0, 9_999, bins=bins)
        store.add(1, forgotten_values)
        errors = []
        for low in range(0, 9_000, 500):
            high = low + 700
            rf = int(((active_values >= low) & (active_values < high)).sum())
            oracle = int(((values >= low) & (values < high)).sum())
            estimate = store.approx_range_count(low, high)
            errors.append(abs(estimate - (oracle - rf)) / max(oracle - rf, 1))
        mean_error = float(np.mean(errors))
        rows.append([bins, store.nbytes, round(mean_error, 4)])
        data[bins] = {"nbytes": store.nbytes, "mean_relative_error": mean_error}
    table = render_table(
        ["bins", "summary bytes", "mean relative MF error"],
        rows,
        title=(
            f"X4: histogram micro-model accuracy "
            f"({int(forget_fraction * 100)}% of {n_rows} tuples forgotten)"
        ),
    )
    return ExperimentResult(
        experiment_id="X4",
        title="Histogram summaries of forgotten data",
        data={"by_bins": data},
        tables=[table],
    )
