"""Experiment F1 — Figure 1: the database amnesia map.

"Figure 1 illustrates the distribution of still active tuples after a
sequence of 10 update batches under all amnesia algorithms except the
rot amnesia" (§4.1), at ``dbsize=1000, upd-perc=0.20``.

For these four strategies "the data distribution plays no role, only
the relative position of each tuple in the database storage space", so
the run uses serial data and no queries.  Expected shapes (verified by
the benchmark):

* fifo — hard cutoff: old cohorts 0 %, the window's cohorts 100 %;
* uniform — monotone brightening toward the newest cohort;
* ante — bright cohort 0, black hole over the oldest updates,
  partially bright tail;
* area — uniform-fifo hybrid speckle.
"""

from __future__ import annotations

import numpy as np

from ..amnesia.registry import FIGURE1_POLICIES
from ..plotting.heatmap import render_heatmap
from ..plotting.tables import render_table
from .runner import ExperimentResult, default_config, sweep_policies

__all__ = ["run_figure1"]


def run_figure1(
    dbsize: int = 1000,
    update_fraction: float = 0.20,
    epochs: int = 10,
    seed: int | None = None,
    policies=FIGURE1_POLICIES,
) -> ExperimentResult:
    """Reproduce Figure 1; returns per-policy cohort activity maps."""
    overrides = {
        "dbsize": dbsize,
        "update_fraction": update_fraction,
        "epochs": epochs,
        "queries_per_epoch": 0,
    }
    if seed is not None:
        overrides["seed"] = seed
    config = default_config(**overrides)

    runs = sweep_policies(config, "serial", policies)
    rows: dict[str, np.ndarray] = {}
    for name, (simulator, _) in runs.items():
        rows[name] = simulator.map.final_fractions()

    chart = render_heatmap(
        rows,
        title=(
            f"Figure 1: database amnesia map after {epochs} update batches "
            f"(dbsize={dbsize}, upd-perc={update_fraction})"
        ),
    )
    table = render_table(
        ["policy"] + [f"t{t}" for t in range(epochs + 1)],
        [
            [name] + [round(float(f), 3) for f in fractions]
            for name, fractions in rows.items()
        ],
        title="Active percentage per insertion cohort (final snapshot)",
    )
    return ExperimentResult(
        experiment_id="F1",
        title="Database amnesia map after 10 batches of updates",
        data={"cohort_activity": {k: v.tolist() for k, v in rows.items()}},
        tables=[table],
        charts=[chart],
    )
