"""Experiment F2 — Figure 2: the database *rot* map.

"The rot amnesia strategy depends on how fresh are the data.
Freshness is measured by the frequency of appearing in a result.
Since all range and aggregate queries are the same in our experiments,
the data distribution is the differential factor for rotting" (§4.1).

Same budget/volatility as Figure 1, but the policy is rot and the run
executes a mixed range + aggregate query batch every epoch so access
frequencies actually accumulate.  One map row per data distribution;
the benchmark asserts that distributions produce *different* retention
maps and that the skewed (zipfian) dataset keeps old hot tuples alive
longest.
"""

from __future__ import annotations

import numpy as np

from .._util.rng import spawn
from ..datagen.distributions import DISTRIBUTION_NAMES
from ..plotting.heatmap import render_heatmap
from ..plotting.tables import render_table
from ..query.generators import (
    AggregateQueryGenerator,
    MixedWorkload,
    RangeQueryGenerator,
)
from .runner import ExperimentResult, default_config, run_once

__all__ = ["run_figure2"]


def _mixed_workload(column: str, seed: int) -> MixedWorkload:
    """The §4.1 workload: range queries plus aggregate calculations."""
    return MixedWorkload(
        [
            (
                0.7,
                RangeQueryGenerator(
                    column, selectivity=0.01, anchor="active",
                    rng=spawn(seed, "f2-range"),
                ),
            ),
            (
                0.3,
                AggregateQueryGenerator(
                    column, predicate_selectivity=0.05, anchor="active",
                    rng=spawn(seed, "f2-agg"),
                ),
            ),
        ],
        rng=spawn(seed, "f2-mix"),
    )


def run_figure2(
    dbsize: int = 1000,
    update_fraction: float = 0.20,
    epochs: int = 10,
    queries_per_epoch: int = 1000,
    seed: int | None = None,
    distributions=DISTRIBUTION_NAMES,
    high_water_mark: int = 1,
    frequency_exponent: float = 2.0,
) -> ExperimentResult:
    """Reproduce Figure 2; returns per-distribution rot maps."""
    overrides = {
        "dbsize": dbsize,
        "update_fraction": update_fraction,
        "epochs": epochs,
        "queries_per_epoch": queries_per_epoch,
    }
    if seed is not None:
        overrides["seed"] = seed
    config = default_config(**overrides)

    rows: dict[str, np.ndarray] = {}
    for dist_name in distributions:
        simulator, _ = run_once(
            config,
            dist_name,
            "rot",
            workload=_mixed_workload(config.column, config.seed),
            policy_kwargs={
                "high_water_mark": high_water_mark,
                "frequency_exponent": frequency_exponent,
            },
        )
        rows[dist_name] = simulator.map.final_fractions()

    chart = render_heatmap(
        rows,
        title=(
            f"Figure 2: database rot map after {epochs} update batches "
            f"(dbsize={dbsize}, upd-perc={update_fraction})"
        ),
    )
    table = render_table(
        ["distribution"] + [f"t{t}" for t in range(epochs + 1)],
        [
            [name] + [round(float(f), 3) for f in fractions]
            for name, fractions in rows.items()
        ],
        title="Active percentage per insertion cohort under rot amnesia",
    )
    return ExperimentResult(
        experiment_id="F2",
        title="Database rot map after 10 batches of updates",
        data={"cohort_activity": {k: v.tolist() for k, v in rows.items()}},
        tables=[table],
        charts=[chart],
    )
