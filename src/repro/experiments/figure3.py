"""Experiment F3 — Figure 3: range query precision over the timeline.

"Figure 3 illustrates the results from range queries ... The range
query generator selects a candidate value v from all active tuples and
constructs the range WHERE attr >= v - 0.01*RANGE AND attr < v +
0.01*RANGE" (§4.2), at high update volatility (``upd-perc = 0.80``),
with a batch of 1000 queries per epoch.

The paper publishes two panels (uniform and zipfian data); the §4.2
text also discusses normal, so all three are produced.  The x axis
point *t* reports the error margin E of the query batch that has
witnessed exactly *t* update/amnesia rounds, matching the paper's axis
(which starts below 1.0 at t=1).

Shape expectations encoded in the benchmark: precision decays
monotonically toward the active-fraction floor 1/(1+0.8t);
distributions converge to similar values in the long run; rot retains
markedly more precision on zipfian data (the frequency shield only has
something to learn when some values are hot).
"""

from __future__ import annotations

import numpy as np

from ..amnesia.registry import FIGURE3_POLICIES
from ..plotting.linechart import render_linechart
from ..plotting.tables import render_table
from .runner import ExperimentResult, default_config, sweep_policies

__all__ = ["run_figure3", "FIGURE3_DISTRIBUTIONS"]

#: Paper panels (uniform, zipfian) plus the §4.2-discussed normal.
FIGURE3_DISTRIBUTIONS = ("uniform", "zipfian", "normal")


def run_figure3(
    dbsize: int = 1000,
    update_fraction: float = 0.80,
    epochs: int = 10,
    queries_per_epoch: int = 1000,
    selectivity: float = 0.01,
    seed: int | None = None,
    distributions=FIGURE3_DISTRIBUTIONS,
    policies=FIGURE3_POLICIES,
) -> ExperimentResult:
    """Reproduce Figure 3's precision-vs-timeline panels."""
    overrides = {
        "dbsize": dbsize,
        "update_fraction": update_fraction,
        # One extra epoch: the query batch of epoch t+1 is the batch
        # that has seen t amnesia rounds; x=1..epochs then spans
        # "after one round" .. "after `epochs` rounds".
        "epochs": epochs + 1,
        "queries_per_epoch": queries_per_epoch,
    }
    if seed is not None:
        overrides["seed"] = seed
    config = default_config(**overrides)

    panels: dict[str, dict[str, list[float]]] = {}
    charts: list[str] = []
    tables: list[str] = []
    for dist_name in distributions:
        runs = sweep_policies(config, dist_name, policies)
        series: dict[str, list[float]] = {}
        for policy_name, (_, report) in runs.items():
            full = report.precision_series()
            series[policy_name] = full[1:]  # drop the pristine batch
        panels[dist_name] = series

        charts.append(
            render_linechart(
                {k: np.asarray(v) for k, v in series.items()},
                title=(
                    f"Figure 3 ({dist_name} range experiment, "
                    f"dbsize={dbsize}, upd-perc={update_fraction})"
                ),
                x_label="update batches survived",
            )
        )
        tables.append(
            render_table(
                ["policy"] + [f"t{t}" for t in range(1, epochs + 1)],
                [
                    [name] + [round(v, 4) for v in values]
                    for name, values in series.items()
                ],
                title=f"Error margin E per epoch — {dist_name} data",
            )
        )

    return ExperimentResult(
        experiment_id="F3",
        title="Range query precision (v ∈ 0 .. max)",
        data={"precision": panels},
        tables=tables,
        charts=charts,
    )
