"""Shared experiment plumbing.

Every experiment module produces an :class:`ExperimentResult`: a small
bundle of data series, rendered tables and rendered charts that the CLI
prints and the benchmarks assert on.  The helpers here run policy ×
distribution sweeps on the simulator with consistent seeding.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .._util.rng import DEFAULT_SEED
from ..amnesia.registry import make_policy
from ..core.config import SimulationConfig
from ..core.simulator import AmnesiaSimulator
from ..datagen.distributions import make_distribution
from ..metrics.reports import RunReport

__all__ = ["ExperimentResult", "run_once", "sweep_policies"]


@dataclass
class ExperimentResult:
    """Rendered + structured output of one experiment.

    ``data`` holds raw series keyed by meaningful names so benchmarks
    and tests can assert on shapes without re-parsing text.
    """

    experiment_id: str
    title: str
    data: dict = field(default_factory=dict)
    tables: list[str] = field(default_factory=list)
    charts: list[str] = field(default_factory=list)

    def render(self) -> str:
        """Full printable report."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        parts.extend(self.charts)
        parts.extend(self.tables)
        return "\n\n".join(parts)


def run_once(
    config: SimulationConfig,
    distribution_name: str,
    policy_name: str,
    *,
    domain: int | None = None,
    workload=None,
    policy_kwargs: dict | None = None,
    disposition=None,
) -> tuple[AmnesiaSimulator, RunReport]:
    """Build and run one simulator; returns (simulator, report).

    The distribution and policy are constructed fresh per run so that
    stateful components (serial counters, area hole lists) never leak
    between sweep points.
    """
    kwargs = {} if domain is None else {"domain": domain}
    distribution = make_distribution(distribution_name, **kwargs)
    policy = make_policy(policy_name, **(policy_kwargs or {}))
    simulator = AmnesiaSimulator(
        config, distribution, policy, workload=workload, disposition=disposition
    )
    report = simulator.run()
    return simulator, report


def sweep_policies(
    config: SimulationConfig,
    distribution_name: str,
    policy_names,
    *,
    policy_kwargs: dict | None = None,
) -> dict[str, tuple[AmnesiaSimulator, RunReport]]:
    """Run every policy on the same configuration and distribution.

    Each run uses the same root seed, so data and query streams are
    identical across policies — differences in outcome are purely the
    policy's doing.
    """
    out: dict[str, tuple[AmnesiaSimulator, RunReport]] = {}
    per_policy = policy_kwargs or {}
    for name in policy_names:
        out[name] = run_once(
            config,
            distribution_name,
            name,
            policy_kwargs=per_policy.get(name),
        )
    return out


def default_config(**overrides) -> SimulationConfig:
    """The paper's base configuration with optional overrides."""
    base = SimulationConfig(seed=DEFAULT_SEED)
    return base.with_(**overrides) if overrides else base
