"""Experiment T3 — §4.2's selectivity claim.

"Increasing the selectivity factor does not improve the precision,
because it affects the complete database, active and forgotten."

A wider query window catches proportionally more active *and* more
forgotten tuples, so E stays pinned to the active fraction.  The sweep
verifies that E varies only marginally across two decades of S.
"""

from __future__ import annotations

from .._util.rng import spawn
from ..plotting.tables import render_table
from ..query.generators import RangeQueryGenerator
from .runner import ExperimentResult, default_config, run_once

__all__ = ["run_selectivity"]


def run_selectivity(
    dbsize: int = 1000,
    update_fraction: float = 0.80,
    epochs: int = 10,
    queries_per_epoch: int = 500,
    seed: int | None = None,
    selectivities=(0.005, 0.01, 0.05, 0.1, 0.25),
    distribution: str = "uniform",
    policies=("uniform", "area", "rot"),
) -> ExperimentResult:
    """Sweep the selectivity factor S and record final precision."""
    overrides = {
        "dbsize": dbsize,
        "update_fraction": update_fraction,
        "epochs": epochs + 1,
        "queries_per_epoch": queries_per_epoch,
    }
    if seed is not None:
        overrides["seed"] = seed
    config = default_config(**overrides)

    results: dict[str, dict[float, float]] = {p: {} for p in policies}
    for policy_name in policies:
        for s in selectivities:
            workload = RangeQueryGenerator(
                config.column,
                selectivity=s,
                anchor="active",
                rng=spawn(config.seed, f"t3-{s}"),
            )
            _, report = run_once(
                config, distribution, policy_name, workload=workload
            )
            results[policy_name][s] = report.precision_series()[-1]

    rows = [
        [policy] + [round(results[policy][s], 4) for s in selectivities]
        for policy in policies
    ]
    table = render_table(
        ["policy"] + [f"S={s}" for s in selectivities],
        rows,
        title=(
            f"T3: final error margin E vs selectivity factor "
            f"({distribution} data, upd-perc={update_fraction}, {epochs} batches)"
        ),
    )
    return ExperimentResult(
        experiment_id="T3",
        title="Selectivity factor does not improve precision",
        data={"final_precision": {p: dict(v) for p, v in results.items()}},
        tables=[table],
    )
