"""Experiment T1 — §4.2's volatility claim.

"The volatility captures the amount of data being forgotten at each
intermediate stage.  We experimented with both low (10%) and high
update volatility (80%)."

The benchmark asserts the obvious but load-bearing shape: at every
timeline point, high volatility yields strictly lower precision than
low volatility, for every policy, because the active fraction decays as
``1 / (1 + upd·t)``.
"""

from __future__ import annotations

from ..amnesia.registry import FIGURE3_POLICIES
from ..plotting.tables import render_table
from .runner import ExperimentResult, default_config, sweep_policies

__all__ = ["run_volatility"]


def run_volatility(
    dbsize: int = 1000,
    epochs: int = 10,
    queries_per_epoch: int = 500,
    seed: int | None = None,
    fractions=(0.10, 0.80),
    distribution: str = "uniform",
    policies=FIGURE3_POLICIES,
) -> ExperimentResult:
    """Compare precision decay at low vs high update volatility."""
    panels: dict[float, dict[str, list[float]]] = {}
    for fraction in fractions:
        overrides = {
            "dbsize": dbsize,
            "update_fraction": fraction,
            "epochs": epochs + 1,
            "queries_per_epoch": queries_per_epoch,
        }
        if seed is not None:
            overrides["seed"] = seed
        config = default_config(**overrides)
        runs = sweep_policies(config, distribution, policies)
        panels[fraction] = {
            name: report.precision_series()[1:]
            for name, (_, report) in runs.items()
        }

    rows = []
    for policy in policies:
        row = [policy]
        for fraction in fractions:
            series = panels[fraction][policy]
            row.extend([round(series[-1], 4), round(sum(series) / len(series), 4)])
        rows.append(row)
    headers = ["policy"]
    for fraction in fractions:
        headers.extend(
            [f"E final (upd={fraction})", f"E mean (upd={fraction})"]
        )
    table = render_table(
        headers,
        rows,
        title=(
            f"T1: precision vs update volatility "
            f"(dbsize={dbsize}, {distribution} data, {epochs} batches)"
        ),
    )
    return ExperimentResult(
        experiment_id="T1",
        title="Low (10%) vs high (80%) update volatility",
        data={"precision": {str(f): p for f, p in panels.items()}},
        tables=[table],
    )
