"""Deterministic fault injection: named points, one armed plan.

The robustness twin of the equivalence harness: every layer that can
lose or corrupt state declares **named injection points** (the
checkpoint writer, the ingest appliers, the serving dispatch), and a
process-wide :class:`FaultPlan` decides what happens when execution
reaches one.  Three behaviours cover the failure modes worth proving
against:

* :class:`CrashPoint` — simulate a process death at exactly the Nth
  arrival: raises :class:`FaultInjected`, which derives from
  ``BaseException`` so no library ``except Exception`` / ``except
  ReproError`` recovery clause can accidentally swallow the "kill".
  ``finally`` blocks and context managers still run — deliberately, so
  the suite also proves that lock/gate cleanup survives an applier
  dying mid-critical-section.  One-shot: hit N fires, every other hit
  passes, which lets a test inject, recover and *continue* in one
  process.
* :class:`DelayPoint` — wedge the site (sleep) on every arrival; the
  serving deadline tests drive a slow handler this way.
* :class:`FlakyPoint` — raise a *catchable*
  :class:`~repro._util.errors.TransientFault` with seeded-RNG
  probability per arrival (the serving layer maps it to HTTP 503, the
  retry helper backs off and retries).

Determinism doctrine: a plan is a pure function of its spec string —
crash counts are exact hit ordinals, flaky draws come from a generator
seeded by ``(plan seed, point name)`` — so a failing fault scenario
replays bit-identically from its ``--faults`` spec alone.

Disarmed cost is one module-global read and a falsy branch per
:func:`fault_point` call; no site pays for the framework unless a plan
is armed.

Spec grammar (the CLI's ``--faults`` / the ``REPRO_FAULTS`` env var)::

    spec     := entry (";" entry)*
    entry    := "seed=" INT
              | POINT ":crash" ["@" HIT]        # crash on the HITth arrival (default 1)
              | POINT ":delay=" SECONDS         # sleep SECONDS on every arrival
              | POINT ":flaky=" RATE            # TransientFault with probability RATE

    e.g.  --faults "checkpoint.tmp:crash@2"
          --faults "serve.handle:delay=0.2;seed=7;serve.query:flaky=0.3"

Point names must be registered (see :func:`registered_points`) —
arming a typo is a :class:`~repro._util.errors.ConfigError`, not a
silently dead plan.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

import numpy as np

from .._util.errors import ConfigError, TransientFault
from .._util.rng import DEFAULT_SEED, derive_seed

__all__ = [
    "FaultInjected",
    "FaultPoint",
    "CrashPoint",
    "DelayPoint",
    "FlakyPoint",
    "FaultPlan",
    "parse_fault_plan",
    "register_point",
    "registered_points",
    "fault_point",
    "arm",
    "disarm",
    "active_plan",
    "active_spec",
    "armed",
]


class FaultInjected(BaseException):
    """A :class:`CrashPoint` fired — a simulated process death.

    Derives from ``BaseException`` (like ``KeyboardInterrupt``) so that
    generic ``except Exception`` recovery code cannot swallow the
    simulated kill: the crash propagates to the top of the stack the
    way a real ``SIGKILL`` would end the process.  ``finally`` blocks
    still run, which is exactly what the fault suite exploits to prove
    that locks, gates and queues are restored on *any* unwind.
    """

    def __init__(self, point: str, hit: int):
        self.point = point
        self.hit = hit
        super().__init__(f"injected crash at fault point {point!r} (hit {hit})")


class FaultPoint:
    """One armed behaviour bound to a named injection point."""

    def __init__(self, name: str):
        self.name = name
        self.hits = 0

    def fire(self, hit: int) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def describe(self) -> str:  # pragma: no cover - abstract
        raise NotImplementedError


class CrashPoint(FaultPoint):
    """Simulated process death on exactly the ``at``-th arrival."""

    def __init__(self, name: str, at: int = 1):
        if at < 1:
            raise ConfigError(f"crash hit ordinal must be >= 1, got {at}")
        super().__init__(name)
        self.at = int(at)

    def fire(self, hit: int) -> None:
        if hit == self.at:
            raise FaultInjected(self.name, hit)

    def describe(self) -> str:
        return f"{self.name}:crash@{self.at}"


class DelayPoint(FaultPoint):
    """Wedge the site: sleep ``seconds`` on every arrival."""

    def __init__(self, name: str, seconds: float, sleep=time.sleep):
        if not seconds > 0:
            raise ConfigError(f"delay must be > 0 seconds, got {seconds}")
        super().__init__(name)
        self.seconds = float(seconds)
        self._sleep = sleep

    def fire(self, hit: int) -> None:
        self._sleep(self.seconds)

    def describe(self) -> str:
        return f"{self.name}:delay={self.seconds:g}"


class FlakyPoint(FaultPoint):
    """Transient failure with seeded probability ``rate`` per arrival.

    Raises :class:`~repro._util.errors.TransientFault` — an ordinary
    :class:`~repro._util.errors.ReproError`, because a flaky dependency
    is a failure the caller is *supposed* to handle (retry, back off),
    unlike a crash.
    """

    def __init__(self, name: str, rate: float, seed: int = DEFAULT_SEED):
        if not 0.0 < rate <= 1.0:
            raise ConfigError(f"flaky rate must be in (0, 1], got {rate}")
        super().__init__(name)
        self.rate = float(rate)
        self._rng = np.random.default_rng(derive_seed(seed, f"flaky:{name}"))

    def fire(self, hit: int) -> None:
        if self._rng.random() < self.rate:
            raise TransientFault(
                f"injected transient fault at {self.name!r} (hit {hit})"
            )

    def describe(self) -> str:
        return f"{self.name}:flaky={self.rate:g}"


class FaultPlan:
    """A set of armed fault points, hit-counted under one lock.

    ``hit`` is the only hot-path entry: unknown names (points the plan
    does not arm) return after one dict probe.  Hit counting is
    serialized so crash ordinals are exact even when concurrent serving
    threads or parallel ingest appliers arrive at the same point.
    """

    def __init__(self, points, seed: int = DEFAULT_SEED):
        self._points: dict[str, FaultPoint] = {}
        self.seed = int(seed)
        for point in points:
            if point.name in self._points:
                raise ConfigError(f"fault point {point.name!r} armed twice")
            self._points[point.name] = point
        self._lock = threading.Lock()

    @property
    def points(self) -> dict[str, FaultPoint]:
        """The armed points by name (read-only view semantics)."""
        return dict(self._points)

    def hit(self, name: str) -> None:
        """Arrival at injection point ``name``; may raise or sleep."""
        point = self._points.get(name)
        if point is None:
            return
        with self._lock:
            point.hits += 1
            hit = point.hits
        point.fire(hit)

    def hits(self, name: str) -> int:
        """How many times ``name`` has been reached under this plan."""
        point = self._points.get(name)
        return 0 if point is None else point.hits

    def spec(self) -> str:
        """Canonical spec string reproducing this plan."""
        parts = [point.describe() for point in self._points.values()]
        if self.seed != DEFAULT_SEED:
            parts.append(f"seed={self.seed}")
        return ";".join(parts)

    def __repr__(self) -> str:
        return f"FaultPlan({self.spec()!r})"


# -- the point registry ---------------------------------------------------

#: Every named injection point in the codebase: name -> one-line
#: contract of where it sits and what a crash there must leave behind.
#: The fault property suite iterates this registry, so adding a point
#: without extending the suite's coverage map fails the build.
_REGISTRY: dict[str, str] = {}


def register_point(name: str, description: str) -> str:
    """Declare an injection point; returns ``name`` for use as a constant."""
    _REGISTRY[name] = description
    return name


def registered_points() -> dict[str, str]:
    """All declared injection points (name -> description)."""
    return dict(_REGISTRY)


# The catalog of points.  Defined centrally (not at each site) so the
# registry is complete as soon as :mod:`repro.faults` imports, letting
# spec parsing validate names strictly and the property suite enumerate
# every failure path without importing the whole library first.

CHECKPOINT_TMP = register_point(
    "checkpoint.tmp",
    "checkpoint writer: temp file fully written and fsynced, before any "
    "rename — a crash here leaves the destination untouched",
)
CHECKPOINT_ROTATE = register_point(
    "checkpoint.rotate",
    "checkpoint writer: previous checkpoint rotated to .prev, before the "
    "new file is moved in — a crash here leaves only the .prev snapshot",
)
CHECKPOINT_DONE = register_point(
    "checkpoint.done",
    "checkpoint writer: new checkpoint atomically in place, before "
    "returning — a crash here loses nothing",
)
INGEST_ENQUEUE = register_point(
    "ingest.enqueue",
    "partitioned enqueue: batch validated, before it is routed into any "
    "shard queue — a crash here drops the whole batch atomically "
    "(the writer re-enqueues on retry)",
)
INGEST_APPLY = register_point(
    "ingest.apply",
    "flush applier: before each queued chunk is inserted into its shard "
    "— a crash here rolls the chunk (and its shard's tail) back to the "
    "pending queue; only fully-applied batches publish",
)
INGEST_APPLIED = register_point(
    "ingest.applied",
    "flush: every applier finished, before the epoch publish — a crash "
    "here still publishes the applied batches (publish runs on the "
    "unwind path, inside the exclusive gate hold)",
)
REBALANCE_ADAPT = register_point(
    "rebalance.adapt",
    "rebalance: queues drained and published, before any boundary "
    "adaptation or budget move — a crash here leaves the layout exactly "
    "as it was (retry the rebalance)",
)
SERVE_HANDLE = register_point(
    "serve.handle",
    "serving: request admitted, before dispatch — a crash here drops "
    "the connection without a reply (client retries); a delay wedges "
    "the handler (deadline aborts); flaky returns 503",
)
SERVE_QUERY = register_point(
    "serve.query",
    "serving query path: source resolved, before execution or any "
    "access accounting — a crash here mutates nothing (retry is "
    "bit-identical)",
)


# -- the armed plan -------------------------------------------------------

_ACTIVE: FaultPlan | None = None


def fault_point(name: str) -> None:
    """Arrival at injection point ``name``.

    The disarmed fast path is one global read and a ``None`` check —
    call sites pay nothing unless a plan is armed.
    """
    plan = _ACTIVE
    if plan is not None:
        plan.hit(name)


def parse_fault_plan(spec: str, *, sleep=time.sleep) -> FaultPlan:
    """Parse a ``--faults`` spec string into a :class:`FaultPlan`.

    See the module docstring for the grammar.  Unknown point names,
    malformed directives and out-of-range parameters raise
    :class:`~repro._util.errors.ConfigError` with the full menu of
    registered points — an armed typo must fail loudly, not silently
    inject nothing.
    """
    entries = [entry.strip() for entry in spec.split(";") if entry.strip()]
    if not entries:
        raise ConfigError(f"empty fault spec {spec!r}")
    seed = DEFAULT_SEED
    raw_points: list[tuple[str, str]] = []
    for entry in entries:
        if entry.startswith("seed="):
            try:
                seed = int(entry[len("seed=") :])
            except ValueError:
                raise ConfigError(f"fault seed must be an integer: {entry!r}") from None
            continue
        name, sep, directive = entry.partition(":")
        if not sep or not directive:
            raise ConfigError(
                f"fault entry {entry!r} is not 'point:directive' "
                "(e.g. 'checkpoint.tmp:crash@2')"
            )
        if name not in _REGISTRY:
            raise ConfigError(
                f"unknown fault point {name!r} "
                f"(registered: {', '.join(sorted(_REGISTRY))})"
            )
        raw_points.append((name, directive))
    points: list[FaultPoint] = []
    for name, directive in raw_points:
        if directive == "crash" or directive.startswith("crash@"):
            at = 1
            if directive.startswith("crash@"):
                try:
                    at = int(directive[len("crash@") :])
                except ValueError:
                    raise ConfigError(
                        f"crash hit ordinal must be an integer: "
                        f"{name}:{directive}"
                    ) from None
            points.append(CrashPoint(name, at=at))
        elif directive.startswith("delay="):
            try:
                seconds = float(directive[len("delay=") :])
            except ValueError:
                raise ConfigError(
                    f"delay must be a number of seconds: {name}:{directive}"
                ) from None
            points.append(DelayPoint(name, seconds, sleep=sleep))
        elif directive.startswith("flaky="):
            try:
                rate = float(directive[len("flaky=") :])
            except ValueError:
                raise ConfigError(
                    f"flaky rate must be a number: {name}:{directive}"
                ) from None
            points.append(FlakyPoint(name, rate, seed=seed))
        else:
            raise ConfigError(
                f"unknown fault directive {directive!r} for point {name!r} "
                "(expected crash[@N], delay=SECONDS or flaky=RATE)"
            )
    return FaultPlan(points, seed=seed)


def arm(plan: FaultPlan | str | None) -> FaultPlan | None:
    """Install ``plan`` as the process-wide fault plan; returns it.

    Accepts a :class:`FaultPlan`, a spec string (parsed first — so a
    bad spec never half-arms), or ``None`` / ``""`` to disarm.
    """
    global _ACTIVE
    if isinstance(plan, str):
        plan = parse_fault_plan(plan) if plan.strip() else None
    _ACTIVE = plan
    return plan


def disarm() -> None:
    """Remove the armed plan; every point becomes a no-op again."""
    global _ACTIVE
    _ACTIVE = None


def active_plan() -> FaultPlan | None:
    """The armed plan, or ``None`` when injection is off."""
    return _ACTIVE


def active_spec() -> str:
    """Canonical spec of the armed plan ('' when disarmed)."""
    return "" if _ACTIVE is None else _ACTIVE.spec()


@contextmanager
def armed(plan: FaultPlan | str | None):
    """Arm ``plan`` for the scope of a ``with`` block, then restore.

    Yields the armed plan (``None`` when ``plan`` disarms).  The
    previously armed plan — not necessarily none — comes back whatever
    the block raises, so test scopes never leak injection into each
    other.
    """
    previous = _ACTIVE
    installed = arm(plan)
    try:
        yield installed
    finally:
        arm(previous)
