"""Indexes that skip forgotten data: sorted, hash, block-range (BRIN)."""

from .base import Index, ProbeResult
from .brin import BlockRangeIndex
from .hash_index import HashIndex
from .sorted_index import SortedIndex

__all__ = ["Index", "ProbeResult", "BlockRangeIndex", "HashIndex", "SortedIndex"]
