"""Index protocol.

§1 proposes "stop indexing the forgotten data: a complete scan will
fetch all data, but a fast index-based query evaluation will skip the
forgotten data"; §4.4 adds that indices "can be easily dropped, and
recreated upon need, to reduce the storage footprint" (as MonetDB
does).  The index classes here implement both behaviours:

* they subscribe to table insert/forget events and *drop forgotten
  tuples from their entries* (lazily or eagerly);
* they expose ``drop()``/``rebuild()`` and a footprint estimate so the
  storage-budget experiments can weigh index bytes against tuple bytes;
* every probe reports how many entries it touched, the cost signal the
  disposition experiments compare against a full scan.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from .._util.errors import IndexError_
from ..storage.table import Table

__all__ = ["Index", "ProbeResult"]


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of one index probe.

    ``positions`` are the matching *visible* (non-skipped) tuples;
    ``entries_touched`` counts index entries examined — the probe's
    cost in the simulator's unit of work.
    """

    positions: np.ndarray
    entries_touched: int

    @property
    def count(self) -> int:
        """Number of matches returned."""
        return int(self.positions.size)


class Index(ABC):
    """Base class for column indexes over a table.

    Subclasses index exactly one integer column and must keep
    themselves consistent through the table's observer hooks.  An index
    may be *dropped* (its structures freed); probing a dropped index
    raises, and :meth:`rebuild` restores it from the table.
    """

    def __init__(self, table: Table, column: str):
        table.column(column)  # validates existence
        self.table = table
        self.column = column
        self._dropped = False
        self._maintenance_ops = 0
        # No backfill: rebuild() below constructs the structures from the
        # table's current state, which an event replay could not precede.
        table.add_observer(self, backfill=False)
        self.rebuild()

    # -- lifecycle ------------------------------------------------------

    @property
    def is_dropped(self) -> bool:
        """True when the index holds no structures."""
        return self._dropped

    @property
    def maintenance_ops(self) -> int:
        """Entries inserted/invalidated since construction."""
        return self._maintenance_ops

    def drop(self) -> None:
        """Free the index structures (queries fall back to scans)."""
        self._free()
        self._dropped = True

    def rebuild(self) -> None:
        """(Re)build from the table's current active tuples."""
        positions = self.table.active_positions()
        values = self.table.values(self.column)[positions]
        self._build(positions, values)
        self._dropped = False

    def _require_built(self) -> None:
        if self._dropped:
            raise IndexError_(
                f"index on {self.column!r} was dropped; rebuild() it first"
            )

    # -- observer hooks -----------------------------------------------------

    def on_insert(self, table: Table, positions: np.ndarray) -> None:
        """Table hook: index newly inserted tuples."""
        if self._dropped:
            return
        values = table.values(self.column)[positions]
        self._insert(positions, values)
        self._maintenance_ops += int(positions.size)

    def on_forget(self, table: Table, positions: np.ndarray) -> None:
        """Table hook: remove forgotten tuples from the index."""
        if self._dropped:
            return
        self._forget(positions)
        self._maintenance_ops += int(positions.size)

    # -- required structure operations ------------------------------------------

    @abstractmethod
    def _build(self, positions: np.ndarray, values: np.ndarray) -> None:
        """Build fresh structures from (position, value) pairs."""

    @abstractmethod
    def _free(self) -> None:
        """Release all structures."""

    @abstractmethod
    def _insert(self, positions: np.ndarray, values: np.ndarray) -> None:
        """Add new (position, value) pairs."""

    @abstractmethod
    def _forget(self, positions: np.ndarray) -> None:
        """Invalidate entries for forgotten positions."""

    @abstractmethod
    def lookup_range(self, low: int, high: int) -> ProbeResult:
        """Visible positions with ``low <= value < high``."""

    @abstractmethod
    def nbytes(self) -> int:
        """Approximate memory footprint of the index structures."""

    def lookup_value(self, value: int) -> ProbeResult:
        """Visible positions with ``value == column`` (range of width 1)."""
        return self.lookup_range(value, value + 1)

    # -- cost estimation ----------------------------------------------------

    def estimate_entries(self, low: int, high: int) -> int | None:
        """Entries a ``lookup_range(low, high)`` probe would touch.

        The planner's cost model compares this against zone-map scan
        costs, so subclasses should make it cheap (no materialised
        probe) and faithful to what ``entries_touched`` would report.
        ``None`` means the index cannot predict its probe cost; the
        planner then falls back to table-statistics estimates.
        """
        return None

    def __repr__(self) -> str:
        state = "dropped" if self._dropped else "built"
        return f"{type(self).__name__}(column={self.column!r}, {state})"
