"""Block-range index (BRIN / zone maps).

§4.4: "A refinement is to consider partial indices, such as
Block-Range-Indices."  The table's position space is tiled into fixed
blocks; per block the index keeps the min/max value and the count of
active tuples.  A range probe first prunes blocks whose [min, max]
cannot intersect the predicate — or whose active count has dropped to
zero, which is how amnesia *shrinks the effective index*: fully
forgotten blocks cost nothing to skip, the paper's spatially correlated
"mold" making BRIN progressively cheaper.
"""

from __future__ import annotations

import numpy as np

from .._util.errors import ConfigError
from .base import Index, ProbeResult

__all__ = ["BlockRangeIndex"]

_INT64_BYTES = 8


class BlockRangeIndex(Index):
    """Zone-map index over fixed-size position blocks.

    >>> import numpy as np
    >>> from repro.storage import Table
    >>> t = Table("obs", ["a"])
    >>> _ = t.insert_batch(0, {"a": np.arange(1000)})
    >>> idx = BlockRangeIndex(t, "a", block_size=100)
    >>> probe = idx.lookup_range(250, 260)
    >>> probe.positions.tolist() == list(range(250, 260))
    True
    >>> probe.entries_touched  # one block scanned, not the whole table
    100
    """

    def __init__(self, table, column, block_size: int = 128):
        if block_size < 1:
            raise ConfigError(f"block_size must be >= 1, got {block_size}")
        self.block_size = int(block_size)
        super().__init__(table, column)

    # -- structure ops ---------------------------------------------------

    def _block_of(self, positions: np.ndarray) -> np.ndarray:
        return positions // self.block_size

    def _ensure_blocks(self, max_position: int) -> None:
        needed = max_position // self.block_size + 1
        current = self._mins.size
        if needed <= current:
            return
        grow = needed - current
        self._mins = np.concatenate(
            [self._mins, np.full(grow, np.iinfo(np.int64).max, dtype=np.int64)]
        )
        self._maxs = np.concatenate(
            [self._maxs, np.full(grow, np.iinfo(np.int64).min, dtype=np.int64)]
        )
        self._active_counts = np.concatenate(
            [self._active_counts, np.zeros(grow, dtype=np.int64)]
        )

    def _build(self, positions: np.ndarray, values: np.ndarray) -> None:
        self._mins = np.empty(0, dtype=np.int64)
        self._maxs = np.empty(0, dtype=np.int64)
        self._active_counts = np.empty(0, dtype=np.int64)
        if positions.size:
            self._insert(positions, values)

    def _free(self) -> None:
        self._mins = np.empty(0, dtype=np.int64)
        self._maxs = np.empty(0, dtype=np.int64)
        self._active_counts = np.empty(0, dtype=np.int64)

    def _insert(self, positions: np.ndarray, values: np.ndarray) -> None:
        if positions.size == 0:
            return
        self._ensure_blocks(int(positions.max()))
        blocks = self._block_of(positions)
        np.minimum.at(self._mins, blocks, values)
        np.maximum.at(self._maxs, blocks, values)
        np.add.at(self._active_counts, blocks, 1)

    def _forget(self, positions: np.ndarray) -> None:
        if positions.size == 0:
            return
        blocks = self._block_of(np.asarray(positions, dtype=np.int64))
        np.add.at(self._active_counts, blocks, -1)
        # Min/max stay as (safe, possibly loose) bounds; they tighten at
        # the next rebuild, exactly like a real BRIN after vacuum.

    # -- probes ----------------------------------------------------------------

    @property
    def block_count(self) -> int:
        """Number of blocks currently mapped."""
        return int(self._mins.size)

    def candidate_blocks(self, low: int, high: int) -> np.ndarray:
        """Blocks whose zone [min, max] intersects [low, high)."""
        self._require_built()
        if self._mins.size == 0:
            return np.empty(0, dtype=np.int64)
        intersects = (self._mins < high) & (self._maxs >= low)
        return np.flatnonzero(intersects & (self._active_counts > 0))

    def lookup_range(self, low: int, high: int) -> ProbeResult:
        self._require_built()
        blocks = self.candidate_blocks(low, high)
        values = self.table.values(self.column)
        active_mask = self.table.active_mask()
        touched = 0
        chunks: list[np.ndarray] = []
        total = self.table.total_rows
        for block in blocks.tolist():
            start = block * self.block_size
            stop = min(start + self.block_size, total)
            touched += stop - start
            window = values[start:stop]
            mask = (window >= low) & (window < high) & active_mask[start:stop]
            hits = np.flatnonzero(mask)
            if hits.size:
                chunks.append(hits + start)
        positions = (
            np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        )
        return ProbeResult(positions=positions, entries_touched=touched)

    def estimate_entries(self, low: int, high: int) -> int | None:
        """Exact probe cost: rows in the blocks the probe cannot prune."""
        if self._dropped:
            return None
        blocks = self.candidate_blocks(low, high)
        if blocks.size == 0:
            return 0
        total = self.table.total_rows
        starts = blocks * self.block_size
        stops = np.minimum(starts + self.block_size, total)
        return int((stops - starts).sum())

    def nbytes(self) -> int:
        if self._dropped:
            return 0
        return int(self._mins.nbytes + self._maxs.nbytes + self._active_counts.nbytes)

    def pruned_fraction(self, low: int, high: int) -> float:
        """Fraction of blocks a probe of [low, high) skips."""
        if self.block_count == 0:
            return 0.0
        return 1.0 - self.candidate_blocks(low, high).size / self.block_count
