"""A hash index for point lookups.

Maps each value to the list of positions holding it.  Range probes
degrade to per-value lookups, so the hash index is only competitive for
narrow ranges — the dispositions experiment uses it for point-query
workloads and the sorted/BRIN indexes for ranges.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from .base import Index, ProbeResult

__all__ = ["HashIndex"]

_INT64_BYTES = 8


class HashIndex(Index):
    """value → positions mapping with eager forget maintenance.

    >>> import numpy as np
    >>> from repro.storage import Table
    >>> t = Table("obs", ["a"])
    >>> _ = t.insert_batch(0, {"a": [7, 7, 3]})
    >>> idx = HashIndex(t, "a")
    >>> sorted(idx.lookup_value(7).positions.tolist())
    [0, 1]
    """

    # -- structure ops ---------------------------------------------------

    def _build(self, positions: np.ndarray, values: np.ndarray) -> None:
        self._buckets: dict[int, set[int]] = defaultdict(set)
        self._entry_count = 0
        self._insert(positions, values)

    def _free(self) -> None:
        self._buckets = defaultdict(set)
        self._entry_count = 0

    def _insert(self, positions: np.ndarray, values: np.ndarray) -> None:
        for position, value in zip(positions.tolist(), values.tolist()):
            self._buckets[int(value)].add(int(position))
        self._entry_count += int(positions.size)

    def _forget(self, positions: np.ndarray) -> None:
        values = self.table.values(self.column)[positions]
        for position, value in zip(positions.tolist(), values.tolist()):
            bucket = self._buckets.get(int(value))
            if bucket is not None and int(position) in bucket:
                bucket.remove(int(position))
                self._entry_count -= 1
                if not bucket:
                    del self._buckets[int(value)]

    # -- probes ----------------------------------------------------------------

    def lookup_value(self, value: int) -> ProbeResult:
        self._require_built()
        bucket = self._buckets.get(int(value), ())
        positions = np.fromiter(bucket, dtype=np.int64, count=len(bucket))
        return ProbeResult(
            positions=np.sort(positions), entries_touched=len(bucket) + 1
        )

    def lookup_range(self, low: int, high: int) -> ProbeResult:
        self._require_built()
        touched = 0
        chunks: list[np.ndarray] = []
        for value in range(int(low), int(high)):
            probe = self.lookup_value(value)
            touched += probe.entries_touched
            if probe.count:
                chunks.append(probe.positions)
        positions = (
            np.sort(np.concatenate(chunks)) if chunks else np.empty(0, dtype=np.int64)
        )
        return ProbeResult(positions=positions, entries_touched=touched)

    def estimate_entries(self, low: int, high: int) -> int | None:
        """Exact probe cost: one lookup per value plus the bucket sizes.

        Work is bounded by min(range width, distinct values): wide
        ranges are priced by sweeping the buckets instead of the value
        range, so the estimate stays cheap however wide the probe.
        """
        if self._dropped:
            return None
        low, high = int(low), int(high)
        width = max(high - low, 0)
        if width <= len(self._buckets):
            return sum(
                len(self._buckets.get(value, ())) + 1
                for value in range(low, high)
            )
        matches = sum(
            len(bucket)
            for value, bucket in self._buckets.items()
            if low <= value < high
        )
        return matches + width

    def nbytes(self) -> int:
        if self._dropped:
            return 0
        # Keys + entries, ignoring Python object overhead on purpose:
        # the experiments compare *logical* footprints.
        return (len(self._buckets) + self._entry_count) * _INT64_BYTES

    @property
    def entry_count(self) -> int:
        """Live (position, value) entries."""
        return self._entry_count

    @property
    def distinct_values(self) -> int:
        """Distinct values currently indexed."""
        return len(self._buckets)
