"""A sorted (value-ordered) secondary index.

Entries are (value, position) pairs kept in value order, probed by
binary search.  Inserts land in an unsorted *delta* buffer that is
merged into the sorted run once it outgrows a threshold — the classic
read-optimised/write-buffer split of columnar systems.  Forgetting
marks entries invalid via a tombstone bitmap ("stop indexing the
forgotten data"); tombstones are physically purged at merge time.
"""

from __future__ import annotations

import numpy as np

from .base import Index, ProbeResult

__all__ = ["SortedIndex"]


class SortedIndex(Index):
    """Binary-searchable (value, position) index with a delta buffer.

    >>> import numpy as np
    >>> from repro.storage import Table
    >>> t = Table("obs", ["a"])
    >>> _ = t.insert_batch(0, {"a": [5, 1, 9, 1]})
    >>> idx = SortedIndex(t, "a")
    >>> sorted(idx.lookup_range(1, 6).positions.tolist())
    [0, 1, 3]
    >>> t.forget(np.array([1]), epoch=1)
    1
    >>> sorted(idx.lookup_range(1, 6).positions.tolist())
    [0, 3]
    """

    #: Delta entries beyond which the next operation triggers a merge.
    DEFAULT_MERGE_THRESHOLD = 4096

    def __init__(self, table, column, merge_threshold: int = DEFAULT_MERGE_THRESHOLD):
        self.merge_threshold = int(merge_threshold)
        super().__init__(table, column)

    # -- structure ops ---------------------------------------------------

    def _build(self, positions: np.ndarray, values: np.ndarray) -> None:
        order = np.argsort(values, kind="stable")
        self._values = values[order].copy()
        self._positions = positions[order].copy()
        self._alive = np.ones(self._positions.size, dtype=bool)
        self._delta_positions: list[np.ndarray] = []
        self._delta_values: list[np.ndarray] = []
        self._delta_size = 0
        self._forgotten: set[int] = set()

    def _free(self) -> None:
        self._values = np.empty(0, dtype=np.int64)
        self._positions = np.empty(0, dtype=np.int64)
        self._alive = np.empty(0, dtype=bool)
        self._delta_positions = []
        self._delta_values = []
        self._delta_size = 0
        self._forgotten = set()

    def _insert(self, positions: np.ndarray, values: np.ndarray) -> None:
        self._delta_positions.append(np.asarray(positions, dtype=np.int64).copy())
        self._delta_values.append(np.asarray(values, dtype=np.int64).copy())
        self._delta_size += int(positions.size)
        if self._delta_size > self.merge_threshold:
            self._merge()

    def _forget(self, positions: np.ndarray) -> None:
        positions = np.asarray(positions, dtype=np.int64)
        # Tombstone the sorted run via a position->slot lookup.
        if self._positions.size:
            slots = np.flatnonzero(np.isin(self._positions, positions))
            self._alive[slots] = False
        self._forgotten.update(int(p) for p in positions.tolist())

    def _merge(self) -> None:
        """Fold the delta into the sorted run, purging tombstones."""
        parts_values = [self._values[self._alive]]
        parts_positions = [self._positions[self._alive]]
        for values, positions in zip(self._delta_values, self._delta_positions):
            keep = np.array(
                [int(p) not in self._forgotten for p in positions.tolist()],
                dtype=bool,
            )
            parts_values.append(values[keep])
            parts_positions.append(positions[keep])
        values = np.concatenate(parts_values)
        positions = np.concatenate(parts_positions)
        order = np.argsort(values, kind="stable")
        self._values = values[order]
        self._positions = positions[order]
        self._alive = np.ones(self._positions.size, dtype=bool)
        self._delta_positions = []
        self._delta_values = []
        self._delta_size = 0
        self._forgotten = set()

    # -- probes ----------------------------------------------------------------

    def lookup_range(self, low: int, high: int) -> ProbeResult:
        self._require_built()
        touched = 0
        out: list[np.ndarray] = []
        lo = int(np.searchsorted(self._values, low, side="left"))
        hi = int(np.searchsorted(self._values, high, side="left"))
        touched += hi - lo
        if hi > lo:
            alive = self._alive[lo:hi]
            out.append(self._positions[lo:hi][alive])
        for values, positions in zip(self._delta_values, self._delta_positions):
            touched += int(values.size)
            mask = (values >= low) & (values < high)
            if mask.any():
                candidates = positions[mask]
                keep = np.array(
                    [int(p) not in self._forgotten for p in candidates.tolist()],
                    dtype=bool,
                )
                out.append(candidates[keep])
        positions = (
            np.concatenate(out) if out else np.empty(0, dtype=np.int64)
        )
        return ProbeResult(positions=positions, entries_touched=touched)

    def estimate_entries(self, low: int, high: int) -> int | None:
        """Exact probe cost: sorted-run hits plus the full delta buffer."""
        if self._dropped:
            return None
        lo = int(np.searchsorted(self._values, low, side="left"))
        hi = int(np.searchsorted(self._values, high, side="left"))
        return hi - lo + self._delta_size

    def nbytes(self) -> int:
        if self._dropped:
            return 0
        run = self._values.nbytes + self._positions.nbytes + self._alive.nbytes
        delta = sum(v.nbytes + p.nbytes for v, p in zip(self._delta_values, self._delta_positions))
        return int(run + delta)

    @property
    def delta_size(self) -> int:
        """Entries waiting in the unsorted write buffer."""
        return self._delta_size
