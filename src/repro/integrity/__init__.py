"""Referential integrity under amnesia: foreign keys, restrict/cascade."""

from .constraints import ForeignKey, ReferentialAmnesiaWrapper

__all__ = ["ForeignKey", "ReferentialAmnesiaWrapper"]
