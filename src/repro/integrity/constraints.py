"""Referential integrity under amnesia (paper §5).

    "Semantic database integrity creates another challenge for amnesia
    strategies.  For example, foreign key relationships put a hard
    boundary on what we can forget.  Should forgetting a key value be
    forbidden unless it is not referenced any more?  Or should we
    cascade by forgetting all related tuples?"

This module answers both ways:

* :class:`ForeignKey` — a declared child→parent relationship between
  two amnesiac tables, with consistency checking;
* :class:`ReferentialAmnesiaWrapper` — wraps a parent table's policy so
  that parent tuples still referenced by *active* children are either
  never selected (``mode="restrict"``) or trigger cascaded forgetting
  of their children (``mode="cascade"``).
"""

from __future__ import annotations

import numpy as np

from .._util.errors import ConfigError, LifecycleError
from ..amnesia.base import AmnesiaPolicy
from ..storage.table import Table

__all__ = ["ForeignKey", "ReferentialAmnesiaWrapper"]


class ForeignKey:
    """A child-table column referencing a parent-table key column.

    Keys are the *values* of the named columns (the simulator stores
    integers, so keys are integers).  The constraint is evaluated over
    active tuples only: forgotten parents with forgotten children are
    consistent — amnesia removed the whole subgraph.

    >>> import numpy as np
    >>> parent = Table("p", ["id"])
    >>> child = Table("c", ["pid"])
    >>> _ = parent.insert_batch(0, {"id": [1, 2]})
    >>> _ = child.insert_batch(0, {"pid": [1, 1, 2]})
    >>> fk = ForeignKey(child, "pid", parent, "id")
    >>> fk.violations().size
    0
    """

    def __init__(
        self,
        child: Table,
        child_column: str,
        parent: Table,
        parent_column: str,
    ):
        child.column(child_column)
        parent.column(parent_column)
        if child is parent:
            raise ConfigError("self-referencing foreign keys are not supported")
        self.child = child
        self.child_column = child_column
        self.parent = parent
        self.parent_column = parent_column

    def active_parent_keys(self) -> np.ndarray:
        """Distinct key values of active parent tuples."""
        return np.unique(self.parent.active_values(self.parent_column))

    def active_child_keys(self) -> np.ndarray:
        """Distinct key values referenced by active child tuples."""
        return np.unique(self.child.active_values(self.child_column))

    def referenced_parent_positions(self) -> np.ndarray:
        """Active parent positions whose key an active child references."""
        keys = self.active_child_keys()
        positions = self.parent.active_positions()
        values = self.parent.values(self.parent_column)[positions]
        return positions[np.isin(values, keys)]

    def children_of(self, parent_positions: np.ndarray) -> np.ndarray:
        """Active child positions referencing the given parent rows."""
        parent_positions = np.asarray(parent_positions, dtype=np.int64)
        keys = np.unique(
            self.parent.values(self.parent_column)[parent_positions]
        )
        positions = self.child.active_positions()
        values = self.child.values(self.child_column)[positions]
        return positions[np.isin(values, keys)]

    def violations(self) -> np.ndarray:
        """Active child positions whose parent key has no active parent."""
        parent_keys = self.active_parent_keys()
        positions = self.child.active_positions()
        values = self.child.values(self.child_column)[positions]
        return positions[~np.isin(values, parent_keys)]

    def check(self) -> None:
        """Raise if any active child dangles."""
        dangling = self.violations()
        if dangling.size:
            raise LifecycleError(
                f"foreign key {self.child.name}.{self.child_column} -> "
                f"{self.parent.name}.{self.parent_column} violated by "
                f"{dangling.size} active child tuples"
            )

    def __repr__(self) -> str:
        return (
            f"ForeignKey({self.child.name}.{self.child_column} -> "
            f"{self.parent.name}.{self.parent_column})"
        )


class ReferentialAmnesiaWrapper(AmnesiaPolicy):
    """Make a parent table's amnesia respect a foreign key.

    Parameters
    ----------
    inner:
        The discretionary policy choosing parent victims.
    foreign_key:
        The constraint to uphold.  The wrapped policy must be driving
        the *parent* table of this key.
    mode:
        ``"restrict"`` — referenced parents are excluded from the
        victim pool (the forgetting is forbidden "unless it is not
        referenced any more");
        ``"cascade"`` — referenced parents may be forgotten, and their
        active children are forgotten *in the same breath* (recorded on
        the child table immediately).
    """

    MODES = ("restrict", "cascade")

    def __init__(
        self,
        inner: AmnesiaPolicy,
        foreign_key: ForeignKey,
        mode: str = "restrict",
    ):
        if mode not in self.MODES:
            raise ConfigError(
                f"mode must be one of {self.MODES}, got {mode!r}"
            )
        self.inner = inner
        self.foreign_key = foreign_key
        self.mode = mode
        self.cascaded_children = 0

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"referential[{self.mode}]({self.inner.name})"

    def select_victims(self, table, n, epoch, rng, exclude=None):
        if table is not self.foreign_key.parent:
            raise ConfigError(
                "ReferentialAmnesiaWrapper must drive the FK's parent table"
            )
        if self.mode == "restrict":
            protected = self.foreign_key.referenced_parent_positions()
            merged = protected
            if exclude is not None and len(exclude):
                merged = np.union1d(
                    protected, np.asarray(exclude, dtype=np.int64)
                )
            return self.inner.select_victims(
                table, n, epoch, rng, exclude=merged
            )
        # Cascade: choose parents freely, then forget their children.
        victims = self.inner.select_victims(table, n, epoch, rng, exclude=exclude)
        children = self.foreign_key.children_of(victims)
        if children.size:
            self.foreign_key.child.forget(children, epoch)
            self.cascaded_children += int(children.size)
        return victims

    def on_insert(self, table, positions, epoch):
        self.inner.on_insert(table, positions, epoch)

    def reset(self) -> None:
        self.inner.reset()
        self.cascaded_children = 0

    def __repr__(self) -> str:
        return (
            f"ReferentialAmnesiaWrapper(inner={self.inner!r}, "
            f"mode={self.mode!r})"
        )
