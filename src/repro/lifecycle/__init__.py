"""Forgotten-data dispositions and disposition-aware execution (§1)."""

from .dispositions import (
    ColdStorageDisposition,
    Disposition,
    HardDeleteDisposition,
    MarkOnlyDisposition,
    StopIndexingDisposition,
    SummaryDisposition,
)
from .executor import DispositionExecutor, PlanOutcome

__all__ = [
    "ColdStorageDisposition",
    "Disposition",
    "HardDeleteDisposition",
    "MarkOnlyDisposition",
    "StopIndexingDisposition",
    "SummaryDisposition",
    "DispositionExecutor",
    "PlanOutcome",
]
