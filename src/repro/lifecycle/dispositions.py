"""What happens to forgotten data (paper §1).

    "A DBMS might be as radical as to delete all data being forgotten.
    A lighter and more feasible option is to stop indexing the
    forgotten data. ... A more cost-effective option is to move
    forgotten data to cheap slow cold-storage.  Finally, a possibly
    poor information retention approach would be to keep a summary."

Each option is a :class:`Disposition`: a table observer that reacts to
forget events and defines *visibility* — which tuples a complete scan
and an index-based plan can still fetch.  Dispositions compose with any
amnesia policy, which is why the policies themselves only *select*
victims.
"""

from __future__ import annotations

from abc import ABC

import numpy as np

from .._util.errors import LifecycleError
from ..coldstore.store import ColdStore
from ..storage.table import Table
from ..summaries.summary import SummaryStore

__all__ = [
    "Disposition",
    "MarkOnlyDisposition",
    "HardDeleteDisposition",
    "StopIndexingDisposition",
    "ColdStorageDisposition",
    "SummaryDisposition",
]

_INT64_BYTES = 8


class Disposition(ABC):
    """Base class: forgotten-data handling strategy.

    Subclasses override the forget hook and/or the visibility masks.
    The default visibility is the paper's simulator behaviour: forgotten
    tuples are invisible to every plan.
    """

    #: Short name used in experiment tables.
    name: str = "abstract"

    #: Whether forgotten tuples can be brought back on explicit request.
    recoverable: bool = False

    def on_insert(self, table: Table, positions: np.ndarray) -> None:
        """Table hook (default: nothing to do on insert)."""

    def on_forget(self, table: Table, positions: np.ndarray) -> None:
        """Table hook (default: marking alone is enough)."""

    def scan_mask(self, table: Table) -> np.ndarray:
        """Rows a *complete scan* fetches (default: active only)."""
        return table.active_mask()

    def index_mask(self, table: Table) -> np.ndarray:
        """Rows an *index-based plan* can reach (default: active only)."""
        return table.active_mask()

    def stats(self) -> dict:
        """Disposition-specific accounting for reports."""
        return {"disposition": self.name}

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class MarkOnlyDisposition(Disposition):
    """Tuples are merely marked inactive — the simulator's ground truth.

    Storage is not reclaimed; the benefit is purely that queries skip
    the forgotten tuples.  This is the paper's measurement mode: "the
    simulator only marks tuples as either active or forgotten" (§2.3).
    """

    name = "mark"


class HardDeleteDisposition(Disposition):
    """The radical option: forgotten data is physically destroyed.

    The simulator's table still retains values for oracle accounting,
    but this disposition records the reclaimed bytes and forbids
    recovery — the information is gone.
    """

    name = "delete"
    recoverable = False

    def __init__(self) -> None:
        self.bytes_reclaimed = 0
        self.tuples_deleted = 0

    def on_forget(self, table, positions):
        n = int(np.asarray(positions).size)
        self.tuples_deleted += n
        self.bytes_reclaimed += n * _INT64_BYTES * len(table.column_names)

    def stats(self):
        return {
            "disposition": self.name,
            "tuples_deleted": self.tuples_deleted,
            "bytes_reclaimed": self.bytes_reclaimed,
        }


class StopIndexingDisposition(Disposition):
    """Forgotten tuples leave the indexes but stay on disk.

    "A complete scan will fetch all data, but a fast index-based query
    evaluation will skip the forgotten data" (§1).  The asymmetry is
    the whole point: precision depends on the *plan*, and experiment I1
    measures that trade (scan: full recall, full cost; index: amnesiac
    recall, amnesiac cost).
    """

    name = "stop-indexing"
    recoverable = True

    def scan_mask(self, table):
        return np.ones(table.total_rows, dtype=bool)


class ColdStorageDisposition(Disposition):
    """Forgotten tuples migrate to the cold tier.

    Invisible to all plans (like mark-only) but recoverable on explicit
    user action, paying the cold tier's dollar and latency price.
    """

    name = "cold"
    recoverable = True

    def __init__(self, store: ColdStore | None = None):
        self.store = store or ColdStore()

    def on_forget(self, table, positions):
        positions = np.asarray(positions, dtype=np.int64)
        values = {
            name: table.values(name)[positions] for name in table.column_names
        }
        self.store.archive(epoch=table.cohorts.latest_epoch, positions=positions, values_by_column=values)

    def recover(self, positions: np.ndarray) -> dict[str, np.ndarray]:
        """Fetch forgotten tuples back (cost-accounted by the store)."""
        return self.store.retrieve(positions)

    def stats(self):
        return {
            "disposition": self.name,
            "archived_tuples": self.store.tuple_count,
            "archived_bytes": self.store.stored_bytes,
            "retrieval_cost_usd": self.store.retrieval_cost_so_far(),
        }


class SummaryDisposition(Disposition):
    """Forgotten tuples collapse into min/max/avg/count summaries.

    "This will reduce the storage drastically but the DBMS will only be
    able to answer specific aggregation queries" (§1) — range queries
    lose the tuples for good, whole-table aggregates stay exact.
    """

    name = "summary"
    recoverable = False

    def __init__(self, store: SummaryStore | None = None):
        self.store = store or SummaryStore()

    def on_forget(self, table, positions):
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size == 0:
            raise LifecycleError("summary disposition received an empty forget")
        values = {
            name: table.values(name)[positions] for name in table.column_names
        }
        self.store.add(epoch=table.cohorts.latest_epoch, values_by_column=values)

    def stats(self):
        return {
            "disposition": self.name,
            "summarised_tuples": self.store.tuple_count,
            "summary_bytes": self.store.nbytes,
        }
