"""Disposition-aware query execution with cost accounting.

Where :class:`repro.query.QueryExecutor` measures *information*
(amnesiac vs oracle), this executor measures *work*: how many tuples a
plan touches under a given forgotten-data disposition, and what it gets
back.  It powers experiment I1 — the scan-vs-index visibility asymmetry
of the stop-indexing disposition — and the summary-answered aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util.errors import LifecycleError
from ..indexes.base import Index
from ..query.queries import AggregateFunction
from ..storage.table import Table
from .dispositions import Disposition, SummaryDisposition

__all__ = ["PlanOutcome", "DispositionExecutor"]


@dataclass(frozen=True)
class PlanOutcome:
    """Result + cost of one plan execution.

    ``recall`` is measured against the oracle (every tuple ever
    inserted that matches), so a full scan under stop-indexing achieves
    recall 1.0 while an index plan reports the amnesiac recall.
    """

    plan: str
    positions: np.ndarray
    tuples_touched: int
    oracle_matches: int

    @property
    def returned(self) -> int:
        """Tuples the plan produced."""
        return int(self.positions.size)

    @property
    def recall(self) -> float:
        """returned / oracle_matches (1.0 when nothing matches at all)."""
        if self.oracle_matches == 0:
            return 1.0
        return self.returned / self.oracle_matches


class DispositionExecutor:
    """Runs range plans under a disposition's visibility rules.

    >>> import numpy as np
    >>> from repro.storage import Table
    >>> from repro.lifecycle import StopIndexingDisposition
    >>> t = Table("obs", ["a"])
    >>> d = StopIndexingDisposition()
    >>> t.add_observer(d)
    >>> _ = t.insert_batch(0, {"a": np.arange(100)})
    >>> t.forget(np.arange(50), epoch=1)
    50
    >>> ex = DispositionExecutor(t, d)
    >>> ex.range_scan("a", 0, 100).recall     # complete scan sees all
    1.0
    >>> ex.range_scan("a", 0, 100).tuples_touched
    100
    """

    def __init__(self, table: Table, disposition: Disposition, index: Index | None = None):
        self.table = table
        self.disposition = disposition
        self.index = index
        if index is not None and index.table is not table:
            raise LifecycleError("index was built over a different table")

    # -- plans -----------------------------------------------------------

    def _oracle_matches(self, column: str, low: int, high: int) -> int:
        values = self.table.values(column)
        return int(np.count_nonzero((values >= low) & (values < high)))

    def range_scan(self, column: str, low: int, high: int) -> PlanOutcome:
        """Complete scan: touches every tuple, sees the scan mask."""
        values = self.table.values(column)
        visible = self.disposition.scan_mask(self.table)
        mask = (values >= low) & (values < high) & visible
        return PlanOutcome(
            plan="scan",
            positions=np.flatnonzero(mask),
            tuples_touched=self.table.total_rows,
            oracle_matches=self._oracle_matches(column, low, high),
        )

    def range_via_index(self, column: str, low: int, high: int) -> PlanOutcome:
        """Index plan: touches only probed entries, sees the index mask."""
        if self.index is None:
            raise LifecycleError("no index attached to this executor")
        if self.index.column != column:
            raise LifecycleError(
                f"attached index covers {self.index.column!r}, not {column!r}"
            )
        probe = self.index.lookup_range(low, high)
        visible = self.disposition.index_mask(self.table)
        positions = probe.positions[visible[probe.positions]]
        return PlanOutcome(
            plan="index",
            positions=positions,
            tuples_touched=probe.entries_touched,
            oracle_matches=self._oracle_matches(column, low, high),
        )

    # -- summary-backed aggregates ---------------------------------------------

    def aggregate_with_summaries(
        self, function: AggregateFunction | str, column: str
    ) -> tuple[float | None, float | None]:
        """(amnesiac+summary answer, oracle answer) for a whole-table aggregate.

        Requires a :class:`SummaryDisposition`; the answer combines live
        tuples with the stored summaries of everything forgotten.
        """
        if not isinstance(self.disposition, SummaryDisposition):
            raise LifecycleError(
                "summary-backed aggregates need a SummaryDisposition"
            )
        function = AggregateFunction(function)
        active_values = self.table.active_values(column)
        answer = self.disposition.store.combined_with_active(
            function, column, active_values
        )
        oracle = function.compute(self.table.values(column))
        return answer, oracle
