"""Information precision metrics, amnesia maps and run reports (§2.3)."""

from .maps import AmnesiaMap
from .precision import BatchPrecisionCollector, BatchPrecisionSummary
from .reports import EpochReport, RunReport

__all__ = [
    "AmnesiaMap",
    "BatchPrecisionCollector",
    "BatchPrecisionSummary",
    "EpochReport",
    "RunReport",
]
