"""Amnesia maps: which portion of the database survives, per cohort.

Figures 1 and 2 of the paper visualise "the distribution of still active
tuples after a sequence of 10 update batches": for every insertion
cohort (x axis, the timeline) the fraction of its tuples still active
(brightness).  :class:`AmnesiaMap` accumulates those snapshots — one per
epoch — into a matrix that the plotting layer renders as an ASCII heat
map and the benchmarks compare across policies.
"""

from __future__ import annotations

import numpy as np

from .._util.errors import ConfigError

__all__ = ["AmnesiaMap"]


class AmnesiaMap:
    """Per-epoch snapshots of per-cohort active fractions.

    >>> m = AmnesiaMap()
    >>> m.add_snapshot(0, {0: 1.0})
    >>> m.add_snapshot(1, {0: 0.8, 1: 1.0})
    >>> m.cohort_epochs
    [0, 1]
    >>> m.final_row()
    {0: 0.8, 1: 1.0}
    """

    def __init__(self) -> None:
        self._snapshots: dict[int, dict[int, float]] = {}

    def add_snapshot(self, epoch: int, cohort_activity: dict[int, float]) -> None:
        """Record the activity map observed after ``epoch``."""
        epoch = int(epoch)
        if epoch in self._snapshots:
            raise ConfigError(f"snapshot for epoch {epoch} already recorded")
        if self._snapshots and epoch < max(self._snapshots):
            raise ConfigError("snapshots must be recorded in epoch order")
        for fraction in cohort_activity.values():
            if not 0.0 <= fraction <= 1.0:
                raise ConfigError(
                    f"activity fraction {fraction} outside [0, 1]"
                )
        self._snapshots[epoch] = {
            int(k): float(v) for k, v in cohort_activity.items()
        }

    def __len__(self) -> int:
        return len(self._snapshots)

    @property
    def epochs(self) -> list[int]:
        """Epochs with a recorded snapshot, ascending."""
        return sorted(self._snapshots)

    @property
    def cohort_epochs(self) -> list[int]:
        """All cohort (insertion batch) epochs seen, ascending."""
        cohorts: set[int] = set()
        for snap in self._snapshots.values():
            cohorts.update(snap)
        return sorted(cohorts)

    def snapshot(self, epoch: int) -> dict[int, float]:
        """The cohort-activity dict recorded for ``epoch``."""
        try:
            return dict(self._snapshots[epoch])
        except KeyError:
            raise ConfigError(f"no snapshot recorded for epoch {epoch}") from None

    def final_row(self) -> dict[int, float]:
        """The last snapshot: the paper's published map (after batch 10)."""
        if not self._snapshots:
            raise ConfigError("no snapshots recorded")
        return dict(self._snapshots[max(self._snapshots)])

    def matrix(self) -> tuple[list[int], list[int], np.ndarray]:
        """Dense matrix form: (epochs, cohorts, fractions).

        Rows are snapshot epochs, columns cohort epochs; entries are
        active fractions, NaN where the cohort did not exist yet.
        """
        epochs = self.epochs
        cohorts = self.cohort_epochs
        if not epochs:
            raise ConfigError("no snapshots recorded")
        out = np.full((len(epochs), len(cohorts)), np.nan)
        cohort_index = {c: j for j, c in enumerate(cohorts)}
        for i, epoch in enumerate(epochs):
            for cohort, fraction in self._snapshots[epoch].items():
                out[i, cohort_index[cohort]] = fraction
        return epochs, cohorts, out

    def final_fractions(self) -> np.ndarray:
        """Final-row fractions ordered by cohort epoch (dense array)."""
        row = self.final_row()
        return np.array([row[c] for c in sorted(row)], dtype=np.float64)
