"""Information precision metrics (paper §2.3).

For a batch of queries fired against the incomplete database the
simulator reports:

* ``RF(Q)`` — tuples in the result;
* ``MF(Q)`` — tuples missed;
* ``PF(Q) = RF/(RF+MF)`` — per-query precision;
* ``E = avg(RF)/avg(RF+MF)`` — the error margin over the whole batch
  (micro-averaged precision: large queries weigh more).

:class:`BatchPrecisionCollector` accumulates per-query results and emits
a :class:`BatchPrecisionSummary`.  Aggregate queries contribute value
precision (1 - relative error) alongside tuple-level counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._util.errors import ConfigError
from ..query.queries import AggregateResult, RangeResult

__all__ = ["BatchPrecisionSummary", "BatchPrecisionCollector"]


@dataclass(frozen=True)
class BatchPrecisionSummary:
    """Precision statistics for one query batch.

    ``macro_precision`` averages PF(Q) per query; ``error_margin`` is
    the paper's E (micro average).  Aggregate fields are None when the
    batch contained no aggregate queries.
    """

    n_range: int
    n_aggregate: int
    total_rf: int
    total_mf: int
    macro_precision: float
    error_margin: float
    aggregate_mean_relative_error: float | None
    aggregate_mean_precision: float | None

    @property
    def n_queries(self) -> int:
        """Total queries summarised."""
        return self.n_range + self.n_aggregate

    @property
    def mean_rf(self) -> float:
        """avg(RF) over range queries (0 when none)."""
        return self.total_rf / self.n_range if self.n_range else 0.0

    @property
    def mean_mf(self) -> float:
        """avg(MF) over range queries (0 when none)."""
        return self.total_mf / self.n_range if self.n_range else 0.0


class BatchPrecisionCollector:
    """Accumulates query results for one epoch's query batch.

    >>> import numpy as np
    >>> from repro.query.queries import RangeQuery, RangeResult
    >>> from repro.query.predicates import RangePredicate
    >>> coll = BatchPrecisionCollector()
    >>> q = RangeQuery(RangePredicate("a", 0, 10))
    >>> coll.add(RangeResult(q, np.arange(3), np.arange(1)))
    >>> coll.summary().error_margin
    0.75
    """

    def __init__(self) -> None:
        self._n_range = 0
        self._n_aggregate = 0
        self._total_rf = 0
        self._total_mf = 0
        self._precision_sum = 0.0
        self._agg_rel_error_sum = 0.0
        self._agg_precision_sum = 0.0

    def add(self, result) -> None:
        """Add one query result (range or aggregate)."""
        if isinstance(result, RangeResult):
            self._n_range += 1
            self._total_rf += result.rf
            self._total_mf += result.mf
            self._precision_sum += result.precision
        elif isinstance(result, AggregateResult):
            self._n_aggregate += 1
            # Tuple-level counts feed E so that aggregate queries also
            # witness missing tuples, exactly like the simulator's
            # mixed batches.
            self._total_rf += result.active_matches
            self._total_mf += result.missed_matches
            self._precision_sum += result.tuple_precision
            self._agg_rel_error_sum += result.relative_error
            self._agg_precision_sum += result.precision
        else:
            raise ConfigError(
                f"unsupported result type {type(result).__name__}"
            )

    def extend(self, results) -> None:
        """Add many results."""
        for result in results:
            self.add(result)

    @property
    def n_results(self) -> int:
        """How many results have been added."""
        return self._n_range + self._n_aggregate

    def summary(self) -> BatchPrecisionSummary:
        """Emit the batch summary (raises if no results were added)."""
        n = self.n_results
        if n == 0:
            raise ConfigError("no query results collected")
        oracle_total = self._total_rf + self._total_mf
        error_margin = 1.0 if oracle_total == 0 else self._total_rf / oracle_total
        return BatchPrecisionSummary(
            n_range=self._n_range,
            n_aggregate=self._n_aggregate,
            total_rf=self._total_rf,
            total_mf=self._total_mf,
            macro_precision=self._precision_sum / n,
            error_margin=error_margin,
            aggregate_mean_relative_error=(
                self._agg_rel_error_sum / self._n_aggregate
                if self._n_aggregate
                else None
            ),
            aggregate_mean_precision=(
                self._agg_precision_sum / self._n_aggregate
                if self._n_aggregate
                else None
            ),
        )
