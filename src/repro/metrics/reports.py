"""Per-epoch simulation reports.

One :class:`EpochReport` is produced per simulated epoch: the query
batch's precision summary plus storage-level facts (active/total rows,
cohort activity, distribution drift).  A run's list of reports is the
raw material for every figure and table in the evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EpochReport", "RunReport"]


@dataclass(frozen=True)
class EpochReport:
    """Everything measured during one epoch.

    ``precision`` is None for epoch 0 (initial load: no queries ran
    yet) and for runs configured without queries.
    """

    epoch: int
    active_rows: int
    total_rows: int
    inserted: int
    forgotten: int
    precision: object | None  # BatchPrecisionSummary
    cohort_activity: dict[int, float] = field(default_factory=dict)
    divergence_js: float | None = None

    @property
    def forgotten_rows(self) -> int:
        """Rows no longer active at the end of the epoch."""
        return self.total_rows - self.active_rows

    @property
    def error_margin(self) -> float | None:
        """Shortcut to the batch's E metric (None when no queries ran)."""
        return None if self.precision is None else self.precision.error_margin


@dataclass(frozen=True)
class RunReport:
    """A full simulation run: configuration echo plus epoch reports."""

    policy_name: str
    distribution_name: str
    dbsize: int
    update_fraction: float
    epochs: list[EpochReport]

    def precision_series(self) -> list[float]:
        """Error margin E per query epoch (skips epochs without queries)."""
        return [
            r.precision.error_margin
            for r in self.epochs
            if r.precision is not None
        ]

    def macro_precision_series(self) -> list[float]:
        """Macro-averaged PF per query epoch."""
        return [
            r.precision.macro_precision
            for r in self.epochs
            if r.precision is not None
        ]

    def aggregate_precision_series(self) -> list[float]:
        """Aggregate value precision per epoch (only aggregate batches)."""
        return [
            r.precision.aggregate_mean_precision
            for r in self.epochs
            if r.precision is not None
            and r.precision.aggregate_mean_precision is not None
        ]

    def final_epoch(self) -> EpochReport:
        """The last epoch report."""
        if not self.epochs:
            raise ValueError("run produced no epochs")
        return self.epochs[-1]
