"""Adaptive partitioned amnesia: per-range budgets tuned to the workload."""

from .partitioned import (
    MergedRangeResult,
    Partition,
    PartitionedAmnesiaDatabase,
)

__all__ = ["MergedRangeResult", "Partition", "PartitionedAmnesiaDatabase"]
