"""Adaptive partitioned amnesia (paper §4.4), now parallel and adaptive.

    "Instead of user defined partitioning schemes, it might be worth to
    study amnesia in the context of adaptive partitioning.  Each
    partition can then be tuned to provide the best precision for a
    subset of the workload."

A :class:`PartitionedAmnesiaDatabase` splits the value domain into
range partitions, each backed by its own
:class:`~repro.core.database.AmnesiaDatabase` with its own budget,
policy and — crucially — its own :class:`~repro.query.planner.
QueryPlanner`.  Every read executes *through* the per-shard planners:
each shard declares its partition bounds as first-class planner value
bounds, so "does this query touch this shard?" is a planner decision
(a ``pruned`` plan answered from statistics) rather than topology code
around the query stack, and within a shard the planner picks
scan/zonemap/index/cost paths exactly as it does for a single table.

Shards are mutually independent, so reads fan out over a thread pool
(``workers=``): per-shard planner+executor pipelines run concurrently,
each under its shard's lock (planner counters and table access
accounting stay race-free even when several caller threads query the
store at once), and the per-shard outputs are merged **in shard
order**, so counts, windowed aggregates and
:class:`~repro.stats.StreamingMoments` come out bit-identical to
sequential execution regardless of completion order.

Edge partitions absorb out-of-domain values (inserts clamp *routing*,
never the stored values), so their declared bounds are open-ended —
which is also what makes out-of-range queries exact: a probe below
``b0`` or above ``bP`` still reaches the edge shard that stored those
rows.

Merging is exact: RF/MF counts add up, and aggregates — including the
windowed and VAR/STD forms — merge per-shard
:class:`~repro.stats.StreamingMoments` with Chan's rule before
finalizing, so AVG/VAR/STD come out as one global computation, not an
average of averages.

Writes scale the same way, through a queue/applier seam with an
**epoch-snapshot handoff**: :meth:`~PartitionedAmnesiaDatabase.enqueue`
routes rows by the current layout snapshot into per-shard ingest
queues (a short critical section — no shard work), and
:meth:`~PartitionedAmnesiaDatabase.flush` drains the queues with
batched appliers fanned out on the same pool, under the exclusive side
of an :class:`~repro._util.parallel.EpochGate`.  Queries hold the
gate shared, so a reader at published ingest epoch N can never observe
a half-applied batch — the epoch advance inside the exclusive hold is
the barrier that publishes each batch atomically across shards.
:meth:`~PartitionedAmnesiaDatabase.insert` is enqueue + flush, and is
bit-identical to the old sequential loop at any worker count.

Per-partition query traffic is tracked two ways so that
:meth:`~PartitionedAmnesiaDatabase.rebalance` can *move storage toward
the partitions the workload actually reads*: ``query_hits`` counts
queries whose range covers the shard, ``query_rows`` counts the rows
those queries matched there (active + forgotten).  Both are
**coverage-based** — derived from the query's range and its
plan-independent result counts, never from what a particular plan mode
happened to execute — so budgets, and every forgetting decision
downstream of them, evolve identically under ``scan`` and the pruned
modes.  Under the ``adaptive`` policy, rebalancing also adapts the
*boundaries*: a shard drawing more than ``split_threshold`` times its
fair share of traffic is split — multi-way when the skew warrants it,
at traffic-weighted quantiles under ``hist`` statistics — funded by
merging the coldest adjacent pair, so the partition layout itself
tracks the query stream — the paper's adaptive-partitioning endgame.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from .._util.errors import ConfigError, QueryError
from .._util.parallel import EpochGate, FanOutPool
from .._util.rng import DEFAULT_SEED, derive_seed
from .._util.validation import check_in, checked_int64
from ..amnesia.base import AmnesiaPolicy
from ..core.config import (
    COMPRESS_MODES,
    REBALANCE_POLICIES,
    STATS_MODES,
    default_compress,
    default_rebalance,
    default_stats,
    default_workers,
)
from ..core.database import AmnesiaDatabase
from ..faults import (
    INGEST_APPLIED,
    INGEST_APPLY,
    INGEST_ENQUEUE,
    REBALANCE_ADAPT,
    fault_point,
)
from ..query.planner import QueryPlan
from ..query.plans import check_scan_bounds, merge_match_sides
from ..query.predicates import RangePredicate, TruePredicate
from ..query.queries import AggregateFunction
from ..stats.moments import StreamingMoments
from ..stats.table_stats import traffic_weighted_quantiles

__all__ = ["MergedRangeResult", "Partition", "PartitionedAmnesiaDatabase"]


@dataclass(frozen=True)
class MergedRangeResult:
    """A range result merged across partitions (counts only).

    ``shards_executed``/``shards_pruned`` record the fan-out the
    planners actually allowed: pruned shards answered from their value
    bounds without touching data.
    """

    rf: int
    mf: int
    shards_executed: int = 0
    shards_pruned: int = 0

    @property
    def oracle_count(self) -> int:
        """RF + MF across all partitions."""
        return self.rf + self.mf

    @property
    def precision(self) -> float:
        """P_F over the merged result (1.0 when nothing matches)."""
        return 1.0 if self.oracle_count == 0 else self.rf / self.oracle_count


class Partition:
    """One value-range shard: ``[low, high)`` with its own amnesia.

    ``low``/``high`` are the routing cut points; the *declared* planner
    bounds are open-ended at the domain edges (``edge_low``/
    ``edge_high``) because inserts clamp routing, not values.  The
    ``lock`` serializes this shard's planner+executor pipeline (and its
    traffic counters) so concurrent queries fan out race-free.
    """

    def __init__(
        self,
        index: int,
        low: int,
        high: int,
        budget: int,
        policy: AmnesiaPolicy,
        column: str,
        seed: int,
        plan: str | None = None,
        edge_low: bool = False,
        edge_high: bool = False,
        table_name: str | None = None,
        stats: str | None = None,
        compress: str | None = None,
    ):
        if high <= low:
            raise ConfigError(f"partition range [{low}, {high}) is empty")
        self.index = index
        self.low = int(low)
        self.high = int(high)
        self.column = column
        self.bound_low = None if edge_low else self.low
        self.bound_high = None if edge_high else self.high
        self.db = AmnesiaDatabase(
            budget=budget,
            policy=policy,
            columns=(column,),
            seed=seed,
            table_name=table_name or f"partition_{index}",
            plan=plan,
            value_bounds={column: (self.bound_low, self.bound_high)},
            stats=stats,
            compress=compress,
        )
        self.lock = threading.Lock()
        self.query_hits = 0
        #: Coverage-based row traffic: oracle matches (RF + MF) of every
        #: covering query — a plan-mode-independent rows signal.
        self.query_rows = 0
        #: Ingest queue: routed-but-unapplied value chunks, FIFO.  One
        #: ``(batch_seq, chunk)`` entry per enqueued batch that touched
        #: this shard; appliers drain each chunk as one ``db.insert``
        #: (one shard epoch), so the applied sequence is exactly the
        #: sequential one.  The batch sequence number lets a failed
        #: apply wave report which *batches* remain partially queued —
        #: only batches with no chunk left anywhere count as applied.
        self.pending: list[tuple[int, np.ndarray]] = []

    @property
    def budget(self) -> int:
        """Current tuple budget of this shard."""
        return self.db.budget

    def covers(self, low: int, high: int) -> bool:
        """Does ``[low, high)`` intersect this shard's *declared* bounds?

        Edge shards are open-ended (they store clamped-in values), so
        a query outside ``[b0, bP)`` still covers the edge shard — the
        symmetric counterpart of insert-side clamping.
        """
        if high <= low:
            return False
        below = self.bound_high is not None and low >= self.bound_high
        above = self.bound_low is not None and high <= self.bound_low
        return not (below or above)

    def set_budget(self, budget: int) -> None:
        """Adjust the budget; shrinking forgets down immediately."""
        if budget < 1:
            raise ConfigError(f"partition budget must be >= 1, got {budget}")
        self.db.budget = int(budget)
        self.db.enforce_budget()

    def adopt_history(self, sources) -> None:
        """Replay rows (with full metadata) from source tables.

        ``sources`` is a list of ``(table, positions)`` pairs, positions
        ascending.  Rows are re-inserted grouped by their original
        insert epoch (epochs interleave across sources in source order;
        same-epoch cohorts from different sources collapse into one),
        then the forgotten ones are re-forgotten at their original
        epochs and access metadata is restored — so the migrated shard
        answers every query, and feeds every policy, exactly as the
        source shards did.  The shard's clock resumes from the highest
        source epoch.
        """
        table = self.db.table
        if table.total_rows:
            raise ConfigError("adopt_history needs an empty partition")
        gathered = []
        for src, positions in sources:
            positions = np.asarray(positions, dtype=np.int64)
            if positions.size == 0:
                continue
            gathered.append(
                {
                    "epochs": src.insert_epochs()[positions],
                    "values": src.values(self.column)[positions],
                    "active": src.active_mask()[positions],
                    "forgotten_at": src.forgotten_epochs()[positions],
                    "access": src.access_counts()[positions],
                    "last_access": src.last_access_epochs()[positions],
                }
            )
        if not gathered:
            return
        all_epochs = np.unique(np.concatenate([g["epochs"] for g in gathered]))
        forgotten_by_epoch: dict[int, list[np.ndarray]] = {}
        restore = {"positions": [], "access": [], "last_access": []}
        for epoch in all_epochs.tolist():
            # Positions are ascending, so per-source insert epochs are
            # non-decreasing: each epoch's rows form one contiguous
            # run, located in O(log R) instead of a full mask scan.
            batches = []
            for g in gathered:
                lo, hi = np.searchsorted(g["epochs"], [epoch, epoch + 1])
                if hi > lo:
                    batches.append((g, slice(int(lo), int(hi))))
            values = np.concatenate([g["values"][run] for g, run in batches])
            positions = table.insert_batch(epoch, {self.column: values})
            self.db.policy.on_insert(table, positions, epoch)
            offset = 0
            for g, run in batches:
                count = run.stop - run.start
                new_positions = positions[offset : offset + count]
                offset += count
                forgotten = ~g["active"][run]
                if forgotten.any():
                    at = g["forgotten_at"][run][forgotten]
                    for fe in np.unique(at).tolist():
                        forgotten_by_epoch.setdefault(fe, []).append(
                            new_positions[forgotten][at == fe]
                        )
                restore["positions"].append(new_positions)
                restore["access"].append(g["access"][run])
                restore["last_access"].append(g["last_access"][run])
        for fe in sorted(forgotten_by_epoch):
            table.forget(np.concatenate(forgotten_by_epoch[fe]), epoch=fe)
        table.restore_access(
            np.concatenate(restore["positions"]),
            np.concatenate(restore["access"]),
            np.concatenate(restore["last_access"]),
        )

    def __repr__(self) -> str:
        return (
            f"Partition({self.index}: [{self.low}, {self.high}), "
            f"budget={self.budget}, active={self.db.active_count})"
        )


class PartitionedAmnesiaDatabase:
    """Range-partitioned store with per-partition amnesia and planning.

    Parameters
    ----------
    column:
        The partitioning (and only) column.
    boundaries:
        Sorted cut points ``[b0, b1, ..., bP]`` defining partitions
        ``[b_i, b_{i+1})``.  Values outside ``[b0, bP)`` are routed
        into the edge partitions (the stored values stay unclamped,
        and the edge shards' planner bounds are open-ended to match).
    total_budget:
        Tuple budget shared by all partitions (split evenly at start).
    policy_factory:
        Zero-argument callable producing a fresh policy per partition
        (policies are stateful, so they must not be shared).  Boundary
        splits/merges also draw fresh policies from it.
    plan:
        Access-path mode for every shard's planner (see
        :mod:`repro.query.planner`); ``None`` resolves to
        :func:`repro.core.config.default_plan`.  ``"cost"`` prices
        paths per shard from its cohort statistics.
    stats:
        Statistics source for every shard (see
        :data:`repro.core.config.STATS_MODES`); ``None`` resolves to
        :func:`repro.core.config.default_stats`.  Under ``"hist"``
        each shard carries value histograms for its planner's
        estimates, and ``adaptive`` rebalancing cuts a hot shard at
        its **traffic-weighted value median** instead of the range
        midpoint — computed from the shard's stored values and access
        counters, both plan-mode- and worker-count-independent, so the
        boundary trajectory stays bit-identical across plans and
        widths.
    compress:
        Compressed-execution mode for every shard (see
        :data:`repro.core.config.COMPRESS_MODES`); ``None`` resolves
        to :func:`repro.core.config.default_compress`.  Under ``"on"``
        each shard demotes its cold cohorts into best-codec compressed
        blocks after every insert, and boundary splits/merges carry
        the mode over (migrated history re-demotes by the same
        age rule).  Execution-only: results are bit-identical.
    workers:
        Fan-out width for reads *and* ingest appliers: how many
        per-shard pipelines may run concurrently (``None`` resolves to
        :func:`repro.core.config.default_workers`).  1 executes shards
        sequentially; any width returns bit-identical results — for
        ingest too, because each shard drains its queue FIFO.  The
        attribute is mutable — benchmarks flip it between runs.
    rebalance:
        Default traffic signal for :meth:`rebalance` — one of
        :data:`repro.core.config.REBALANCE_POLICIES` (``None`` resolves
        to :func:`repro.core.config.default_rebalance`).
    split_threshold:
        Skew factor for ``adaptive`` rebalancing: a shard is split when
        its share of row traffic exceeds ``split_threshold / P`` (i.e.
        that many times its fair share).
    max_partitions:
        Hard cap on the shard count under ``adaptive`` rebalancing;
        ``None`` allows growth to twice the initial count.

    >>> from repro.amnesia import FifoAmnesia
    >>> pdb = PartitionedAmnesiaDatabase(
    ...     "a", [0, 500, 1000], total_budget=100,
    ...     policy_factory=FifoAmnesia,
    ... )
    >>> pdb.partition_count
    2
    """

    def __init__(
        self,
        column: str,
        boundaries,
        total_budget: int,
        policy_factory,
        seed: int = DEFAULT_SEED,
        plan: str | None = None,
        workers: int | None = None,
        rebalance: str | None = None,
        split_threshold: float = 2.0,
        max_partitions: int | None = None,
        stats: str | None = None,
        compress: str | None = None,
    ):
        bounds = [int(b) for b in boundaries]
        if len(bounds) < 2:
            raise ConfigError("need at least two boundaries (one partition)")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigError(f"boundaries must be strictly increasing: {bounds}")
        n_partitions = len(bounds) - 1
        if total_budget < n_partitions:
            raise ConfigError(
                f"total_budget {total_budget} cannot cover "
                f"{n_partitions} partitions"
            )
        if workers is None:
            workers = default_workers()
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if rebalance is None:
            rebalance = default_rebalance()
        check_in(rebalance, REBALANCE_POLICIES, "rebalance")
        if stats is None:
            stats = default_stats()
        check_in(stats, STATS_MODES, "stats")
        if compress is None:
            compress = default_compress()
        check_in(compress, COMPRESS_MODES, "compress")
        if split_threshold < 1.0:
            raise ConfigError(
                f"split_threshold must be >= 1.0, got {split_threshold}"
            )
        if max_partitions is None:
            max_partitions = 2 * n_partitions
        if max_partitions < n_partitions:
            raise ConfigError(
                f"max_partitions {max_partitions} below the initial "
                f"{n_partitions} partitions"
            )
        self.column = column
        self.total_budget = int(total_budget)
        self.workers = int(workers)
        self.rebalance_policy = rebalance
        self.stats_mode = stats
        self.compress_mode = compress
        self.split_threshold = float(split_threshold)
        self.max_partitions = int(max_partitions)
        self._seed = seed
        self._policy_factory = policy_factory
        self._fanout = FanOutPool()
        # Write-side serialization: _ingest_lock orders routers
        # (enqueue) and layout changes; the gate hands batches over to
        # readers atomically.  Lock order is always _ingest_lock →
        # gate.writing() → partition locks.
        self._ingest_lock = threading.Lock()
        self._gate = EpochGate()
        self._pending_batches = 0
        self._ingest_seq = 0
        self._generation = 0
        self._adaptations: list[str] = []
        base = total_budget // n_partitions
        remainder = total_budget - base * n_partitions
        partitions = [
            Partition(
                index=i,
                low=lo,
                high=hi,
                budget=base + (1 if i < remainder else 0),
                policy=policy_factory(),
                column=column,
                seed=derive_seed(seed, f"partition-{i}"),
                plan=plan,
                edge_low=(i == 0),
                edge_high=(i == n_partitions - 1),
                stats=stats,
                compress=compress,
            )
            for i, (lo, hi) in enumerate(zip(bounds, bounds[1:]))
        ]
        # One atomically-swapped tuple holds (partitions, bounds):
        # readers snapshot both with a single attribute read, so a
        # concurrent boundary adaptation can never hand them a
        # partition list from one layout and cut points from another.
        self._layout: tuple[list[Partition], list[int]] = (partitions, bounds)
        # All shards resolve plan=None identically; read the mode back
        # from the first shard's planner.
        self.plan_mode = partitions[0].db.plan_mode

    # -- topology --------------------------------------------------------

    @property
    def _partitions(self) -> list[Partition]:
        """The live partition list (from the atomic layout tuple)."""
        return self._layout[0]

    @property
    def _bounds(self) -> list[int]:
        """The live routing cut points (from the atomic layout tuple)."""
        return self._layout[1]

    @property
    def partition_count(self) -> int:
        """Number of shards."""
        return len(self._partitions)

    @property
    def partitions(self) -> tuple[Partition, ...]:
        """The shards, in range order."""
        return tuple(self._partitions)

    @property
    def boundaries(self) -> tuple[int, ...]:
        """Current routing cut points (adaptive rebalancing moves them)."""
        return tuple(self._bounds)

    @property
    def adaptations(self) -> tuple[str, ...]:
        """Every boundary split/merge decision taken so far."""
        return tuple(self._adaptations)

    @property
    def active_count(self) -> int:
        """Active tuples across all shards."""
        return sum(p.db.active_count for p in self._partitions)

    @property
    def total_rows(self) -> int:
        """Tuples ever inserted across all shards."""
        return sum(p.db.total_rows for p in self._partitions)

    @staticmethod
    def _partition_of(values: np.ndarray, bounds, count: int) -> np.ndarray:
        idx = np.searchsorted(bounds, values, side="right") - 1
        return np.clip(idx, 0, count - 1)

    @property
    def gate(self) -> EpochGate:
        """The epoch gate readers share and :meth:`flush` holds exclusively.

        Exposed for checkpointing and tests; ordinary callers never
        touch it — :meth:`insert`/:meth:`flush`/queries synchronize
        internally.
        """
        return self._gate

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Release the fan-out thread pool (store stays usable)."""
        self._fanout.close()

    def __enter__(self) -> "PartitionedAmnesiaDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- writes -------------------------------------------------------------

    @property
    def ingest_epoch(self) -> int:
        """Batches published so far (the epoch-snapshot handoff counter).

        Advances only inside :meth:`flush`'s exclusive gate hold, so a
        reader observing ingest epoch N sees exactly the first N
        batches on every shard — never a half-applied batch.
        """
        return self._gate.epoch

    @property
    def pending_batches(self) -> int:
        """Batches enqueued but not yet flushed."""
        with self._ingest_lock:
            return self._pending_batches

    def enqueue(self, values_by_column: dict) -> int:
        """Route one batch into the per-shard ingest queues; no shard work.

        The critical section is a layout snapshot plus the routing
        append — concurrent writers on disjoint shards no longer
        serialize on shard-level inserts, and queries are untouched
        (they synchronize with :meth:`flush`, not with routing).
        Values get the checked ``int64`` cast: lossy inputs (``2.7``,
        NaN, out-of-range) raise :class:`~repro._util.errors.
        QueryError` instead of silently truncating.  Returns the
        number of batches now queued.  Rows become visible to queries
        only when :meth:`flush` publishes them.
        """
        if set(values_by_column) != {self.column}:
            raise QueryError(
                f"partitioned store holds only column {self.column!r}"
            )
        values = checked_int64(
            values_by_column[self.column],
            f"insert values for column {self.column!r}",
        )
        # Crash here (before any routing) drops the whole batch
        # atomically: no queue holds a chunk, the writer re-enqueues.
        fault_point(INGEST_ENQUEUE)
        with self._ingest_lock:
            # Routing under the ingest lock keeps the snapshot honest:
            # layout swaps (rebalance) also hold this lock, so a chunk
            # can never be appended to a shard the migration already
            # snapshotted — the documented insert-vs-migration race
            # stays closed without serializing whole-shard inserts.
            partitions, bounds = self._layout
            owners = self._partition_of(values, bounds, len(partitions))
            seq = self._ingest_seq
            self._ingest_seq += 1
            for i, partition in enumerate(partitions):
                chunk = values[owners == i]
                if chunk.size:
                    partition.pending.append((seq, chunk))
            self._pending_batches += 1
            return self._pending_batches

    def _apply_pending_locked(self, partitions) -> None:
        """Drain every non-empty shard queue; caller holds the ingest
        lock and the gate's exclusive side.

        Appliers fan out on the shared pool (``workers`` wide): each
        drains its shard FIFO, one queued chunk per ``db.insert`` call
        under the shard lock — so the per-shard epoch/cohort sequence
        is exactly what the sequential loop would have produced, and
        the equivalence harness can hold every observable bit-identical
        across worker counts.

        Failure semantics: an applier that raises (or hits an injected
        crash) rolls its *unapplied* chunk tail — including the chunk
        that failed — back to the front of its shard's queue before the
        exception propagates, preserving the FIFO order a retried flush
        needs for the equivalence contract.  The fan-out pool is a
        barrier (it re-raises only after every applier finished), so by
        the time the caller's unwind path runs, no applier is still
        mutating a shard.
        """
        busy = [p for p in partitions if p.pending]

        def drain(partition: Partition) -> None:
            with partition.lock:
                chunks, partition.pending = partition.pending, []
                for i, (seq, chunk) in enumerate(chunks):
                    try:
                        fault_point(INGEST_APPLY)
                        partition.db.insert({self.column: chunk})
                    except BaseException:
                        partition.pending = chunks[i:] + partition.pending
                        raise

        if busy:
            self._fanout.map_ordered(drain, busy, self.workers)

    def _publish_applied_locked(self, partitions) -> int:
        """Publish every *fully-applied* batch; caller holds the ingest
        lock and the gate's exclusive side.  Returns batches published.

        Runs on both the success and the unwind path of an apply wave:
        a batch counts as applied only when no shard queue holds one of
        its chunks any more (the seq tags make that checkable), so a
        crashed wave publishes exactly the batches it completed — never
        a torn one — and the remainder stays queued for the retry.
        """
        remaining = {seq for p in partitions for seq, _ in p.pending}
        fully = self._pending_batches - len(remaining)
        self._pending_batches = len(remaining)
        if fully > 0:
            self._gate.publish(fully)
        return fully

    def flush(self) -> int:
        """Apply every queued batch and publish them atomically.

        Takes the gate's exclusive side for the duration of one apply
        wave: in-flight queries finish first, new ones wait, the
        appliers drain all shards in parallel, and the ingest epoch
        advances by the number of batches applied — the handoff that
        makes the whole wave visible at once.  Returns the published
        ingest epoch.

        If an applier fails mid-wave, the publish still happens on the
        unwind path *inside* the exclusive hold: completed batches
        become visible, the failed batch's chunks are already rolled
        back to their queues, and the gate releases cleanly (no reader
        deadlock, no torn epoch).  A retried ``flush`` finishes the
        wave; note that rows a failed wave inserted into *some* shards
        are visible to queries before the retry — the published epoch
        counts fully-applied batches, per-shard FIFO order is what the
        retry contract preserves.
        """
        with self._ingest_lock:
            partitions, _ = self._layout
            if self._pending_batches == 0:
                return self._gate.epoch
            with self._gate.writing():
                try:
                    self._apply_pending_locked(partitions)
                    fault_point(INGEST_APPLIED)
                finally:
                    self._publish_applied_locked(partitions)
                return self._gate.epoch

    def insert(self, values_by_column: dict) -> None:
        """Route a batch to partitions by value, apply, and publish.

        ``enqueue`` + ``flush``: the rows are visible (atomically, on
        every shard) when the call returns, exactly like the historical
        sequential insert — but the apply wave fans out across shards
        and no longer blocks concurrent writers during shard work.
        """
        self.enqueue(values_by_column)
        self.flush()

    # -- reads ----------------------------------------------------------------

    def range_query(self, low: int, high: int) -> MergedRangeResult:
        """Fan a range query out through the shard planners; merge exactly.

        Shards execute concurrently when ``workers > 1`` — each
        pipeline runs under its shard lock and the per-shard outputs
        are merged in shard order, so the result (and every policy-
        visible counter behind it) is bit-identical to sequential
        execution.  The planner prunes shards whose declared value
        bounds exclude the range (a ``pruned`` plan — zero rows
        considered).  Query traffic for :meth:`rebalance` counts shards
        the range *covers* and the rows it matched there (both
        plan-independent statistics), never shards a particular plan
        mode happened to execute — otherwise rebalancing, and with it
        every downstream budget and forgetting decision, would diverge
        between ``scan`` and the pruned modes.
        """
        if high < low:
            raise QueryError(f"range [{low}, {high}) is reversed")
        if high == low:
            # An empty range matches nothing under any mode; answering
            # here keeps the executed/pruned classification below in
            # lock-step with the planners' own bounds test (which does
            # not prune empty ranges — it would execute them for 0
            # rows) and counts no query traffic, like covers().
            return MergedRangeResult(rf=0, mf=0)

        def run_shard(partition: Partition) -> tuple[int, int, int, int]:
            with partition.lock:
                covered = partition.covers(low, high)
                if covered:
                    partition.query_hits += 1
                if partition.db.total_rows == 0:
                    return (0, 0, 0, 0)  # nothing to plan over
                result = partition.db.range_query(self.column, low, high)
                if covered:
                    partition.query_rows += result.rf + result.mf
                # Classify the fan-out from the same bounds test the
                # shard planner prunes by (scan mode never prunes) —
                # not from the planner's mutable last_execution, which
                # a concurrent query could have overwritten.  Counts
                # always accumulate; a pruned shard's result is empty
                # by construction.
                executed = int(covered or partition.db.plan_mode == "scan")
                return (result.rf, result.mf, executed, 1 - executed)

        # Shared gate hold: a concurrent flush() publishes its batches
        # either entirely before or entirely after this query — no
        # shard can answer from a half-applied ingest wave.
        with self._gate.reading():
            outputs = self._fanout.map_ordered(
                run_shard, self._partitions, self.workers
            )
        rf, mf, executed, pruned = (sum(col) for col in zip(*outputs))
        return MergedRangeResult(
            rf=rf, mf=mf, shards_executed=executed, shards_pruned=pruned
        )

    def aggregate(
        self,
        function: AggregateFunction | str,
        low: int | None = None,
        high: int | None = None,
    ) -> tuple[float | None, float | None]:
        """Aggregate across shards: ``(amnesiac, oracle)``, merged exactly.

        Supports every :class:`AggregateFunction` — including VAR/STD —
        and optional ``[low, high)`` windows, matching
        :meth:`repro.core.database.AmnesiaDatabase.aggregate`.  Each
        shard contributes per-view :class:`~repro.stats.
        StreamingMoments` (computed through its planner, concurrently
        when ``workers > 1``); the moments merge **in shard order** via
        Chan's rule and the function is finalized once over the merged
        accumulator, so AVG/VAR/STD are the exact global statistics —
        not averages of shard answers, and independent of which shard
        finished first.
        """
        function = AggregateFunction(function)
        if (low is None) != (high is None):
            raise ConfigError("supply both low and high, or neither")

        def run_shard(partition: Partition):
            with partition.lock:
                if partition.db.total_rows == 0:
                    return None
                return partition.db.aggregate_moments(
                    function, self.column, low, high
                )

        with self._gate.reading():
            outputs = self._fanout.map_ordered(
                run_shard, self._partitions, self.workers
            )
        active = StreamingMoments()
        oracle = StreamingMoments()
        for moments in outputs:
            if moments is None:
                continue
            active_part, missed_part = moments
            active.merge(active_part)
            oracle.merge(active_part)
            oracle.merge(missed_part)
        return function.from_moments(active), function.from_moments(oracle)

    def scan_rows(
        self,
        low: int | None = None,
        high: int | None = None,
        *,
        record_access: bool = True,
        epoch: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Matching rows as a stream: ``(values, insert epochs, forgotten)``.

        The row-level twin of :meth:`range_query`, feeding cross-table
        plans (:class:`~repro.query.plans.ShardedScanNode`): every
        shard matches through its own planner (so shard pruning and
        zone-map/index paths keep working), active matches get their
        access recorded exactly as a direct query would — at ``epoch``
        when the caller supplies one (cross-table queries pass their
        query epoch, so recency-sensitive policies see plain and
        sharded sources identically), else at each shard's own clock —
        and the per-shard outputs, each in insertion-position order,
        are concatenated **in shard order**, so the stream is
        bit-identical at any worker count and under every plan mode.
        ``low=None`` (with ``high=None``) scans the full store.
        Query-traffic counters for :meth:`rebalance` accumulate like
        :meth:`range_query`'s: coverage-based, never plan-dependent.
        """
        outputs = self.scan_chunks(
            low, high, record_access=record_access, epoch=epoch
        )
        return (
            np.concatenate([o[0] for o in outputs]),
            np.concatenate([o[1] for o in outputs]),
            np.concatenate([o[2] for o in outputs]),
        )

    def scan_chunks(
        self,
        low: int | None = None,
        high: int | None = None,
        *,
        record_access: bool = True,
        epoch: int | None = None,
    ) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Per-shard ``(values, epochs, forgotten)`` chunks, in shard order.

        The batch handoff behind :meth:`scan_rows` and the streaming
        execution layer (:meth:`repro.query.plans.PlanNode.batches`):
        identical matching, access accounting and traffic counters, but
        the per-shard outputs are handed back *unconcatenated*, so a
        batch iterator can re-chunk them to its batch size without ever
        building the full concatenated stream.  All shards are scanned
        under **one** acquisition of the read gate's shared side, so
        the whole chunk list reflects a single published ingest epoch —
        a consumer draining the chunks later still sees the snapshot
        taken here, however the store advances in between.
        """
        low, high = check_scan_bounds(low, high)

        def run_shard(partition: Partition):
            with partition.lock:
                covered = True if low is None else partition.covers(low, high)
                if covered:
                    partition.query_hits += 1
                db = partition.db
                if db.total_rows == 0:
                    empty = np.empty(0, dtype=np.int64)
                    return empty, empty.copy(), np.empty(0, dtype=bool)
                predicate = (
                    TruePredicate()
                    if low is None
                    else RangePredicate(self.column, low, high)
                )
                active, missed, _ = db.planner.match(predicate, (self.column,))
                if record_access:
                    db.table.record_access(
                        active, db.epoch if epoch is None else epoch
                    )
                if covered:
                    partition.query_rows += int(active.size + missed.size)
                positions, flags = merge_match_sides(active, missed)
                return (
                    db.table.values(self.column)[positions],
                    db.table.insert_epochs()[positions],
                    flags,
                )

        with self._gate.reading():
            return self._fanout.map_ordered(
                run_shard, self._partitions, self.workers
            )

    def estimate_scan(
        self, low: int | None = None, high: int | None = None, *, cost: bool = False
    ) -> float:
        """Estimated matches (or, with ``cost=True``, rows considered)
        of a :meth:`scan_rows` call — per-shard planner estimates
        (histogram-sharpened under ``stats="hist"``) summed over the
        shards the range covers."""
        total = 0.0
        with self._gate.reading():
            for partition in self._partitions:
                if low is not None and not partition.covers(low, high):
                    continue
                db = partition.db
                estimate = (
                    db.planner.estimate(self.column, low, high)
                    if low is not None
                    else None
                )
                if estimate is not None:
                    total += (
                        float(estimate.candidate_rows)
                        if cost
                        else estimate.est_rows
                    )
                else:
                    total += float(db.total_rows)
        return total

    # -- planning introspection ---------------------------------------------

    def _ordered_partitions(self) -> list[Partition]:
        """Shards sorted by their range bounds — the report order.

        The internal list is maintained in range order, but reports
        sort explicitly so their layout never depends on how topology
        changes happened to rebuild the list.
        """
        return sorted(self._partitions, key=lambda p: (p.low, p.high))

    def explain(self, low: int, high: int) -> list[tuple[int, QueryPlan]]:
        """Preview each shard's plan for ``[low, high)`` (no execution).

        Returns ``(partition_index, plan)`` pairs in range order —
        pruned shards show up with a ``pruned`` plan, making the
        planner's fan-out decision inspectable before paying for it.
        """
        predicate = RangePredicate(self.column, low, high)
        return [
            (partition.index, partition.db.planner.plan(predicate))
            for partition in self._ordered_partitions()
        ]

    def plan_report(self) -> str:
        """Unified EXPLAIN-style report across every shard's planner.

        Shards are listed in explicit range order (by partition bound),
        so the report is stable across worker interleavings and
        boundary adaptations; the header carries the fan-out width and
        every split/merge decision taken so far.
        """
        totals = {"considered": 0, "pruned_rows": 0, "pruned_shards": 0}
        lines = [
            f"PartitionedAmnesiaDatabase(plan={self.plan_mode!r}, "
            f"stats={self.stats_mode!r}) — "
            f"{self.partition_count} shard(s), "
            f"budget {self.total_budget}, workers {self.workers}, "
            f"rebalance {self.rebalance_policy!r}, "
            f"ingest epoch {self.ingest_epoch} "
            f"({self.pending_batches} queued)"
        ]
        for partition in self._ordered_partitions():
            stats = partition.db.planner.stats()
            totals["considered"] += stats["rows_considered"]
            totals["pruned_rows"] += stats["rows_pruned"]
            totals["pruned_shards"] += stats["paths"]["pruned"]
            lines.append(f"shard {partition.index} [{partition.low}, {partition.high}):")
            lines.extend(
                "  " + line
                for line in partition.db.plan_report().splitlines()
            )
        lines.append(
            f"totals: rows considered {totals['considered']:,} / "
            f"pruned {totals['pruned_rows']:,}; "
            f"shard-level prunes {totals['pruned_shards']}"
        )
        if self._adaptations:
            lines.append("boundary adaptations:")
            lines.extend("  " + event for event in self._adaptations)
        return "\n".join(lines)

    # -- adaptation ----------------------------------------------------------------

    def _spawn_partition(
        self,
        low: int,
        high: int,
        *,
        edge_low: bool,
        edge_high: bool,
        sources,
        epoch: int,
        query_hits: int,
        query_rows: int,
    ) -> Partition:
        """Build a shard for ``[low, high)`` and migrate history into it.

        Everything that seeds randomness or names state derives from
        the bounds and the adaptation generation — both plan-mode
        independent — so boundary changes replay identically whatever
        access paths answered the queries that triggered them.
        """
        partition = Partition(
            index=-1,  # assigned when the new layout is installed
            low=low,
            high=high,
            budget=1,  # provisional; rebalance assigns the real budget
            policy=self._policy_factory(),
            column=self.column,
            seed=derive_seed(
                self._seed, f"partition-g{self._generation}-{low}-{high}"
            ),
            plan=self.plan_mode,
            edge_low=edge_low,
            edge_high=edge_high,
            table_name=f"partition_g{self._generation}_{low}_{high}",
            stats=self.stats_mode,
            compress=self.compress_mode,
        )
        partition.adopt_history(sources)
        partition.db.advance_epoch_to(epoch)
        if partition.db.compressed is not None:
            # The replayed cohorts keep their original epochs, so the
            # migrated shard demotes exactly what the sources had cold.
            partition.db.compressed.demote_cold(epoch)
        partition.query_hits = query_hits
        partition.query_rows = query_rows
        return partition

    def _split_points(
        self, hot_part: Partition, ways: int
    ) -> tuple[list[int], str]:
        """Where to cut a hot shard: quantiles under ``hist``, else midpoint.

        The ``hist`` statistics mode cuts at the shard's
        traffic-weighted value quantiles — the equi-depth histogram
        cuts of its stored values, weighted by per-row access counts
        (+1, so an unqueried shard still splits by value mass).  With
        ``ways=2`` that is the classic traffic-weighted median; a shard
        drawing ``k`` times the split threshold is cut ``k+1`` ways in
        one window, so the layout converges under heavy write skew
        instead of one median per rebalance.  Both inputs are proven
        plan-mode- and worker-count-independent by the equivalence
        harness, so the boundary trajectory stays bit-identical
        whatever access paths answered the queries.  Uniform statistics
        keep the historical 2-way midpoint.  Cuts are clipped into the
        shard's open interval and deduplicated; the returned list may
        therefore be shorter than ``ways - 1`` (or empty, when no valid
        interior cut exists).
        """
        table = hot_part.db.table
        if self.stats_mode == "hist" and table.total_rows > 0:
            cuts = traffic_weighted_quantiles(
                table.values(self.column),
                table.access_counts().astype(np.float64) + 1.0,
                [i / ways for i in range(1, ways)],
            )
            clipped = np.clip(
                cuts, hot_part.low + 1, hot_part.high - 1
            ).astype(int)
            valid = {
                int(c)
                for c in clipped.tolist()
                if hot_part.low < c < hot_part.high
            }
            return sorted(valid), "median"
        mid = (hot_part.low + hot_part.high) // 2
        return (
            [mid] if hot_part.low < mid < hot_part.high else []
        ), "midpoint"

    def _adapt_boundaries(self, floor: int) -> None:
        """Split the hottest shard / merge the coldest adjacent pair.

        Triggered by :meth:`rebalance` under the ``adaptive`` policy:
        when one shard draws more than ``split_threshold`` times its
        fair share of row traffic, its range is split — multi-way, at
        the traffic-weighted value quantiles under the ``hist``
        statistics mode (a shard ``k`` times over the threshold is cut
        ``k + 1`` ways, capacity permitting), at the 2-way range
        midpoint otherwise (see :meth:`_split_points`).  The split is
        funded by merging the adjacent pair with the least combined
        traffic (hot shard excluded); without an eligible pair the
        count may grow up to ``max_partitions``.  All decisions read
        only coverage-based counters and table state, so the trajectory
        is identical under every plan mode.
        """
        partitions = self._partitions
        n = len(partitions)
        traffic = np.array([p.query_rows for p in partitions], dtype=np.float64)
        total = float(traffic.sum())
        if n < 2 or total <= 0.0:
            return
        shares = traffic / total
        # Shard-count ceiling from both caps: the configured maximum
        # and what the budget floor can fund.
        headroom = min(self.max_partitions, self.total_budget // floor)
        # Hottest shard first; when it cannot split (a width-1 range —
        # a single scorching value, which median cuts isolate quickly)
        # fall through to the next shard still above the threshold
        # instead of stalling the adaptation for the whole window.
        hot = None
        for candidate in sorted(range(n), key=lambda i: (-shares[i], i)):
            if shares[candidate] * n < self.split_threshold:
                break  # descending shares: nothing below is eligible
            pairs = [j for j in range(n - 1) if candidate not in (j, j + 1)]
            merge_gain = 1 if pairs else 0
            # Final count is n - merge_gain + (segments - 1); cap the
            # fan of the split to what the ceiling can absorb.
            max_ways = headroom - n + merge_gain + 1
            if max_ways < 2:
                return  # no capacity for any split this window
            ways = 2
            if self.stats_mode == "hist":
                hotness = shares[candidate] * n / self.split_threshold
                ways = min(max_ways, 1 + int(hotness))
            # The cuts read the shard's values and access counters;
            # hold its lock (like the migration snapshot below) so an
            # in-flight query's half-applied access bumps cannot make
            # the quantiles race-dependent.
            with partitions[candidate].lock:
                cuts, kind = self._split_points(
                    partitions[candidate], max(ways, 2)
                )
            if cuts:
                hot, cut_kind, merge_pairs = candidate, kind, pairs
                break
        if hot is None:
            return
        hot_part = partitions[hot]
        merge_at = None
        if merge_pairs:
            merge_at = min(
                merge_pairs, key=lambda j: (traffic[j] + traffic[j + 1], j)
            )
        new_count = n + len(cuts) - (1 if merge_at is not None else 0)
        if new_count > self.max_partitions or floor * new_count > self.total_budget:
            return
        self._generation += 1
        edges = [hot_part.low, *cuts, hot_part.high]
        segments = len(edges) - 1
        base_hits = hot_part.query_hits // segments
        base_rows = hot_part.query_rows // segments
        pieces: list[Partition] = []
        # Migration reads the source tables (values, activity, access
        # metadata); holding the source shard's lock keeps an in-flight
        # query from mutating that state mid-snapshot.
        with hot_part.lock:
            values = hot_part.db.table.values(self.column)
            for k in range(segments):
                lo, hi = edges[k], edges[k + 1]
                first, last = k == 0, k == segments - 1
                # Outer segments are open-ended like the shard they
                # split: clamped-in out-of-domain rows stay routable.
                mask = np.ones(values.shape, dtype=bool)
                if not first:
                    mask &= values >= lo
                if not last:
                    mask &= values < hi
                pieces.append(
                    self._spawn_partition(
                        lo,
                        hi,
                        edge_low=first and hot_part.bound_low is None,
                        edge_high=last and hot_part.bound_high is None,
                        sources=[(hot_part.db.table, np.flatnonzero(mask))],
                        epoch=hot_part.db.epoch,
                        query_hits=(
                            hot_part.query_hits - base_hits * (segments - 1)
                            if last
                            else base_hits
                        ),
                        query_rows=(
                            hot_part.query_rows - base_rows * (segments - 1)
                            if last
                            else base_rows
                        ),
                    )
                )
        cut_noun = "midpoint" if cut_kind == "midpoint" else (
            "median" if len(cuts) == 1 else "medians"
        )
        events = [
            f"gen {self._generation}: split shard [{hot_part.low}, "
            f"{hot_part.high}) at {cut_noun} "
            f"{', '.join(str(c) for c in cuts)} "
            f"(traffic share {shares[hot]:.0%} of {n} shards)"
        ]
        merged = None
        if merge_at is not None:
            cold_a, cold_b = partitions[merge_at], partitions[merge_at + 1]
            with cold_a.lock, cold_b.lock:
                merged = self._spawn_partition(
                    cold_a.low,
                    cold_b.high,
                    edge_low=cold_a.bound_low is None,
                    edge_high=cold_b.bound_high is None,
                    sources=[
                        (cold_a.db.table, np.arange(cold_a.db.total_rows)),
                        (cold_b.db.table, np.arange(cold_b.db.total_rows)),
                    ],
                    epoch=max(cold_a.db.epoch, cold_b.db.epoch),
                    query_hits=cold_a.query_hits + cold_b.query_hits,
                    query_rows=cold_a.query_rows + cold_b.query_rows,
                )
            pair_share = (traffic[merge_at] + traffic[merge_at + 1]) / total
            events.append(
                f"gen {self._generation}: merged shards [{cold_a.low}, "
                f"{cold_a.high}) + [{cold_b.low}, {cold_b.high}) "
                f"(combined traffic share {pair_share:.0%})"
            )
        layout: list[Partition] = []
        for i, partition in enumerate(partitions):
            if i == hot:
                layout.extend(pieces)
            elif merge_at is not None and i == merge_at:
                layout.append(merged)
            elif merge_at is not None and i == merge_at + 1:
                continue
            else:
                layout.append(partition)
        layout.sort(key=lambda p: (p.low, p.high))
        for index, partition in enumerate(layout):
            partition.index = index
        # Single atomic swap: readers snapshotting self._layout never
        # see a partition list from one generation and cut points from
        # another.
        self._layout = (layout, [p.low for p in layout] + [layout[-1].high])
        self._adaptations.extend(events)

    def rebalance(self, floor: int = 1, policy: str | None = None) -> dict[int, int]:
        """Reallocate storage proportionally to observed query traffic.

        ``policy`` (default: the store's configured ``rebalance``)
        picks the traffic signal: ``"hits"`` splits budget by covering-
        query counts, ``"rows"`` by the coverage-based rows-matched
        counters (queries that touched more data pull more budget), and
        ``"adaptive"`` additionally adapts the *boundaries* first —
        splitting a shard whose traffic share exceeds the configured
        skew threshold and merging the coldest adjacent pair — before
        splitting budget by rows.

        Each partition receives at least ``floor`` tuples; the rest of
        the total budget is split by (signal + 1) shares, so an
        untouched store still decays gracefully instead of starving
        instantly.  Shrunken partitions forget down immediately;
        traffic counters reset so the next window adapts afresh.
        Returns {partition: budget}.

        Concurrency contract: rebalancing is a *writer* — it holds the
        ingest lock (so no batch can be routed by a layout the
        migration is about to retire: the documented insert-vs-
        migration race) and the gate's exclusive side (so no query is
        in flight across the layout swap, and any queued batches are
        drained — and published — before the shards are snapshotted).
        Queries may run concurrently with each other at any time;
        they simply order before or after the rebalance wave.
        """
        if floor < 1:
            raise ConfigError(f"floor must be >= 1, got {floor}")
        if floor * self.partition_count > self.total_budget:
            raise ConfigError("floor exceeds the total budget")
        if policy is None:
            policy = self.rebalance_policy
        check_in(policy, REBALANCE_POLICIES, "rebalance")
        with self._ingest_lock, self._gate.writing():
            # Drain queues before snapshotting shards: an enqueued-but-
            # unapplied batch was routed by the current layout and must
            # land (and publish) before any migration rebuilds it.  The
            # publish runs on the unwind path too, so a crashed drain
            # still publishes its completed batches and leaves the
            # layout untouched for the retry.
            try:
                self._apply_pending_locked(self._partitions)
            finally:
                self._publish_applied_locked(self._partitions)
            # Crash here: queues drained and published, boundaries and
            # budgets exactly as before — a retried rebalance is a
            # fresh, complete one.
            fault_point(REBALANCE_ADAPT)
            if policy == "adaptive":
                self._adapt_boundaries(floor)
            partitions = self._partitions
            signal = (
                [p.query_hits for p in partitions]
                if policy == "hits"
                else [p.query_rows for p in partitions]
            )
            shares = np.array(signal, dtype=np.float64) + 1.0
            spare = self.total_budget - floor * len(partitions)
            raw = shares / shares.sum() * spare
            budgets = np.floor(raw).astype(int) + floor
            leftover = self.total_budget - int(budgets.sum())
            order = np.argsort(-(raw - np.floor(raw)))
            for i in range(leftover):
                budgets[order[i % len(partitions)]] += 1
            for partition, budget in zip(partitions, budgets):
                with partition.lock:
                    partition.set_budget(int(budget))
                    partition.query_hits = 0
                    partition.query_rows = 0
            return {p.index: p.budget for p in partitions}

    def checkpoint(self, path):
        """Save the whole store to ``path`` (see :func:`repro.storage.save_store`).

        Queued batches are flushed (and published) first, then the
        snapshot is taken under the gate's shared side, so the saved
        state is a published ingest epoch — never a half-applied batch.
        Restore with :func:`repro.storage.load_store`, supplying the
        ``policy_factory`` (policies are rebuilt, not serialized).
        """
        from ..storage.io import save_store

        return save_store(self, path)

    def stats(self) -> dict:
        """Operational snapshot across shards."""
        partitions = self._ordered_partitions()
        return {
            "partitions": len(partitions),
            "ingest_epoch": self.ingest_epoch,
            "pending_batches": self.pending_batches,
            "total_budget": self.total_budget,
            "active_rows": self.active_count,
            "total_rows": self.total_rows,
            "budgets": [p.budget for p in partitions],
            "boundaries": list(self._bounds),
            "query_hits": [p.query_hits for p in partitions],
            "query_rows": [p.query_rows for p in partitions],
            "plan": self.plan_mode,
            "stats": self.stats_mode,
            "workers": self.workers,
            "rebalance": self.rebalance_policy,
            "adaptations": list(self._adaptations),
            "shard_prunes": [
                p.db.planner.stats()["paths"]["pruned"]
                for p in partitions
            ],
        }

    def __repr__(self) -> str:
        return (
            f"PartitionedAmnesiaDatabase(column={self.column!r}, "
            f"partitions={self.partition_count}, "
            f"budget={self.total_budget}, plan={self.plan_mode!r}, "
            f"workers={self.workers})"
        )
