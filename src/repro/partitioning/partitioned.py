"""Adaptive partitioned amnesia (paper §4.4).

    "Instead of user defined partitioning schemes, it might be worth to
    study amnesia in the context of adaptive partitioning.  Each
    partition can then be tuned to provide the best precision for a
    subset of the workload."

A :class:`PartitionedAmnesiaDatabase` splits the value domain into
range partitions, each backed by its own
:class:`~repro.core.database.AmnesiaDatabase` with its own budget,
policy and — crucially — its own :class:`~repro.query.planner.
QueryPlanner`.  Every read executes *through* the per-shard planners:
each shard declares its partition bounds as first-class planner value
bounds, so "does this query touch this shard?" is a planner decision
(a ``pruned`` plan answered from statistics) rather than topology code
around the query stack, and within a shard the planner picks
scan/zonemap/index/cost paths exactly as it does for a single table.

Edge partitions absorb out-of-domain values (inserts clamp *routing*,
never the stored values), so their declared bounds are open-ended —
which is also what makes out-of-range queries exact: a probe below
``b0`` or above ``bP`` still reaches the edge shard that stored those
rows.

Merging is exact: RF/MF counts add up, and aggregates — including the
windowed and VAR/STD forms — merge per-shard
:class:`~repro.stats.StreamingMoments` with Chan's rule before
finalizing, so AVG/VAR/STD come out as one global computation, not an
average of averages.

Per-partition query traffic is tracked so that
:meth:`~PartitionedAmnesiaDatabase.rebalance` can *move budget toward
the partitions the workload actually reads* — hot regions keep more
history, cold regions forget aggressively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util.errors import ConfigError, QueryError
from .._util.rng import DEFAULT_SEED, derive_seed
from ..amnesia.base import AmnesiaPolicy
from ..core.database import AmnesiaDatabase
from ..query.planner import QueryPlan
from ..query.predicates import RangePredicate
from ..query.queries import AggregateFunction
from ..stats.moments import StreamingMoments

__all__ = ["MergedRangeResult", "Partition", "PartitionedAmnesiaDatabase"]


@dataclass(frozen=True)
class MergedRangeResult:
    """A range result merged across partitions (counts only).

    ``shards_executed``/``shards_pruned`` record the fan-out the
    planners actually allowed: pruned shards answered from their value
    bounds without touching data.
    """

    rf: int
    mf: int
    shards_executed: int = 0
    shards_pruned: int = 0

    @property
    def oracle_count(self) -> int:
        """RF + MF across all partitions."""
        return self.rf + self.mf

    @property
    def precision(self) -> float:
        """P_F over the merged result (1.0 when nothing matches)."""
        return 1.0 if self.oracle_count == 0 else self.rf / self.oracle_count


class Partition:
    """One value-range shard: ``[low, high)`` with its own amnesia.

    ``low``/``high`` are the routing cut points; the *declared* planner
    bounds are open-ended at the domain edges (``edge_low``/
    ``edge_high``) because inserts clamp routing, not values.
    """

    def __init__(
        self,
        index: int,
        low: int,
        high: int,
        budget: int,
        policy: AmnesiaPolicy,
        column: str,
        seed: int,
        plan: str | None = None,
        edge_low: bool = False,
        edge_high: bool = False,
    ):
        if high <= low:
            raise ConfigError(f"partition range [{low}, {high}) is empty")
        self.index = index
        self.low = int(low)
        self.high = int(high)
        self.column = column
        self.bound_low = None if edge_low else self.low
        self.bound_high = None if edge_high else self.high
        self.db = AmnesiaDatabase(
            budget=budget,
            policy=policy,
            columns=(column,),
            seed=seed,
            table_name=f"partition_{index}",
            plan=plan,
            value_bounds={column: (self.bound_low, self.bound_high)},
        )
        self.query_hits = 0

    @property
    def budget(self) -> int:
        """Current tuple budget of this shard."""
        return self.db.budget

    def covers(self, low: int, high: int) -> bool:
        """Does ``[low, high)`` intersect this shard's *declared* bounds?

        Edge shards are open-ended (they store clamped-in values), so
        a query outside ``[b0, bP)`` still covers the edge shard — the
        symmetric counterpart of insert-side clamping.
        """
        if high <= low:
            return False
        below = self.bound_high is not None and low >= self.bound_high
        above = self.bound_low is not None and high <= self.bound_low
        return not (below or above)

    def set_budget(self, budget: int) -> None:
        """Adjust the budget; shrinking forgets down immediately."""
        if budget < 1:
            raise ConfigError(f"partition budget must be >= 1, got {budget}")
        self.db.budget = int(budget)
        self.db.enforce_budget()

    def __repr__(self) -> str:
        return (
            f"Partition({self.index}: [{self.low}, {self.high}), "
            f"budget={self.budget}, active={self.db.active_count})"
        )


class PartitionedAmnesiaDatabase:
    """Range-partitioned store with per-partition amnesia and planning.

    Parameters
    ----------
    column:
        The partitioning (and only) column.
    boundaries:
        Sorted cut points ``[b0, b1, ..., bP]`` defining partitions
        ``[b_i, b_{i+1})``.  Values outside ``[b0, bP)`` are routed
        into the edge partitions (the stored values stay unclamped,
        and the edge shards' planner bounds are open-ended to match).
    total_budget:
        Tuple budget shared by all partitions (split evenly at start).
    policy_factory:
        Zero-argument callable producing a fresh policy per partition
        (policies are stateful, so they must not be shared).
    plan:
        Access-path mode for every shard's planner (see
        :mod:`repro.query.planner`); ``None`` resolves to
        :func:`repro.core.config.default_plan`.  ``"cost"`` prices
        paths per shard from its cohort statistics.

    >>> from repro.amnesia import FifoAmnesia
    >>> pdb = PartitionedAmnesiaDatabase(
    ...     "a", [0, 500, 1000], total_budget=100,
    ...     policy_factory=FifoAmnesia,
    ... )
    >>> pdb.partition_count
    2
    """

    def __init__(
        self,
        column: str,
        boundaries,
        total_budget: int,
        policy_factory,
        seed: int = DEFAULT_SEED,
        plan: str | None = None,
    ):
        bounds = [int(b) for b in boundaries]
        if len(bounds) < 2:
            raise ConfigError("need at least two boundaries (one partition)")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigError(f"boundaries must be strictly increasing: {bounds}")
        n_partitions = len(bounds) - 1
        if total_budget < n_partitions:
            raise ConfigError(
                f"total_budget {total_budget} cannot cover "
                f"{n_partitions} partitions"
            )
        self.column = column
        self.total_budget = int(total_budget)
        base = total_budget // n_partitions
        remainder = total_budget - base * n_partitions
        self._partitions = [
            Partition(
                index=i,
                low=lo,
                high=hi,
                budget=base + (1 if i < remainder else 0),
                policy=policy_factory(),
                column=column,
                seed=derive_seed(seed, f"partition-{i}"),
                plan=plan,
                edge_low=(i == 0),
                edge_high=(i == n_partitions - 1),
            )
            for i, (lo, hi) in enumerate(zip(bounds, bounds[1:]))
        ]
        self._bounds = bounds
        # All shards resolve plan=None identically; read the mode back
        # from the first shard's planner.
        self.plan_mode = self._partitions[0].db.plan_mode

    # -- topology --------------------------------------------------------

    @property
    def partition_count(self) -> int:
        """Number of shards."""
        return len(self._partitions)

    @property
    def partitions(self) -> tuple[Partition, ...]:
        """The shards, in range order."""
        return tuple(self._partitions)

    @property
    def active_count(self) -> int:
        """Active tuples across all shards."""
        return sum(p.db.active_count for p in self._partitions)

    @property
    def total_rows(self) -> int:
        """Tuples ever inserted across all shards."""
        return sum(p.db.total_rows for p in self._partitions)

    def _partition_of(self, values: np.ndarray) -> np.ndarray:
        idx = np.searchsorted(self._bounds, values, side="right") - 1
        return np.clip(idx, 0, self.partition_count - 1)

    # -- writes -------------------------------------------------------------

    def insert(self, values_by_column: dict) -> None:
        """Route a batch to partitions by value and insert."""
        if set(values_by_column) != {self.column}:
            raise QueryError(
                f"partitioned store holds only column {self.column!r}"
            )
        values = np.asarray(values_by_column[self.column], dtype=np.int64)
        owners = self._partition_of(values)
        for i, partition in enumerate(self._partitions):
            chunk = values[owners == i]
            if chunk.size:
                partition.db.insert({self.column: chunk})

    # -- reads ----------------------------------------------------------------

    def range_query(self, low: int, high: int) -> MergedRangeResult:
        """Fan a range query out through the shard planners; merge exactly.

        Every shard holding data executes through its own planner; the
        planner prunes shards whose declared value bounds exclude the
        range (a ``pruned`` plan — zero rows considered).  Query
        traffic for :meth:`rebalance` counts shards the range *covers*
        (a plan-independent statistic), never shards a particular plan
        mode happened to execute — otherwise rebalancing, and with it
        every downstream budget and forgetting decision, would diverge
        between ``scan`` and the pruned modes.
        """
        if high < low:
            raise QueryError(f"range [{low}, {high}) is reversed")
        if high == low:
            # An empty range matches nothing under any mode; answering
            # here keeps the executed/pruned classification below in
            # lock-step with the planners' own bounds test (which does
            # not prune empty ranges — it would execute them for 0
            # rows) and counts no query traffic, like covers().
            return MergedRangeResult(rf=0, mf=0)
        rf = mf = executed = pruned = 0
        for partition in self._partitions:
            covered = partition.covers(low, high)
            if covered:
                partition.query_hits += 1
            if partition.db.total_rows == 0:
                continue  # an empty relation has nothing to plan over
            result = partition.db.range_query(self.column, low, high)
            # Classify the fan-out from the same bounds test the shard
            # planner prunes by (scan mode never prunes) — not from the
            # planner's mutable last_execution, which a concurrent
            # query could have overwritten.  Counts always accumulate;
            # a pruned shard's result is empty by construction.
            if covered or partition.db.plan_mode == "scan":
                executed += 1
            else:
                pruned += 1
            rf += result.rf
            mf += result.mf
        return MergedRangeResult(
            rf=rf, mf=mf, shards_executed=executed, shards_pruned=pruned
        )

    def aggregate(
        self,
        function: AggregateFunction | str,
        low: int | None = None,
        high: int | None = None,
    ) -> tuple[float | None, float | None]:
        """Aggregate across shards: ``(amnesiac, oracle)``, merged exactly.

        Supports every :class:`AggregateFunction` — including VAR/STD —
        and optional ``[low, high)`` windows, matching
        :meth:`repro.core.database.AmnesiaDatabase.aggregate`.  Each
        shard contributes per-view :class:`~repro.stats.
        StreamingMoments` (computed through its planner); the moments
        merge in shard order via Chan's rule and the function is
        finalized once over the merged accumulator, so AVG/VAR/STD are
        the exact global statistics, not averages of shard answers.
        """
        function = AggregateFunction(function)
        if (low is None) != (high is None):
            raise ConfigError("supply both low and high, or neither")
        active = StreamingMoments()
        oracle = StreamingMoments()
        for partition in self._partitions:
            if partition.db.total_rows == 0:
                continue
            active_part, missed_part = partition.db.aggregate_moments(
                function, self.column, low, high
            )
            active.merge(active_part)
            oracle.merge(active_part)
            oracle.merge(missed_part)
        return function.from_moments(active), function.from_moments(oracle)

    # -- planning introspection ---------------------------------------------

    def explain(self, low: int, high: int) -> list[tuple[int, QueryPlan]]:
        """Preview each shard's plan for ``[low, high)`` (no execution).

        Returns ``(partition_index, plan)`` pairs in range order —
        pruned shards show up with a ``pruned`` plan, making the
        planner's fan-out decision inspectable before paying for it.
        """
        predicate = RangePredicate(self.column, low, high)
        return [
            (partition.index, partition.db.planner.plan(predicate))
            for partition in self._partitions
        ]

    def plan_report(self) -> str:
        """Unified EXPLAIN-style report across every shard's planner."""
        totals = {"considered": 0, "pruned_rows": 0, "pruned_shards": 0}
        lines = [
            f"PartitionedAmnesiaDatabase(plan={self.plan_mode!r}) — "
            f"{self.partition_count} shard(s), "
            f"budget {self.total_budget}"
        ]
        for partition in self._partitions:
            stats = partition.db.planner.stats()
            totals["considered"] += stats["rows_considered"]
            totals["pruned_rows"] += stats["rows_pruned"]
            totals["pruned_shards"] += stats["paths"]["pruned"]
            lines.append(f"shard {partition.index} [{partition.low}, {partition.high}):")
            lines.extend(
                "  " + line
                for line in partition.db.plan_report().splitlines()
            )
        lines.append(
            f"totals: rows considered {totals['considered']:,} / "
            f"pruned {totals['pruned_rows']:,}; "
            f"shard-level prunes {totals['pruned_shards']}"
        )
        return "\n".join(lines)

    # -- adaptation ----------------------------------------------------------------

    def rebalance(self, floor: int = 1) -> dict[int, int]:
        """Reallocate budget proportionally to observed query traffic.

        Each partition receives at least ``floor`` tuples; the rest of
        the total budget is split by (hits + 1) shares, so an untouched
        store still decays gracefully instead of starving instantly.
        Shrunken partitions forget down immediately; hit counters reset
        so the next window adapts afresh.  Returns {partition: budget}.
        """
        if floor < 1:
            raise ConfigError(f"floor must be >= 1, got {floor}")
        if floor * self.partition_count > self.total_budget:
            raise ConfigError("floor exceeds the total budget")
        shares = np.array(
            [p.query_hits + 1 for p in self._partitions], dtype=np.float64
        )
        spare = self.total_budget - floor * self.partition_count
        raw = shares / shares.sum() * spare
        budgets = np.floor(raw).astype(int) + floor
        leftover = self.total_budget - int(budgets.sum())
        order = np.argsort(-(raw - np.floor(raw)))
        for i in range(leftover):
            budgets[order[i % self.partition_count]] += 1
        for partition, budget in zip(self._partitions, budgets):
            partition.set_budget(int(budget))
            partition.query_hits = 0
        return {p.index: p.budget for p in self._partitions}

    def stats(self) -> dict:
        """Operational snapshot across shards."""
        return {
            "partitions": self.partition_count,
            "total_budget": self.total_budget,
            "active_rows": self.active_count,
            "total_rows": self.total_rows,
            "budgets": [p.budget for p in self._partitions],
            "query_hits": [p.query_hits for p in self._partitions],
            "plan": self.plan_mode,
            "shard_prunes": [
                p.db.planner.stats()["paths"]["pruned"]
                for p in self._partitions
            ],
        }

    def __repr__(self) -> str:
        return (
            f"PartitionedAmnesiaDatabase(column={self.column!r}, "
            f"partitions={self.partition_count}, "
            f"budget={self.total_budget}, plan={self.plan_mode!r})"
        )
