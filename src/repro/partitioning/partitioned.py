"""Adaptive partitioned amnesia (paper §4.4).

    "Instead of user defined partitioning schemes, it might be worth to
    study amnesia in the context of adaptive partitioning.  Each
    partition can then be tuned to provide the best precision for a
    subset of the workload."

A :class:`PartitionedAmnesiaDatabase` splits the value domain into
range partitions, each backed by its own
:class:`~repro.core.database.AmnesiaDatabase` with its own budget and
policy.  Queries fan out to the overlapping partitions, results merge
exactly, and per-partition query traffic is tracked so that
:meth:`~PartitionedAmnesiaDatabase.rebalance` can *move budget toward
the partitions the workload actually reads* — hot regions keep more
history, cold regions forget aggressively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util.errors import ConfigError, QueryError
from .._util.rng import DEFAULT_SEED, derive_seed
from ..amnesia.base import AmnesiaPolicy
from ..core.database import AmnesiaDatabase
from ..query.queries import AggregateFunction

__all__ = ["MergedRangeResult", "Partition", "PartitionedAmnesiaDatabase"]


@dataclass(frozen=True)
class MergedRangeResult:
    """A range result merged across partitions (counts only)."""

    rf: int
    mf: int

    @property
    def oracle_count(self) -> int:
        """RF + MF across all partitions."""
        return self.rf + self.mf

    @property
    def precision(self) -> float:
        """P_F over the merged result (1.0 when nothing matches)."""
        return 1.0 if self.oracle_count == 0 else self.rf / self.oracle_count


class Partition:
    """One value-range shard: ``[low, high)`` with its own amnesia."""

    def __init__(
        self,
        index: int,
        low: int,
        high: int,
        budget: int,
        policy: AmnesiaPolicy,
        column: str,
        seed: int,
    ):
        if high <= low:
            raise ConfigError(f"partition range [{low}, {high}) is empty")
        self.index = index
        self.low = int(low)
        self.high = int(high)
        self.column = column
        self.db = AmnesiaDatabase(
            budget=budget,
            policy=policy,
            columns=(column,),
            seed=seed,
            table_name=f"partition_{index}",
        )
        self.query_hits = 0

    @property
    def budget(self) -> int:
        """Current tuple budget of this shard."""
        return self.db.budget

    def covers(self, low: int, high: int) -> bool:
        """Does ``[low, high)`` intersect this partition's range?"""
        return low < self.high and high > self.low

    def set_budget(self, budget: int) -> None:
        """Adjust the budget; shrinking forgets down immediately."""
        if budget < 1:
            raise ConfigError(f"partition budget must be >= 1, got {budget}")
        self.db.budget = int(budget)
        self.db.enforce_budget()

    def __repr__(self) -> str:
        return (
            f"Partition({self.index}: [{self.low}, {self.high}), "
            f"budget={self.budget}, active={self.db.active_count})"
        )


class PartitionedAmnesiaDatabase:
    """Range-partitioned store with per-partition amnesia.

    Parameters
    ----------
    column:
        The partitioning (and only) column.
    boundaries:
        Sorted cut points ``[b0, b1, ..., bP]`` defining partitions
        ``[b_i, b_{i+1})``.  Values outside ``[b0, bP)`` are clamped
        into the edge partitions.
    total_budget:
        Tuple budget shared by all partitions (split evenly at start).
    policy_factory:
        Zero-argument callable producing a fresh policy per partition
        (policies are stateful, so they must not be shared).

    >>> from repro.amnesia import FifoAmnesia
    >>> pdb = PartitionedAmnesiaDatabase(
    ...     "a", [0, 500, 1000], total_budget=100,
    ...     policy_factory=FifoAmnesia,
    ... )
    >>> pdb.partition_count
    2
    """

    def __init__(
        self,
        column: str,
        boundaries,
        total_budget: int,
        policy_factory,
        seed: int = DEFAULT_SEED,
    ):
        bounds = [int(b) for b in boundaries]
        if len(bounds) < 2:
            raise ConfigError("need at least two boundaries (one partition)")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigError(f"boundaries must be strictly increasing: {bounds}")
        n_partitions = len(bounds) - 1
        if total_budget < n_partitions:
            raise ConfigError(
                f"total_budget {total_budget} cannot cover "
                f"{n_partitions} partitions"
            )
        self.column = column
        self.total_budget = int(total_budget)
        base = total_budget // n_partitions
        remainder = total_budget - base * n_partitions
        self._partitions = [
            Partition(
                index=i,
                low=lo,
                high=hi,
                budget=base + (1 if i < remainder else 0),
                policy=policy_factory(),
                column=column,
                seed=derive_seed(seed, f"partition-{i}"),
            )
            for i, (lo, hi) in enumerate(zip(bounds, bounds[1:]))
        ]
        self._bounds = bounds

    # -- topology --------------------------------------------------------

    @property
    def partition_count(self) -> int:
        """Number of shards."""
        return len(self._partitions)

    @property
    def partitions(self) -> tuple[Partition, ...]:
        """The shards, in range order."""
        return tuple(self._partitions)

    @property
    def active_count(self) -> int:
        """Active tuples across all shards."""
        return sum(p.db.active_count for p in self._partitions)

    @property
    def total_rows(self) -> int:
        """Tuples ever inserted across all shards."""
        return sum(p.db.total_rows for p in self._partitions)

    def _partition_of(self, values: np.ndarray) -> np.ndarray:
        idx = np.searchsorted(self._bounds, values, side="right") - 1
        return np.clip(idx, 0, self.partition_count - 1)

    # -- writes -------------------------------------------------------------

    def insert(self, values_by_column: dict) -> None:
        """Route a batch to partitions by value and insert."""
        if set(values_by_column) != {self.column}:
            raise QueryError(
                f"partitioned store holds only column {self.column!r}"
            )
        values = np.asarray(values_by_column[self.column], dtype=np.int64)
        owners = self._partition_of(values)
        for i, partition in enumerate(self._partitions):
            chunk = values[owners == i]
            if chunk.size:
                partition.db.insert({self.column: chunk})

    # -- reads ----------------------------------------------------------------

    def range_query(self, low: int, high: int) -> MergedRangeResult:
        """Fan a range query out and merge RF/MF exactly."""
        rf = mf = 0
        for partition in self._partitions:
            if not partition.covers(low, high):
                continue
            partition.query_hits += 1
            result = partition.db.range_query(self.column, low, high)
            rf += result.rf
            mf += result.mf
        return MergedRangeResult(rf=rf, mf=mf)

    def aggregate(self, function: AggregateFunction | str) -> tuple[float | None, float | None]:
        """Whole-store aggregate: (amnesiac, oracle), merged exactly.

        AVG merges through per-partition SUM and COUNT; MIN/MAX/SUM/
        COUNT merge directly.
        """
        function = AggregateFunction(function)
        if function in (AggregateFunction.VAR, AggregateFunction.STD):
            raise QueryError(
                "variance aggregates are not supported across partitions"
            )

        def merged(kind: str) -> tuple[float | None, float | None]:
            amnesiac_parts, oracle_parts = [], []
            for partition in self._partitions:
                result = partition.db.aggregate(kind, self.column)
                if result.amnesiac_value is not None:
                    amnesiac_parts.append(result.amnesiac_value)
                if result.oracle_value is not None:
                    oracle_parts.append(result.oracle_value)
            combine = {
                "sum": sum, "count": sum, "min": min, "max": max,
            }[kind]
            return (
                combine(amnesiac_parts) if amnesiac_parts else None,
                combine(oracle_parts) if oracle_parts else None,
            )

        if function is AggregateFunction.AVG:
            amnesiac_sum, oracle_sum = merged("sum")
            amnesiac_count, oracle_count = merged("count")
            amnesiac = (
                amnesiac_sum / amnesiac_count
                if amnesiac_sum is not None and amnesiac_count
                else None
            )
            oracle = (
                oracle_sum / oracle_count
                if oracle_sum is not None and oracle_count
                else None
            )
            return amnesiac, oracle
        return merged(function.value)

    # -- adaptation ----------------------------------------------------------------

    def rebalance(self, floor: int = 1) -> dict[int, int]:
        """Reallocate budget proportionally to observed query traffic.

        Each partition receives at least ``floor`` tuples; the rest of
        the total budget is split by (hits + 1) shares, so an untouched
        store still decays gracefully instead of starving instantly.
        Shrunken partitions forget down immediately; hit counters reset
        so the next window adapts afresh.  Returns {partition: budget}.
        """
        if floor < 1:
            raise ConfigError(f"floor must be >= 1, got {floor}")
        if floor * self.partition_count > self.total_budget:
            raise ConfigError("floor exceeds the total budget")
        shares = np.array(
            [p.query_hits + 1 for p in self._partitions], dtype=np.float64
        )
        spare = self.total_budget - floor * self.partition_count
        raw = shares / shares.sum() * spare
        budgets = np.floor(raw).astype(int) + floor
        leftover = self.total_budget - int(budgets.sum())
        order = np.argsort(-(raw - np.floor(raw)))
        for i in range(leftover):
            budgets[order[i % self.partition_count]] += 1
        for partition, budget in zip(self._partitions, budgets):
            partition.set_budget(int(budget))
            partition.query_hits = 0
        return {p.index: p.budget for p in self._partitions}

    def stats(self) -> dict:
        """Operational snapshot across shards."""
        return {
            "partitions": self.partition_count,
            "total_budget": self.total_budget,
            "active_rows": self.active_count,
            "total_rows": self.total_rows,
            "budgets": [p.budget for p in self._partitions],
            "query_hits": [p.query_hits for p in self._partitions],
        }

    def __repr__(self) -> str:
        return (
            f"PartitionedAmnesiaDatabase(column={self.column!r}, "
            f"partitions={self.partition_count}, "
            f"budget={self.total_budget})"
        )
