"""ASCII rendering: heat maps, line charts, tables (no plotting deps)."""

from .heatmap import render_heatmap, shade
from .linechart import SERIES_MARKERS, render_linechart
from .tables import render_table

__all__ = [
    "render_heatmap",
    "shade",
    "SERIES_MARKERS",
    "render_linechart",
    "render_table",
]
