"""ASCII heat maps: the paper's amnesia maps (Figures 1–2).

The paper renders "the brighter the colored area is, the more tuples
are still accessible" — here brightness becomes the classic five-level
block ramp ``" ░▒▓█"``.  One labelled row per policy/distribution, one
column per timeline cohort.
"""

from __future__ import annotations

import numpy as np

from .._util.errors import ConfigError

__all__ = ["shade", "render_heatmap"]

#: Brightness ramp, darkest (nothing active) to brightest (all active).
_RAMP = " ░▒▓█"


def shade(fraction: float, width: int = 1) -> str:
    """Map an active fraction in [0, 1] to a block character run.

    >>> shade(0.0), shade(1.0), shade(0.5)
    (' ', '█', '▒')
    """
    if not 0.0 <= fraction <= 1.0:
        raise ConfigError(f"fraction {fraction} outside [0, 1]")
    level = min(int(fraction * len(_RAMP)), len(_RAMP) - 1)
    return _RAMP[level] * width

def render_heatmap(
    rows: dict[str, np.ndarray],
    *,
    title: str = "",
    cell_width: int = 5,
    x_label: str = "Timeline",
) -> str:
    """Render labelled rows of fractions as an ASCII heat map.

    ``rows`` maps a label (policy or distribution name) to a 1-D array
    of active fractions per timeline cohort.  All rows must have equal
    length.

    >>> art = render_heatmap({"fifo": np.array([0.0, 1.0])}, title="demo")
    >>> "fifo" in art and "█" in art
    True
    """
    if not rows:
        raise ConfigError("heat map needs at least one row")
    lengths = {len(v) for v in rows.values()}
    if len(lengths) != 1:
        raise ConfigError(f"heat map rows must be equal length, got {lengths}")
    (n_cols,) = lengths
    if n_cols == 0:
        raise ConfigError("heat map rows must be non-empty")

    label_width = max(len(label) for label in rows)
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("")
    for label, fractions in rows.items():
        cells = "".join(
            shade(float(f), width=cell_width) for f in np.asarray(fractions)
        )
        lines.append(f"{label:>{label_width}} |{cells}|")
    axis = "".join(f"{i:^{cell_width}d}" for i in range(n_cols))
    lines.append(f"{'':>{label_width}}  {axis}")
    lines.append(f"{'':>{label_width}}  {x_label:^{n_cols * cell_width}}")
    return "\n".join(lines)
