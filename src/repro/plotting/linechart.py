"""ASCII line charts: the paper's precision-over-time plots (Figure 3).

Multiple named series share one canvas; each series gets a distinct
marker.  The y axis is fixed to [0, 1] by default because every metric
plotted (precision, error margin, active fraction) lives there.
"""

from __future__ import annotations

import numpy as np

from .._util.errors import ConfigError

__all__ = ["render_linechart", "SERIES_MARKERS"]

#: Marker cycle, mirroring the paper's five-policy legends.
SERIES_MARKERS = "*+xo#%@&"


def render_linechart(
    series: dict[str, np.ndarray],
    *,
    title: str = "",
    height: int = 16,
    y_min: float = 0.0,
    y_max: float = 1.0,
    x_label: str = "Timeline",
) -> str:
    """Render named series as an ASCII chart with a legend.

    All series must share one x grid (their indexes).  Values are
    clipped into [y_min, y_max].

    >>> chart = render_linechart({"fifo": np.array([1.0, 0.5, 0.2])})
    >>> "fifo" in chart
    True
    """
    if not series:
        raise ConfigError("line chart needs at least one series")
    if height < 4:
        raise ConfigError(f"height must be >= 4, got {height}")
    if y_max <= y_min:
        raise ConfigError(f"y range [{y_min}, {y_max}] is empty")
    lengths = {len(v) for v in series.values()}
    if len(lengths) != 1:
        raise ConfigError(f"series must be equal length, got {lengths}")
    (n_points,) = lengths
    if n_points == 0:
        raise ConfigError("series must be non-empty")
    if len(series) > len(SERIES_MARKERS):
        raise ConfigError(
            f"at most {len(SERIES_MARKERS)} series supported, got {len(series)}"
        )

    col_width = 4
    canvas_width = n_points * col_width
    canvas = [[" "] * canvas_width for _ in range(height)]

    def row_of(value: float) -> int:
        clipped = min(max(value, y_min), y_max)
        scaled = (clipped - y_min) / (y_max - y_min)
        return int(round((1.0 - scaled) * (height - 1)))

    markers = {}
    for marker, (label, values) in zip(SERIES_MARKERS, series.items()):
        markers[label] = marker
        for i, value in enumerate(np.asarray(values, dtype=np.float64)):
            row = row_of(float(value))
            col = i * col_width + col_width // 2
            canvas[row][col] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("")
    for i, row in enumerate(canvas):
        y_value = y_max - (y_max - y_min) * i / (height - 1)
        lines.append(f"{y_value:5.2f} |{''.join(row)}")
    lines.append(f"{'':5s} +{'-' * canvas_width}")
    axis = "".join(f"{i + 1:^{col_width}d}" for i in range(n_points))
    lines.append(f"{'':5s}  {axis}")
    lines.append(f"{'':5s}  {x_label:^{canvas_width}}")
    legend = "   ".join(f"{marker} {label}" for label, marker in markers.items())
    lines.append("")
    lines.append(f"      {legend}")
    return "\n".join(lines)
