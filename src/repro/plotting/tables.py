"""Plain-text tables for experiment reports.

One helper, :func:`render_table`, used by every experiment module and
the CLI to print the rows the paper's tables would contain.
"""

from __future__ import annotations

from collections.abc import Sequence

from .._util.errors import ConfigError

__all__ = ["render_table"]


def _format_cell(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or (abs(value) < 0.001 and value != 0.0):
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".") or "0"
    if value is None:
        return "-"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    title: str = "",
) -> str:
    """Render an aligned text table.

    >>> print(render_table(["policy", "E"], [["fifo", 0.25]]))
    policy  E
    ------  ----
    fifo    0.25
    """
    headers = [str(h) for h in headers]
    if not headers:
        raise ConfigError("table needs at least one column")
    formatted = [[_format_cell(cell) for cell in row] for row in rows]
    for row in formatted:
        if len(row) != len(headers):
            raise ConfigError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in formatted)) if formatted else len(headers[i])
        for i in range(len(headers))
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("")
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in formatted:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)
