"""Query layer: predicates, query objects, generators, planner, executor."""

from .executor import QueryExecutor
from .generators import (
    ANCHORS,
    AggregateQueryGenerator,
    MixedWorkload,
    RangeQueryGenerator,
)
from .planner import (
    EXECUTED_MODES,
    PLAN_MODES,
    PlanExecution,
    QueryPlan,
    QueryPlanner,
)
from .predicates import (
    AndPredicate,
    NotPredicate,
    OrPredicate,
    PointPredicate,
    Predicate,
    RangePredicate,
    TruePredicate,
)
from .queries import (
    AggregateFunction,
    AggregateQuery,
    AggregateResult,
    RangeQuery,
    RangeResult,
)

__all__ = [
    "QueryExecutor",
    "EXECUTED_MODES",
    "PLAN_MODES",
    "PlanExecution",
    "QueryPlan",
    "QueryPlanner",
    "ANCHORS",
    "AggregateQueryGenerator",
    "MixedWorkload",
    "RangeQueryGenerator",
    "AndPredicate",
    "NotPredicate",
    "OrPredicate",
    "PointPredicate",
    "Predicate",
    "RangePredicate",
    "TruePredicate",
    "AggregateFunction",
    "AggregateQuery",
    "AggregateResult",
    "RangeQuery",
    "RangeResult",
]
