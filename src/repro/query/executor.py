"""Query execution against the amnesiac and oracle views.

The executor answers queries through a :class:`~repro.query.planner.
QueryPlanner`, which picks an access path per query (full scan,
zone-map-pruned scan, or index probe — see :mod:`repro.query.planner`).
Whatever the path, the result is split by the activity bitmap exactly
as a complete-history scan would split it:

* active matches  → what the amnesiac DBMS answers (R_F);
* forgotten matches → what it silently misses (M_F).

It also performs access accounting: tuples appearing in a result get
their access frequency bumped, which is the signal the rot and overuse
policies learn from (§3.2).  Because every plan returns the identical
active position set, policy-visible state evolves the same regardless
of the plan choice.
"""

from __future__ import annotations

import numpy as np

from .._util.errors import QueryError
from ..stats.moments import ExactMoments, StreamingMoments
from ..storage.table import Table
from .planner import QueryPlanner
from .queries import (
    AggregateQuery,
    AggregateResult,
    RangeQuery,
    RangeResult,
)

__all__ = ["QueryExecutor"]


class QueryExecutor:
    """Evaluates queries on a :class:`~repro.storage.Table`.

    Parameters
    ----------
    table:
        The table to query.
    record_access:
        When True (default), active tuples contributing to a result have
        their access frequency incremented — required by query-based
        amnesia.  Disable for read-only analysis passes that must not
        perturb policy state.
    planner:
        Access-path chooser.  ``None`` (the default) builds a
        scan-only :class:`~repro.query.planner.QueryPlanner`, which
        reproduces the historical full-oracle-scan behaviour exactly.

    >>> import numpy as np
    >>> from repro.storage import Table
    >>> from repro.query import RangeQuery, RangePredicate
    >>> t = Table("obs", ["a"])
    >>> _ = t.insert_batch(0, {"a": [1, 5, 9]})
    >>> t.forget(np.array([1]), epoch=1)
    1
    >>> r = QueryExecutor(t).execute_range(RangeQuery(RangePredicate("a", 0, 10)), epoch=1)
    >>> (r.rf, r.mf, r.precision)
    (2, 1, 0.6666666666666666)
    """

    def __init__(
        self,
        table: Table,
        *,
        record_access: bool = True,
        planner: QueryPlanner | None = None,
    ):
        self.table = table
        self.record_access = record_access
        if planner is None:
            planner = QueryPlanner(table, mode="scan")
        elif planner.table is not table:
            raise QueryError("planner was built over a different table")
        self.planner = planner

    # -- internals -------------------------------------------------------

    def _require_rows(self) -> None:
        if self.table.total_rows == 0:
            raise QueryError(f"table {self.table.name!r} is empty")

    def plan_report(self) -> str:
        """EXPLAIN-style report of the planner's activity so far."""
        return self.planner.plan_report()

    # -- range queries ------------------------------------------------------

    def execute_range(
        self, query: RangeQuery, epoch: int, *, plan=None
    ) -> RangeResult:
        """Run a range query; returns both views' match sets.

        ``plan`` forwards a still-valid cached plan to
        :meth:`~repro.query.planner.QueryPlanner.match` (see the
        planner's ``generation`` contract); ``None`` plans per query.
        """
        if not query.columns:
            raise QueryError("range query predicate references no column")
        self._require_rows()
        active, missed, _ = self.planner.match(
            query.predicate, query.columns, plan=plan
        )
        if self.record_access:
            self.table.record_access(active, epoch)
        return RangeResult(
            query=query, active_positions=active, missed_positions=missed
        )

    # -- aggregate queries -----------------------------------------------------

    def _aggregate_matches(
        self, query: AggregateQuery, epoch: int, plan=None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Shared front half of both aggregate paths.

        Validation, planner-routed matching and access accounting live
        here once, so the scalar and moments paths cannot drift — the
        equivalence suite's "policy-visible state cannot tell the two
        apart" invariant hangs on that.  Returns (active, missed,
        column values).
        """
        if not self.table.has_column(query.column):
            raise QueryError(
                f"aggregate column {query.column!r} not in table "
                f"{self.table.name!r}"
            )
        self._require_rows()
        active, missed, _ = self.planner.match(
            query.effective_predicate(), query.columns, plan=plan
        )
        if self.record_access:
            self.table.record_access(active, epoch)
        return active, missed, self.table.values(query.column)

    def execute_aggregate(
        self, query: AggregateQuery, epoch: int, *, plan=None
    ) -> AggregateResult:
        """Run an aggregate; computes amnesiac and oracle values."""
        active, missed, column_values = self._aggregate_matches(
            query, epoch, plan=plan
        )
        amnesiac = query.function.compute(column_values[active])
        oracle_positions = np.concatenate([active, missed])
        oracle = query.function.compute(column_values[oracle_positions])
        return AggregateResult(
            query=query,
            amnesiac_value=amnesiac,
            oracle_value=oracle,
            active_matches=int(active.size),
            oracle_matches=int(active.size + missed.size),
        )

    def execute_moments(
        self, query: AggregateQuery, epoch: int, *, exact: bool = False
    ) -> tuple[StreamingMoments, StreamingMoments] | tuple[ExactMoments, ExactMoments]:
        """Run an aggregate, returning (active, missed) moment bundles.

        The mergeable form of :meth:`execute_aggregate`: instead of
        finalized values it returns one
        :class:`~repro.stats.StreamingMoments` per view side, which a
        sharded store can merge across shards (Chan's rule) before
        finalizing — the only way AVG/VAR/STD stay exact under
        partitioning.  With ``exact=True`` the bundles are
        :class:`~repro.stats.ExactMoments` instead — integer sufficient
        statistics whose merges are bit-identical under *any* grouping
        or order, the currency of the streaming aggregate engine
        (:class:`~repro.query.plans.AggregateNode`).  Matching goes
        through the planner and access accounting is identical to the
        scalar path either way, so policy-visible state cannot tell
        the paths apart.
        """
        active, missed, column_values = self._aggregate_matches(query, epoch)
        cls = ExactMoments if exact else StreamingMoments
        return (
            cls.of(column_values[active]),
            cls.of(column_values[missed]),
        )

    # -- generic dispatch -------------------------------------------------------

    def execute(self, query, epoch: int, *, plan=None):
        """Dispatch on query type (convenience for mixed batches)."""
        if isinstance(query, RangeQuery):
            return self.execute_range(query, epoch, plan=plan)
        if isinstance(query, AggregateQuery):
            return self.execute_aggregate(query, epoch, plan=plan)
        raise QueryError(f"unsupported query type {type(query).__name__}")
