"""Query execution against the amnesiac and oracle views.

The executor evaluates every predicate over the *complete* value history
(the oracle view — possible because forgetting only clears bitmap bits)
and splits matches by the activity bitmap:

* active matches  → what the amnesiac DBMS answers (R_F);
* forgotten matches → what it silently misses (M_F).

It also performs access accounting: tuples appearing in a result get
their access frequency bumped, which is the signal the rot and overuse
policies learn from (§3.2).
"""

from __future__ import annotations

import numpy as np

from .._util.errors import QueryError
from ..storage.table import Table
from .queries import (
    AggregateQuery,
    AggregateResult,
    RangeQuery,
    RangeResult,
)

__all__ = ["QueryExecutor"]


class QueryExecutor:
    """Evaluates queries on a :class:`~repro.storage.Table`.

    Parameters
    ----------
    table:
        The table to query.
    record_access:
        When True (default), active tuples contributing to a result have
        their access frequency incremented — required by query-based
        amnesia.  Disable for read-only analysis passes that must not
        perturb policy state.

    >>> import numpy as np
    >>> from repro.storage import Table
    >>> from repro.query import RangeQuery, RangePredicate
    >>> t = Table("obs", ["a"])
    >>> _ = t.insert_batch(0, {"a": [1, 5, 9]})
    >>> t.forget(np.array([1]), epoch=1)
    1
    >>> r = QueryExecutor(t).execute_range(RangeQuery(RangePredicate("a", 0, 10)), epoch=1)
    >>> (r.rf, r.mf, r.precision)
    (2, 1, 0.6666666666666666)
    """

    def __init__(self, table: Table, *, record_access: bool = True):
        self.table = table
        self.record_access = record_access

    # -- internals -------------------------------------------------------

    def _values_for(self, columns: tuple[str, ...]) -> dict[str, np.ndarray]:
        if self.table.total_rows == 0:
            raise QueryError(f"table {self.table.name!r} is empty")
        return {name: self.table.values(name) for name in columns}

    def _split_matches(self, mask: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Split a predicate mask into (active, forgotten) positions."""
        active_mask = self.table.active_mask()
        active = np.flatnonzero(mask & active_mask)
        missed = np.flatnonzero(mask & ~active_mask)
        return active, missed

    # -- range queries ------------------------------------------------------

    def execute_range(self, query: RangeQuery, epoch: int) -> RangeResult:
        """Run a range query; returns both views' match sets."""
        columns = query.columns
        if not columns:
            raise QueryError("range query predicate references no column")
        values = self._values_for(columns)
        mask = query.predicate.mask(values)
        active, missed = self._split_matches(mask)
        if self.record_access:
            self.table.record_access(active, epoch)
        return RangeResult(
            query=query, active_positions=active, missed_positions=missed
        )

    # -- aggregate queries -----------------------------------------------------

    def execute_aggregate(self, query: AggregateQuery, epoch: int) -> AggregateResult:
        """Run an aggregate; computes amnesiac and oracle values."""
        if not self.table.has_column(query.column):
            raise QueryError(
                f"aggregate column {query.column!r} not in table "
                f"{self.table.name!r}"
            )
        values = self._values_for(query.columns)
        mask = query.effective_predicate().mask(values)
        active, missed = self._split_matches(mask)
        column_values = values[query.column]
        amnesiac = query.function.compute(column_values[active])
        oracle_positions = np.concatenate([active, missed])
        oracle = query.function.compute(column_values[oracle_positions])
        if self.record_access:
            self.table.record_access(active, epoch)
        return AggregateResult(
            query=query,
            amnesiac_value=amnesiac,
            oracle_value=oracle,
            active_matches=int(active.size),
            oracle_matches=int(active.size + missed.size),
        )

    # -- generic dispatch -------------------------------------------------------

    def execute(self, query, epoch: int):
        """Dispatch on query type (convenience for mixed batches)."""
        if isinstance(query, RangeQuery):
            return self.execute_range(query, epoch)
        if isinstance(query, AggregateQuery):
            return self.execute_aggregate(query, epoch)
        raise QueryError(f"unsupported query type {type(query).__name__}")
