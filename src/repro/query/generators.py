"""Workload generators: the paper's query templates, parameterised.

Figure 3's generator is reproduced literally (§4.2):

    "The range query generator selects a candidate value v from all
    active tuples and constructs the range
    WHERE attr >= v - 0.01 * RANGE AND attr < v + 0.01 * RANGE
    where RANGE is in the range 0 to the maximum value seen up to the
    latest update batch."

``selectivity`` is the S factor of §2.2: the half-width of the window as
a fraction of RANGE (so S=0.01 reproduces the quoted query and S=1.0
covers the whole domain).  The *anchor* controls where candidate values
come from:

* ``"active"`` — v drawn from active tuples (the Figure 3 generator);
* ``"oracle"`` — v drawn from all tuples ever inserted ("the query
  workload addresses all tuples ever inserted", §4.2 — the upper bound
  on precision loss);
* ``"domain"`` — v uniform over ``[0, RANGE]``;
* ``"recent"`` — v drawn from the newest cohort (fresh-data focus).
"""

from __future__ import annotations

import numpy as np

from .._util.errors import ConfigError, QueryError
from .._util.rng import make_rng
from .._util.validation import check_fraction, check_in, check_positive_int
from ..storage.table import Table
from .predicates import RangePredicate
from .queries import AggregateFunction, AggregateQuery, RangeQuery

__all__ = [
    "ANCHORS",
    "RangeQueryGenerator",
    "AggregateQueryGenerator",
    "MixedWorkload",
]

ANCHORS = ("active", "oracle", "domain", "recent")


def _anchor_value(table: Table, column: str, anchor: str, rng: np.random.Generator) -> int:
    """Pick the candidate value v according to the anchor mode."""
    values = table.values(column)
    if values.size == 0:
        raise QueryError("cannot anchor a query on an empty table")
    if anchor == "active":
        positions = table.active_positions()
        if positions.size == 0:
            # Fully amnesiac table: fall back to the oracle view rather
            # than failing the whole batch.
            return int(values[rng.integers(0, values.size)])
        return int(values[positions[rng.integers(0, positions.size)]])
    if anchor == "oracle":
        return int(values[rng.integers(0, values.size)])
    if anchor == "domain":
        return int(rng.integers(0, int(values.max()) + 1))
    if anchor == "recent":
        cohort = table.cohorts[len(table.cohorts) - 1]
        positions = cohort.positions()
        return int(values[positions[rng.integers(0, positions.size)]])
    raise ConfigError(f"unknown anchor {anchor!r}; choose from {ANCHORS}")


def _window(table: Table, column: str, v: int, selectivity: float) -> RangePredicate:
    """Build the paper's ±S·RANGE window around v."""
    value_range = int(table.values(column).max())
    half_width = max(1, int(round(selectivity * value_range)))
    return RangePredicate(column, v - half_width, v + half_width)


class RangeQueryGenerator:
    """Generates the paper's range queries for one column.

    >>> import numpy as np
    >>> from repro.storage import Table
    >>> t = Table("obs", ["a"])
    >>> _ = t.insert_batch(0, {"a": np.arange(100)})
    >>> gen = RangeQueryGenerator("a", selectivity=0.05, rng=7)
    >>> q = gen.generate(t)
    >>> q.predicate.high - q.predicate.low   # window width = 2 * 0.05 * 99
    10
    """

    def __init__(
        self,
        column: str,
        selectivity: float = 0.01,
        anchor: str = "active",
        rng: int | np.random.Generator | None = None,
    ):
        self.column = column
        self.selectivity = check_fraction(selectivity, "selectivity")
        self.anchor = check_in(anchor, ANCHORS, "anchor")
        self._rng = make_rng(rng)

    def generate(self, table: Table) -> RangeQuery:
        """Generate one range query against ``table``."""
        v = _anchor_value(table, self.column, self.anchor, self._rng)
        return RangeQuery(_window(table, self.column, v, self.selectivity))

    def batch(self, table: Table, n: int) -> list[RangeQuery]:
        """Generate a batch of ``n`` queries."""
        n = check_positive_int(n, "batch size")
        return [self.generate(table) for _ in range(n)]


class AggregateQueryGenerator:
    """Generates aggregate queries, whole-table or over a range window.

    ``predicate_selectivity=None`` yields ``SELECT <fn>(col) FROM t``
    (the §4.3 experiment); a fraction yields the same windowed predicate
    as :class:`RangeQueryGenerator`.
    """

    def __init__(
        self,
        column: str,
        function: AggregateFunction = AggregateFunction.AVG,
        predicate_selectivity: float | None = None,
        anchor: str = "active",
        rng: int | np.random.Generator | None = None,
    ):
        self.column = column
        self.function = AggregateFunction(function)
        self.predicate_selectivity = (
            None
            if predicate_selectivity is None
            else check_fraction(predicate_selectivity, "predicate_selectivity")
        )
        self.anchor = check_in(anchor, ANCHORS, "anchor")
        self._rng = make_rng(rng)

    def generate(self, table: Table) -> AggregateQuery:
        """Generate one aggregate query against ``table``."""
        if self.predicate_selectivity is None:
            return AggregateQuery(self.function, self.column, predicate=None)
        v = _anchor_value(table, self.column, self.anchor, self._rng)
        predicate = _window(table, self.column, v, self.predicate_selectivity)
        return AggregateQuery(self.function, self.column, predicate=predicate)

    def batch(self, table: Table, n: int) -> list[AggregateQuery]:
        """Generate a batch of ``n`` queries."""
        n = check_positive_int(n, "batch size")
        return [self.generate(table) for _ in range(n)]


class MixedWorkload:
    """A weighted mix of query generators.

    The simulator fires "a batch of 1000 individual queries" per epoch
    (§2.3); a mixed workload lets that batch contain both range and
    aggregate queries, as §4.1 describes ("a long update run followed by
    range queries and aggregate calculations").

    >>> from repro.storage import Table
    >>> import numpy as np
    >>> t = Table("obs", ["a"])
    >>> _ = t.insert_batch(0, {"a": np.arange(100)})
    >>> mix = MixedWorkload(
    ...     [(3.0, RangeQueryGenerator("a", rng=1)),
    ...      (1.0, AggregateQueryGenerator("a", rng=2))],
    ...     rng=3,
    ... )
    >>> len(mix.batch(t, 8))
    8
    """

    def __init__(
        self,
        weighted_generators,
        rng: int | np.random.Generator | None = None,
    ):
        pairs = list(weighted_generators)
        if not pairs:
            raise ConfigError("MixedWorkload needs at least one generator")
        weights = np.array([w for w, _ in pairs], dtype=np.float64)
        if (weights <= 0).any():
            raise ConfigError("workload weights must be positive")
        self._generators = [g for _, g in pairs]
        self._probs = weights / weights.sum()
        self._rng = make_rng(rng)

    def generate(self, table: Table):
        """Generate one query, choosing a generator by weight."""
        idx = self._rng.choice(len(self._generators), p=self._probs)
        return self._generators[idx].generate(table)

    def batch(self, table: Table, n: int) -> list:
        """Generate a batch of ``n`` queries."""
        n = check_positive_int(n, "batch size")
        return [self.generate(table) for _ in range(n)]
