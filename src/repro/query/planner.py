"""Query planning: per-query access-path selection.

The executor historically evaluated every predicate over the *complete*
value history — correct, but O(total rows) per query no matter how
selective the predicate.  :class:`QueryPlanner` chooses, per query, one
of three access paths that all produce **bit-identical** results (the
same active/missed position sets, in the same ascending order, hence
the same ``rf``/``mf``/precision and the same float aggregates):

``scan``
    Full oracle scan over every row ever inserted — the ground-truth
    baseline, always available, kept for exact M_F accounting.

``zonemap``
    Cohort-level pruning through a
    :class:`~repro.storage.cohorts.CohortZoneMap`: only cohorts whose
    per-cohort ``[min, max]`` intersects the predicate's bounds are
    scanned.  Both the amnesiac (active) and the oracle (forgotten)
    side come out of the same pruned scan, so M_F stays exact.

``index``
    A registered :class:`~repro.indexes.Index` supplies the *active*
    matches directly (indexes drop forgotten tuples — the paper's
    "stop indexing the forgotten data", §1).  The *missed* side — the
    forgotten matches the amnesiac DBMS silently loses — is recovered
    from a zone-map-pruned scan restricted to cohorts that still hold
    forgotten tuples, or from a scan of the forgotten positions when
    no zone map is attached.

``auto``
    Prefer ``index`` when a suitable index covers the predicate
    column, else ``zonemap`` when a zone map covers it, else ``scan``.

``cost``
    Cardinality-based selection: every applicable path is priced in
    rows-considered — the zone map's :meth:`~repro.storage.cohorts.
    CohortZoneMap.estimate` supplies pruned-scan costs and per-cohort
    selectivity estimates, each index prices its own probe via
    :meth:`~repro.indexes.Index.estimate_entries` — and the cheapest
    plan wins.  Unlike ``auto``'s fixed index>zonemap>scan preference,
    ``cost`` will scan past an index whose probe would touch more rows
    than a pruned scan (e.g. a coarse BRIN, or a sorted index dragging
    a large unmerged delta buffer).

A planner may also carry *value bounds* — declared invariants on the
values a column can hold, e.g. a range shard's partition bounds.  A
probe provably outside the bounds short-circuits to a ``pruned`` plan
that answers the query without touching any data, which is how shard
pruning becomes a planner decision rather than topology code around
it.  ``scan`` mode ignores value bounds on purpose: it stays the
trust-nothing ground truth the equivalence harness compares against.

A planner may also carry *histogram statistics*
(:class:`~repro.stats.table_stats.TableHistogramStats`): per-column
active/forgotten value histograms maintained through the same observer
protocol as the zone map.  When present, :meth:`QueryPlanner.estimate`
(and with it the ``cost`` mode and every explain tree) reads match
cardinalities from the histograms instead of the zone map's per-cohort
uniformity assumption — sharp on skewed streams, and estimate-only:
plan *results* stay bit-identical under either statistics source.

``AND``-composed predicates whose children all carry single-column
bounds are prunable too: same-column bounds intersect (an empty
intersection short-circuits to a ``pruned`` plan), a single surviving
column routes through the ordinary single-column paths, and a genuine
multi-column conjunction intersects the per-column zone-map candidate
ranges and scans only the intersection — instead of the historical
full-scan fallback.  Composite predicates beyond that shape (``OR``,
``NOT``, non-range children) and ``TruePredicate`` queries still fall
back to ``scan`` regardless of the configured mode, and a forced mode
degrades gracefully down the same chain (``index`` → ``zonemap`` →
``scan``) when its structure is missing — the planner never fails a
query it can answer, it only records *why* it picked a
cheaper-or-safer path.

:meth:`QueryPlanner.plan_report` renders an ``EXPLAIN``-style summary
of every decision taken so far; :meth:`QueryPlanner.explain` previews
the plan for one query without executing it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util.errors import QueryError
from .._util.validation import check_in
from ..indexes.base import Index
from ..indexes.hash_index import HashIndex
from ..indexes.sorted_index import SortedIndex
from ..storage.cohorts import CohortZoneMap
from ..storage.compressed import CompressedCohortStore
from ..storage.table import Table
from .predicates import AndPredicate, PointPredicate, Predicate, RangePredicate
from .queries import AggregateQuery, RangeQuery

__all__ = [
    "EXECUTED_MODES",
    "PLAN_MODES",
    "QueryPlan",
    "PlanExecution",
    "QueryPlanner",
]

#: Plan modes accepted by the planner, the config knob and the CLI.
PLAN_MODES = ("auto", "scan", "zonemap", "index", "cost")

#: Access paths a plan can execute (``pruned`` answers from statistics
#: alone and touches no data).
EXECUTED_MODES = ("scan", "zonemap", "index", "pruned")

#: Widest range (in distinct integer values) routed to a hash index —
#: hash range probes degrade to one lookup per value in the range.
HASH_RANGE_LIMIT = 64


@dataclass(frozen=True)
class QueryPlan:
    """One access-path decision (an EXPLAIN row).

    ``mode`` is the path actually executed; ``requested`` the planner's
    configured mode (they differ when a forced mode fell back).
    """

    mode: str
    requested: str
    reason: str
    column: str | None = None
    low: int | None = None
    high: int | None = None
    index: Index | None = None
    #: Cost-model prediction of rows the chosen path considers (only
    #: set by ``cost`` plans and ``pruned`` short-circuits).
    estimated_rows: float | None = None
    #: Per-column bounds of an AND-composed multi-column plan:
    #: ``((column, low, high), ...)``.  Execution intersects each
    #: column's zone-map candidate ranges and scans the intersection.
    and_bounds: tuple | None = None
    #: The intersected ``(start, stop)`` candidate ranges, when the
    #: planner already computed them to price the plan (``cost`` mode)
    #: — execution reuses them instead of intersecting twice.
    and_ranges: tuple | None = None

    def describe(self) -> str:
        """Human-readable one-line plan description."""
        target = ""
        if self.and_bounds is not None:
            target = " on " + " AND ".join(
                f"{column!r} [{low}, {high})"
                for column, low, high in self.and_bounds
            )
        elif self.column is not None:
            target = f" on {self.column!r} [{self.low}, {self.high})"
        via = f" via {type(self.index).__name__}" if self.index is not None else ""
        est = (
            f" (≈{self.estimated_rows:.0f} rows)"
            if self.estimated_rows is not None
            else ""
        )
        return f"{self.mode}{target}{via}{est} — {self.reason}"


@dataclass(frozen=True)
class PlanExecution:
    """A plan plus the work its execution actually did."""

    plan: QueryPlan
    rows_considered: int
    rows_pruned: int


def _range_bounds(predicate: Predicate) -> tuple[str, int, int] | None:
    """Extract single-column ``(column, low, high)`` bounds, if any."""
    if isinstance(predicate, RangePredicate):
        return predicate.column, predicate.low, predicate.high
    if isinstance(predicate, PointPredicate):
        return predicate.column, predicate.value, predicate.value + 1
    return None


def _and_bounds(predicate: Predicate) -> list[tuple[str, int, int]] | None:
    """Per-column bounds of a conjunction of range/point predicates.

    Same-column conjuncts intersect (``low`` rises, ``high`` drops — a
    resulting empty range proves the whole conjunction empty).  Returns
    ``None`` unless *every* child carries single-column bounds.
    """
    if not isinstance(predicate, AndPredicate):
        return None
    merged: dict[str, list[int]] = {}
    order: list[str] = []
    for child in predicate.children:
        bounds = _range_bounds(child)
        if bounds is None:
            return None
        column, low, high = bounds
        if column in merged:
            merged[column][0] = max(merged[column][0], low)
            merged[column][1] = min(merged[column][1], high)
        else:
            merged[column] = [low, high]
            order.append(column)
    return [(column, *merged[column]) for column in order]


def _intersect_ranges(
    a: list[tuple[int, int]], b: list[tuple[int, int]]
) -> list[tuple[int, int]]:
    """Intersect two sorted, disjoint ``[start, stop)`` range lists."""
    out: list[tuple[int, int]] = []
    i = j = 0
    while i < len(a) and j < len(b):
        start = max(a[i][0], b[j][0])
        stop = min(a[i][1], b[j][1])
        if start < stop:
            out.append((start, stop))
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return out


class QueryPlanner:
    """Chooses and executes access paths over one table.

    Parameters
    ----------
    table:
        The table queries run against.
    mode:
        One of :data:`PLAN_MODES`; ``"auto"`` picks the cheapest
        applicable path per query.
    zone_map:
        Optional :class:`~repro.storage.cohorts.CohortZoneMap` already
        observing ``table``.
    indexes:
        Iterable of :class:`~repro.indexes.Index` instances over
        ``table`` to consider for index plans.
    value_bounds:
        Optional ``{column: (low, high)}`` invariants declared by the
        table's owner: every value in ``column`` is guaranteed to lie
        in ``[low, high)`` (either side may be ``None`` for unbounded).
        A range shard declares its partition bounds here, so probes
        outside them are answered as empty ``pruned`` plans without
        touching data.
    stats:
        Optional :class:`~repro.stats.table_stats.TableHistogramStats`
        already observing ``table``.  When it covers a probed column,
        :meth:`estimate` (and the ``cost`` mode behind it) reads match
        cardinalities from the value histograms instead of per-cohort
        uniformity — estimates sharpen, results stay bit-identical.
    compressed:
        Optional :class:`~repro.storage.compressed.
        CompressedCohortStore` holding demoted (cold) cohorts.  Pruned
        access paths (``zonemap``, the AND-intersection path and the
        index plans' missed side) answer demoted ranges from the
        compressed blocks — evaluating range predicates directly on
        dictionary codes / frame-of-reference offsets where the codec
        allows — and the ``cost`` mode prices a decode term so plans
        route around expensive decompression.  ``scan`` plans ignore
        it by design: the trust-nothing baseline reads raw columns
        only, which is exactly what makes compressed execution
        checkable in the equivalence harness.
    """

    def __init__(
        self,
        table: Table,
        *,
        mode: str = "auto",
        zone_map: CohortZoneMap | None = None,
        indexes=(),
        value_bounds: dict | None = None,
        stats=None,
        compressed: CompressedCohortStore | None = None,
    ):
        self.table = table
        self.mode = check_in(mode, PLAN_MODES, "plan mode")
        if zone_map is not None and zone_map.table is not table:
            raise QueryError("zone map observes a different table")
        self.zone_map = zone_map
        if stats is not None and stats.table is not table:
            raise QueryError("histogram statistics observe a different table")
        self.table_stats = stats
        if compressed is not None and compressed.table is not table:
            raise QueryError("compressed store holds a different table")
        self.compressed = compressed
        #: Structural generation: bumped whenever the set of usable
        #: access paths changes (index registration, new value bounds).
        self._structures_generation = 0
        self._value_bounds: dict[str, tuple[int | None, int | None]] = {}
        for column, bounds in (value_bounds or {}).items():
            self.declare_value_bounds(column, *bounds)
        self._indexes: dict[str, list[Index]] = {}
        for index in indexes:
            self.register_index(index)
        self._executions = 0
        self._mode_counts = {mode_: 0 for mode_ in EXECUTED_MODES}
        self._rows_considered = 0
        self._rows_pruned = 0
        self._last: PlanExecution | None = None

    # -- registration ---------------------------------------------------

    def register_index(self, index: Index) -> Index:
        """Make ``index`` available to index plans; returns it."""
        if index.table is not self.table:
            raise QueryError(
                f"index on {index.column!r} was built over a different table"
            )
        siblings = self._indexes.setdefault(index.column, [])
        if index not in siblings:
            siblings.append(index)
            self._structures_generation += 1
        return index

    def indexes_on(self, column: str) -> tuple[Index, ...]:
        """Registered indexes for ``column`` (possibly dropped ones too)."""
        return tuple(self._indexes.get(column, ()))

    def ordered_index(self, column: str) -> Index | None:
        """A live value-ordered index on ``column``, or ``None``.

        Sort-merge eligibility probe for the cross-table layer: a
        :class:`~repro.indexes.sorted_index.SortedIndex` keeps the
        column's positions in value order by construction, so a leaf
        over this table can hand the join an already-ordered key
        stream — the condition under which the streaming cost model
        prices a merge join below a hash join.
        """
        for index in self._indexes.get(column, ()):
            if isinstance(index, SortedIndex) and not index.is_dropped:
                return index
        return None

    def declare_value_bounds(
        self, column: str, low: int | None, high: int | None
    ) -> None:
        """Declare that every value in ``column`` lies in ``[low, high)``.

        The caller vouches for the invariant (e.g. a partitioned store
        that routes inserts by these very bounds); the planner uses it
        to answer provably-empty probes without touching the table.
        """
        self.table.column(column)  # validates existence
        low = None if low is None else int(low)
        high = None if high is None else int(high)
        if low is not None and high is not None and high <= low:
            raise QueryError(f"value bounds [{low}, {high}) are empty")
        if self._value_bounds.get(column) != (low, high):
            self._structures_generation += 1
        self._value_bounds[column] = (low, high)

    @property
    def value_bounds(self) -> dict[str, tuple[int | None, int | None]]:
        """Declared per-column value invariants (a copy)."""
        return dict(self._value_bounds)

    @property
    def generation(self) -> tuple:
        """Plan-validity token: equal generations guarantee equal plans.

        Combines the planner's structural generation (index
        registrations, value-bound declarations) with the data
        generation of whichever statistics source prices plans in the
        configured mode.  Two :meth:`plan` calls for the same predicate
        under an unchanged generation return equal plans, which is the
        contract the serving layer's plan cache keys on.  ``scan`` mode
        plans are data-independent, so only the structural part varies.
        """
        if self.mode == "scan":
            data: tuple = (0, 0)
        elif self.zone_map is not None:
            data = (
                self.zone_map.generation,
                self.table_stats.generation
                if self.table_stats is not None
                else -1,
            )
        else:
            # No zone map: plans still depend on table shape through
            # cost pricing (forgotten_count, total_rows).
            data = (self.table.total_rows, self.table.forgotten_count)
        if self.compressed is not None and self.mode != "scan":
            # Demotions change the decode term the cost model prices,
            # so cached plans must be invalidated like on an index
            # registration.
            data = (*data, self.compressed.generation)
        return (self._structures_generation, *data)

    # -- planning -------------------------------------------------------

    def _usable_index(
        self, column: str, low: int, high: int
    ) -> tuple[Index, str] | None:
        """Best built index serving ``[low, high)`` on ``column``."""
        hash_fallback = None
        for index in self._indexes.get(column, ()):
            if index.is_dropped:
                continue
            if isinstance(index, HashIndex):
                if high - low <= HASH_RANGE_LIMIT:
                    hash_fallback = index
                continue
            return index, f"{type(index).__name__} covers {column!r}"
        if hash_fallback is not None:
            return (
                hash_fallback,
                f"HashIndex covers the narrow range (width {high - low})",
            )
        return None

    def _prune_by_bounds(
        self, column: str, low: int, high: int
    ) -> QueryPlan | None:
        """A ``pruned`` plan when declared bounds exclude ``[low, high)``."""
        declared = self._value_bounds.get(column)
        if declared is None:
            return None
        vlow, vhigh = declared
        if (vhigh is not None and low >= vhigh) or (
            vlow is not None and high <= vlow
        ):
            shown = f"[{'-inf' if vlow is None else vlow}, " \
                    f"{'+inf' if vhigh is None else vhigh})"
            return QueryPlan(
                "pruned",
                self.mode,
                f"declared value bounds {shown} exclude the range",
                column,
                low,
                high,
                None,
                0.0,
            )
        return None

    def estimate(self, column: str, low: int, high: int):
        """Cardinality estimate for a probe of ``[low, high)``.

        Pruned-scan costs come from the zone map (exact); the match
        counts come from the histogram statistics when they cover the
        column, else from per-cohort uniformity.  ``None`` when no zone
        map covers the column — the caller has no statistics to price
        with.
        """
        if self.zone_map is not None and self.zone_map.covers(column):
            return self.zone_map.estimate(
                column, low, high, stats=self.table_stats
            )
        return None

    def _decode_penalty(
        self, column: str, low: int, high: int, *, require: str = "any"
    ) -> float:
        """Rows-equivalent decompression surcharge for a pruned probe."""
        if (
            self.compressed is None
            or self.zone_map is None
            or not self.zone_map.covers(column)
        ):
            return 0.0
        ranges = self.zone_map.candidate_ranges(
            column, low, high, require=require
        )
        return self.compressed.decode_penalty(ranges, column)

    def _plan_cost(
        self, column: str, low: int, high: int
    ) -> QueryPlan:
        """Price every applicable path in rows-considered; cheapest wins."""
        total = self.table.total_rows
        estimate = self.estimate(column, low, high)
        if estimate is not None:
            missed_cost = estimate.forgotten_candidate_rows
        else:
            # Without a zone map the missed (M_F) side scans every
            # forgotten position.
            missed_cost = self.table.forgotten_count
        # The missed side of an index plan reads forgotten-holding
        # cohorts, which may be demoted: charge their decode term too.
        missed_cost = float(missed_cost) + self._decode_penalty(
            column, low, high, require="forgotten"
        )
        # Candidates in auto's preference order, so exact cost ties
        # resolve the same way auto would.
        choices: list[tuple[float, str, Index | None, str]] = []
        for index in self._indexes.get(column, ()):
            if index.is_dropped:
                continue
            if isinstance(index, HashIndex) and high - low > HASH_RANGE_LIMIT:
                continue
            probe = index.estimate_entries(low, high)
            if probe is None:
                probe = estimate.est_active if estimate is not None else total
            cost = float(probe) + float(missed_cost)
            choices.append(
                (cost, "index", index, f"{type(index).__name__}≈{cost:.0f}")
            )
        if estimate is not None:
            zonemap_cost = float(
                estimate.candidate_rows
            ) + self._decode_penalty(column, low, high)
            zonemap_detail = f"zonemap={estimate.candidate_rows}"
            if zonemap_cost > estimate.candidate_rows:
                zonemap_detail = (
                    f"zonemap={estimate.candidate_rows}+decode"
                    f"{zonemap_cost - estimate.candidate_rows:.0f}"
                )
            choices.append(
                (zonemap_cost, "zonemap", None, zonemap_detail)
            )
        choices.append((float(total), "scan", None, f"scan={total}"))
        cost, mode, index, _ = min(choices, key=lambda choice: choice[0])
        detail = ", ".join(choice[3] for choice in choices)
        return QueryPlan(
            mode,
            "cost",
            f"cost model picked {mode} ({detail} rows)",
            column,
            low,
            high,
            index,
            cost,
        )

    def plan(self, predicate: Predicate) -> QueryPlan:
        """Decide the access path for ``predicate`` (no execution)."""
        requested = self.mode
        if requested == "scan":
            return QueryPlan("scan", requested, "scan mode configured")
        bounds = _range_bounds(predicate)
        if bounds is not None:
            return self._plan_bounds(*bounds)
        merged = _and_bounds(predicate)
        if merged is not None:
            return self._plan_and(merged)
        return QueryPlan(
            "scan",
            requested,
            f"{type(predicate).__name__} has no single-column bounds",
        )

    def _plan_and(self, merged: list[tuple[str, int, int]]) -> QueryPlan:
        """Plan an AND of per-column bounds (post same-column merging)."""
        requested = self.mode
        for column, low, high in merged:
            if high <= low:
                return QueryPlan(
                    "pruned",
                    requested,
                    f"AND bounds on {column!r} intersect to the empty range",
                    column,
                    low,
                    high,
                    None,
                    0.0,
                )
            pruned = self._prune_by_bounds(column, low, high)
            if pruned is not None:
                return pruned
        if len(merged) == 1:
            # The conjunction collapsed to one column: every ordinary
            # single-column path (index probes included) applies.
            return self._plan_bounds(*merged[0])
        if self.zone_map is not None and all(
            self.zone_map.covers(column) for column, _, _ in merged
        ):
            and_bounds = tuple(merged)
            estimated = None
            ranges = None
            reason = "AND-composed: scan the intersected per-column candidates"
            if requested == "cost":
                ranges = tuple(self._and_ranges(and_bounds))
                rows = sum(stop - start for start, stop in ranges)
                estimated = float(rows)
                reason = (
                    f"cost model picked zonemap (intersected={rows}, "
                    f"scan={self.table.total_rows} rows)"
                )
            return QueryPlan(
                "zonemap",
                requested,
                reason,
                None,
                None,
                None,
                None,
                estimated,
                and_bounds,
                ranges,
            )
        return QueryPlan(
            "scan",
            requested,
            "multi-column AND: no zone map covers every column; fell back",
        )

    def _plan_bounds(self, column: str, low: int, high: int) -> QueryPlan:
        """Plan a single-column probe of ``[low, high)``."""
        requested = self.mode
        pruned = self._prune_by_bounds(column, low, high)
        if pruned is not None:
            return pruned
        if requested == "cost":
            return self._plan_cost(column, low, high)
        if requested in ("auto", "index"):
            found = self._usable_index(column, low, high)
            if found is not None:
                index, why = found
                return QueryPlan("index", requested, why, column, low, high, index)
        if self.zone_map is not None and self.zone_map.covers(column):
            reason = (
                "zone map covers the predicate column"
                if requested in ("auto", "zonemap")
                else "no usable index; fell back to zone map"
            )
            return QueryPlan("zonemap", requested, reason, column, low, high)
        reason = (
            "no auxiliary structure covers the predicate column"
            if requested == "auto"
            else f"{requested} mode has no structure for {column!r}; fell back"
        )
        return QueryPlan("scan", requested, reason, column, low, high)

    def explain(self, query_or_predicate) -> QueryPlan:
        """EXPLAIN one query (or bare predicate) without running it."""
        if isinstance(query_or_predicate, RangeQuery):
            predicate = query_or_predicate.predicate
        elif isinstance(query_or_predicate, AggregateQuery):
            predicate = query_or_predicate.effective_predicate()
        elif isinstance(query_or_predicate, Predicate):
            predicate = query_or_predicate
        else:
            raise QueryError(
                f"cannot explain {type(query_or_predicate).__name__}"
            )
        return self.plan(predicate)

    # -- execution ------------------------------------------------------

    def match(
        self,
        predicate: Predicate,
        columns: tuple[str, ...],
        plan: QueryPlan | None = None,
    ) -> tuple[np.ndarray, np.ndarray, PlanExecution]:
        """Split matches of ``predicate`` into (active, missed) positions.

        Every path returns ascending int64 position arrays identical to
        what a full scan produces, so callers' precision and access
        accounting are plan-independent.  A caller holding a still-valid
        plan for ``predicate`` (same :attr:`generation` — the serving
        layer's plan cache) may pass it to skip re-planning.
        """
        if plan is None:
            plan = self.plan(predicate)
        if plan.mode == "pruned":
            empty = np.empty(0, dtype=np.int64)
            active, missed, considered = empty, empty.copy(), 0
        elif plan.mode == "zonemap" and plan.and_bounds is not None:
            active, missed, considered = self._match_and(
                plan, predicate, columns
            )
        elif plan.mode == "zonemap":
            active, missed, considered = self._match_zonemap(plan)
        elif plan.mode == "index":
            active, missed, considered = self._match_index(plan)
        else:
            active, missed, considered = self._match_scan(predicate, columns)
        execution = PlanExecution(
            plan=plan,
            rows_considered=considered,
            rows_pruned=max(self.table.total_rows - considered, 0),
        )
        self._record(execution)
        return active, missed, execution

    def _match_scan(
        self, predicate: Predicate, columns: tuple[str, ...]
    ) -> tuple[np.ndarray, np.ndarray, int]:
        values = {name: self.table.values(name) for name in columns}
        mask = predicate.mask(values)
        active_mask = self.table.active_mask()
        active = np.flatnonzero(mask & active_mask)
        missed = np.flatnonzero(mask & ~active_mask)
        return active, missed, self.table.total_rows

    def _window_range_mask(
        self,
        column: str,
        start: int,
        stop: int,
        low: int,
        high: int,
        values: np.ndarray,
    ) -> np.ndarray:
        """Mask of ``low <= value < high`` over positions ``[start, stop)``.

        Answered from the compressed store when the range is a demoted
        cohort — the predicate runs directly on dictionary codes /
        frame-of-reference offsets, bit-identical to the raw window by
        the codecs' lossless contract — else from the raw column.
        """
        if self.compressed is not None:
            found = self.compressed.block_at(start, stop, column)
            if found is not None:
                return self.compressed.range_mask(found[0], column, low, high)
        window = values[start:stop]
        return (window >= low) & (window < high)

    def _match_zonemap(
        self, plan: QueryPlan
    ) -> tuple[np.ndarray, np.ndarray, int]:
        values = self.table.values(plan.column)
        active_mask = self.table.active_mask()
        active_chunks: list[np.ndarray] = []
        missed_chunks: list[np.ndarray] = []
        considered = 0
        ranges = self.zone_map.candidate_ranges(plan.column, plan.low, plan.high)
        for start, stop in ranges:
            considered += stop - start
            mask = self._window_range_mask(
                plan.column, start, stop, plan.low, plan.high, values
            )
            if not mask.any():
                continue
            active_window = active_mask[start:stop]
            hits = np.flatnonzero(mask & active_window)
            if hits.size:
                active_chunks.append(hits + start)
            hits = np.flatnonzero(mask & ~active_window)
            if hits.size:
                missed_chunks.append(hits + start)
        return (
            _concat(active_chunks),
            _concat(missed_chunks),
            considered,
        )

    def _and_ranges(self, and_bounds: tuple) -> list[tuple[int, int]]:
        """Intersected zone-map candidate ranges of an AND plan.

        Each column's candidate list is a superset of the rows matching
        that column's bounds, so the intersection is a superset of the
        conjunction's matches — pruning is safe, results stay exact.
        """
        ranges: list[tuple[int, int]] | None = None
        for column, low, high in and_bounds:
            candidates = self.zone_map.candidate_ranges(column, low, high)
            ranges = (
                candidates
                if ranges is None
                else _intersect_ranges(ranges, candidates)
            )
            if not ranges:
                break
        return ranges or []

    def _match_and(
        self, plan: QueryPlan, predicate: Predicate, columns: tuple[str, ...]
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Evaluate the full predicate over the intersected candidates."""
        values = {name: self.table.values(name) for name in columns}
        active_mask = self.table.active_mask()
        active_chunks: list[np.ndarray] = []
        missed_chunks: list[np.ndarray] = []
        considered = 0
        ranges = (
            plan.and_ranges
            if plan.and_ranges is not None
            else self._and_ranges(plan.and_bounds)
        )
        for start, stop in ranges:
            considered += stop - start
            if self.compressed is not None:
                # plan.and_bounds carries the same-column-merged bounds
                # of every conjunct, so ANDing the per-column range
                # masks is exactly predicate.mask — and each column's
                # mask can come off its compressed block.
                mask = None
                for column, low, high in plan.and_bounds:
                    column_mask = self._window_range_mask(
                        column, start, stop, low, high, values[column]
                    )
                    mask = (
                        column_mask if mask is None else mask & column_mask
                    )
            else:
                window = {name: arr[start:stop] for name, arr in values.items()}
                mask = predicate.mask(window)
            if not mask.any():
                continue
            active_window = active_mask[start:stop]
            hits = np.flatnonzero(mask & active_window)
            if hits.size:
                active_chunks.append(hits + start)
            hits = np.flatnonzero(mask & ~active_window)
            if hits.size:
                missed_chunks.append(hits + start)
        return _concat(active_chunks), _concat(missed_chunks), considered

    def _match_index(
        self, plan: QueryPlan
    ) -> tuple[np.ndarray, np.ndarray, int]:
        probe = plan.index.lookup_range(plan.low, plan.high)
        active = np.sort(probe.positions.astype(np.int64, copy=False))
        missed, extra = self._missed_matches(plan.column, plan.low, plan.high)
        return active, missed, probe.entries_touched + extra

    def _missed_matches(
        self, column: str, low: int, high: int
    ) -> tuple[np.ndarray, int]:
        """Forgotten rows matching ``[low, high)`` — the exact M_F side."""
        values = self.table.values(column)
        if self.zone_map is not None and self.zone_map.covers(column):
            active_mask = self.table.active_mask()
            chunks: list[np.ndarray] = []
            considered = 0
            ranges = self.zone_map.candidate_ranges(
                column, low, high, require="forgotten"
            )
            for start, stop in ranges:
                considered += stop - start
                mask = self._window_range_mask(
                    column, start, stop, low, high, values
                ) & ~active_mask[start:stop]
                hits = np.flatnonzero(mask)
                if hits.size:
                    chunks.append(hits + start)
            return _concat(chunks), considered
        forgotten = self.table.forgotten_positions()
        if forgotten.size == 0:
            return np.empty(0, dtype=np.int64), 0
        window = values[forgotten]
        mask = (window >= low) & (window < high)
        return forgotten[mask], int(forgotten.size)

    # -- accounting -----------------------------------------------------

    def _record(self, execution: PlanExecution) -> None:
        self._executions += 1
        self._mode_counts[execution.plan.mode] += 1
        self._rows_considered += execution.rows_considered
        self._rows_pruned += execution.rows_pruned
        self._last = execution

    @property
    def last_execution(self) -> PlanExecution | None:
        """The most recently executed plan, if any."""
        return self._last

    def stats(self) -> dict:
        """Counters for dashboards and tests."""
        total = self._rows_considered + self._rows_pruned
        return {
            "mode": self.mode,
            "queries_planned": self._executions,
            "paths": dict(self._mode_counts),
            "rows_considered": self._rows_considered,
            "rows_pruned": self._rows_pruned,
            "pruned_fraction": (self._rows_pruned / total) if total else 0.0,
            "indexes": {
                column: [type(i).__name__ for i in indexes]
                for column, indexes in self._indexes.items()
            },
            "zone_map_cohorts": (
                self.zone_map.cohort_count if self.zone_map is not None else 0
            ),
            "compressed": (
                None if self.compressed is None else self.compressed.stats()
            ),
            "histogram_stats": (
                None
                if self.table_stats is None
                else {
                    "columns": list(self.table_stats.columns),
                    "bins": self.table_stats.bins,
                }
            ),
            "value_bounds": dict(self._value_bounds),
        }

    def plan_report(self) -> str:
        """EXPLAIN-style multi-line report of planning activity."""
        stats = self.stats()
        lines = [
            f"QueryPlanner(mode={self.mode!r}) — "
            f"{stats['queries_planned']} queries planned"
        ]
        structures = []
        if self.zone_map is not None:
            structures.append(
                f"zone map over {len(self.zone_map.columns)} column(s), "
                f"{stats['zone_map_cohorts']} cohorts"
            )
        if self.table_stats is not None:
            structures.append(
                f"histograms over {len(self.table_stats.columns)} column(s), "
                f"{self.table_stats.bins} bins"
            )
        if self.compressed is not None:
            report = self.compressed.byte_report()
            structures.append(
                f"compressed store: {report['demoted_cohorts']} demoted "
                f"cohorts, {report['compressed_nbytes']:,} B "
                f"({report['ratio']:.2f}x of raw)"
            )
        for column, kinds in stats["indexes"].items():
            structures.append(f"{'+'.join(kinds)} on {column!r}")
        for column, (vlow, vhigh) in stats["value_bounds"].items():
            structures.append(
                f"value bounds on {column!r}: "
                f"[{'-inf' if vlow is None else vlow}, "
                f"{'+inf' if vhigh is None else vhigh})"
            )
        lines.append(
            "  structures: " + ("; ".join(structures) if structures else "none")
        )
        paths = stats["paths"]
        lines.append(
            "  access paths: "
            + ", ".join(
                f"{mode}={paths[mode]}"
                for mode in ("index", "zonemap", "scan", "pruned")
            )
        )
        lines.append(
            f"  rows considered {stats['rows_considered']:,} / "
            f"pruned {stats['rows_pruned']:,} "
            f"({stats['pruned_fraction']:.1%} pruned)"
        )
        if self._last is not None:
            lines.append(f"  last plan: {self._last.plan.describe()}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"QueryPlanner(mode={self.mode!r}, "
            f"indexes={sorted(self._indexes)}, "
            f"zone_map={'yes' if self.zone_map is not None else 'no'})"
        )


def _concat(chunks: list[np.ndarray]) -> np.ndarray:
    return np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
