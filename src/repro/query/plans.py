"""Cross-table query plans: composable nodes over the catalog.

Single-table planning stops at the table boundary, but the amnesia
model gets interesting the moment two forgetting streams meet: a join
between per-sensor tables must account for rows that *either* side has
forgotten.  This module adds a small algebra of plan nodes that
compose the existing per-table planners into multi-table queries:

:class:`TableScanNode`
    Leaf over one catalog table.  Matching runs through the table's
    own :class:`~repro.query.planner.QueryPlanner` (so every
    single-table access path — scan/zonemap/index/cost/pruned — keeps
    working underneath), and the output carries one row per *oracle*
    match with a ``forgotten`` flag, in insertion-position order.

:class:`ShardedScanNode`
    Leaf over a registered
    :class:`~repro.partitioning.PartitionedAmnesiaDatabase`: each
    shard matches through its own planner and the per-shard outputs
    are concatenated in shard order, so a sharded stream can feed a
    union or join exactly like a plain table.

:class:`UnionNode`
    Concatenates child streams (SQL ``UNION ALL`` over identically
    shaped inputs), preserving each input's exact RF/MF/precision
    accounting in the result's ``inputs``.

:class:`JoinNode`
    Equi-join on ``value`` or ``epoch``.  The hash build side is the
    smaller input (priced in rows, like the single-table cost model);
    output order is canonical — lexicographic by (left row, right row)
    — so results are bit-identical whichever side builds.  A join
    output row is *forgotten* iff any contributing input row was: the
    amnesiac DBMS would only have produced the pairs where both sides
    are still active.

Execution is driven by :func:`execute_plan` (the engine behind
:meth:`repro.storage.Catalog.query`): all leaf scans across the tree
run through a :class:`~repro._util.parallel.FanOutPool`, grouped by
source so two scans of one table never race its access accounting, and
merged in tree order — results are bit-identical at any worker count.
Every node renders into an EXPLAIN-style tree with per-node cost
estimates via :func:`explain_plan` (estimates only) or
:func:`render_executed` (estimates plus the actual RF/MF/precision).

Plans can also be written as compact specs for the CLI and the config
layer (``--query``), parsed by :func:`parse_query_spec`::

    union:s1,s2                      -- UNION ALL of two full scans
    union:s1,s2:low=0,high=100       -- bounded scans
    join:s1,s2:on=value              -- equi-join on the value column
    join:s1,s2:on=epoch,low=0,high=500
    join:s1,s2:on=value,block=512    -- blocked probe (bounded memory)

>>> import numpy as np
>>> from repro.storage import Catalog
>>> cat = Catalog(plan="auto")
>>> for name in ("s1", "s2"):
...     t = cat.create_table(name, ["a"])
...     _ = t.insert_batch(0, {"a": [1, 2, 3]})
>>> cat.get("s1").forget(np.array([0]), epoch=1)
1
>>> u = cat.query("union:s1,s2", epoch=1)
>>> (u.rf, u.mf)                     # row 0 of s1 was forgotten
(5, 1)
>>> j = cat.query(JoinNode(TableScanNode("s1"), TableScanNode("s2"),
...                        on="value"), epoch=1)
>>> (j.rf, j.mf, round(j.precision, 3))
(2, 1, 0.667)
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from .._util.errors import QueryError, ReproError
from .predicates import RangePredicate, TruePredicate

__all__ = [
    "JOIN_KEYS",
    "NodeResult",
    "PlanNode",
    "TableScanNode",
    "ShardedScanNode",
    "UnionNode",
    "JoinNode",
    "QuerySpec",
    "check_scan_bounds",
    "merge_match_sides",
    "parse_query_spec",
    "build_plan",
    "execute_plan",
    "explain_plan",
    "render_executed",
    "render_summary",
    "summarize_result",
]

#: Join keys a :class:`JoinNode` accepts at the leaf level — every scan
#: node emits exactly these two columns.
JOIN_KEYS = ("value", "epoch")

#: Columns every leaf scan emits: the scanned value column (normalised
#: to the role name ``value``) and the row's insertion epoch.
SCAN_COLUMNS = ("value", "epoch")


def _empty_rows(width: int) -> np.ndarray:
    return np.empty((0, width), dtype=np.int64)


@dataclass(frozen=True)
class NodeResult:
    """Output stream of one plan node, with amnesia accounting.

    ``rows`` is a ``(n, len(columns))`` int64 matrix — one row per
    *oracle* output tuple; ``forgotten`` flags the rows the amnesiac
    DBMS would not have produced (for a join: any contributing input
    row was forgotten).  ``inputs`` holds the child results, so
    per-input RF/MF/precision accounting survives unions and joins
    exactly.
    """

    columns: tuple[str, ...]
    rows: np.ndarray = field(repr=False)
    forgotten: np.ndarray = field(repr=False)
    inputs: tuple["NodeResult", ...] = ()

    @property
    def oracle_count(self) -> int:
        """Rows the complete (never-forgetting) database would return."""
        return int(self.rows.shape[0])

    @property
    def rf(self) -> int:
        """R_F: rows the amnesiac database actually returns."""
        return int(self.oracle_count - self.mf)

    @property
    def mf(self) -> int:
        """M_F: rows lost because some contributing tuple was forgotten."""
        return int(np.count_nonzero(self.forgotten))

    @property
    def precision(self) -> float:
        """P_F = RF / (RF + MF); 1.0 when the oracle result is empty."""
        return 1.0 if self.oracle_count == 0 else self.rf / self.oracle_count

    def active_rows(self) -> np.ndarray:
        """The amnesiac-visible rows (what the DBMS would answer)."""
        return self.rows[~self.forgotten]

    def column(self, name: str) -> np.ndarray:
        """One output column by name (oracle view, row order)."""
        try:
            return self.rows[:, self.columns.index(name)]
        except ValueError:
            raise QueryError(
                f"result has no column {name!r}; columns are {self.columns}"
            ) from None

    def __repr__(self) -> str:
        return (
            f"NodeResult(columns={self.columns}, rf={self.rf}, "
            f"mf={self.mf}, precision={self.precision:.3f})"
        )


class _KeyDistribution:
    """Join-key mass model: a leaf's oracle value histogram, clipped.

    Wraps a scan's (active, forgotten) histograms and restricts their
    mass to the scan's bounds, exposing just what the join estimator
    needs: bin edges and the oracle mass of a value interval.
    """

    def __init__(self, active, forgotten, low, high):
        self._active = active
        self._forgotten = forgotten
        self._low = low
        self._high = high

    def edges(self) -> np.ndarray:
        return self._active.bin_edges()

    def mass(self, low: float, high: float) -> float:
        if self._low is not None:
            low = max(low, self._low)
            high = min(high, self._high)
        if high <= low:
            return 0.0
        return self._active.mass(low, high) + self._forgotten.mass(low, high)


def _estimate_equijoin(left: "_KeyDistribution", right: "_KeyDistribution") -> float:
    """Expected equi-join pairs under uniform-within-bin key mass.

    Walks the left distribution's bins: an interval holding ``l`` left
    keys and ``r`` right keys over ``w`` distinct values yields about
    ``l * r / w`` matching pairs — the per-bin refinement of the
    classic ``|L|·|R| / ndv`` estimate, which is what lets skewed key
    histograms price a Zipf join correctly where the FK-ish
    max-of-inputs heuristic collapses.
    """
    edges = left.edges()
    total = 0.0
    for e0, e1 in zip(edges[:-1].tolist(), edges[1:].tolist()):
        l_mass = left.mass(e0, e1)
        if l_mass <= 0.0:
            continue
        r_mass = right.mass(e0, e1)
        if r_mass <= 0.0:
            continue
        total += l_mass * r_mass / max(e1 - e0, 1.0)
    return total


class PlanNode(ABC):
    """One node of a cross-table plan tree."""

    children: tuple["PlanNode", ...] = ()

    def key_histogram(self, catalog, key: str):
        """Key-mass model for join estimation (leaves may override)."""
        return None

    @abstractmethod
    def output_columns(self) -> tuple[str, ...]:
        """Column names of this node's output stream."""

    @abstractmethod
    def estimate_rows(self, catalog) -> float:
        """Estimated oracle-output cardinality (for explain trees)."""

    @abstractmethod
    def estimate_cost(self, catalog) -> float:
        """Estimated rows considered to produce the output."""

    @abstractmethod
    def describe(self, catalog=None) -> str:
        """One-line node description (cost estimates when bound)."""

    def validate(self, catalog) -> None:
        """Structural checks before execution (duplicate node reuse)."""
        seen: set[int] = set()

        def walk(node: "PlanNode") -> None:
            if id(node) in seen:
                raise QueryError(
                    f"plan node {node.describe()} appears twice in the tree; "
                    "build a fresh node per use"
                )
            seen.add(id(node))
            for child in node.children:
                walk(child)

        walk(self)

    def __repr__(self) -> str:
        return self.describe()


def _bounds_suffix(low: int | None, high: int | None) -> str:
    if low is None:
        return ""
    return f" ∈ [{low}, {high})"


def check_scan_bounds(
    low, high
) -> tuple[int | None, int | None]:
    """Validate optional scan bounds: both-or-neither, not reversed.

    Shared by the leaf nodes here and
    :meth:`repro.partitioning.PartitionedAmnesiaDatabase.scan_rows`,
    so every cross-table scan surface enforces one contract.
    """
    if (low is None) != (high is None):
        raise QueryError("supply both low and high, or neither")
    if low is not None and high < low:
        raise QueryError(f"range [{low}, {high}) is reversed")
    return (None if low is None else int(low), None if high is None else int(high))


def merge_match_sides(
    active: np.ndarray, missed: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Merge (active, missed) position sets into position order.

    Returns the merged ascending positions and the forgotten flags
    aligned with them — the row order a naive full scan produces.  One
    implementation serves both the plain-table leaf and the sharded
    store's per-shard streams, so the two can never drift.
    """
    positions = np.concatenate([active, missed])
    flags = np.zeros(positions.size, dtype=bool)
    flags[active.size:] = True
    order = np.argsort(positions, kind="stable")
    return positions[order], flags[order]


class _ScanNode(PlanNode):
    """Shared plumbing of the two leaf scans (plain and sharded)."""

    def __init__(self, source: str, low: int | None = None, high: int | None = None):
        self.source = source
        self.low, self.high = check_scan_bounds(low, high)
        self.children = ()

    def output_columns(self) -> tuple[str, ...]:
        return SCAN_COLUMNS

    def _predicate(self, column: str):
        if self.low is None:
            return TruePredicate()
        return RangePredicate(column, self.low, self.high)

    @abstractmethod
    def scan(self, catalog, epoch: int, record_access: bool) -> NodeResult:
        """Execute the leaf against the catalog."""


class TableScanNode(_ScanNode):
    """Leaf: planner-routed scan of one catalog table.

    Parameters
    ----------
    source:
        Catalog table name.
    low, high:
        Optional ``[low, high)`` bounds on the table's value column;
        omitted means the full stream.  The table's planner picks the
        access path exactly as for a single-table query.

    The output has columns ``("value", "epoch")`` — the scanned column
    (the table's first column by default) normalised to the ``value``
    role, plus the insertion epoch — so streams from differently named
    sensor columns still union and join.
    """

    def __init__(
        self,
        source: str,
        low: int | None = None,
        high: int | None = None,
        column: str | None = None,
    ):
        super().__init__(source, low, high)
        self.column = column

    def _column(self, catalog) -> str:
        if self.column is not None:
            return self.column
        return catalog.get(self.source).column_names[0]

    def scan(self, catalog, epoch: int, record_access: bool) -> NodeResult:
        table = catalog.get(self.source)
        column = self._column(catalog)
        if table.total_rows == 0:
            return NodeResult(SCAN_COLUMNS, _empty_rows(2), np.empty(0, dtype=bool))
        planner = catalog.planner(self.source)
        active, missed, _ = planner.match(self._predicate(column), (column,))
        if record_access:
            table.record_access(active, epoch)
        positions, flags = merge_match_sides(active, missed)
        rows = np.column_stack(
            [table.values(column)[positions], table.insert_epochs()[positions]]
        ).astype(np.int64, copy=False)
        return NodeResult(SCAN_COLUMNS, rows, flags)

    def estimate_rows(self, catalog) -> float:
        planner = catalog.planner(self.source)
        column = self._column(catalog)
        if self.low is not None:
            estimate = planner.estimate(column, self.low, self.high)
            if estimate is not None:
                # Histogram-sharpened when the planner carries table
                # statistics; per-cohort uniformity otherwise.
                return estimate.est_rows
        return float(catalog.get(self.source).total_rows)

    def key_histogram(self, catalog, key: str):
        """Oracle-mass histogram of the ``value`` column, if tracked.

        Feeds the join's output-cardinality estimate; ``None`` when the
        scan has no histogram statistics (or the key is ``epoch``,
        which the statistics layer does not bin).
        """
        if key != "value":
            return None
        planner = catalog.planner(self.source)
        stats = planner.table_stats
        column = self._column(catalog)
        if stats is None or not stats.covers(column):
            return None
        active, forgotten = stats.histograms(column)
        if active is None:
            return None
        return _KeyDistribution(active, forgotten, self.low, self.high)

    def estimate_cost(self, catalog) -> float:
        planner = catalog.planner(self.source)
        column = self._column(catalog)
        plan = planner.plan(self._predicate(column))
        if plan.estimated_rows is not None:
            return plan.estimated_rows
        if plan.mode == "zonemap":
            return float(
                planner.zone_map.estimate(column, self.low, self.high).candidate_rows
            )
        return float(catalog.get(self.source).total_rows)

    def describe(self, catalog=None) -> str:
        est = ""
        if catalog is not None:
            plan = catalog.planner(self.source).plan(
                self._predicate(self._column(catalog))
            )
            est = (
                f" — plan={plan.mode}, ≈{self.estimate_rows(catalog):.0f} rows, "
                f"cost≈{self.estimate_cost(catalog):.0f}"
            )
        return (
            f"TableScan({self.source!r}{_bounds_suffix(self.low, self.high)}){est}"
        )


class ShardedScanNode(_ScanNode):
    """Leaf: planner-routed scan of a registered sharded store.

    ``source`` names a :class:`~repro.partitioning.
    PartitionedAmnesiaDatabase` attached via
    :meth:`repro.storage.Catalog.register_sharded`.  Each shard matches
    through its own planner (pruned shards answer from their declared
    bounds) and the outputs concatenate in shard order, so the stream
    is bit-identical at any worker count.

    Under concurrent ingest the scan is epoch-snapshot consistent: it
    enters the store's read gate, which admits readers only between
    batch applications, so the stream reflects a published ingest epoch
    — every flushed batch in full or not at all, never a torn middle.
    """

    def scan(self, catalog, epoch: int, record_access: bool) -> NodeResult:
        store = catalog.sharded(self.source)
        values, epochs, flags = store.scan_rows(
            self.low, self.high, record_access=record_access, epoch=epoch
        )
        rows = np.column_stack([values, epochs]).astype(np.int64, copy=False)
        if rows.size == 0:
            rows = _empty_rows(2)
        return NodeResult(SCAN_COLUMNS, rows, flags)

    def estimate_rows(self, catalog) -> float:
        return catalog.sharded(self.source).estimate_scan(self.low, self.high)

    def estimate_cost(self, catalog) -> float:
        return catalog.sharded(self.source).estimate_scan(
            self.low, self.high, cost=True
        )

    def describe(self, catalog=None) -> str:
        est = ""
        if catalog is not None:
            store = catalog.sharded(self.source)
            est = (
                f" — {store.partition_count} shard(s), "
                f"≈{self.estimate_rows(catalog):.0f} rows, "
                f"cost≈{self.estimate_cost(catalog):.0f}"
            )
        return (
            f"ShardedScan({self.source!r}"
            f"{_bounds_suffix(self.low, self.high)}){est}"
        )


class UnionNode(PlanNode):
    """UNION ALL: concatenate child streams in child order.

    Children must produce identically named columns (leaf scans all
    emit ``("value", "epoch")``, so per-sensor streams union
    naturally).  The result's ``inputs`` carry each child's own
    RF/MF/precision accounting, untouched by the concatenation.
    """

    def __init__(self, *children: PlanNode):
        if len(children) < 2:
            raise QueryError("union needs at least two inputs")
        columns = children[0].output_columns()
        for child in children[1:]:
            if child.output_columns() != columns:
                raise QueryError(
                    f"union inputs disagree on columns: {columns} vs "
                    f"{child.output_columns()}"
                )
        self.children = tuple(children)

    def output_columns(self) -> tuple[str, ...]:
        return self.children[0].output_columns()

    def combine(self, inputs: tuple[NodeResult, ...]) -> NodeResult:
        rows = np.concatenate([r.rows for r in inputs])
        forgotten = np.concatenate([r.forgotten for r in inputs])
        return NodeResult(self.output_columns(), rows, forgotten, inputs)

    def estimate_rows(self, catalog) -> float:
        return sum(child.estimate_rows(catalog) for child in self.children)

    def estimate_cost(self, catalog) -> float:
        return sum(child.estimate_cost(catalog) for child in self.children)

    def describe(self, catalog=None) -> str:
        est = ""
        if catalog is not None:
            est = (
                f" — ≈{self.estimate_rows(catalog):.0f} rows, "
                f"cost≈{self.estimate_cost(catalog):.0f}"
            )
        return f"Union({len(self.children)} inputs){est}"


class JoinNode(PlanNode):
    """Hash equi-join of two child streams on ``value`` or ``epoch``.

    The build side is the child with the smaller row count, in the
    same rows-considered currency the single-table cost model prices
    in: at execution the *actual* input sizes are known and decide;
    explain trees show the estimate-based prediction (``build≈...``),
    which can differ when the estimates misrank the sides.  Output
    rows concatenate the
    left and right columns (prefixed ``l.`` / ``r.``) and are emitted
    in canonical nested-loop order — ascending (left row, right row) —
    so the result is bit-identical whichever side builds and at any
    worker count.  An output row is forgotten iff either contributing
    input row was; RF counts only both-sides-active pairs, exactly
    what the amnesiac DBMS would return.

    ``block_size`` enables the *blocked probe* mode: the probe side
    streams in fixed-size blocks against the one sorted build side, so
    the pair-discovery working set is bounded by ``block_size × build
    rows`` instead of the full cross-match — the difference between a
    bounded and an unbounded spike on heavily skewed keys.  Purely an
    execution knob: the pair stream (and everything downstream) stays
    bit-identical.
    """

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        on: str = "value",
        *,
        left_on: str | None = None,
        right_on: str | None = None,
        block_size: int | None = None,
    ):
        self.left_on = on if left_on is None else left_on
        self.right_on = on if right_on is None else right_on
        for side, key in ((left, self.left_on), (right, self.right_on)):
            if key not in side.output_columns():
                raise QueryError(
                    f"join key {key!r} not in input columns "
                    f"{side.output_columns()}; choose one of "
                    f"{JOIN_KEYS} at the leaf level"
                )
        if block_size is not None and int(block_size) < 1:
            raise QueryError(f"join block size must be >= 1, got {block_size}")
        self.block_size = None if block_size is None else int(block_size)
        self.children = (left, right)
        self.on = on
        self._peak_pairs = 0

    @property
    def peak_pairs(self) -> int:
        """Largest pair batch the last execution materialized at once.

        Full (unblocked) mode discovers the entire pair set in one
        batch, so this equals the oracle output size; blocked mode is
        bounded by ``block_size × build rows`` however skewed the keys.
        Introspection only, written once per execution: concurrent
        ``Catalog.query`` callers sharing one node object see the most
        recently finished execution's value (results are unaffected).
        """
        return self._peak_pairs

    def output_columns(self) -> tuple[str, ...]:
        left, right = self.children
        return tuple(
            [f"l.{name}" for name in left.output_columns()]
            + [f"r.{name}" for name in right.output_columns()]
        )

    def _match_pairs(
        self, probe_keys: np.ndarray, build_keys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """(probe_idx, build_idx, peak batch size), probe-major ascending.

        With ``block_size`` set, the probe side streams in fixed-size
        blocks against the one sorted build side: each block's pairs
        materialize independently (at most ``block_size × build rows``
        at once, however skewed the keys) and concatenate in block
        order — which *is* probe-major order, so the pair stream is
        bit-identical to the single-batch discovery.
        """
        order = np.argsort(build_keys, kind="stable")
        sorted_keys = build_keys[order]
        step = probe_keys.size if self.block_size is None else self.block_size
        probe_chunks: list[np.ndarray] = []
        build_chunks: list[np.ndarray] = []
        peak = 0
        for start in range(0, probe_keys.size, max(step, 1)):
            block = probe_keys[start : start + step]
            lo = np.searchsorted(sorted_keys, block, side="left")
            hi = np.searchsorted(sorted_keys, block, side="right")
            counts = hi - lo
            probe_idx = np.repeat(np.arange(block.size, dtype=np.int64), counts)
            if probe_idx.size == 0:
                continue
            within = np.arange(probe_idx.size, dtype=np.int64) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            build_chunks.append(order[np.repeat(lo, counts) + within])
            probe_chunks.append(probe_idx + start)
            peak = max(peak, int(probe_idx.size))
        if not probe_chunks:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), peak
        return np.concatenate(probe_chunks), np.concatenate(build_chunks), peak

    def combine(self, inputs: tuple[NodeResult, ...]) -> NodeResult:
        left, right = inputs
        lkeys = left.column(self.left_on)
        rkeys = right.column(self.right_on)
        # Build on the smaller side; the pair set is symmetric, so the
        # canonical (left, right) sort below erases the choice from
        # the result — it is purely a cost decision.
        if self._build_side(left, right) == "right":
            li, ri, peak = self._match_pairs(lkeys, rkeys)
        else:
            ri, li, peak = self._match_pairs(rkeys, lkeys)
        self._peak_pairs = peak  # single write; see peak_pairs
        order = np.lexsort((ri, li))
        li, ri = li[order], ri[order]
        rows = (
            np.hstack([left.rows[li], right.rows[ri]])
            if li.size
            else _empty_rows(len(self.output_columns()))
        )
        forgotten = left.forgotten[li] | right.forgotten[ri]
        return NodeResult(self.output_columns(), rows, forgotten, inputs)

    @staticmethod
    def _build_side(left: NodeResult, right: NodeResult) -> str:
        return "right" if right.oracle_count <= left.oracle_count else "left"

    def estimate_rows(self, catalog) -> float:
        left, right = self.children
        left_keys = left.key_histogram(catalog, self.left_on)
        right_keys = right.key_histogram(catalog, self.right_on)
        if left_keys is not None and right_keys is not None:
            # Histogram cardinalities: expected pairs per key interval,
            # which survives skewed (many-to-many) keys.
            return _estimate_equijoin(left_keys, right_keys)
        # Key-uniqueness (FK-ish) assumption: the smaller side's keys
        # are mostly distinct, so the output is about as large as the
        # bigger input.  Crude, but honest enough for explain trees.
        return max(left.estimate_rows(catalog), right.estimate_rows(catalog))

    def estimate_cost(self, catalog) -> float:
        left, right = self.children
        build_probe = left.estimate_rows(catalog) + right.estimate_rows(catalog)
        return (
            left.estimate_cost(catalog)
            + right.estimate_cost(catalog)
            + build_probe
        )

    def describe(self, catalog=None) -> str:
        est = ""
        if catalog is not None:
            left, right = self.children
            build = (
                "right"
                if right.estimate_rows(catalog) <= left.estimate_rows(catalog)
                else "left"
            )
            est = (
                f", build≈{build} — ≈{self.estimate_rows(catalog):.0f} rows, "
                f"cost≈{self.estimate_cost(catalog):.0f}"
            )
        keys = (
            f"on={self.on!r}"
            if self.left_on == self.right_on == self.on
            else f"on={self.left_on!r}={self.right_on!r}"
        )
        block = "" if self.block_size is None else f", block={self.block_size}"
        return f"Join({keys}{block}{est})"


# -- execution engine ------------------------------------------------------


def execute_plan(
    node: PlanNode,
    catalog,
    epoch: int,
    *,
    pool=None,
    workers: int = 1,
    record_access: bool = True,
) -> NodeResult:
    """Execute a plan tree against ``catalog``; bit-identical at any width.

    All leaf scans run first, fanned out over ``pool`` — grouped by
    source name so two scans of the same table (or sharded store)
    execute sequentially in tree (depth-first, left-to-right) order,
    which keeps access accounting race-free and identical to a
    sequential walk.  Unions and joins then combine the precomputed
    leaf results bottom-up on the calling thread; every combine merges
    in child order, so completion order never leaks into results.
    """
    node.validate(catalog)
    leaves: list[_ScanNode] = []
    slot_of: dict[int, int] = {}

    def collect(n: PlanNode) -> None:
        if isinstance(n, _ScanNode):
            slot_of[id(n)] = len(leaves)
            leaves.append(n)
        for child in n.children:
            collect(child)

    collect(node)
    if not leaves:  # pragma: no cover - unreachable via public nodes
        raise QueryError("plan tree has no scan leaves")
    # Resolve lazily built planner/executor caches before the fan-out:
    # construction mutates shared dicts the worker threads then only read.
    for leaf in leaves:
        if isinstance(leaf, ShardedScanNode):
            catalog.sharded(leaf.source)
        else:
            catalog.planner(leaf.source)
    groups: dict[str, list[int]] = {}
    for i, leaf in enumerate(leaves):
        groups.setdefault(leaf.source, []).append(i)
    slots: list[NodeResult | None] = [None] * len(leaves)

    def run_group(indexes: list[int]) -> None:
        for i in indexes:
            # The source lock serializes against *other* catalog
            # callers (another batch, another cross-table query); the
            # per-source grouping already serializes within this plan.
            with catalog.source_lock(leaves[i].source):
                slots[i] = leaves[i].scan(catalog, epoch, record_access)

    if pool is None:
        run_group(list(range(len(leaves))))
    else:
        pool.map_ordered(run_group, list(groups.values()), workers)

    def assemble(n: PlanNode) -> NodeResult:
        if isinstance(n, _ScanNode):
            return slots[slot_of[id(n)]]
        return n.combine(tuple(assemble(child) for child in n.children))

    return assemble(node)


# -- tree rendering --------------------------------------------------------


def _render_tree(node: PlanNode, line_of) -> list[str]:
    lines = [line_of(node, None)]

    def walk(n: PlanNode, prefix: str) -> None:
        for i, child in enumerate(n.children):
            last = i == len(n.children) - 1
            branch, extend = ("└─ ", "   ") if last else ("├─ ", "│  ")
            lines.append(prefix + branch + line_of(child, n))
            walk(child, prefix + extend)

    walk(node, "")
    return lines


def explain_plan(node: PlanNode, catalog) -> str:
    """EXPLAIN the node tree: one line per node with cost estimates."""
    node.validate(catalog)
    return "\n".join(_render_tree(node, lambda n, _: n.describe(catalog)))


def render_executed(node: PlanNode, result: NodeResult, catalog=None) -> str:
    """Render the executed tree: estimates plus actual RF/MF/precision."""
    return render_summary(node, summarize_result(result), catalog)


def summarize_result(result: NodeResult) -> tuple:
    """Compress a result tree to nested ``(rf, mf, precision, children)``.

    The report-friendly skeleton of a :class:`NodeResult`: callers
    (the catalog's ``plan_report``) can keep it around without pinning
    the materialized row matrices in memory.
    """
    return (
        result.rf,
        result.mf,
        result.precision,
        tuple(summarize_result(child) for child in result.inputs),
    )


def render_summary(node: PlanNode, summary: tuple, catalog=None) -> str:
    """Render a plan tree against a :func:`summarize_result` skeleton.

    Cost estimates come from the catalog's *current* statistics; a
    node whose source has since been dropped renders unbound (no
    estimates) instead of failing the report.
    """
    summaries: dict[int, tuple] = {}

    def pair(n: PlanNode, s: tuple) -> None:
        summaries[id(n)] = s
        for child, child_summary in zip(n.children, s[3]):
            pair(child, child_summary)

    pair(node, summary)

    def line(n: PlanNode, _parent) -> str:
        try:
            described = n.describe(catalog)
        except ReproError:
            described = n.describe(None)
        rf, mf, precision, _ = summaries[id(n)]
        return f"{described} => rf={rf} mf={mf} precision={precision:.3f}"

    return "\n".join(_render_tree(node, line))


# -- compact query specs ---------------------------------------------------


@dataclass(frozen=True)
class QuerySpec:
    """Parsed form of a compact cross-table query spec string."""

    kind: str
    tables: tuple[str, ...]
    on: str = "value"
    low: int | None = None
    high: int | None = None
    block: int | None = None

    def render(self) -> str:
        """The canonical spec string this object parses back from."""
        options = []
        if self.kind == "join":
            options.append(f"on={self.on}")
        if self.low is not None:
            options.append(f"low={self.low}")
            options.append(f"high={self.high}")
        if self.block is not None:
            options.append(f"block={self.block}")
        spec = f"{self.kind}:{','.join(self.tables)}"
        return spec + (f":{','.join(options)}" if options else "")


def parse_query_spec(spec: str) -> QuerySpec:
    """Parse ``union:...`` / ``join:...`` into a :class:`QuerySpec`.

    Grammar (catalog binding happens later, in :func:`build_plan`)::

        spec    := kind ":" table ("," table)+ [":" option ("," option)*]
        kind    := "union" | "join"
        option  := "on=" ("value" | "epoch") | "low=" int | "high=" int
                 | "block=" int

    ``block=`` (join only) streams the probe side in blocks of that
    many rows — see :class:`JoinNode`'s blocked probe mode.

    >>> parse_query_spec("join:s1,s2:on=epoch,low=0,high=50")
    QuerySpec(kind='join', tables=('s1', 's2'), on='epoch', low=0, high=50, block=None)
    >>> parse_query_spec("join:s1,s2:block=512").block
    512
    """
    parts = [part.strip() for part in str(spec).split(":")]
    if len(parts) not in (2, 3):
        raise QueryError(
            f"bad query spec {spec!r}; expected kind:tables[:options]"
        )
    kind = parts[0]
    if kind not in ("union", "join"):
        raise QueryError(f"unknown query kind {kind!r}; use union or join")
    tables = tuple(name.strip() for name in parts[1].split(",") if name.strip())
    if len(tables) < 2:
        raise QueryError(f"{kind} spec needs at least two tables, got {tables}")
    options: dict[str, str] = {}
    if len(parts) == 3 and parts[2]:
        for item in parts[2].split(","):
            if "=" not in item:
                raise QueryError(f"bad option {item!r} in query spec {spec!r}")
            key, _, value = item.partition("=")
            options[key.strip()] = value.strip()
    unknown = set(options) - {"on", "low", "high", "block"}
    if unknown:
        raise QueryError(f"unknown query spec options {sorted(unknown)}")
    on = options.get("on", "value")
    if on not in JOIN_KEYS:
        raise QueryError(f"join key must be one of {JOIN_KEYS}, got {on!r}")
    if "on" in options and kind != "join":
        raise QueryError("on= only applies to join specs")
    block = None
    if "block" in options:
        if kind != "join":
            raise QueryError("block= only applies to join specs")
        try:
            block = int(options["block"])
        except ValueError:
            raise QueryError(
                f"block must be an integer in query spec {spec!r}"
            ) from None
        if block < 1:
            raise QueryError(f"block must be >= 1, got {block}")
    low = high = None
    if ("low" in options) != ("high" in options):
        raise QueryError("query spec needs both low= and high=, or neither")
    if "low" in options:
        try:
            low, high = int(options["low"]), int(options["high"])
        except ValueError:
            raise QueryError(
                f"low/high must be integers in query spec {spec!r}"
            ) from None
        check_scan_bounds(low, high)  # reject reversed ranges up front
    return QuerySpec(
        kind=kind, tables=tables, on=on, low=low, high=high, block=block
    )


def build_plan(catalog, spec: QuerySpec | str) -> PlanNode:
    """Bind a spec to ``catalog``: scans per table, then union or join.

    Names resolve against plain tables first, then registered sharded
    stores.  A ``join`` of more than two inputs builds a left-deep
    chain (each join output keeps the ``value``/``epoch`` columns of
    its leftmost leaf under ``l.``-prefixes, so chained keys resolve
    against the fresh right scan).
    """
    if isinstance(spec, str):
        spec = parse_query_spec(spec)

    def leaf(name: str) -> _ScanNode:
        if name in catalog:
            return TableScanNode(name, spec.low, spec.high)
        if catalog.has_sharded(name):
            return ShardedScanNode(name, spec.low, spec.high)
        raise QueryError(
            f"query spec references unknown source {name!r}; catalog has "
            f"tables {catalog.names()} and sharded {catalog.sharded_names()}"
        )

    if spec.kind == "union":
        return UnionNode(*(leaf(name) for name in spec.tables))
    node: PlanNode = JoinNode(
        leaf(spec.tables[0]),
        leaf(spec.tables[1]),
        on=spec.on,
        block_size=spec.block,
    )
    left_key = spec.on
    for name in spec.tables[2:]:
        # Left-deep chain: the previous join buried the leftmost leaf's
        # key under one more l.-prefix; the fresh right scan keys bare.
        left_key = f"l.{left_key}"
        node = JoinNode(
            node,
            leaf(name),
            on=spec.on,
            left_on=left_key,
            right_on=spec.on,
            block_size=spec.block,
        )
    return node
