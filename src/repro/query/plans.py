"""Cross-table query plans: composable nodes over the catalog.

Single-table planning stops at the table boundary, but the amnesia
model gets interesting the moment two forgetting streams meet: a join
between per-sensor tables must account for rows that *either* side has
forgotten.  This module adds a small algebra of plan nodes that
compose the existing per-table planners into multi-table queries:

:class:`TableScanNode`
    Leaf over one catalog table.  Matching runs through the table's
    own :class:`~repro.query.planner.QueryPlanner` (so every
    single-table access path — scan/zonemap/index/cost/pruned — keeps
    working underneath), and the output carries one row per *oracle*
    match with a ``forgotten`` flag, in insertion-position order.

:class:`ShardedScanNode`
    Leaf over a registered
    :class:`~repro.partitioning.PartitionedAmnesiaDatabase`: each
    shard matches through its own planner and the per-shard outputs
    are concatenated in shard order, so a sharded stream can feed a
    union or join exactly like a plain table.

:class:`UnionNode`
    Concatenates child streams (SQL ``UNION ALL`` over identically
    shaped inputs), preserving each input's exact RF/MF/precision
    accounting in the result's ``inputs``.

:class:`JoinNode`
    Equi-join on ``value`` or ``epoch``.  The hash build side is the
    smaller input (priced in rows, like the single-table cost model);
    output order is canonical — lexicographic by (left row, right row)
    — so results are bit-identical whichever side builds.  A join
    output row is *forgotten* iff any contributing input row was: the
    amnesiac DBMS would only have produced the pairs where both sides
    are still active.

Execution is driven by :func:`execute_plan` (the engine behind
:meth:`repro.storage.Catalog.query`): all leaf scans across the tree
run through a :class:`~repro._util.parallel.FanOutPool`, grouped by
source so two scans of one table never race its access accounting, and
merged in tree order — results are bit-identical at any worker count.
Every node renders into an EXPLAIN-style tree with per-node cost
estimates via :func:`explain_plan` (estimates only) or
:func:`render_executed` (estimates plus the actual RF/MF/precision).

Above the materializing path sits the **streaming vectorized layer**:
every node exposes :meth:`PlanNode.batches`, an iterator of fixed-size
``(rows, forgotten)`` numpy batches in the same canonical order the
materializing path produces (see the method's docstring for the full
batch contract — ordering, forgotten-flag propagation and epoch
snapshot semantics), and :class:`AggregateNode` consumes those batches
into :class:`~repro.stats.moments.ExactMoments` so an aggregate over a
join or union never materializes the joined row set: the peak working
set is bounded by ``batch_size × build rows`` instead of the full
output.  Aggregation is pushed below unions (per-input partials merged
with Chan's rule), and the cost model prices a **sort-merge join**
against the hash join — using the per-bin
:class:`~repro.stats.TableHistogramStats` cardinalities — choosing
merge when both inputs arrive ordered (sharded scans band by value;
sorted-index-backed leaves are ordered by construction).

**Cache-invalidation contract** (the serving layer,
:mod:`repro.serving`, caches above this module): a plan may be reused
only while its planner's ``generation`` stands still — any insert,
forget, index registration or value-bound declaration bumps it, and a
plan carrying a since-dropped index is evicted at lookup.  A cached
*result* may be served only while no forget event touched the cohorts
of its match set and no insert slipped past its predicate's guard
bounds (:func:`repro.serving.result_cache.guard_bounds`); entries for
a dropped or recreated source are purged through the catalog's
lifecycle hooks.  Under that contract every cache hit is bit-identical
to a fresh execution — the same invariant the equivalence harness
enforces for every execution path in this module.

Plans can also be written as compact specs for the CLI and the config
layer (``--query``), parsed by :func:`parse_query_spec`::

    union:s1,s2                      -- UNION ALL of two full scans
    union:s1,s2:low=0,high=100       -- bounded scans
    join:s1,s2:on=value              -- equi-join on the value column
    join:s1,s2:on=epoch,low=0,high=500
    join:s1,s2:on=value,block=512    -- blocked probe (bounded memory)
    join:s1,s2:on=value,agg=value    -- streamed aggregate over the join

>>> import numpy as np
>>> from repro.storage import Catalog
>>> cat = Catalog(plan="auto")
>>> for name in ("s1", "s2"):
...     t = cat.create_table(name, ["a"])
...     _ = t.insert_batch(0, {"a": [1, 2, 3]})
>>> cat.get("s1").forget(np.array([0]), epoch=1)
1
>>> u = cat.query("union:s1,s2", epoch=1)
>>> (u.rf, u.mf)                     # row 0 of s1 was forgotten
(5, 1)
>>> j = cat.query(JoinNode(TableScanNode("s1"), TableScanNode("s2"),
...                        on="value"), epoch=1)
>>> (j.rf, j.mf, round(j.precision, 3))
(2, 1, 0.667)
>>> a = cat.query("join:s1,s2:on=value,agg=value", epoch=1)
>>> (a.rf, a.mf, a.active.total)     # SUM(l.value) over surviving pairs
(2, 1, 5)
>>> [b.shape[0] for b, _ in
...  UnionNode(TableScanNode("s1"), TableScanNode("s2"))
...  .batches(cat, epoch=1, batch_size=4)]
[4, 2]
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from .._util.errors import QueryError, ReproError
from .predicates import RangePredicate, TruePredicate

__all__ = [
    "JOIN_KEYS",
    "AggregateNode",
    "NodeResult",
    "PlanNode",
    "StreamedAggregate",
    "TableScanNode",
    "ShardedScanNode",
    "UnionNode",
    "JoinNode",
    "QuerySpec",
    "check_scan_bounds",
    "merge_match_sides",
    "parse_query_spec",
    "build_plan",
    "execute_plan",
    "explain_plan",
    "render_executed",
    "render_summary",
    "summarize_result",
]

#: Join keys a :class:`JoinNode` accepts at the leaf level — every scan
#: node emits exactly these two columns.
JOIN_KEYS = ("value", "epoch")

#: Columns every leaf scan emits: the scanned value column (normalised
#: to the role name ``value``) and the row's insertion epoch.
SCAN_COLUMNS = ("value", "epoch")


def _empty_rows(width: int) -> np.ndarray:
    return np.empty((0, width), dtype=np.int64)


# -- streaming plumbing ----------------------------------------------------


def _resolve_batch_size(batch_size: int | None) -> int:
    """``batch_size`` validated, or the process default when ``None``."""
    if batch_size is None:
        # Imported lazily: core.config imports this module for the
        # spec grammar, so a module-level import would be circular.
        from ..core.config import default_batch_size

        return default_batch_size()
    batch_size = int(batch_size)
    if batch_size < 1:
        raise QueryError(f"batch size must be >= 1, got {batch_size}")
    return batch_size


def _batched(pieces, batch_size: int):
    """Re-chunk a ``(rows, forgotten)`` piece stream to ``batch_size``.

    Yields batches of exactly ``batch_size`` rows (the final batch may
    be short), preserving row order across arbitrarily sized input
    pieces — the normalization between producers that emit natural
    units (leaf slices, per-shard chunks, per-probe-batch pair blocks)
    and consumers that promise a fixed working-set bound.
    """
    pending_rows: list[np.ndarray] = []
    pending_flags: list[np.ndarray] = []
    buffered = 0
    for rows, flags in pieces:
        n = rows.shape[0]
        if n == 0:
            continue
        pending_rows.append(rows)
        pending_flags.append(flags)
        buffered += n
        if buffered < batch_size:
            continue
        rows_all = (
            pending_rows[0]
            if len(pending_rows) == 1
            else np.concatenate(pending_rows)
        )
        flags_all = (
            pending_flags[0]
            if len(pending_flags) == 1
            else np.concatenate(pending_flags)
        )
        start = 0
        while buffered - start >= batch_size:
            yield (
                rows_all[start : start + batch_size],
                flags_all[start : start + batch_size],
            )
            start += batch_size
        if start < buffered:
            pending_rows = [rows_all[start:]]
            pending_flags = [flags_all[start:]]
            buffered -= start
        else:
            pending_rows = []
            pending_flags = []
            buffered = 0
    if buffered:
        yield (
            pending_rows[0]
            if len(pending_rows) == 1
            else np.concatenate(pending_rows),
            pending_flags[0]
            if len(pending_flags) == 1
            else np.concatenate(pending_flags),
        )


def _drain(pieces) -> tuple[np.ndarray, np.ndarray]:
    """Materialize a piece stream into one ``(rows, forgotten)`` pair."""
    chunks = list(pieces)
    if not chunks:
        return _empty_rows(0), np.empty(0, dtype=bool)
    return (
        np.concatenate([rows for rows, _ in chunks]),
        np.concatenate([flags for _, flags in chunks]),
    )


class _StreamContext:
    """Per-execution state threaded through a batch-stream walk.

    ``payloads`` maps leaf node ids to their scanned inputs (produced
    up front, under the source locks, so the stream holds one epoch
    snapshot however long the consumer takes to drain it); ``counts``
    accumulates each node's (oracle rows, forgotten rows) as its
    output flows past, which is how streamed execution reports the
    same per-node RF/MF accounting the materializing path keeps —
    without retaining any rows.
    """

    def __init__(self, payloads: dict, batch_size: int):
        self.payloads = payloads
        self.batch_size = batch_size
        self.counts: dict[int, list[int]] = {}

    def tally(self, node: "PlanNode", flags: np.ndarray) -> None:
        entry = self.counts.setdefault(id(node), [0, 0])
        entry[0] += int(flags.size)
        entry[1] += int(np.count_nonzero(flags))


def _summarize_stream(node: "PlanNode", ctx: _StreamContext) -> tuple:
    """(rf, mf, precision, children) skeleton from a drained stream."""
    oracle, mf = ctx.counts.get(id(node), (0, 0))
    rf = oracle - mf
    precision = 1.0 if oracle == 0 else rf / oracle
    return (
        rf,
        mf,
        precision,
        tuple(_summarize_stream(child, ctx) for child in node.children),
    )


@dataclass(frozen=True)
class NodeResult:
    """Output stream of one plan node, with amnesia accounting.

    ``rows`` is a ``(n, len(columns))`` int64 matrix — one row per
    *oracle* output tuple; ``forgotten`` flags the rows the amnesiac
    DBMS would not have produced (for a join: any contributing input
    row was forgotten).  ``inputs`` holds the child results, so
    per-input RF/MF/precision accounting survives unions and joins
    exactly.
    """

    columns: tuple[str, ...]
    rows: np.ndarray = field(repr=False)
    forgotten: np.ndarray = field(repr=False)
    inputs: tuple["NodeResult", ...] = ()

    @property
    def oracle_count(self) -> int:
        """Rows the complete (never-forgetting) database would return."""
        return int(self.rows.shape[0])

    @property
    def rf(self) -> int:
        """R_F: rows the amnesiac database actually returns."""
        return int(self.oracle_count - self.mf)

    @property
    def mf(self) -> int:
        """M_F: rows lost because some contributing tuple was forgotten."""
        return int(np.count_nonzero(self.forgotten))

    @property
    def precision(self) -> float:
        """P_F = RF / (RF + MF); 1.0 when the oracle result is empty."""
        return 1.0 if self.oracle_count == 0 else self.rf / self.oracle_count

    def active_rows(self) -> np.ndarray:
        """The amnesiac-visible rows (what the DBMS would answer)."""
        return self.rows[~self.forgotten]

    def column(self, name: str) -> np.ndarray:
        """One output column by name (oracle view, row order)."""
        try:
            return self.rows[:, self.columns.index(name)]
        except ValueError:
            raise QueryError(
                f"result has no column {name!r}; columns are {self.columns}"
            ) from None

    def __repr__(self) -> str:
        return (
            f"NodeResult(columns={self.columns}, rf={self.rf}, "
            f"mf={self.mf}, precision={self.precision:.3f})"
        )


class _KeyDistribution:
    """Join-key mass model: a leaf's oracle value histogram, clipped.

    Wraps a scan's (active, forgotten) histograms and restricts their
    mass to the scan's bounds, exposing just what the join estimator
    needs: bin edges and the oracle mass of a value interval.
    """

    def __init__(self, active, forgotten, low, high):
        self._active = active
        self._forgotten = forgotten
        self._low = low
        self._high = high

    def edges(self) -> np.ndarray:
        return self._active.bin_edges()

    def mass(self, low: float, high: float) -> float:
        if self._low is not None:
            low = max(low, self._low)
            high = min(high, self._high)
        if high <= low:
            return 0.0
        return self._active.mass(low, high) + self._forgotten.mass(low, high)


def _estimate_equijoin(left: "_KeyDistribution", right: "_KeyDistribution") -> float:
    """Expected equi-join pairs under uniform-within-bin key mass.

    Walks the left distribution's bins: an interval holding ``l`` left
    keys and ``r`` right keys over ``w`` distinct values yields about
    ``l * r / w`` matching pairs — the per-bin refinement of the
    classic ``|L|·|R| / ndv`` estimate, which is what lets skewed key
    histograms price a Zipf join correctly where the FK-ish
    max-of-inputs heuristic collapses.
    """
    edges = left.edges()
    total = 0.0
    for e0, e1 in zip(edges[:-1].tolist(), edges[1:].tolist()):
        l_mass = left.mass(e0, e1)
        if l_mass <= 0.0:
            continue
        r_mass = right.mass(e0, e1)
        if r_mass <= 0.0:
            continue
        total += l_mass * r_mass / max(e1 - e0, 1.0)
    return total


class PlanNode(ABC):
    """One node of a cross-table plan tree."""

    children: tuple["PlanNode", ...] = ()

    def key_histogram(self, catalog, key: str):
        """Key-mass model for join estimation (leaves may override)."""
        return None

    def ordered_on(self, catalog, key: str) -> bool:
        """True when this node's output arrives ordered by ``key``.

        Feeds the join's sort-merge pricing; the default (unordered)
        is always safe — strategy choice never changes results.
        """
        return False

    def batches(
        self,
        catalog,
        epoch: int,
        batch_size: int | None = None,
        *,
        pool=None,
        workers: int = 1,
        record_access: bool = True,
    ):
        """Stream this node's output as fixed-size numpy batches.

        Returns an iterator of ``(rows, forgotten)`` pairs — ``rows``
        a ``(n, len(output_columns()))`` int64 matrix, ``forgotten``
        the aligned bool flags — with ``n == batch_size`` for every
        batch except possibly the last.  ``batch_size=None`` resolves
        to :func:`repro.core.config.default_batch_size` (the CLI's
        ``--batch-size``).

        The batch contract:

        **Ordering.**  Concatenating the batches reproduces, bit for
        bit, the rows and flags :func:`execute_plan` materializes:
        leaf scans stream in insertion-position order (sharded leaves
        in shard order, each shard in position order), unions in child
        order, and joins in canonical nested-loop order — ascending
        (left row, right row) — so where the batch boundaries fall is
        unobservable downstream.

        **Forgotten-flag propagation.**  Every batch carries one flag
        per row; a union row keeps its input's flag, and a join row is
        flagged iff *either* contributing input row was — flags
        compose under batching exactly as they do materialized, so
        RF/MF/precision accounting is identical however the stream is
        chunked.

        **Epoch snapshot.**  All leaf scans run *eagerly, here* —
        fanned out on ``pool`` under the source locks (sharded leaves
        under one acquisition of their store's read gate) with access
        recorded at ``epoch`` — before the iterator is returned.  The
        stream therefore reflects one snapshot per *batch stream*, not
        per batch: inserts, forgetting or epoch advances that land
        while the consumer drains it are invisible until a new stream
        is opened.

        Peak memory above the leaves is bounded by the batch size (for
        a join: ``batch_size × build rows`` during pair discovery),
        never by the output size.

        >>> import numpy as np
        >>> from repro.storage import Catalog
        >>> cat = Catalog()
        >>> _ = cat.create_table("t", ["a"]).insert_batch(
        ...     0, {"a": [5, 6, 7]})
        >>> [(rows.shape, flags.tolist()) for rows, flags in
        ...  TableScanNode("t").batches(cat, epoch=0, batch_size=2)]
        [((2, 2), [False, False]), ((1, 2), [False])]
        """
        batch_size = _resolve_batch_size(batch_size)
        self.validate(catalog)
        payloads = _fan_out_leaves(
            self, catalog, epoch, pool, workers, record_access, stream=True
        )
        ctx = _StreamContext(payloads, batch_size)
        return _batched(self._stream(ctx), batch_size)

    def _stream(self, ctx: _StreamContext):
        """Yield ``(rows, forgotten)`` pieces in canonical order.

        Internal producer behind :meth:`batches`: pieces may be any
        size (consumers re-chunk via ``_batched``), must arrive in
        canonical order, and every implementation tallies its output
        into ``ctx.counts`` so streamed executions report the same
        per-node accounting the materializing path keeps.
        """
        raise NotImplementedError  # pragma: no cover - all nodes override

    @abstractmethod
    def output_columns(self) -> tuple[str, ...]:
        """Column names of this node's output stream."""

    @abstractmethod
    def estimate_rows(self, catalog) -> float:
        """Estimated oracle-output cardinality (for explain trees)."""

    @abstractmethod
    def estimate_cost(self, catalog) -> float:
        """Estimated rows considered to produce the output."""

    @abstractmethod
    def describe(self, catalog=None) -> str:
        """One-line node description (cost estimates when bound)."""

    def validate(self, catalog) -> None:
        """Structural checks before execution (duplicate node reuse)."""
        seen: set[int] = set()

        def walk(node: "PlanNode") -> None:
            if id(node) in seen:
                raise QueryError(
                    f"plan node {node.describe()} appears twice in the tree; "
                    "build a fresh node per use"
                )
            seen.add(id(node))
            for child in node.children:
                walk(child)

        walk(self)

    def __repr__(self) -> str:
        return self.describe()


def _bounds_suffix(low: int | None, high: int | None) -> str:
    if low is None:
        return ""
    return f" ∈ [{low}, {high})"


def check_scan_bounds(
    low, high
) -> tuple[int | None, int | None]:
    """Validate optional scan bounds: both-or-neither, not reversed.

    Shared by the leaf nodes here and
    :meth:`repro.partitioning.PartitionedAmnesiaDatabase.scan_rows`,
    so every cross-table scan surface enforces one contract.
    """
    if (low is None) != (high is None):
        raise QueryError("supply both low and high, or neither")
    if low is not None and high < low:
        raise QueryError(f"range [{low}, {high}) is reversed")
    return (None if low is None else int(low), None if high is None else int(high))


def merge_match_sides(
    active: np.ndarray, missed: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Merge (active, missed) position sets into position order.

    Returns the merged ascending positions and the forgotten flags
    aligned with them — the row order a naive full scan produces.  One
    implementation serves both the plain-table leaf and the sharded
    store's per-shard streams, so the two can never drift.
    """
    positions = np.concatenate([active, missed])
    flags = np.zeros(positions.size, dtype=bool)
    flags[active.size:] = True
    order = np.argsort(positions, kind="stable")
    return positions[order], flags[order]


class _ScanNode(PlanNode):
    """Shared plumbing of the two leaf scans (plain and sharded)."""

    def __init__(self, source: str, low: int | None = None, high: int | None = None):
        self.source = source
        self.low, self.high = check_scan_bounds(low, high)
        self.children = ()

    def output_columns(self) -> tuple[str, ...]:
        return SCAN_COLUMNS

    def _predicate(self, column: str):
        if self.low is None:
            return TruePredicate()
        return RangePredicate(column, self.low, self.high)

    @abstractmethod
    def scan(self, catalog, epoch: int, record_access: bool) -> NodeResult:
        """Execute the leaf against the catalog."""

    def scan_payload(self, catalog, epoch: int, record_access: bool):
        """Scan for the streaming path (leaves may hand back chunks).

        Identical matching and access accounting to :meth:`scan`; the
        payload is whatever shape lets :meth:`_stream` re-chunk
        without an extra copy (the plain leaf's ``NodeResult``, the
        sharded leaf's per-shard chunk list).
        """
        return self.scan(catalog, epoch, record_access)

    def _stream(self, ctx: _StreamContext):
        result: NodeResult = ctx.payloads[id(self)]
        step = ctx.batch_size
        for start in range(0, result.oracle_count, step):
            rows = result.rows[start : start + step]
            flags = result.forgotten[start : start + step]
            ctx.tally(self, flags)
            yield rows, flags
        if result.oracle_count == 0:
            ctx.counts.setdefault(id(self), [0, 0])


class TableScanNode(_ScanNode):
    """Leaf: planner-routed scan of one catalog table.

    Parameters
    ----------
    source:
        Catalog table name.
    low, high:
        Optional ``[low, high)`` bounds on the table's value column;
        omitted means the full stream.  The table's planner picks the
        access path exactly as for a single-table query.

    The output has columns ``("value", "epoch")`` — the scanned column
    (the table's first column by default) normalised to the ``value``
    role, plus the insertion epoch — so streams from differently named
    sensor columns still union and join.
    """

    def __init__(
        self,
        source: str,
        low: int | None = None,
        high: int | None = None,
        column: str | None = None,
    ):
        super().__init__(source, low, high)
        self.column = column

    def _column(self, catalog) -> str:
        if self.column is not None:
            return self.column
        return catalog.get(self.source).column_names[0]

    def scan(self, catalog, epoch: int, record_access: bool) -> NodeResult:
        table = catalog.get(self.source)
        column = self._column(catalog)
        if table.total_rows == 0:
            return NodeResult(SCAN_COLUMNS, _empty_rows(2), np.empty(0, dtype=bool))
        planner = catalog.planner(self.source)
        active, missed, _ = planner.match(self._predicate(column), (column,))
        if record_access:
            table.record_access(active, epoch)
        positions, flags = merge_match_sides(active, missed)
        rows = np.column_stack(
            [table.values(column)[positions], table.insert_epochs()[positions]]
        ).astype(np.int64, copy=False)
        return NodeResult(SCAN_COLUMNS, rows, flags)

    def estimate_rows(self, catalog) -> float:
        planner = catalog.planner(self.source)
        column = self._column(catalog)
        if self.low is not None:
            estimate = planner.estimate(column, self.low, self.high)
            if estimate is not None:
                # Histogram-sharpened when the planner carries table
                # statistics; per-cohort uniformity otherwise.
                return estimate.est_rows
        return float(catalog.get(self.source).total_rows)

    def key_histogram(self, catalog, key: str):
        """Oracle-mass histogram of the ``value`` column, if tracked.

        Feeds the join's output-cardinality estimate; ``None`` when the
        scan has no histogram statistics (or the key is ``epoch``,
        which the statistics layer does not bin).
        """
        if key != "value":
            return None
        planner = catalog.planner(self.source)
        stats = planner.table_stats
        column = self._column(catalog)
        if stats is None or not stats.covers(column):
            return None
        active, forgotten = stats.histograms(column)
        if active is None:
            return None
        return _KeyDistribution(active, forgotten, self.low, self.high)

    def estimate_cost(self, catalog) -> float:
        planner = catalog.planner(self.source)
        column = self._column(catalog)
        plan = planner.plan(self._predicate(column))
        if plan.estimated_rows is not None:
            return plan.estimated_rows
        if plan.mode == "zonemap":
            return float(
                planner.zone_map.estimate(column, self.low, self.high).candidate_rows
            )
        return float(catalog.get(self.source).total_rows)

    def ordered_on(self, catalog, key: str) -> bool:
        """Ordered by ``value`` when a live sorted index covers the column.

        A :class:`~repro.indexes.SortedIndex` keeps the column in value
        order by construction, so this leaf can feed a merge join an
        already-ordered key stream — the sort-merge pricing signal.
        """
        if key != "value":
            return False
        planner = catalog.planner(self.source)
        return planner.ordered_index(self._column(catalog)) is not None

    def describe(self, catalog=None) -> str:
        est = ""
        if catalog is not None:
            plan = catalog.planner(self.source).plan(
                self._predicate(self._column(catalog))
            )
            est = (
                f" — plan={plan.mode}, ≈{self.estimate_rows(catalog):.0f} rows, "
                f"cost≈{self.estimate_cost(catalog):.0f}"
            )
        return (
            f"TableScan({self.source!r}{_bounds_suffix(self.low, self.high)}){est}"
        )


class ShardedScanNode(_ScanNode):
    """Leaf: planner-routed scan of a registered sharded store.

    ``source`` names a :class:`~repro.partitioning.
    PartitionedAmnesiaDatabase` attached via
    :meth:`repro.storage.Catalog.register_sharded`.  Each shard matches
    through its own planner (pruned shards answer from their declared
    bounds) and the outputs concatenate in shard order, so the stream
    is bit-identical at any worker count.

    Under concurrent ingest the scan is epoch-snapshot consistent: it
    enters the store's read gate, which admits readers only between
    batch applications, so the stream reflects a published ingest epoch
    — every flushed batch in full or not at all, never a torn middle.
    """

    def scan(self, catalog, epoch: int, record_access: bool) -> NodeResult:
        store = catalog.sharded(self.source)
        values, epochs, flags = store.scan_rows(
            self.low, self.high, record_access=record_access, epoch=epoch
        )
        rows = np.column_stack([values, epochs]).astype(np.int64, copy=False)
        if rows.size == 0:
            rows = _empty_rows(2)
        return NodeResult(SCAN_COLUMNS, rows, flags)

    def scan_payload(self, catalog, epoch: int, record_access: bool):
        """Per-shard chunk handoff for the streaming path.

        Uses the store's :meth:`~repro.partitioning.
        PartitionedAmnesiaDatabase.scan_chunks` when it offers one —
        identical matching and accounting to :meth:`scan`, but the
        per-shard outputs stay unconcatenated (all taken under one
        read-gate acquisition, so the stream is one epoch snapshot)
        and :meth:`_stream` re-chunks them to the batch size without
        ever building the full concatenated matrix.
        """
        store = catalog.sharded(self.source)
        scan_chunks = getattr(store, "scan_chunks", None)
        if scan_chunks is None:
            return self.scan(catalog, epoch, record_access)
        return scan_chunks(
            self.low, self.high, record_access=record_access, epoch=epoch
        )

    def _stream(self, ctx: _StreamContext):
        payload = ctx.payloads[id(self)]
        if isinstance(payload, NodeResult):  # duck-typed store fallback
            yield from super()._stream(ctx)
            return
        ctx.counts.setdefault(id(self), [0, 0])
        step = ctx.batch_size
        for values, epochs, flags in payload:
            if values.size == 0:
                continue
            rows = np.column_stack([values, epochs]).astype(
                np.int64, copy=False
            )
            for start in range(0, rows.shape[0], step):
                piece_flags = flags[start : start + step]
                ctx.tally(self, piece_flags)
                yield rows[start : start + step], piece_flags

    def ordered_on(self, catalog, key: str) -> bool:
        """Ordered by ``value`` in shard bands.

        Shard boundaries partition the value domain and
        :meth:`scan_payload` hands chunks back in shard order, so the
        stream is banded by value — every row in shard *i* sorts below
        every row in shard *i+1*.  The merge path's within-band stable
        sort is near-linear on such input, which is what the pricing
        model credits.
        """
        return key == "value"

    def estimate_rows(self, catalog) -> float:
        return catalog.sharded(self.source).estimate_scan(self.low, self.high)

    def estimate_cost(self, catalog) -> float:
        return catalog.sharded(self.source).estimate_scan(
            self.low, self.high, cost=True
        )

    def describe(self, catalog=None) -> str:
        est = ""
        if catalog is not None:
            store = catalog.sharded(self.source)
            est = (
                f" — {store.partition_count} shard(s), "
                f"≈{self.estimate_rows(catalog):.0f} rows, "
                f"cost≈{self.estimate_cost(catalog):.0f}"
            )
        return (
            f"ShardedScan({self.source!r}"
            f"{_bounds_suffix(self.low, self.high)}){est}"
        )


class UnionNode(PlanNode):
    """UNION ALL: concatenate child streams in child order.

    Children must produce identically named columns (leaf scans all
    emit ``("value", "epoch")``, so per-sensor streams union
    naturally).  The result's ``inputs`` carry each child's own
    RF/MF/precision accounting, untouched by the concatenation.
    """

    def __init__(self, *children: PlanNode):
        if len(children) < 2:
            raise QueryError("union needs at least two inputs")
        columns = children[0].output_columns()
        for child in children[1:]:
            if child.output_columns() != columns:
                raise QueryError(
                    f"union inputs disagree on columns: {columns} vs "
                    f"{child.output_columns()}"
                )
        self.children = tuple(children)

    def output_columns(self) -> tuple[str, ...]:
        return self.children[0].output_columns()

    def combine(self, inputs: tuple[NodeResult, ...]) -> NodeResult:
        rows = np.concatenate([r.rows for r in inputs])
        forgotten = np.concatenate([r.forgotten for r in inputs])
        return NodeResult(self.output_columns(), rows, forgotten, inputs)

    def _stream(self, ctx: _StreamContext):
        ctx.counts.setdefault(id(self), [0, 0])
        for child in self.children:
            for rows, flags in child._stream(ctx):
                ctx.tally(self, flags)
                yield rows, flags

    def estimate_rows(self, catalog) -> float:
        return sum(child.estimate_rows(catalog) for child in self.children)

    def estimate_cost(self, catalog) -> float:
        return sum(child.estimate_cost(catalog) for child in self.children)

    def describe(self, catalog=None) -> str:
        est = ""
        if catalog is not None:
            est = (
                f" — ≈{self.estimate_rows(catalog):.0f} rows, "
                f"cost≈{self.estimate_cost(catalog):.0f}"
            )
        return f"Union({len(self.children)} inputs){est}"


class JoinNode(PlanNode):
    """Hash equi-join of two child streams on ``value`` or ``epoch``.

    The build side is the child with the smaller row count, in the
    same rows-considered currency the single-table cost model prices
    in: at execution the *actual* input sizes are known and decide;
    explain trees show the estimate-based prediction (``build≈...``),
    which can differ when the estimates misrank the sides.  Output
    rows concatenate the
    left and right columns (prefixed ``l.`` / ``r.``) and are emitted
    in canonical nested-loop order — ascending (left row, right row) —
    so the result is bit-identical whichever side builds and at any
    worker count.  An output row is forgotten iff either contributing
    input row was; RF counts only both-sides-active pairs, exactly
    what the amnesiac DBMS would return.

    ``block_size`` enables the *blocked probe* mode: the probe side
    streams in fixed-size blocks against the one sorted build side, so
    the pair-discovery working set is bounded by ``block_size × build
    rows`` instead of the full cross-match — the difference between a
    bounded and an unbounded spike on heavily skewed keys.  Purely an
    execution knob: the pair stream (and everything downstream) stays
    bit-identical.
    """

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        on: str = "value",
        *,
        left_on: str | None = None,
        right_on: str | None = None,
        block_size: int | None = None,
    ):
        self.left_on = on if left_on is None else left_on
        self.right_on = on if right_on is None else right_on
        for side, key in ((left, self.left_on), (right, self.right_on)):
            if key not in side.output_columns():
                raise QueryError(
                    f"join key {key!r} not in input columns "
                    f"{side.output_columns()}; choose one of "
                    f"{JOIN_KEYS} at the leaf level"
                )
        if block_size is not None and int(block_size) < 1:
            raise QueryError(f"join block size must be >= 1, got {block_size}")
        self.block_size = None if block_size is None else int(block_size)
        self.children = (left, right)
        self.on = on
        self._peak_pairs = 0
        self._peak_batch_bytes = 0
        self._last_strategy: str | None = None

    @property
    def peak_pairs(self) -> int:
        """Largest pair batch the last execution materialized at once.

        Full (unblocked) mode discovers the entire pair set in one
        batch, so this equals the oracle output size; blocked mode is
        bounded by ``block_size × build rows`` however skewed the keys.
        Introspection only, written once per execution: concurrent
        ``Catalog.query`` callers sharing one node object see the most
        recently finished execution's value (results are unaffected).
        Streamed executions (:meth:`PlanNode.batches`, aggregates)
        record their per-probe-batch peak here too — bounded by
        ``batch_size × build rows`` instead of the output size.
        """
        return self._peak_pairs

    @property
    def peak_batch_bytes(self) -> int:
        """Approximate bytes of the largest pair batch last execution held.

        ``peak_pairs`` priced in memory: pairs × (8 bytes per int64
        output column + 1 flag byte).  Same write-once introspection
        contract as :attr:`peak_pairs`.
        """
        return self._peak_batch_bytes

    @property
    def last_strategy(self) -> str | None:
        """How the last execution ran this join (introspection only).

        ``"materialized-hash"`` for :func:`execute_plan`'s combine,
        ``"streamed-hash(batch=N)"`` for a batch-iterator run, or
        ``"sort-merge(batch=N)"`` when the cost model picked the merge
        path for a streamed aggregate.  ``None`` before any execution.
        """
        return self._last_strategy

    def _record_peak(self, peak: int, strategy: str) -> None:
        self._peak_pairs = peak  # single write; see peak_pairs
        self._peak_batch_bytes = peak * (8 * len(self.output_columns()) + 1)
        self._last_strategy = strategy

    def output_columns(self) -> tuple[str, ...]:
        left, right = self.children
        return tuple(
            [f"l.{name}" for name in left.output_columns()]
            + [f"r.{name}" for name in right.output_columns()]
        )

    def _match_pairs(
        self, probe_keys: np.ndarray, build_keys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """(probe_idx, build_idx, peak batch size), probe-major ascending.

        With ``block_size`` set, the probe side streams in fixed-size
        blocks against the one sorted build side: each block's pairs
        materialize independently (at most ``block_size × build rows``
        at once, however skewed the keys) and concatenate in block
        order — which *is* probe-major order, so the pair stream is
        bit-identical to the single-batch discovery.
        """
        order = np.argsort(build_keys, kind="stable")
        return self._probe_pairs(probe_keys, build_keys[order], order)

    def _probe_pairs(
        self,
        probe_keys: np.ndarray,
        sorted_keys: np.ndarray,
        order: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Pair discovery against an already-sorted build side.

        The shared core of :meth:`_match_pairs` and the streaming
        probe (:meth:`_stream`), which sorts the build side once and
        probes it batch after batch.  Probe indexes ascend, and within
        one probe row the build indexes ascend too (the stable sort
        keeps equal keys in original order), so the pair stream is
        already in probe-major lexicographic order.
        """
        step = probe_keys.size if self.block_size is None else self.block_size
        probe_chunks: list[np.ndarray] = []
        build_chunks: list[np.ndarray] = []
        peak = 0
        for start in range(0, probe_keys.size, max(step, 1)):
            block = probe_keys[start : start + step]
            lo = np.searchsorted(sorted_keys, block, side="left")
            hi = np.searchsorted(sorted_keys, block, side="right")
            counts = hi - lo
            probe_idx = np.repeat(np.arange(block.size, dtype=np.int64), counts)
            if probe_idx.size == 0:
                continue
            within = np.arange(probe_idx.size, dtype=np.int64) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            build_chunks.append(order[np.repeat(lo, counts) + within])
            probe_chunks.append(probe_idx + start)
            peak = max(peak, int(probe_idx.size))
        if not probe_chunks:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), peak
        return np.concatenate(probe_chunks), np.concatenate(build_chunks), peak

    def combine(self, inputs: tuple[NodeResult, ...]) -> NodeResult:
        left, right = inputs
        lkeys = left.column(self.left_on)
        rkeys = right.column(self.right_on)
        # Build on the smaller side; the pair set is symmetric, so the
        # canonical (left, right) sort below erases the choice from
        # the result — it is purely a cost decision.
        if self._build_side(left, right) == "right":
            li, ri, peak = self._match_pairs(lkeys, rkeys)
        else:
            ri, li, peak = self._match_pairs(rkeys, lkeys)
        self._record_peak(peak, "materialized-hash")
        order = np.lexsort((ri, li))
        li, ri = li[order], ri[order]
        rows = (
            np.hstack([left.rows[li], right.rows[ri]])
            if li.size
            else _empty_rows(len(self.output_columns()))
        )
        forgotten = left.forgotten[li] | right.forgotten[ri]
        return NodeResult(self.output_columns(), rows, forgotten, inputs)

    @staticmethod
    def _build_side(left: NodeResult, right: NodeResult) -> str:
        return "right" if right.oracle_count <= left.oracle_count else "left"

    def _key_index(self, side: int) -> int:
        key = self.left_on if side == 0 else self.right_on
        return self.children[side].output_columns().index(key)

    def _stream(self, ctx: _StreamContext):
        """Canonical-order pair stream with a bounded working set.

        The right child is the build side: drained, its keys sorted
        once.  The left child probes in ``batch_size`` batches, so at
        most ``batch_size × build rows`` pairs (further sub-blocked by
        ``block_size`` when set) ever materialize at once — the full
        pair set never exists.  Probing with the *left* side keeps the
        stream in canonical ascending (left row, right row) order with
        no global sort: probe indexes ascend across batches, and build
        matches ascend within each probe row (stable build sort).
        """
        ctx.counts.setdefault(id(self), [0, 0])
        left, right = self.children
        rrows, rflags = _drain(right._stream(ctx))
        rkeys = (
            rrows[:, self._key_index(1)]
            if rrows.shape[0]
            else np.empty(0, dtype=np.int64)
        )
        order = np.argsort(rkeys, kind="stable")
        sorted_keys = rkeys[order]
        lkey_idx = self._key_index(0)
        peak = 0
        for lrows, lflags in _batched(left._stream(ctx), ctx.batch_size):
            li, ri, batch_peak = self._probe_pairs(
                lrows[:, lkey_idx], sorted_keys, order
            )
            peak = max(peak, batch_peak)
            if li.size == 0:
                continue
            rows = np.hstack([lrows[li], rrows[ri]])
            flags = lflags[li] | rflags[ri]
            ctx.tally(self, flags)
            yield rows, flags
        self._record_peak(peak, f"streamed-hash(batch={ctx.batch_size})")

    def _stream_merge(self, ctx: _StreamContext):
        """Sort-merge pair stream: key order, working set ≤ batch size.

        Both children drain, both key columns sort (near-linear on the
        banded/ordered inputs that make this path eligible), and the
        merge walks matching key groups, emitting each group's cross
        product in slabs of at most ``batch_size`` pairs — so even a
        single scorching-hot key never materializes its full pair
        block.  Pairs arrive in *key* order, not the canonical
        (left row, right row) order, which is why only order-
        insensitive consumers — the streamed aggregates, whose
        :class:`~repro.stats.moments.ExactMoments` are batch-order-
        invariant — use it; row-returning paths stay on :meth:`_stream`.
        RF/MF accounting is a row count, so it is identical either way.
        """
        ctx.counts.setdefault(id(self), [0, 0])
        left, right = self.children
        lrows, lflags = _drain(left._stream(ctx))
        rrows, rflags = _drain(right._stream(ctx))
        if lrows.shape[0] == 0 or rrows.shape[0] == 0:
            self._record_peak(0, f"sort-merge(batch={ctx.batch_size})")
            return
        lkeys = lrows[:, self._key_index(0)]
        rkeys = rrows[:, self._key_index(1)]
        lorder = np.argsort(lkeys, kind="stable")
        rorder = np.argsort(rkeys, kind="stable")
        slk, srk = lkeys[lorder], rkeys[rorder]
        step = ctx.batch_size
        if self.block_size is not None:
            step = min(step, self.block_size)
        peak = 0
        i = j = 0
        nl, nr = slk.size, srk.size
        while i < nl and j < nr:
            key = slk[i]
            if key < srk[j]:
                i = int(np.searchsorted(slk, srk[j], side="left"))
                continue
            if key > srk[j]:
                j = int(np.searchsorted(srk, key, side="left"))
                continue
            i2 = int(np.searchsorted(slk, key, side="right"))
            j2 = int(np.searchsorted(srk, key, side="right"))
            group_l = lorder[i:i2]
            group_r = rorder[j:j2]
            total = group_l.size * group_r.size
            for start in range(0, total, step):
                flat = np.arange(
                    start, min(start + step, total), dtype=np.int64
                )
                li = group_l[flat // group_r.size]
                ri = group_r[flat % group_r.size]
                peak = max(peak, int(flat.size))
                flags = lflags[li] | rflags[ri]
                ctx.tally(self, flags)
                yield np.hstack([lrows[li], rrows[ri]]), flags
            i, j = i2, j2
        self._record_peak(peak, f"sort-merge(batch={ctx.batch_size})")

    def join_strategy(self, catalog) -> str:
        """``"hash"`` or ``"merge"`` — the streamed-aggregate strategy.

        Priced in rows-considered, with the pair cardinality common to
        both sides coming from :meth:`estimate_rows` (per-bin
        :class:`~repro.stats.TableHistogramStats` masses when both
        leaves carry histograms).  The hash path pays a build over the
        smaller input; the merge path pays ``n·log₂n`` sort terms
        unless an input arrives ordered (sharded bands, sorted-index
        leaves), in which case its sort term drops out.  Merge
        therefore wins exactly when both inputs arrive ordered —
        decided by the numbers, not a flag.  Strategy never changes
        results, only the work and working set.
        """
        import math

        left, right = self.children
        l_rows = max(left.estimate_rows(catalog), 1.0)
        r_rows = max(right.estimate_rows(catalog), 1.0)
        pairs = self.estimate_rows(catalog)
        hash_cost = l_rows + r_rows + 2.0 * min(l_rows, r_rows) + pairs
        sort_l = 0.0 if left.ordered_on(catalog, self.left_on) else (
            l_rows * math.log2(l_rows + 1.0)
        )
        sort_r = 0.0 if right.ordered_on(catalog, self.right_on) else (
            r_rows * math.log2(r_rows + 1.0)
        )
        merge_cost = sort_l + sort_r + l_rows + r_rows + pairs
        return "merge" if merge_cost < hash_cost else "hash"

    def estimate_rows(self, catalog) -> float:
        left, right = self.children
        left_keys = left.key_histogram(catalog, self.left_on)
        right_keys = right.key_histogram(catalog, self.right_on)
        if left_keys is not None and right_keys is not None:
            # Histogram cardinalities: expected pairs per key interval,
            # which survives skewed (many-to-many) keys.
            return _estimate_equijoin(left_keys, right_keys)
        # Key-uniqueness (FK-ish) assumption: the smaller side's keys
        # are mostly distinct, so the output is about as large as the
        # bigger input.  Crude, but honest enough for explain trees.
        return max(left.estimate_rows(catalog), right.estimate_rows(catalog))

    def estimate_cost(self, catalog) -> float:
        left, right = self.children
        build_probe = left.estimate_rows(catalog) + right.estimate_rows(catalog)
        return (
            left.estimate_cost(catalog)
            + right.estimate_cost(catalog)
            + build_probe
        )

    def describe(self, catalog=None) -> str:
        est = ""
        if catalog is not None:
            left, right = self.children
            build = (
                "right"
                if right.estimate_rows(catalog) <= left.estimate_rows(catalog)
                else "left"
            )
            est = (
                f", build≈{build}, strategy≈{self.join_strategy(catalog)}"
                f" — ≈{self.estimate_rows(catalog):.0f} rows, "
                f"cost≈{self.estimate_cost(catalog):.0f}"
            )
        keys = (
            f"on={self.on!r}"
            if self.left_on == self.right_on == self.on
            else f"on={self.left_on!r}={self.right_on!r}"
        )
        block = "" if self.block_size is None else f", block={self.block_size}"
        return f"Join({keys}{block}{est})"


# -- aggregation above the stream ------------------------------------------


class _SummaryView:
    """Read-only rf/mf/precision facade over one summary-tuple node.

    Lets a :class:`StreamedAggregate` expose ``inputs`` with the same
    per-input accounting attributes a :class:`NodeResult` tree carries
    (``rf``/``mf``/``precision``/``inputs``) — without ever having
    materialized the rows those inputs produced.
    """

    __slots__ = ("_summary",)

    def __init__(self, summary: tuple):
        self._summary = summary

    @property
    def rf(self) -> int:
        return self._summary[0]

    @property
    def mf(self) -> int:
        return self._summary[1]

    @property
    def precision(self) -> float:
        return self._summary[2]

    @property
    def oracle_count(self) -> int:
        return self._summary[0] + self._summary[1]

    @property
    def inputs(self) -> tuple["_SummaryView", ...]:
        return tuple(_SummaryView(child) for child in self._summary[3])

    def __repr__(self) -> str:
        return (
            f"SummaryView(rf={self.rf}, mf={self.mf}, "
            f"precision={self.precision:.3f})"
        )


@dataclass(frozen=True)
class StreamedAggregate:
    """Result of a streamed aggregate: moments, no rows.

    ``active`` aggregates the amnesiac-visible values (what the
    forgetting DBMS would answer), ``missed`` the values on rows some
    contributing tuple had forgotten — both
    :class:`~repro.stats.moments.ExactMoments`, so COUNT/SUM/MEAN/
    VAR/MIN/MAX are bit-identical at any batch size or merge order.
    ``summary`` is the same nested ``(rf, mf, precision, children)``
    skeleton :func:`summarize_result` produces for materialized runs,
    and ``inputs`` exposes it with per-input accounting attributes —
    so reporting code written against :class:`NodeResult` keeps
    working.
    """

    on: str
    active: "ExactMoments" = field(repr=False)
    missed: "ExactMoments" = field(repr=False)
    summary: tuple = field(repr=False)
    strategy: str = "streamed"

    @property
    def oracle_count(self) -> int:
        """Rows the complete (never-forgetting) database aggregates."""
        return self.active.count + self.missed.count

    @property
    def rf(self) -> int:
        """R_F: rows the amnesiac database actually aggregates."""
        return self.active.count

    @property
    def mf(self) -> int:
        """M_F: rows lost because some contributing tuple was forgotten."""
        return self.missed.count

    @property
    def precision(self) -> float:
        """P_F = RF / (RF + MF); 1.0 when the oracle result is empty."""
        return 1.0 if self.oracle_count == 0 else self.rf / self.oracle_count

    @property
    def inputs(self) -> tuple[_SummaryView, ...]:
        """Per-input accounting views (the aggregate's child subtrees)."""
        return tuple(_SummaryView(child) for child in self.summary[3])

    def __repr__(self) -> str:
        return (
            f"StreamedAggregate(on={self.on!r}, rf={self.rf}, mf={self.mf}, "
            f"precision={self.precision:.3f}, strategy={self.strategy!r})"
        )


class AggregateNode(PlanNode):
    """Root-only aggregate over one child's batch stream.

    Consumes the child's batches into two
    :class:`~repro.stats.moments.ExactMoments` (active vs. missed
    values of ``on``) without materializing any rows.  Execution picks
    the streaming strategy per child shape:

    - union child: aggregation is **pushed below the union** — each
      input aggregates into its own partial, partials merge with
      Chan's rule (exact under the integer sufficient statistics);
    - join child: the cost model's :meth:`JoinNode.join_strategy`
      picks the streamed hash probe or the sort-merge path (safe here
      because moments are batch-order-invariant);
    - leaf child: the leaf's batch stream feeds the moments directly.

    ``on`` may be a bare leaf column (``value``/``epoch``); over a
    join it resolves to the leftmost prefixed match (``l.value``
    before ``r.value``).  Defaults to the child's first output column.
    """

    def __init__(self, child: PlanNode, on: str | None = None):
        columns = child.output_columns()
        if on is None:
            resolved = columns[0]
        elif on in columns:
            resolved = on
        else:
            matches = [c for c in columns if c.split(".")[-1] == on]
            if not matches:
                raise QueryError(
                    f"aggregate column {on!r} not in child columns {columns}"
                )
            resolved = matches[0]
        self.on = resolved
        self.children = (child,)

    def output_columns(self) -> tuple[str, ...]:
        return (self.on,)

    def validate(self, catalog) -> None:
        super().validate(catalog)

        def walk(n: PlanNode) -> None:
            for child in n.children:
                if isinstance(child, AggregateNode):
                    raise QueryError(
                        "aggregate nodes cannot nest; an aggregate must be "
                        "the plan root"
                    )
                walk(child)

        walk(self)

    def batches(self, *args, **kwargs):
        raise QueryError(
            "an aggregate produces a scalar summary, not row batches; "
            "execute it via Catalog.query / execute_plan"
        )

    def estimate_rows(self, catalog) -> float:
        return 1.0

    def estimate_cost(self, catalog) -> float:
        child = self.children[0]
        return child.estimate_cost(catalog) + child.estimate_rows(catalog)

    def execution_strategy(self, catalog, batch_size: int | None = None) -> str:
        """The streaming strategy execution will use (explain signal)."""
        batch = _resolve_batch_size(batch_size)
        child = self.children[0]
        if isinstance(child, UnionNode):
            return f"pushdown-union(batch={batch})"
        if isinstance(child, JoinNode):
            how = child.join_strategy(catalog)
            name = "sort-merge" if how == "merge" else "streamed-hash"
            return f"{name}(batch={batch})"
        return f"streamed(batch={batch})"

    def describe(self, catalog=None) -> str:
        est = ""
        if catalog is not None:
            est = (
                f" — {self.execution_strategy(catalog)}, "
                f"cost≈{self.estimate_cost(catalog):.0f}"
            )
        return f"Aggregate(on={self.on!r}){est}"


# -- execution engine ------------------------------------------------------


def _fan_out_leaves(
    node: PlanNode,
    catalog,
    epoch: int,
    pool,
    workers: int,
    record_access: bool,
    *,
    stream: bool = False,
) -> dict[int, object]:
    """Run every leaf scan of ``node``'s tree; map leaf id → payload.

    The shared leaf phase of the materializing and streaming paths:
    leaves are collected depth-first, their lazily built planner/
    executor caches resolved up front (construction mutates shared
    dicts the worker threads then only read), grouped by source name —
    so two scans of one table execute sequentially in tree order,
    keeping access accounting race-free and identical to a sequential
    walk — and fanned out over ``pool``.  With ``stream=True`` each
    leaf hands back its :meth:`_ScanNode.scan_payload` (chunked, for
    re-batching without a full concatenation); otherwise its
    materialized :class:`NodeResult`.
    """
    leaves: list[_ScanNode] = []

    def collect(n: PlanNode) -> None:
        if isinstance(n, _ScanNode):
            leaves.append(n)
        for child in n.children:
            collect(child)

    collect(node)
    if not leaves:  # pragma: no cover - unreachable via public nodes
        raise QueryError("plan tree has no scan leaves")
    for leaf in leaves:
        if isinstance(leaf, ShardedScanNode):
            catalog.sharded(leaf.source)
        else:
            catalog.planner(leaf.source)
    groups: dict[str, list[int]] = {}
    for i, leaf in enumerate(leaves):
        groups.setdefault(leaf.source, []).append(i)
    payloads: list[object] = [None] * len(leaves)

    def run_group(indexes: list[int]) -> None:
        for i in indexes:
            # The source lock serializes against *other* catalog
            # callers (another batch, another cross-table query); the
            # per-source grouping already serializes within this plan.
            with catalog.source_lock(leaves[i].source):
                payloads[i] = (
                    leaves[i].scan_payload(catalog, epoch, record_access)
                    if stream
                    else leaves[i].scan(catalog, epoch, record_access)
                )

    if pool is None:
        run_group(list(range(len(leaves))))
    else:
        pool.map_ordered(run_group, list(groups.values()), workers)
    return {id(leaf): payloads[i] for i, leaf in enumerate(leaves)}


def _execute_aggregate(
    node: AggregateNode,
    catalog,
    epoch: int,
    *,
    pool,
    workers: int,
    record_access: bool,
    batch_size: int | None,
) -> StreamedAggregate:
    """Streamed-aggregate engine: batches in, moments out, no rows kept."""
    # Lazy: plans is imported by core.config, whose grammar hook must
    # not drag the statistics layer into the import cycle.
    from ..stats.moments import ExactMoments

    batch = _resolve_batch_size(batch_size)
    child = node.children[0]
    strategy = node.execution_strategy(catalog, batch)
    payloads = _fan_out_leaves(
        node, catalog, epoch, pool, workers, record_access, stream=True
    )
    ctx = _StreamContext(payloads, batch)
    column = child.output_columns().index(node.on)
    active = ExactMoments()
    missed = ExactMoments()

    def consume(pieces, into_active, into_missed) -> None:
        for rows, flags in pieces:
            values = rows[:, column]
            into_active.update(values[~flags])
            into_missed.update(values[flags])

    if isinstance(child, UnionNode):
        # Aggregation pushdown: each union input folds into its own
        # partial, partials merge with Chan's rule — exact under the
        # integer sufficient statistics, so the union's concatenated
        # stream never exists even transiently.
        ctx.counts.setdefault(id(child), [0, 0])
        for sub in child.children:
            part_active = ExactMoments()
            part_missed = ExactMoments()

            def tallied(pieces):
                for rows, flags in pieces:
                    ctx.tally(child, flags)
                    yield rows, flags

            consume(tallied(sub._stream(ctx)), part_active, part_missed)
            active.merge(part_active)
            missed.merge(part_missed)
    elif isinstance(child, JoinNode) and child.join_strategy(catalog) == "merge":
        # Key-order pair stream: safe because moments are batch-order-
        # invariant; row-returning paths never take this branch.
        consume(child._stream_merge(ctx), active, missed)
    else:
        consume(child._stream(ctx), active, missed)

    ctx.counts[id(node)] = [active.count + missed.count, missed.count]
    return StreamedAggregate(
        on=node.on,
        active=active,
        missed=missed,
        summary=_summarize_stream(node, ctx),
        strategy=strategy,
    )


def execute_plan(
    node: PlanNode,
    catalog,
    epoch: int,
    *,
    pool=None,
    workers: int = 1,
    record_access: bool = True,
    batch_size: int | None = None,
) -> NodeResult | StreamedAggregate:
    """Execute a plan tree against ``catalog``; bit-identical at any width.

    All leaf scans run first, fanned out over ``pool`` — grouped by
    source name so two scans of the same table (or sharded store)
    execute sequentially in tree (depth-first, left-to-right) order,
    which keeps access accounting race-free and identical to a
    sequential walk.  Unions and joins then combine the precomputed
    leaf results bottom-up on the calling thread; every combine merges
    in child order, so completion order never leaks into results.

    An :class:`AggregateNode` root switches to the streaming engine:
    the child's batches fold into :class:`StreamedAggregate` moments
    without materializing any intermediate row set, with ``batch_size``
    bounding the working set (``None`` = the process default).  For
    row-returning plans ``batch_size`` is ignored — they materialize.
    """
    node.validate(catalog)
    if isinstance(node, AggregateNode):
        return _execute_aggregate(
            node,
            catalog,
            epoch,
            pool=pool,
            workers=workers,
            record_access=record_access,
            batch_size=batch_size,
        )
    payloads = _fan_out_leaves(
        node, catalog, epoch, pool, workers, record_access, stream=False
    )

    def assemble(n: PlanNode) -> NodeResult:
        if isinstance(n, _ScanNode):
            return payloads[id(n)]
        return n.combine(tuple(assemble(child) for child in n.children))

    return assemble(node)


# -- tree rendering --------------------------------------------------------


def _render_tree(node: PlanNode, line_of) -> list[str]:
    lines = [line_of(node, None)]

    def walk(n: PlanNode, prefix: str) -> None:
        for i, child in enumerate(n.children):
            last = i == len(n.children) - 1
            branch, extend = ("└─ ", "   ") if last else ("├─ ", "│  ")
            lines.append(prefix + branch + line_of(child, n))
            walk(child, prefix + extend)

    walk(node, "")
    return lines


def explain_plan(node: PlanNode, catalog) -> str:
    """EXPLAIN the node tree: one line per node with cost estimates."""
    node.validate(catalog)
    return "\n".join(_render_tree(node, lambda n, _: n.describe(catalog)))


def render_executed(node: PlanNode, result: NodeResult, catalog=None) -> str:
    """Render the executed tree: estimates plus actual RF/MF/precision."""
    return render_summary(node, summarize_result(result), catalog)


def summarize_result(result) -> tuple:
    """Compress a result tree to nested ``(rf, mf, precision, children)``.

    The report-friendly skeleton of a :class:`NodeResult`: callers
    (the catalog's ``plan_report``) can keep it around without pinning
    the materialized row matrices in memory.  A
    :class:`StreamedAggregate` already carries its skeleton (built
    from the stream's tallies) and hands it back directly.
    """
    if isinstance(result, StreamedAggregate):
        return result.summary
    return (
        result.rf,
        result.mf,
        result.precision,
        tuple(summarize_result(child) for child in result.inputs),
    )


def render_summary(node: PlanNode, summary: tuple, catalog=None) -> str:
    """Render a plan tree against a :func:`summarize_result` skeleton.

    Cost estimates come from the catalog's *current* statistics; a
    node whose source has since been dropped renders unbound (no
    estimates) instead of failing the report.
    """
    summaries: dict[int, tuple] = {}

    def pair(n: PlanNode, s: tuple) -> None:
        summaries[id(n)] = s
        for child, child_summary in zip(n.children, s[3]):
            pair(child, child_summary)

    pair(node, summary)

    def line(n: PlanNode, _parent) -> str:
        try:
            described = n.describe(catalog)
        except ReproError:
            described = n.describe(None)
        rf, mf, precision, _ = summaries[id(n)]
        rendered = f"{described} => rf={rf} mf={mf} precision={precision:.3f}"
        # Every join in the tree reports its execution footprint — the
        # walk covers *nested* join trees, not just a join at the root.
        if isinstance(n, JoinNode) and n.last_strategy is not None:
            rendered += (
                f" [{n.last_strategy}: peak_pairs={n.peak_pairs}, "
                f"peak_batch_bytes={n.peak_batch_bytes}]"
            )
        return rendered

    return "\n".join(_render_tree(node, line))


# -- compact query specs ---------------------------------------------------


@dataclass(frozen=True)
class QuerySpec:
    """Parsed form of a compact cross-table query spec string."""

    kind: str
    tables: tuple[str, ...]
    on: str = "value"
    low: int | None = None
    high: int | None = None
    block: int | None = None
    agg: str | None = None

    def render(self) -> str:
        """The canonical spec string this object parses back from."""
        options = []
        if self.kind == "join":
            options.append(f"on={self.on}")
        if self.low is not None:
            options.append(f"low={self.low}")
            options.append(f"high={self.high}")
        if self.block is not None:
            options.append(f"block={self.block}")
        if self.agg is not None:
            options.append(f"agg={self.agg}")
        spec = f"{self.kind}:{','.join(self.tables)}"
        return spec + (f":{','.join(options)}" if options else "")


def parse_query_spec(spec: str) -> QuerySpec:
    """Parse ``union:...`` / ``join:...`` into a :class:`QuerySpec`.

    Grammar (catalog binding happens later, in :func:`build_plan`)::

        spec    := kind ":" table ("," table)+ [":" option ("," option)*]
        kind    := "union" | "join"
        option  := "on=" ("value" | "epoch") | "low=" int | "high=" int
                 | "block=" int | "agg=" column

    ``block=`` (join only) streams the probe side in blocks of that
    many rows — see :class:`JoinNode`'s blocked probe mode.  ``agg=``
    (either kind) wraps the plan in an :class:`AggregateNode` over the
    named column, switching execution to the streaming engine (bare
    leaf names resolve — ``agg=value`` over a join aggregates
    ``l.value``).

    >>> parse_query_spec("join:s1,s2:on=epoch,low=0,high=50")
    QuerySpec(kind='join', tables=('s1', 's2'), on='epoch', low=0, high=50, block=None, agg=None)
    >>> parse_query_spec("join:s1,s2:block=512").block
    512
    >>> parse_query_spec("union:s1,s2:agg=value").render()
    'union:s1,s2:agg=value'
    """
    parts = [part.strip() for part in str(spec).split(":")]
    if len(parts) not in (2, 3):
        raise QueryError(
            f"bad query spec {spec!r}; expected kind:tables[:options]"
        )
    kind = parts[0]
    if kind not in ("union", "join"):
        raise QueryError(f"unknown query kind {kind!r}; use union or join")
    tables = tuple(name.strip() for name in parts[1].split(",") if name.strip())
    if len(tables) < 2:
        raise QueryError(f"{kind} spec needs at least two tables, got {tables}")
    options: dict[str, str] = {}
    if len(parts) == 3 and parts[2]:
        for item in parts[2].split(","):
            if "=" not in item:
                raise QueryError(f"bad option {item!r} in query spec {spec!r}")
            key, _, value = item.partition("=")
            options[key.strip()] = value.strip()
    unknown = set(options) - {"on", "low", "high", "block", "agg"}
    if unknown:
        raise QueryError(f"unknown query spec options {sorted(unknown)}")
    agg = options.get("agg")
    if agg is not None and not agg:
        raise QueryError(f"agg= needs a column name in query spec {spec!r}")
    on = options.get("on", "value")
    if on not in JOIN_KEYS:
        raise QueryError(f"join key must be one of {JOIN_KEYS}, got {on!r}")
    if "on" in options and kind != "join":
        raise QueryError("on= only applies to join specs")
    block = None
    if "block" in options:
        if kind != "join":
            raise QueryError("block= only applies to join specs")
        try:
            block = int(options["block"])
        except ValueError:
            raise QueryError(
                f"block must be an integer in query spec {spec!r}"
            ) from None
        if block < 1:
            raise QueryError(f"block must be >= 1, got {block}")
    low = high = None
    if ("low" in options) != ("high" in options):
        raise QueryError("query spec needs both low= and high=, or neither")
    if "low" in options:
        try:
            low, high = int(options["low"]), int(options["high"])
        except ValueError:
            raise QueryError(
                f"low/high must be integers in query spec {spec!r}"
            ) from None
        check_scan_bounds(low, high)  # reject reversed ranges up front
    return QuerySpec(
        kind=kind, tables=tables, on=on, low=low, high=high, block=block,
        agg=agg,
    )


def build_plan(catalog, spec: QuerySpec | str) -> PlanNode:
    """Bind a spec to ``catalog``: scans per table, then union or join.

    Names resolve against plain tables first, then registered sharded
    stores.  A ``join`` of more than two inputs builds a left-deep
    chain (each join output keeps the ``value``/``epoch`` columns of
    its leftmost leaf under ``l.``-prefixes, so chained keys resolve
    against the fresh right scan).
    """
    if isinstance(spec, str):
        spec = parse_query_spec(spec)

    def leaf(name: str) -> _ScanNode:
        if name in catalog:
            return TableScanNode(name, spec.low, spec.high)
        if catalog.has_sharded(name):
            return ShardedScanNode(name, spec.low, spec.high)
        raise QueryError(
            f"query spec references unknown source {name!r}; catalog has "
            f"tables {catalog.names()} and sharded {catalog.sharded_names()}"
        )

    if spec.kind == "union":
        node: PlanNode = UnionNode(*(leaf(name) for name in spec.tables))
    else:
        node = JoinNode(
            leaf(spec.tables[0]),
            leaf(spec.tables[1]),
            on=spec.on,
            block_size=spec.block,
        )
        left_key = spec.on
        for name in spec.tables[2:]:
            # Left-deep chain: the previous join buried the leftmost
            # leaf's key under one more l.-prefix; the fresh right scan
            # keys bare.
            left_key = f"l.{left_key}"
            node = JoinNode(
                node,
                leaf(name),
                on=spec.on,
                left_on=left_key,
                right_on=spec.on,
                block_size=spec.block,
            )
    if spec.agg is not None:
        node = AggregateNode(node, on=spec.agg)
    return node
