"""Selection predicates over integer columns.

The paper carves out "a well understood subspace" of SELECT-PROJECT-JOIN
queries (§2.2): range predicates over one attribute, optionally combined.
Predicates are pure value-level objects — they map a value array to a
boolean mask and know nothing about activity bitmaps, which is what lets
the executor evaluate the same predicate against both the amnesiac and
the oracle view.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from .._util.errors import QueryError

__all__ = [
    "Predicate",
    "TruePredicate",
    "RangePredicate",
    "PointPredicate",
    "AndPredicate",
    "OrPredicate",
    "NotPredicate",
]


class Predicate(ABC):
    """A boolean condition over one or more integer columns."""

    @property
    @abstractmethod
    def columns(self) -> tuple[str, ...]:
        """Names of the columns this predicate reads."""

    @abstractmethod
    def mask(self, values_by_column: dict[str, np.ndarray]) -> np.ndarray:
        """Boolean mask of rows satisfying the predicate.

        ``values_by_column`` must contain equal-length arrays for every
        column in :attr:`columns`.
        """

    def _column_values(
        self, values_by_column: dict[str, np.ndarray], name: str
    ) -> np.ndarray:
        try:
            return values_by_column[name]
        except KeyError:
            raise QueryError(
                f"predicate needs column {name!r} but executor supplied "
                f"{sorted(values_by_column)}"
            ) from None

    # Composition sugar -------------------------------------------------

    def __and__(self, other: "Predicate") -> "AndPredicate":
        return AndPredicate(self, other)

    def __or__(self, other: "Predicate") -> "OrPredicate":
        return OrPredicate(self, other)

    def __invert__(self) -> "NotPredicate":
        return NotPredicate(self)


class TruePredicate(Predicate):
    """Matches every row: the whole-table aggregate's predicate."""

    @property
    def columns(self) -> tuple[str, ...]:
        return ()

    def mask(self, values_by_column: dict[str, np.ndarray]) -> np.ndarray:
        if values_by_column:
            n = len(next(iter(values_by_column.values())))
        else:
            raise QueryError(
                "TruePredicate needs at least one column array to size its mask"
            )
        return np.ones(n, dtype=bool)

    def __repr__(self) -> str:
        return "TruePredicate()"


class RangePredicate(Predicate):
    """Half-open range ``low <= column < high``.

    This mirrors the paper's generated ranges:
    ``attr >= v - S*RANGE and attr < v + S*RANGE`` (§4.2).

    >>> p = RangePredicate("a", 2, 5)
    >>> p.mask({"a": np.array([1, 2, 4, 5])}).tolist()
    [False, True, True, False]
    """

    def __init__(self, column: str, low: int, high: int):
        if high < low:
            raise QueryError(f"range [{low}, {high}) is reversed")
        self.column = column
        self.low = int(low)
        self.high = int(high)

    @property
    def columns(self) -> tuple[str, ...]:
        return (self.column,)

    @property
    def width(self) -> int:
        """Number of integer values the range can match."""
        return self.high - self.low

    def mask(self, values_by_column: dict[str, np.ndarray]) -> np.ndarray:
        values = self._column_values(values_by_column, self.column)
        return (values >= self.low) & (values < self.high)

    def __repr__(self) -> str:
        return f"RangePredicate({self.column!r}, {self.low}, {self.high})"


class PointPredicate(Predicate):
    """Equality ``column == value`` (a width-1 range, kept for clarity)."""

    def __init__(self, column: str, value: int):
        self.column = column
        self.value = int(value)

    @property
    def columns(self) -> tuple[str, ...]:
        return (self.column,)

    def mask(self, values_by_column: dict[str, np.ndarray]) -> np.ndarray:
        values = self._column_values(values_by_column, self.column)
        return values == self.value

    def __repr__(self) -> str:
        return f"PointPredicate({self.column!r}, {self.value})"


class _Composite(Predicate):
    """Shared plumbing for boolean combinators."""

    def __init__(self, *children: Predicate):
        if not children:
            raise QueryError("composite predicate needs at least one child")
        self.children = tuple(children)

    @property
    def columns(self) -> tuple[str, ...]:
        seen: list[str] = []
        for child in self.children:
            for name in child.columns:
                if name not in seen:
                    seen.append(name)
        return tuple(seen)


class AndPredicate(_Composite):
    """Conjunction of child predicates."""

    def mask(self, values_by_column: dict[str, np.ndarray]) -> np.ndarray:
        out = self.children[0].mask(values_by_column)
        for child in self.children[1:]:
            out = out & child.mask(values_by_column)
        return out

    def __repr__(self) -> str:
        return f"AndPredicate({', '.join(map(repr, self.children))})"


class OrPredicate(_Composite):
    """Disjunction of child predicates."""

    def mask(self, values_by_column: dict[str, np.ndarray]) -> np.ndarray:
        out = self.children[0].mask(values_by_column)
        for child in self.children[1:]:
            out = out | child.mask(values_by_column)
        return out

    def __repr__(self) -> str:
        return f"OrPredicate({', '.join(map(repr, self.children))})"


class NotPredicate(Predicate):
    """Negation of a child predicate."""

    def __init__(self, child: Predicate):
        self.child = child

    @property
    def columns(self) -> tuple[str, ...]:
        return self.child.columns

    def mask(self, values_by_column: dict[str, np.ndarray]) -> np.ndarray:
        return ~self.child.mask(values_by_column)

    def __repr__(self) -> str:
        return f"NotPredicate({self.child!r})"
