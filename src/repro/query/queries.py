"""Query and result objects.

Two query groups, exactly the paper's workload (§2.2):

* :class:`RangeQuery` — "simple range queries over a database table,
  controlled by a selectivity factor S";
* :class:`AggregateQuery` — "simple aggregations over sub-ranges, e.g.
  the average (AVG)".

Results carry *both* the amnesiac answer and the oracle answer, because
the simulator "only marks tuples as either active or forgotten, which
gives us the opportunity to precisely calculate the query precision"
(§2.3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from .._util.errors import QueryError
from .predicates import Predicate, TruePredicate

__all__ = [
    "AggregateFunction",
    "RangeQuery",
    "AggregateQuery",
    "RangeResult",
    "AggregateResult",
]


class AggregateFunction(str, Enum):
    """Aggregate operators supported by the executor."""

    AVG = "avg"
    SUM = "sum"
    COUNT = "count"
    MIN = "min"
    MAX = "max"
    VAR = "var"
    STD = "std"

    def compute(self, values: np.ndarray) -> float | None:
        """Apply the operator to a value vector (None on empty input).

        COUNT of an empty selection is 0, not None: an amnesiac database
        still *answers* a count, it just answers it wrong.
        """
        if values.size == 0:
            return 0.0 if self is AggregateFunction.COUNT else None
        values = values.astype(np.float64, copy=False)
        if self is AggregateFunction.AVG:
            return float(values.mean())
        if self is AggregateFunction.SUM:
            return float(values.sum())
        if self is AggregateFunction.COUNT:
            return float(values.size)
        if self is AggregateFunction.MIN:
            return float(values.min())
        if self is AggregateFunction.MAX:
            return float(values.max())
        if self is AggregateFunction.VAR:
            return float(values.var())
        if self is AggregateFunction.STD:
            return float(values.std())
        raise QueryError(f"unhandled aggregate {self}")  # pragma: no cover

    def from_moments(self, moments) -> float | None:
        """Finalize the operator from a merged moment accumulator.

        The distributed twin of :meth:`compute`: a sharded store merges
        per-shard :class:`~repro.stats.StreamingMoments` (Chan's rule)
        and finalizes once, which keeps AVG/VAR/STD exact across shards
        — merging the final per-shard aggregates could not.  Empty
        accumulators follow :meth:`compute`'s NULL semantics (COUNT
        answers 0, everything else ``None``).
        """
        if moments.count == 0:
            return 0.0 if self is AggregateFunction.COUNT else None
        if self is AggregateFunction.AVG:
            return float(moments.mean)
        if self is AggregateFunction.SUM:
            return float(moments.total)
        if self is AggregateFunction.COUNT:
            return float(moments.count)
        if self is AggregateFunction.MIN:
            return float(moments.min)
        if self is AggregateFunction.MAX:
            return float(moments.max)
        if self is AggregateFunction.VAR:
            return float(moments.variance)
        if self is AggregateFunction.STD:
            return float(moments.std)
        raise QueryError(f"unhandled aggregate {self}")  # pragma: no cover


@dataclass(frozen=True)
class RangeQuery:
    """A selection returning the set of matching tuples."""

    predicate: Predicate

    @property
    def columns(self) -> tuple[str, ...]:
        """Columns the query reads."""
        return self.predicate.columns


@dataclass(frozen=True)
class AggregateQuery:
    """An aggregate over an optional range predicate.

    With ``predicate=None`` this is the paper's §4.3 query
    ``SELECT AVG(a) FROM t`` — maximum exposure to amnesia.  With a
    range predicate it reflects "daily life, where the focus of
    aggregation can be directed to a specific part of the database".
    """

    function: AggregateFunction
    column: str
    predicate: Predicate | None = None

    def effective_predicate(self) -> Predicate:
        """The predicate to evaluate (TruePredicate when None)."""
        return self.predicate if self.predicate is not None else TruePredicate()

    @property
    def columns(self) -> tuple[str, ...]:
        """Columns the query reads (aggregate column + predicate columns)."""
        cols = [self.column]
        if self.predicate is not None:
            for name in self.predicate.columns:
                if name not in cols:
                    cols.append(name)
        return tuple(cols)


@dataclass(frozen=True)
class RangeResult:
    """Outcome of a range query against the amnesiac + oracle views.

    Attributes mirror the paper's §2.3 metrics:

    * ``rf`` — R_F(Q), tuples returned (active matches);
    * ``mf`` — M_F(Q), tuples missed (forgotten matches);
    * ``precision`` — P_F(Q) = RF / (RF + MF), defined as 1.0 when the
      oracle result is empty (nothing could be missed).
    """

    query: RangeQuery
    active_positions: np.ndarray = field(repr=False)
    missed_positions: np.ndarray = field(repr=False)

    @property
    def rf(self) -> int:
        """Number of tuples in the (amnesiac) result."""
        return int(self.active_positions.size)

    @property
    def mf(self) -> int:
        """Number of tuples missed because they were forgotten."""
        return int(self.missed_positions.size)

    @property
    def oracle_count(self) -> int:
        """RF + MF: the complete-database result size."""
        return self.rf + self.mf

    @property
    def precision(self) -> float:
        """P_F(Q) = RF / (RF + MF); 1.0 for an empty oracle result."""
        denom = self.oracle_count
        return 1.0 if denom == 0 else self.rf / denom


@dataclass(frozen=True)
class AggregateResult:
    """Outcome of an aggregate query against both views.

    ``amnesiac_value`` is None when no active tuple matched (the DBMS
    would return SQL NULL); the oracle value is None only if nothing was
    ever inserted in the range.
    """

    query: AggregateQuery
    amnesiac_value: float | None
    oracle_value: float | None
    active_matches: int
    oracle_matches: int

    @property
    def missed_matches(self) -> int:
        """Matching tuples that were forgotten."""
        return self.oracle_matches - self.active_matches

    @property
    def relative_error(self) -> float:
        """|amnesiac - oracle| / max(|oracle|, 1).

        The denominator floor keeps the metric finite when the true
        aggregate is 0 (e.g. MIN of a serial column).  An unanswerable
        query (amnesiac NULL where the oracle has a value) counts as
        error 1.0 — complete information loss.
        """
        if self.oracle_value is None:
            return 0.0
        if self.amnesiac_value is None:
            return 1.0
        denom = max(abs(self.oracle_value), 1.0)
        return abs(self.amnesiac_value - self.oracle_value) / denom

    @property
    def precision(self) -> float:
        """1 - relative_error, clamped to [0, 1].

        The paper plots aggregate "precision" on the same axis as range
        precision (§4.3, "the graphs came out similar to Figure 3");
        this clamp makes the two directly comparable.
        """
        return max(0.0, 1.0 - self.relative_error)

    @property
    def tuple_precision(self) -> float:
        """P_F over the tuples feeding the aggregate (RF/(RF+MF))."""
        if self.oracle_matches == 0:
            return 1.0
        return self.active_matches / self.oracle_matches

    def is_exact(self, tol: float = 1e-12) -> bool:
        """True when the amnesiac answer equals the oracle answer."""
        if self.oracle_value is None:
            return self.amnesiac_value is None
        if self.amnesiac_value is None:
            return False
        return math.isclose(
            self.amnesiac_value, self.oracle_value, rel_tol=tol, abs_tol=tol
        )
