"""Serving layer: the catalog as a long-lived multi-tenant service.

See :mod:`repro.serving.server` for the doctrine.  Quick start::

    from repro.serving import QueryService, serve_in_thread

    service = QueryService(catalog)
    service.register_tenant("alice", tables={"obs"})
    server, thread = serve_in_thread(service)          # HTTP on a thread
    token = service.open_session("alice").token        # or over the wire
"""

from .plan_cache import PlanCache, predicate_shape
from .result_cache import ResultCache, ResultEntry, guard_bounds
from .retry import RetryPolicy, ServiceClient
from .server import (
    CatalogServer,
    QueryService,
    make_server,
    predicate_from_json,
    run_server,
    serve_in_thread,
)
from .sessions import Session, SessionManager, TenantScope

__all__ = [
    "PlanCache",
    "predicate_shape",
    "ResultCache",
    "ResultEntry",
    "guard_bounds",
    "QueryService",
    "CatalogServer",
    "make_server",
    "serve_in_thread",
    "run_server",
    "predicate_from_json",
    "RetryPolicy",
    "ServiceClient",
    "Session",
    "SessionManager",
    "TenantScope",
]
