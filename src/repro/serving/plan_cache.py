"""Plan cache: reuse access-path decisions while statistics stand still.

Planning is cheap but not free — ``cost`` mode prices every applicable
path per query, and a serving workload repeats the same predicate
shapes thousands of times.  The cache keys on ``(source, predicate
shape)`` and stamps each entry with the planner's
:attr:`~repro.query.planner.QueryPlanner.generation` at plan time.  A
lookup only returns the entry while the planner still reports the same
generation; any observer event (insert, forget), index registration or
value-bound declaration bumps the generation, so a stale plan can never
be executed — it is silently re-planned, never wrongly reused.

A cached plan carrying a since-dropped index is evicted at lookup
(index drops do not bump the generation — the index object flips its
own ``is_dropped`` flag instead).

Correctness note: plans only choose *how* a predicate is evaluated;
every access path returns bit-identical results (the repo's core
equivalence invariant), so even a wrongly reused plan could not corrupt
a result — the generation key exists so cached executions also match
the planner's *current* choice, keeping EXPLAIN output and cost
accounting honest.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from .._util.errors import QueryError
from ..query.predicates import (
    AndPredicate,
    NotPredicate,
    OrPredicate,
    PointPredicate,
    Predicate,
    RangePredicate,
    TruePredicate,
)

__all__ = ["predicate_shape", "PlanCache"]


def predicate_shape(predicate: Predicate) -> tuple:
    """A hashable structural key for ``predicate``.

    Two predicates with equal shapes select exactly the same rows, so
    the shape (plus the source name) is a sound cache key for both the
    plan and the result cache.
    """
    if isinstance(predicate, RangePredicate):
        return ("range", predicate.column, predicate.low, predicate.high)
    if isinstance(predicate, PointPredicate):
        return ("point", predicate.column, predicate.value)
    if isinstance(predicate, AndPredicate):
        return ("and", *(predicate_shape(c) for c in predicate.children))
    if isinstance(predicate, OrPredicate):
        return ("or", *(predicate_shape(c) for c in predicate.children))
    if isinstance(predicate, NotPredicate):
        return ("not", predicate_shape(predicate.child))
    if isinstance(predicate, TruePredicate):
        return ("true",)
    raise QueryError(
        f"cannot derive a cache shape for {type(predicate).__name__}"
    )


class PlanCache:
    """Generation-keyed cache of :class:`~repro.query.planner.QueryPlan`.

    ``max_entries`` bounds the cache LRU-style (reads refresh recency).
    All methods are thread-safe; the service nevertheless calls them
    under the source lock, which is what makes the check-then-execute
    window sound — the generation cannot move between the lookup and
    the execution it validates.
    """

    def __init__(self, max_entries: int = 1024):
        if max_entries < 1:
            raise QueryError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = int(max_entries)
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, tuple] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def lookup(self, source: str, shape: tuple, generation: tuple):
        """The cached plan for ``(source, shape)`` at ``generation``.

        Returns ``None`` (and evicts) when the entry was planned under
        a different generation or references a dropped index.
        """
        key = (source, shape)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            cached_generation, plan = entry
            stale = cached_generation != generation or (
                plan.index is not None and plan.index.is_dropped
            )
            if stale:
                del self._entries[key]
                self.invalidations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return plan

    def store(self, source: str, shape: tuple, generation: tuple, plan) -> None:
        """Cache ``plan`` for ``(source, shape)`` at ``generation``."""
        key = (source, shape)
        with self._lock:
            self._entries[key] = (generation, plan)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def invalidate_source(self, source: str) -> int:
        """Drop every entry for ``source`` (table dropped/recreated)."""
        with self._lock:
            stale = [key for key in self._entries if key[0] == source]
            for key in stale:
                del self._entries[key]
            self.invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        """Drop everything (counters survive)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """Counters for dashboards and tests."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "hit_rate": (self.hits / total) if total else 0.0,
            }
