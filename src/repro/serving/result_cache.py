"""Result cache with amnesia-aware invalidation.

The serving layer's answer cache must respect the repo's core
invariant: a cached answer may be returned **iff it is bit-identical
to a fresh execution**.  Forgetting is what makes that hard — any
forget event can silently move matching rows from the amnesiac result
(R_F) to the missed side (M_F).  Instead of flushing everything on
every event, each entry records two things at store time:

* the **cohort set** its matches (active and missed) live in — a
  forget event delivers the newly flipped positions through the
  :class:`~repro.storage.table.TableObserver` protocol, and only
  entries whose cohort sets intersect the flipped positions' cohorts
  are invalidated (any row whose activity changed is in the entry's
  match set, hence its cohort is recorded — so the intersection test
  is sound, merely conservative at cohort granularity);
* an **insert guard**: the predicate's per-column bounds, when it has
  them.  A new batch whose values provably fall outside some bound
  cannot join the match set, so the entry survives the epoch advance;
  entries without extractable bounds (``TruePredicate``, ``OR``,
  ``NOT``) are dropped on any insert.

Everything else — access-count replay on hits, drop/recreate purges —
lives in the service (:mod:`repro.serving.server`).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from .._util.errors import QueryError
from ..query.planner import _and_bounds, _range_bounds
from ..query.predicates import Predicate

__all__ = ["guard_bounds", "ResultEntry", "ResultCache"]


def guard_bounds(predicate: Predicate) -> tuple | None:
    """Per-column bounds that can prove an inserted batch irrelevant.

    ``((column, low, high), ...)`` such that a row satisfying the
    predicate must satisfy **every** conjunct — so a batch entirely
    outside any one conjunct cannot change the result.  ``None`` when
    the predicate has no such decomposition (conservative: every
    insert invalidates).
    """
    bounds = _range_bounds(predicate)
    if bounds is not None:
        return (bounds,)
    merged = _and_bounds(predicate)
    if merged is not None:
        return tuple(merged)
    return None


@dataclass
class ResultEntry:
    """One cached answer plus the metadata proving it still fresh."""

    payload: dict
    #: Active match positions at store time — replayed through
    #: ``table.record_access`` on every hit, so policy-visible state
    #: evolves exactly as a fresh execution would evolve it.
    active_positions: np.ndarray = field(repr=False)
    #: Cohort ordinals of every match (active and missed).
    cohorts: frozenset = field(repr=False)
    #: Insert guard (see :func:`guard_bounds`); ``None`` = no guard.
    guard: tuple | None = None


class _Watcher:
    """Table observer funnelling events into the cache for one source."""

    def __init__(self, cache: "ResultCache", source: str):
        self._cache = cache
        self._source = source

    def on_insert(self, table, positions: np.ndarray) -> None:
        self._cache._on_insert(self._source, table, positions)

    def on_forget(self, table, positions: np.ndarray) -> None:
        self._cache._on_forget(self._source, table, positions)


class ResultCache:
    """Cohort-tracked answer cache over catalog tables.

    ``max_entries`` bounds the total entry count LRU-style.  All
    methods are thread-safe; the observer callbacks additionally run
    under the table's source lock (inserts and forgets are serialized
    there), so an invalidation can never race the store that made the
    entry — the service stores entries under the same lock.
    """

    def __init__(self, max_entries: int = 4096):
        if max_entries < 1:
            raise QueryError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = int(max_entries)
        self._lock = threading.Lock()
        #: (source, key) -> ResultEntry
        self._entries: OrderedDict[tuple, ResultEntry] = OrderedDict()
        self._watched: dict[str, _Watcher] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    # -- wiring ---------------------------------------------------------

    def watch(self, source: str, table) -> None:
        """Subscribe to ``table``'s events as ``source`` (idempotent)."""
        with self._lock:
            if source in self._watched:
                return
            watcher = _Watcher(self, source)
            self._watched[source] = watcher
        # No backfill: an empty cache has nothing to invalidate, and a
        # backfilled on_insert would replay already-forgotten rows.
        table.add_observer(watcher, backfill=False)

    def unwatch(self, source: str, table=None) -> None:
        """Stop watching ``source`` and purge its entries."""
        with self._lock:
            watcher = self._watched.pop(source, None)
        if watcher is not None and table is not None:
            table.remove_observer(watcher)
        self.invalidate_source(source)

    # -- cache protocol -------------------------------------------------

    def lookup(self, source: str, key: tuple) -> ResultEntry | None:
        """The live entry for ``(source, key)``, or ``None``."""
        with self._lock:
            entry = self._entries.get((source, key))
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end((source, key))
            self.hits += 1
            return entry

    def store(
        self,
        source: str,
        key: tuple,
        payload: dict,
        active_positions: np.ndarray,
        missed_positions: np.ndarray,
        table,
        guard: tuple | None,
    ) -> ResultEntry:
        """Cache ``payload``, recording the cohorts its matches touch."""
        matches = np.concatenate([active_positions, missed_positions])
        cohorts = frozenset(
            int(c) for c in np.unique(table.cohorts.index_of(matches))
        )
        entry = ResultEntry(
            payload=dict(payload),
            active_positions=np.array(active_positions, dtype=np.int64),
            cohorts=cohorts,
            guard=guard,
        )
        with self._lock:
            self._entries[(source, key)] = entry
            self._entries.move_to_end((source, key))
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return entry

    def invalidate_source(self, source: str) -> int:
        """Drop every entry for ``source`` (dropped or recreated)."""
        with self._lock:
            stale = [key for key in self._entries if key[0] == source]
            for key in stale:
                del self._entries[key]
            self.invalidations += len(stale)
            return len(stale)

    # -- observer plumbing ---------------------------------------------

    def _on_insert(self, source: str, table, positions: np.ndarray) -> None:
        """Epoch advance: keep only entries whose guard excludes it."""
        if positions.size == 0:
            return
        extrema: dict[str, tuple[int, int]] = {}

        def excluded(column: str, low: int, high: int) -> bool:
            if column not in extrema:
                values = table.values(column)[positions]
                extrema[column] = (int(values.min()), int(values.max()))
            lo_v, hi_v = extrema[column]
            return hi_v < low or lo_v >= high

        with self._lock:
            stale = []
            for key, entry in self._entries.items():
                if key[0] != source:
                    continue
                if entry.guard is not None and any(
                    excluded(column, low, high)
                    for column, low, high in entry.guard
                ):
                    continue  # provably untouched by the new batch
                stale.append(key)
            for key in stale:
                del self._entries[key]
            self.invalidations += len(stale)

    def _on_forget(self, source: str, table, positions: np.ndarray) -> None:
        """Forget event: invalidate exactly the intersecting cohort sets."""
        if positions.size == 0:
            return
        touched = frozenset(
            int(c) for c in np.unique(table.cohorts.index_of(positions))
        )
        with self._lock:
            stale = [
                key
                for key, entry in self._entries.items()
                if key[0] == source and entry.cohorts & touched
            ]
            for key in stale:
                del self._entries[key]
            self.invalidations += len(stale)

    # -- introspection --------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def entries_for(self, source: str) -> int:
        """Live entry count for one source (tests use this)."""
        with self._lock:
            return sum(1 for key in self._entries if key[0] == source)

    def stats(self) -> dict:
        """Counters for dashboards and tests."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "hit_rate": (self.hits / total) if total else 0.0,
            }
