"""Client-side resilience: deterministic retries with backoff.

The server half of the resilience contract sheds load with 429/503 +
``Retry-After`` and drops the connection outright when a worker
"crashes" (see :mod:`repro.serving.server`); this module is the client
half:

* :class:`RetryPolicy` — exponential backoff with deterministic,
  seeded jitter.  Jitter de-synchronizes a fleet of retrying clients
  (no thundering herd), and seeding it keeps every test replayable:
  the same policy object produces the same delay sequence every run.
  A server-supplied ``Retry-After`` acts as a *floor* on the computed
  delay, never a replacement — the client still backs off further on
  repeated failures.
* :class:`ServiceClient` — a minimal stdlib (:mod:`http.client`)
  JSON client for :class:`~repro.serving.server.CatalogServer` that
  retries torn connections and 429/503 responses under a
  :class:`RetryPolicy`, and raises
  :class:`~repro._util.errors.TransientFault` only when the budget is
  exhausted.  Each attempt uses a fresh connection: after a dropped
  socket there is nothing to reuse.
"""

from __future__ import annotations

import http.client
import json
import time

import numpy as np

from .._util.errors import ServingError, TransientFault
from .._util.rng import DEFAULT_SEED, derive_seed

__all__ = ["RetryPolicy", "ServiceClient"]


class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    Parameters
    ----------
    attempts:
        Total tries including the first (so ``attempts=1`` never
        retries).
    base_delay, multiplier, max_delay:
        Attempt ``k`` (0-based) backs off
        ``min(max_delay, base_delay * multiplier**k)`` seconds before
        jitter.
    jitter:
        Fraction of the delay added as seeded-uniform noise: the
        actual delay is ``delay * (1 + U[0, jitter))``.
    seed:
        Root seed for the jitter stream — same seed, same delays.
    sleep:
        Injectable sleep (tests pass a recorder; production the real
        :func:`time.sleep`).
    """

    def __init__(
        self,
        attempts: int = 5,
        *,
        base_delay: float = 0.05,
        multiplier: float = 2.0,
        max_delay: float = 2.0,
        jitter: float = 0.5,
        seed: int = DEFAULT_SEED,
        sleep=time.sleep,
    ):
        if attempts < 1:
            raise ServingError(f"attempts must be >= 1, got {attempts}")
        if base_delay < 0 or max_delay < 0 or jitter < 0:
            raise ServingError("delays and jitter must be non-negative")
        self.attempts = int(attempts)
        self.base_delay = float(base_delay)
        self.multiplier = float(multiplier)
        self.max_delay = float(max_delay)
        self.jitter = float(jitter)
        self._rng = np.random.default_rng(derive_seed(seed, "retry-jitter"))
        self._sleep = sleep

    def backoff(self, attempt: int, retry_after: float | None = None) -> float:
        """Delay before retry number ``attempt`` (0-based), in seconds.

        ``retry_after`` (the server's header, when present) floors the
        jittered exponential delay: the client never comes back sooner
        than the server asked, but still backs off further on its own.
        """
        delay = min(self.max_delay, self.base_delay * self.multiplier**attempt)
        delay *= 1.0 + self.jitter * float(self._rng.random())
        if retry_after is not None:
            delay = max(delay, float(retry_after))
        return delay

    def call(self, fn, *, retry_on=(TransientFault,)):
        """Run ``fn()`` under this policy.

        Retries on the ``retry_on`` exception types, sleeping
        :meth:`backoff` between attempts (honoring the exception's
        ``retry_after`` attribute when it carries one).  The final
        failure propagates unchanged.
        """
        for attempt in range(self.attempts):
            try:
                return fn()
            except retry_on as exc:
                if attempt == self.attempts - 1:
                    raise
                retry_after = getattr(exc, "retry_after", None)
                self._sleep(self.backoff(attempt, retry_after))
        raise AssertionError("unreachable")  # pragma: no cover


#: Connection-level failures worth a retry: the server dropped or tore
#: the socket (a "crashed" worker) before a complete reply arrived.
_TORN_CONNECTION = (
    ConnectionError,
    http.client.BadStatusLine,
    http.client.ImproperConnectionState,
    http.client.IncompleteRead,
)


class ServiceClient:
    """Retrying JSON client for one :class:`CatalogServer` endpoint.

    ``request`` POSTs one request dict and returns the response dict;
    torn connections and 429/503 replies are retried under ``policy``,
    honoring ``Retry-After``.  Other error statuses raise
    :class:`~repro._util.errors.ServingError` immediately (a 403 will
    not succeed on retry).  When the retry budget runs out the last
    transient failure surfaces as
    :class:`~repro._util.errors.TransientFault`.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        policy: RetryPolicy | None = None,
        timeout: float = 10.0,
    ):
        self.host = host
        self.port = int(port)
        self.policy = policy if policy is not None else RetryPolicy()
        self.timeout = float(timeout)

    def _roundtrip(self, method: str, path: str, payload: dict | None) -> dict:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None if payload is None else json.dumps(payload).encode()
            headers = {} if body is None else {"Content-Type": "application/json"}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
            status = response.status
            retry_after = response.getheader("Retry-After")
        finally:
            conn.close()
        if status in (429, 503):
            fault = TransientFault(
                f"{method} {path} returned {status}: {data.decode(errors='replace')}"
            )
            fault.retry_after = (
                float(retry_after) if retry_after is not None else None
            )
            raise fault
        try:
            decoded = json.loads(data)
        except ValueError as exc:
            raise ServingError(
                f"{method} {path} returned unparseable body: {data!r}"
            ) from exc
        if status != 200:
            raise ServingError(
                f"{method} {path} returned {status}: "
                f"{decoded.get('error')}: {decoded.get('detail')}"
            )
        return decoded

    def request(self, payload: dict) -> dict:
        """POST one request dict; returns the response dict."""

        def attempt() -> dict:
            try:
                return self._roundtrip("POST", "/", payload)
            except _TORN_CONNECTION as exc:
                raise TransientFault(f"connection torn: {exc}") from exc

        return self.policy.call(attempt)

    def health(self) -> dict:
        """GET ``/health`` (no retries — a probe should not mask state)."""
        return self._roundtrip("GET", "/health", None)

    def stats(self) -> dict:
        """GET ``/stats``."""
        return self._roundtrip("GET", "/stats", None)
