"""The catalog as a long-lived service.

Two layers:

* :class:`QueryService` — the transport-independent core: sessions and
  tenant scoping (:mod:`repro.serving.sessions`), admission control (a
  bounded in-flight semaphore), per-tenant traffic accounting, and the
  two caches (:mod:`repro.serving.plan_cache`,
  :mod:`repro.serving.result_cache`).  Requests and responses are plain
  dicts, so tests and embedders can drive it without sockets.
* :class:`CatalogServer` — a wire-simple HTTP/JSON front end on the
  stdlib's threaded :class:`http.server.ThreadingHTTPServer` (no new
  dependencies): ``POST /`` carries one JSON request, ``GET /health``
  and ``GET /stats`` are unauthenticated probes.  Serving-layer errors
  map to status codes (401 unknown session, 403 out of scope, 429
  admission, 400 malformed, 500 internal).

Correctness doctrine (the serving twin of the equivalence harness):
every cache hit is **bit-identical** to a fresh execution.  The result
cache guarantees it through cohort-set invalidation (see
:mod:`repro.serving.result_cache`); the plan cache through generation
keying (see :mod:`repro.serving.plan_cache`); and on every hit the
entry's active positions are replayed through
``table.record_access``, so the amnesia policies observe exactly the
access stream an uncached service would have produced.  ``paranoid=
True`` additionally re-executes every hit under the same source lock
and raises :class:`~repro._util.errors.ServingError` on any mismatch —
the smoke tests run paranoid, so "zero stale answers" is asserted, not
assumed.

Resilience doctrine: the service degrades before it dies.  Admission
control rejects with 429 + ``Retry-After`` instead of queueing without
bound; per-request deadlines (``make_server(..., deadline=...)``)
abort a wedged handler with 503 instead of occupying its slot forever;
sustained overload flips a *degraded mode* that sheds the paranoid
re-execution and result-cache writes — accuracy scaffolding — before
it would ever shed queries; and ``GET /health`` surfaces in-flight
depth plus the degraded flag so a load balancer can act on the same
signals.  :class:`~repro.serving.retry.RetryPolicy` is the client half
of the contract: exponential backoff with deterministic jitter,
honoring ``Retry-After``.
"""

from __future__ import annotations

import hashlib
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from .._util.errors import (
    AdmissionError,
    QueryError,
    ReproError,
    SchemaError,
    ScopeError,
    ServingError,
    SessionError,
    TransientFault,
)
from ..faults import SERVE_HANDLE, SERVE_QUERY, FaultInjected, fault_point
from ..query.predicates import (
    AndPredicate,
    NotPredicate,
    OrPredicate,
    PointPredicate,
    Predicate,
    RangePredicate,
    TruePredicate,
)
from ..query.queries import AggregateFunction, AggregateQuery, RangeQuery
from .plan_cache import PlanCache, predicate_shape
from .result_cache import ResultCache, guard_bounds
from .sessions import SessionManager, TenantScope

__all__ = [
    "QueryService",
    "CatalogServer",
    "make_server",
    "serve_in_thread",
    "run_server",
    "predicate_from_json",
]


def predicate_from_json(obj) -> Predicate:
    """Build a predicate from its JSON form.

    ``{"type": "range", "column": c, "low": l, "high": h}`` /
    ``{"type": "point", "column": c, "value": v}`` / ``{"type": "true"}``
    and the combinators ``and`` / ``or`` (``"children": [...]``) and
    ``not`` (``"child": {...}``).
    """
    if not isinstance(obj, dict) or "type" not in obj:
        raise QueryError(f"malformed predicate {obj!r}")
    kind = obj["type"]
    try:
        if kind == "range":
            return RangePredicate(obj["column"], int(obj["low"]), int(obj["high"]))
        if kind == "point":
            return PointPredicate(obj["column"], int(obj["value"]))
        if kind == "true":
            return TruePredicate()
        if kind == "and":
            return AndPredicate(*map(predicate_from_json, obj["children"]))
        if kind == "or":
            return OrPredicate(*map(predicate_from_json, obj["children"]))
        if kind == "not":
            return NotPredicate(predicate_from_json(obj["child"]))
    except KeyError as exc:
        raise QueryError(f"predicate {kind!r} lacks field {exc}") from None
    raise QueryError(f"unknown predicate type {kind!r}")


def _fingerprint(positions: np.ndarray) -> str:
    """Order-sensitive digest of a position array (bit-identity proof)."""
    data = np.ascontiguousarray(positions, dtype=np.int64).tobytes()
    return hashlib.sha1(data).hexdigest()


class QueryService:
    """Multi-tenant query service over one :class:`~repro.storage.Catalog`.

    Parameters
    ----------
    catalog:
        The catalog to serve.  The service subscribes to its lifecycle
        hooks, so dropping or recreating a source purges both caches
        for that name.
    max_inflight:
        Admission-control bound: data operations beyond this many
        concurrently in flight are rejected with
        :class:`~repro._util.errors.AdmissionError` (HTTP 429) instead
        of queueing without bound.  Session management is always
        admitted.
    paranoid:
        Verify every result-cache hit against a fresh execution under
        the same source lock; raise ``ServingError`` on mismatch.
    degrade_after:
        Graceful-degradation trigger: after this many consecutive
        admissions at or above the high-water depth (3/4 of
        ``max_inflight``), the service enters *degraded mode* — it
        sheds the paranoid re-execution and stops writing the result
        cache (accuracy scaffolding) while still answering every
        admitted query.  Depth falling to the low-water mark (1/4)
        exits the mode; the hysteresis stops flapping.  ``/health``
        surfaces the flag.
    """

    def __init__(
        self,
        catalog,
        *,
        max_inflight: int = 64,
        plan_cache: PlanCache | None = None,
        result_cache: ResultCache | None = None,
        paranoid: bool = False,
        degrade_after: int = 8,
    ):
        if max_inflight < 1:
            raise ServingError(f"max_inflight must be >= 1, got {max_inflight}")
        if degrade_after < 1:
            raise ServingError(
                f"degrade_after must be >= 1, got {degrade_after}"
            )
        self.catalog = catalog
        self.paranoid = bool(paranoid)
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()
        self.result_cache = (
            result_cache if result_cache is not None else ResultCache()
        )
        self.sessions = SessionManager()
        self._admission = threading.BoundedSemaphore(int(max_inflight))
        self.max_inflight = int(max_inflight)
        self.degrade_after = int(degrade_after)
        self._high_water = max(1, (3 * int(max_inflight)) // 4)
        self._low_water = int(max_inflight) // 4
        self._inflight = 0
        self._overload_streak = 0
        self._degraded = False
        self._shed_writes = 0
        self._tenants: dict[str, TenantScope] = {}
        self._traffic_lock = threading.Lock()
        self._traffic: dict[str, dict] = {}
        self._rejected = 0
        self._stale_hits = 0
        catalog.add_lifecycle_hook(self._on_lifecycle)

    # -- lifecycle ------------------------------------------------------

    def _on_lifecycle(self, event: str, name: str) -> None:
        """Catalog hook: shed all cached state of a dropped/reused name."""
        self.plan_cache.invalidate_source(name)
        self.result_cache.unwatch(name)

    def close(self) -> None:
        """Detach from the catalog and close every session."""
        self.catalog.remove_lifecycle_hook(self._on_lifecycle)
        self.sessions.close_all()

    # -- tenants & sessions ---------------------------------------------

    def register_tenant(
        self,
        tenant: str,
        *,
        tables=None,
        value_bounds: dict | None = None,
    ) -> TenantScope:
        """Declare a tenant and its scope; returns the scope."""
        scope = TenantScope(
            tables=None if tables is None else frozenset(tables),
            value_bounds=None
            if value_bounds is None
            else {
                column: (int(low), int(high))
                for column, (low, high) in value_bounds.items()
            },
        )
        self._tenants[tenant] = scope
        return scope

    def open_session(self, tenant: str):
        """Open a session for a registered tenant; returns it."""
        scope = self._tenants.get(tenant)
        if scope is None:
            raise SessionError(
                f"unknown tenant {tenant!r} "
                f"(registered: {sorted(self._tenants)})"
            )
        return self.sessions.open(tenant, scope)

    # -- request entry point --------------------------------------------

    def handle(self, request: dict) -> dict:
        """Serve one request dict; returns the response dict.

        Raises the typed serving errors — the HTTP layer maps them to
        status codes; embedded callers catch them directly.
        """
        if not isinstance(request, dict) or "op" not in request:
            raise QueryError("request must be an object with an 'op' field")
        op = request["op"]
        if op == "open_session":
            session = self.open_session(str(request.get("tenant", "")))
            return {"ok": True, "token": session.token, "tenant": session.tenant}
        if op == "close_session":
            self.sessions.close(str(request.get("token", "")))
            return {"ok": True}
        if op == "stats":
            return self.stats()
        session = self.sessions.get(str(request.get("token", "")))
        if not self._admission.acquire(blocking=False):
            with self._traffic_lock:
                self._rejected += 1
                self._tenant_counters(session.tenant)["rejected"] += 1
            raise AdmissionError(
                f"service at capacity ({self.max_inflight} in flight)"
            )
        try:
            with self._traffic_lock:
                session.requests += 1
                self._inflight += 1
                self._note_load_locked()
            fault_point(SERVE_HANDLE)
            if op == "query":
                return self._query(session, request)
            if op == "ingest":
                return self._ingest(session, request)
            if op == "forget":
                return self._forget(session, request)
            if op == "explain":
                return self._explain(session, request)
            raise QueryError(f"unknown operation {op!r}")
        finally:
            self._admission.release()
            with self._traffic_lock:
                self._inflight -= 1

    def _note_load_locked(self) -> None:
        """Track sustained overload; caller holds ``_traffic_lock``.

        Hysteresis: ``degrade_after`` consecutive admissions at or
        above the high-water depth enter degraded mode; only falling
        back to the low-water depth exits it.  In between, the mode
        holds whatever it was — no flapping at the boundary.
        """
        if self._inflight >= self._high_water:
            self._overload_streak += 1
            if self._overload_streak >= self.degrade_after:
                self._degraded = True
        else:
            self._overload_streak = 0
            if self._inflight <= self._low_water:
                self._degraded = False

    @property
    def degraded(self) -> bool:
        """Is the service currently shedding accuracy scaffolding?"""
        with self._traffic_lock:
            return self._degraded

    def health(self) -> dict:
        """Liveness probe payload: load and degradation signals.

        ``inflight`` is the instantaneous admitted-request depth,
        ``degraded`` the graceful-degradation flag, ``rejected`` and
        ``shed_writes`` the cumulative shed counters — everything a
        load balancer needs to route around a hot replica.
        """
        with self._traffic_lock:
            return {
                "ok": True,
                "inflight": self._inflight,
                "max_inflight": self.max_inflight,
                "degraded": self._degraded,
                "rejected": self._rejected,
                "shed_writes": self._shed_writes,
            }

    # -- scoping --------------------------------------------------------

    def _tenant_counters(self, tenant: str) -> dict:
        return self._traffic.setdefault(
            tenant,
            {
                "queries": 0,
                "cache_hits": 0,
                "ingests": 0,
                "forgets": 0,
                "rows_returned": 0,
                "rows_ingested": 0,
                "rows_forgotten": 0,
                "rejected": 0,
            },
        )

    def _check_query_scope(self, session, table, predicate: Predicate) -> None:
        """Enforce the tenant's value clamps on a query predicate."""
        scope = session.scope
        if not scope.value_bounds:
            return
        guard = guard_bounds(predicate)
        by_column = {} if guard is None else {c: (lo, hi) for c, lo, hi in guard}
        for column in scope.value_bounds:
            if not table.has_column(column):
                continue
            if column not in by_column:
                raise ScopeError(
                    f"tenant {session.tenant!r} is clamped on {column!r}: "
                    "queries must carry provable bounds on it"
                )
            low, high = by_column[column]
            scope.check_values(session.tenant, column, low, high)

    # -- query path -----------------------------------------------------

    def _parse_query(self, request: dict):
        kind = request.get("kind", "range")
        raw = request.get("predicate")  # absent and null both mean "all"
        predicate = predicate_from_json(
            raw if raw is not None else {"type": "true"}
        )
        if kind == "range":
            query = RangeQuery(predicate)
            key = ("range", predicate_shape(predicate))
        elif kind == "aggregate":
            try:
                function = AggregateFunction(str(request["function"]))
                column = str(request["column"])
            except KeyError as exc:
                raise QueryError(f"aggregate query lacks field {exc}") from None
            except ValueError:
                raise QueryError(
                    f"unknown aggregate function {request.get('function')!r}"
                ) from None
            bare = request.get("predicate") is None
            query = AggregateQuery(function, column, None if bare else predicate)
            key = ("agg", function.value, column, predicate_shape(predicate))
        else:
            raise QueryError(f"unknown query kind {kind!r}")
        return query, key

    def _execute(self, table, query, epoch: int, *, plan=None):
        """Planner-routed execution mirroring the catalog executor.

        Same validation, same ``match``, same access accounting, same
        aggregate arithmetic — the serving equivalence tests pin the
        outputs to :meth:`Catalog.execute` across all plan/stats modes,
        so this mirror cannot drift silently.  Returns
        ``(payload, active, missed)``.
        """
        if table.total_rows == 0:
            raise QueryError(f"table {table.name!r} is empty")
        planner = self.catalog.planner(table.name)
        if isinstance(query, RangeQuery):
            if not query.columns:
                raise QueryError("range query predicate references no column")
            active, missed, _ = planner.match(
                query.predicate, query.columns, plan=plan
            )
            table.record_access(active, epoch)
            rf, mf = int(active.size), int(missed.size)
            payload = {
                "kind": "range",
                "rf": rf,
                "mf": mf,
                "oracle_count": rf + mf,
                "precision": 1.0 if rf + mf == 0 else rf / (rf + mf),
            }
        else:
            if not table.has_column(query.column):
                raise QueryError(
                    f"aggregate column {query.column!r} not in table "
                    f"{table.name!r}"
                )
            active, missed, _ = planner.match(
                query.effective_predicate(), query.columns, plan=plan
            )
            table.record_access(active, epoch)
            values = table.values(query.column)
            amnesiac = query.function.compute(values[active])
            oracle = query.function.compute(
                values[np.concatenate([active, missed])]
            )
            payload = {
                "kind": "aggregate",
                "function": query.function.value,
                "column": query.column,
                "amnesiac_value": amnesiac,
                "oracle_value": oracle,
                "active_matches": int(active.size),
                "oracle_matches": int(active.size + missed.size),
            }
        payload["fingerprint"] = {
            "active": _fingerprint(active),
            "missed": _fingerprint(missed),
        }
        return payload, active, missed

    def _query(self, session, request: dict) -> dict:
        name = str(request.get("source", ""))
        session.scope.check_source(session.tenant, name)
        query, key = self._parse_query(request)
        predicate = (
            query.predicate
            if isinstance(query, RangeQuery)
            else query.effective_predicate()
        )
        # Nothing is mutated yet — no lock held, no access recorded —
        # so a crash injected here retries bit-identically.
        fault_point(SERVE_QUERY)
        degraded = self.degraded
        with self.catalog.source_lock(name):
            table = self.catalog.get(name)
            self._check_query_scope(session, table, predicate)
            self.result_cache.watch(name, table)
            epoch = max(table.cohorts.latest_epoch, 0)
            entry = self.result_cache.lookup(name, key)
            if entry is not None:
                # Degraded mode sheds the paranoid re-execution (the
                # most expensive accuracy scaffolding) before anything
                # else; the cohort-invalidated cache entry is still
                # correct, just no longer double-checked.
                if self.paranoid and not degraded:
                    # Fresh execution does the access recording; the
                    # two payloads must be bit-identical or the cache
                    # broke its contract.
                    fresh, _, _ = self._execute(table, query, epoch)
                    if fresh != entry.payload:
                        with self._traffic_lock:
                            self._stale_hits += 1
                        raise ServingError(
                            f"stale cache hit on {name!r}: cached "
                            f"{entry.payload} != fresh {fresh}"
                        )
                else:
                    table.record_access(entry.active_positions, epoch)
                payload = entry.payload
                cached = True
            else:
                planner = self.catalog.planner(name)
                shape = (
                    key[-1],
                    tuple(query.columns),
                )  # predicate shape + projected columns
                generation = planner.generation
                plan = self.plan_cache.lookup(name, shape, generation)
                if plan is None:
                    plan = planner.plan(predicate)
                    self.plan_cache.store(name, shape, generation, plan)
                payload, active, missed = self._execute(
                    table, query, epoch, plan=plan
                )
                if degraded:
                    # Shed the cache write, not the query: the answer
                    # still ships, the service just stops investing in
                    # future hits while overloaded.
                    with self._traffic_lock:
                        self._shed_writes += 1
                else:
                    self.result_cache.store(
                        name,
                        key,
                        payload,
                        active,
                        missed,
                        table,
                        guard_bounds(predicate),
                    )
                cached = False
        with self._traffic_lock:
            counters = self._tenant_counters(session.tenant)
            counters["queries"] += 1
            counters["cache_hits"] += int(cached)
            counters["rows_returned"] += int(
                payload.get("rf", payload.get("active_matches", 0))
            )
        response = dict(payload)
        response.update(ok=True, cached=cached, source=name, epoch=epoch)
        return response

    def _explain(self, session, request: dict) -> dict:
        name = str(request.get("source", ""))
        session.scope.check_source(session.tenant, name)
        query, _ = self._parse_query(request)
        with self.catalog.source_lock(name):
            plan = self.catalog.plan(name, query)
        return {
            "ok": True,
            "source": name,
            "mode": plan.mode,
            "plan": plan.describe(),
        }

    # -- write path -----------------------------------------------------

    def _ingest(self, session, request: dict) -> dict:
        name = str(request.get("source", ""))
        session.scope.check_source(session.tenant, name)
        rows = request.get("rows")
        if not isinstance(rows, dict) or not rows:
            raise QueryError("ingest needs a non-empty 'rows' column mapping")
        scope = session.scope
        if scope.value_bounds:
            for column, values in rows.items():
                if column in scope.value_bounds and values:
                    scope.check_values(
                        session.tenant,
                        column,
                        int(min(values)),
                        int(max(values)) + 1,
                    )
        with self.catalog.source_lock(name):
            table = self.catalog.get(name)
            self.result_cache.watch(name, table)
            epoch = table.cohorts.latest_epoch + 1
            positions = table.insert_batch(epoch, rows)
        with self._traffic_lock:
            counters = self._tenant_counters(session.tenant)
            counters["ingests"] += 1
            counters["rows_ingested"] += int(positions.size)
        return {
            "ok": True,
            "source": name,
            "inserted": int(positions.size),
            "epoch": epoch,
        }

    def _forget(self, session, request: dict) -> dict:
        name = str(request.get("source", ""))
        session.scope.check_source(session.tenant, name)
        with self.catalog.source_lock(name):
            table = self.catalog.get(name)
            self.result_cache.watch(name, table)
            epoch = max(table.cohorts.latest_epoch, 0)
            if "positions" in request:
                positions = np.asarray(request["positions"], dtype=np.int64)
            else:
                n = int(request.get("n", 0))
                if n < 1:
                    raise QueryError("forget needs 'positions' or a positive 'n'")
                positions = table.active_positions()[:n]
            forgotten = table.forget(positions, epoch)
        with self._traffic_lock:
            counters = self._tenant_counters(session.tenant)
            counters["forgets"] += 1
            counters["rows_forgotten"] += int(forgotten)
        return {"ok": True, "source": name, "forgotten": int(forgotten), "epoch": epoch}

    # -- introspection --------------------------------------------------

    def stats(self) -> dict:
        """Service-wide counters: caches, sessions, per-tenant traffic.

        Per-tenant ``access_total`` reuses the storage layer's access
        counters — the same signal the rot/overuse policies learn from
        — summed over the tenant's visible tables.
        """
        with self._traffic_lock:
            traffic = {
                tenant: dict(counters)
                for tenant, counters in self._traffic.items()
            }
            rejected = self._rejected
            stale = self._stale_hits
        for tenant, counters in traffic.items():
            scope = self._tenants.get(tenant)
            total = 0
            for name in self.catalog.names():
                if scope is None or scope.tables is None or name in scope.tables:
                    total += int(self.catalog.get(name).access_counts().sum())
            counters["access_total"] = total
        return {
            "ok": True,
            "sessions_open": self.sessions.open_count,
            "sessions_opened": self.sessions.opened_total,
            "rejected": rejected,
            "stale_hits": stale,
            "plan_cache": self.plan_cache.stats(),
            "result_cache": self.result_cache.stats(),
            "tenants": traffic,
        }


# -- HTTP layer ---------------------------------------------------------

#: Serving error type → HTTP status.  ``TransientFault`` (an injected
#: or environmental blip the client should retry) maps to 503 and
#: carries ``Retry-After``, like the deadline timeout.
_STATUS = (
    (SessionError, 401),
    (ScopeError, 403),
    (AdmissionError, 429),
    (TransientFault, 503),
    (ServingError, 500),
    (SchemaError, 400),
    (QueryError, 400),
    (ReproError, 400),
)

#: Backoff hint (seconds) sent with every 429/503 — coarse on purpose:
#: it is a floor for the client's jittered exponential backoff, not a
#: schedule (see :class:`repro.serving.retry.RetryPolicy`).
RETRY_AFTER_SECONDS = 1


def _status_for(exc: Exception) -> int:
    for kind, status in _STATUS:
        if isinstance(exc, kind):
            return status
    return 500


class _Handler(BaseHTTPRequestHandler):
    """One JSON request per POST; probes on GET."""

    service: QueryService  # set by make_server on the subclass
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # the service keeps its own counters; stderr stays quiet

    def _reply(self, status: int, body: dict) -> None:
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        if status in (429, 503):
            # Shed-load statuses carry the backoff hint load balancers
            # and RetryPolicy honor.
            self.send_header("Retry-After", str(RETRY_AFTER_SECONDS))
        self.end_headers()
        self.wfile.write(data)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/health":
            self._reply(200, self.service.health())
        elif self.path == "/stats":
            self._reply(200, self.service.stats())
        else:
            self._reply(404, {"ok": False, "error": "NotFound"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        try:
            length = int(self.headers.get("Content-Length", 0))
            request = json.loads(self.rfile.read(length) or b"{}")
            response = self._dispatch(request)
            self._reply(200, response)
        except json.JSONDecodeError as exc:
            self._reply(400, {"ok": False, "error": "BadJSON", "detail": str(exc)})
        except FaultInjected:
            # A simulated worker crash: drop the connection without a
            # reply, exactly what a killed process would do.  The
            # client sees a torn connection and retries.
            self.close_connection = True
        except FutureTimeoutError:
            # Deadline exceeded: the handler slot is freed with a 503
            # while the wedged execution finishes in the dispatch pool
            # (its admission slot stays held until then — sustained
            # wedging therefore drives the degradation signal).
            self._reply(
                503,
                {
                    "ok": False,
                    "error": "DeadlineExceeded",
                    "detail": f"request exceeded {self.server.deadline}s",
                },
            )
        except Exception as exc:  # typed errors → status codes
            self._reply(
                _status_for(exc),
                {"ok": False, "error": type(exc).__name__, "detail": str(exc)},
            )

    def _dispatch(self, request: dict) -> dict:
        """Run one request, under the server's deadline if it has one."""
        deadline = self.server.deadline
        if deadline is None:
            return self.service.handle(request)
        future = self.server.dispatch_pool.submit(self.service.handle, request)
        try:
            return future.result(timeout=deadline)
        except FutureTimeoutError:
            future.cancel()  # best-effort; a running handler finishes
            raise


class CatalogServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`QueryService`."""

    daemon_threads = True
    allow_reuse_address = True
    # The stdlib default backlog (5) resets connections under a
    # concurrent-client burst; admission control, not the accept queue,
    # is the intended load shedder.
    request_queue_size = 128

    #: Per-request deadline in seconds (None: no deadline) and the
    #: executor that enforces it; both set by :func:`make_server`.
    deadline: float | None = None
    dispatch_pool: ThreadPoolExecutor | None = None

    def server_close(self) -> None:
        super().server_close()
        if self.dispatch_pool is not None:
            self.dispatch_pool.shutdown(wait=False)


def make_server(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    deadline: float | None = None,
) -> CatalogServer:
    """Build (but do not start) an HTTP server for ``service``.

    ``port=0`` binds an ephemeral port; read it back from
    ``server.server_address``.  With ``deadline`` (seconds), each POST
    executes on a dispatch pool and a request still running at the
    deadline returns 503 + ``Retry-After`` instead of wedging its
    handler slot — the execution itself runs to completion in the
    background, so no lock is ever abandoned mid-flight.
    """
    handler = type("BoundHandler", (_Handler,), {"service": service})
    server = CatalogServer((host, port), handler)
    if deadline is not None:
        if not deadline > 0:
            raise ServingError(f"deadline must be > 0 seconds, got {deadline}")
        server.deadline = float(deadline)
        server.dispatch_pool = ThreadPoolExecutor(
            max_workers=service.max_inflight + 4,
            thread_name_prefix="repro-dispatch",
        )
    return server


def serve_in_thread(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    deadline: float | None = None,
) -> tuple[CatalogServer, threading.Thread]:
    """Start a server on a daemon thread; returns ``(server, thread)``.

    Stop with ``server.shutdown(); thread.join()``.
    """
    server = make_server(service, host, port, deadline=deadline)
    thread = threading.Thread(
        target=server.serve_forever, name="catalog-server", daemon=True
    )
    thread.start()
    return server, thread


def run_server(service: QueryService, host: str, port: int) -> None:
    """Serve until interrupted (the CLI's blocking entry point)."""
    server = make_server(service, host, port)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.server_close()
        service.close()
