"""Sessions and tenant scoping for the serving layer.

A *tenant* is a named principal with a :class:`TenantScope`: the set of
catalog sources it may touch and, optionally, per-column value clamps —
the serving twin of a range shard's partition bounds, letting one
catalog host several tenants whose queries are confined to disjoint
value ranges of shared tables.  A *session* is a token-addressed
handle a client opens for one tenant; every request carries the token,
and the service charges traffic accounting to the session's tenant.

Scope violations raise :class:`~repro._util.errors.ScopeError` (the
HTTP front end maps it to 403), unknown or closed tokens raise
:class:`~repro._util.errors.SessionError` (401).
"""

from __future__ import annotations

import secrets
import threading
from dataclasses import dataclass, field

from .._util.errors import ScopeError, SessionError

__all__ = ["TenantScope", "Session", "SessionManager"]


@dataclass(frozen=True)
class TenantScope:
    """What one tenant is allowed to see.

    Parameters
    ----------
    tables:
        Source names the tenant may address, or ``None`` for all.
    value_bounds:
        Optional ``{column: (low, high)}`` clamps: every predicate
        bound and every ingested value on ``column`` must lie inside
        ``[low, high)``.  This is how two tenants share one physical
        table while each sees only its value slice.
    """

    tables: frozenset | None = None
    value_bounds: dict | None = None

    def check_source(self, tenant: str, name: str) -> None:
        """Raise :class:`ScopeError` unless ``name`` is in scope."""
        if self.tables is not None and name not in self.tables:
            raise ScopeError(
                f"tenant {tenant!r} may not address source {name!r} "
                f"(scope: {sorted(self.tables)})"
            )

    def check_values(self, tenant: str, column: str, low: int, high: int) -> None:
        """Raise :class:`ScopeError` unless ``[low, high)`` fits the clamp."""
        if not self.value_bounds or column not in self.value_bounds:
            return
        clamp_low, clamp_high = self.value_bounds[column]
        if low < clamp_low or high > clamp_high:
            raise ScopeError(
                f"tenant {tenant!r} is clamped to {column!r} in "
                f"[{clamp_low}, {clamp_high}) but addressed [{low}, {high})"
            )


@dataclass
class Session:
    """One open client session (token-addressed, single-tenant)."""

    token: str
    tenant: str
    scope: TenantScope
    #: Requests served through this session (any operation).
    requests: int = 0
    #: Mutable per-session notes (the HTTP layer stores nothing here
    #: today; tests and embedders may).
    attributes: dict = field(default_factory=dict)


class SessionManager:
    """Thread-safe registry of open sessions.

    Tokens are opaque and unguessable (``secrets``); sessions never
    expire on their own — :meth:`close` is explicit, and the service
    closes everything on shutdown.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sessions: dict[str, Session] = {}
        self._opened = 0

    def open(self, tenant: str, scope: TenantScope) -> Session:
        """Open a session for ``tenant`` under ``scope``; returns it."""
        token = f"{tenant}-{secrets.token_hex(12)}"
        session = Session(token=token, tenant=tenant, scope=scope)
        with self._lock:
            self._sessions[token] = session
            self._opened += 1
        return session

    def get(self, token: str) -> Session:
        """The session behind ``token``; :class:`SessionError` if unknown."""
        with self._lock:
            session = self._sessions.get(token)
        if session is None:
            raise SessionError(f"unknown or closed session token {token!r}")
        return session

    def close(self, token: str) -> None:
        """Close a session; :class:`SessionError` if unknown."""
        with self._lock:
            if self._sessions.pop(token, None) is None:
                raise SessionError(f"unknown or closed session token {token!r}")

    def close_all(self) -> int:
        """Close every open session; returns how many were open."""
        with self._lock:
            n = len(self._sessions)
            self._sessions.clear()
        return n

    @property
    def open_count(self) -> int:
        """Currently open sessions."""
        with self._lock:
            return len(self._sessions)

    @property
    def opened_total(self) -> int:
        """Sessions ever opened (monotonic)."""
        with self._lock:
            return self._opened
