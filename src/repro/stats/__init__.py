"""Statistics substrate: histograms, streaming moments, divergences, Zipf."""

from .divergence import (
    earth_movers_distance,
    js_divergence,
    kl_divergence,
    normalize,
    total_variation,
)
from .histograms import EquiDepthHistogram, EquiWidthHistogram
from .moments import ExactMoments, StreamingMoments
from .table_stats import (
    STATS_BINS,
    TableHistogramStats,
    traffic_weighted_median,
    traffic_weighted_quantiles,
)
from .zipf import fit_zipf_exponent, gini_coefficient, top_share

__all__ = [
    "earth_movers_distance",
    "js_divergence",
    "kl_divergence",
    "normalize",
    "total_variation",
    "EquiDepthHistogram",
    "EquiWidthHistogram",
    "STATS_BINS",
    "ExactMoments",
    "StreamingMoments",
    "TableHistogramStats",
    "traffic_weighted_median",
    "traffic_weighted_quantiles",
    "fit_zipf_exponent",
    "gini_coefficient",
    "top_share",
]
