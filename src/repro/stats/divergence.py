"""Divergences between discrete distributions.

Used to quantify how far the *active* value distribution has drifted
from the *oracle* (everything ever inserted) distribution — the
objective the §4.4 distribution-aligned amnesia policy minimises, and a
headline metric of experiment A4.

All functions take probability vectors (or count vectors, which are
normalised first) of equal length.
"""

from __future__ import annotations

import numpy as np

from .._util.errors import ConfigError

__all__ = [
    "normalize",
    "kl_divergence",
    "js_divergence",
    "total_variation",
    "earth_movers_distance",
]

_EPS = 1e-12


def _paired(p, q) -> tuple[np.ndarray, np.ndarray]:
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape or p.ndim != 1:
        raise ConfigError(
            f"divergence inputs must be equal-length 1-D vectors, got {p.shape} vs {q.shape}"
        )
    if (p < 0).any() or (q < 0).any():
        raise ConfigError("divergence inputs must be non-negative")
    return p, q


def normalize(counts) -> np.ndarray:
    """Turn a non-negative count vector into a probability vector.

    A zero vector normalises to the uniform distribution, which is the
    least-informative choice and keeps downstream divergences finite.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim != 1:
        raise ConfigError("normalize expects a 1-D vector")
    if (counts < 0).any():
        raise ConfigError("normalize expects non-negative counts")
    total = counts.sum()
    if total <= 0:
        return np.full(counts.size, 1.0 / max(counts.size, 1))
    return counts / total


def kl_divergence(p, q) -> float:
    """Kullback–Leibler divergence ``D(p || q)`` in nats.

    Inputs are normalised; ``q`` is smoothed by ``1e-12`` so the result
    stays finite when q has empty bins (common once amnesia has eaten a
    region of the domain).
    """
    p, q = _paired(p, q)
    p = normalize(p)
    q = normalize(q) + _EPS
    q /= q.sum()
    mask = p > 0
    return float(np.sum(p[mask] * np.log(p[mask] / q[mask])))


def js_divergence(p, q) -> float:
    """Jensen–Shannon divergence (symmetric, bounded by ln 2)."""
    p, q = _paired(p, q)
    p = normalize(p)
    q = normalize(q)
    m = 0.5 * (p + q)
    return 0.5 * kl_divergence(p, m) + 0.5 * kl_divergence(q, m)


def total_variation(p, q) -> float:
    """Total variation distance: half the L1 distance, in ``[0, 1]``."""
    p, q = _paired(p, q)
    return float(0.5 * np.abs(normalize(p) - normalize(q)).sum())


def earth_movers_distance(p, q) -> float:
    """1-D earth mover's (Wasserstein-1) distance between bin vectors.

    Bins are treated as unit-spaced points, so the result is measured in
    "bins moved"; divide by the bin count for a normalised value.
    """
    p, q = _paired(p, q)
    diff = normalize(p) - normalize(q)
    return float(np.abs(np.cumsum(diff)).sum())
