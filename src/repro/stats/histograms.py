"""Histograms over integer value domains.

Two classic shapes:

* :class:`EquiWidthHistogram` — fixed-width bins over ``[lo, hi]``;
  used by the distribution-aligned amnesia policy (§4.4: "forget tuples
  that do not change the data distribution for all active records") and
  by the divergence metrics.
* :class:`EquiDepthHistogram` — quantile boundaries computed from a
  sample; used for workload analysis and adaptive partitioning.
"""

from __future__ import annotations

import numpy as np

from .._util.errors import ConfigError
from .._util.validation import check_positive_int

__all__ = ["EquiWidthHistogram", "EquiDepthHistogram"]


class EquiWidthHistogram:
    """Fixed-width bins over an inclusive integer range ``[lo, hi]``.

    Values outside the range are clamped into the edge bins, matching
    how the simulator clamps generated values into the domain.

    >>> h = EquiWidthHistogram(0, 9, bins=2)
    >>> h.add(np.array([0, 1, 2, 9]))
    >>> h.counts.tolist()
    [3, 1]
    """

    def __init__(self, lo: int, hi: int, bins: int = 64):
        if hi < lo:
            raise ConfigError(f"histogram range [{lo}, {hi}] is reversed")
        self.lo = int(lo)
        self.hi = int(hi)
        self.bins = check_positive_int(bins, "bins")
        self._counts = np.zeros(self.bins, dtype=np.int64)
        self._total = 0
        # Width in value units; at least 1 so bin_of is well defined for
        # degenerate single-value ranges.
        self._width = max((self.hi - self.lo + 1) / self.bins, 1e-12)

    @property
    def counts(self) -> np.ndarray:
        """Per-bin counts (read-only view)."""
        out = self._counts
        out.flags.writeable = False
        return out

    @property
    def total(self) -> int:
        """Total number of values added."""
        return self._total

    def bin_of(self, values: np.ndarray) -> np.ndarray:
        """Bin index of each value (clamped to edge bins)."""
        values = np.asarray(values, dtype=np.float64)
        idx = np.floor((values - self.lo) / self._width).astype(np.int64)
        return np.clip(idx, 0, self.bins - 1)

    def add(self, values: np.ndarray) -> None:
        """Accumulate values into the histogram."""
        values = np.asarray(values)
        if values.size == 0:
            return
        # counts() is writable internally; the property returns a
        # read-only alias of the same buffer.
        self._counts.flags.writeable = True
        np.add.at(self._counts, self.bin_of(values), 1)
        self._total += int(values.size)

    def remove(self, values: np.ndarray) -> None:
        """Remove previously added values (counts must not go negative)."""
        values = np.asarray(values)
        if values.size == 0:
            return
        self._counts.flags.writeable = True
        np.add.at(self._counts, self.bin_of(values), -1)
        self._total -= int(values.size)
        if self._total < 0 or (self._counts < 0).any():
            raise ConfigError("histogram remove() exceeded previously added counts")

    def pmf(self) -> np.ndarray:
        """Normalised bin probabilities (uniform if empty)."""
        if self._total == 0:
            return np.full(self.bins, 1.0 / self.bins)
        return self._counts / self._total

    def mass(self, low: int, high: int) -> float:
        """Estimated count of values in ``[low, high)``.

        Each bin's count is interpolated by the fraction of the bin's
        value span the probe covers (uniform-within-bin assumption) —
        the histogram twin of the zone map's per-cohort interpolation,
        but at bin rather than cohort granularity, which is what makes
        it sharp on skewed data.

        >>> h = EquiWidthHistogram.from_values(np.array([0, 0, 0, 9]), 0, 9, bins=2)
        >>> h.mass(0, 5)
        3.0
        """
        if high <= low:
            return 0.0
        edges = self.bin_edges()
        overlap = np.minimum(edges[1:], float(high)) - np.maximum(
            edges[:-1], float(low)
        )
        fraction = np.clip(overlap / self._width, 0.0, 1.0)
        return float((self._counts * fraction).sum())

    def bin_edges(self) -> np.ndarray:
        """Bin boundaries: ``bins + 1`` float edges from lo to hi+1."""
        return self.lo + np.arange(self.bins + 1) * self._width

    @classmethod
    def from_values(
        cls, values: np.ndarray, lo: int, hi: int, bins: int = 64
    ) -> "EquiWidthHistogram":
        """Build a histogram directly from a value array."""
        hist = cls(lo, hi, bins=bins)
        hist.add(values)
        return hist

    def copy(self) -> "EquiWidthHistogram":
        """Independent deep copy."""
        clone = EquiWidthHistogram(self.lo, self.hi, bins=self.bins)
        clone._counts = self._counts.copy()
        clone._total = self._total
        return clone

    def __repr__(self) -> str:
        return (
            f"EquiWidthHistogram(lo={self.lo}, hi={self.hi}, "
            f"bins={self.bins}, total={self._total})"
        )


class EquiDepthHistogram:
    """Quantile (equi-depth) boundaries computed from a sample.

    Unlike :class:`EquiWidthHistogram` this one is immutable: it captures
    the distribution of the sample given at construction.

    >>> h = EquiDepthHistogram.from_values(np.arange(100), bins=4)
    >>> h.boundaries.tolist()
    [0.0, 24.75, 49.5, 74.25, 99.0]
    """

    def __init__(self, boundaries: np.ndarray):
        boundaries = np.asarray(boundaries, dtype=np.float64)
        if boundaries.ndim != 1 or boundaries.size < 2:
            raise ConfigError("boundaries must be a 1-D array with >= 2 edges")
        if np.any(np.diff(boundaries) < 0):
            raise ConfigError("boundaries must be non-decreasing")
        self.boundaries = boundaries
        self.bins = boundaries.size - 1

    @classmethod
    def from_values(cls, values: np.ndarray, bins: int = 16) -> "EquiDepthHistogram":
        """Compute ``bins`` equi-depth buckets from ``values``."""
        bins = check_positive_int(bins, "bins")
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            raise ConfigError("cannot build an equi-depth histogram from no values")
        quantiles = np.linspace(0.0, 1.0, bins + 1)
        return cls(np.quantile(values, quantiles))

    def bin_of(self, values: np.ndarray) -> np.ndarray:
        """Bucket index of each value (clamped to the outer buckets)."""
        values = np.asarray(values, dtype=np.float64)
        idx = np.searchsorted(self.boundaries, values, side="right") - 1
        return np.clip(idx, 0, self.bins - 1)

    def __repr__(self) -> str:
        return f"EquiDepthHistogram(bins={self.bins})"
