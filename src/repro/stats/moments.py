"""Streaming moment accumulators (Welford's algorithm).

Aggregate-precision experiments and forgotten-data summaries both need
numerically stable running statistics that can be (a) updated in batches
and (b) merged.  :class:`StreamingMoments` provides count, mean,
variance, min, max and sum with Chan's parallel merge rule.
"""

from __future__ import annotations

import math

import numpy as np

from .._util.errors import ConfigError

__all__ = ["ExactMoments", "StreamingMoments"]


class StreamingMoments:
    """Running count/mean/M2/min/max over a stream of numbers.

    >>> m = StreamingMoments()
    >>> m.update(np.array([1.0, 2.0, 3.0]))
    >>> m.count, m.mean, round(m.variance, 6)
    (3, 2.0, 0.666667)
    """

    __slots__ = ("count", "mean", "_m2", "min", "max", "total")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.total = 0.0

    @classmethod
    def of(cls, values: np.ndarray) -> "StreamingMoments":
        """Accumulator over one value array."""
        moments = cls()
        moments.update(values)
        return moments

    def push(self, value: float) -> None:
        """Add a single observation."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def update(self, values: np.ndarray) -> None:
        """Add a batch of observations (merged via Chan's rule)."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        other = StreamingMoments()
        other.count = int(values.size)
        other.mean = float(values.mean())
        other._m2 = float(((values - other.mean) ** 2).sum())
        other.min = float(values.min())
        other.max = float(values.max())
        other.total = float(values.sum())
        self.merge(other)

    def merge(self, other: "StreamingMoments") -> None:
        """Fold another accumulator into this one (Chan et al.)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            self.total = other.total
            return
        n1, n2 = self.count, other.count
        delta = other.mean - self.mean
        combined = n1 + n2
        self.mean += delta * n2 / combined
        self._m2 += other._m2 + delta * delta * n1 * n2 / combined
        self.count = combined
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def variance(self) -> float:
        """Population variance (0 for fewer than 2 observations)."""
        if self.count < 2:
            return 0.0
        return self._m2 / self.count

    @property
    def sample_variance(self) -> float:
        """Sample (Bessel-corrected) variance."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def as_dict(self) -> dict:
        """Plain-dict snapshot (for reports and summaries)."""
        if self.count == 0:
            raise ConfigError("no observations accumulated")
        return {
            "count": self.count,
            "mean": self.mean,
            "variance": self.variance,
            "min": self.min,
            "max": self.max,
            "sum": self.total,
        }

    def __repr__(self) -> str:
        return (
            f"StreamingMoments(count={self.count}, mean={self.mean:.6g}, "
            f"std={self.std:.6g})"
        )


class ExactMoments:
    """Batch-order-invariant moments over an integer stream.

    The streaming execution layer (:mod:`repro.query.plans`) folds
    query output into an accumulator batch by batch, and merges
    per-input partials when aggregation is pushed below a union.  A
    plain :class:`StreamingMoments` is numerically stable but its
    mean/variance depend (in the last float bits) on *where the batch
    boundaries fall* — which would make a streamed aggregate differ
    from the materializing baseline it must be provably identical to.

    ``ExactMoments`` wraps a Chan-merged :class:`StreamingMoments`
    (kept for its count/min/max/total bookkeeping and so partials merge
    with the same rule everywhere) and additionally carries the *exact*
    integer sufficient statistics ``Σx`` and ``Σx²`` as Python ints.
    The reported ``mean`` and ``variance`` derive from those exact sums
    at read time, so any batching — one batch, a thousand, partials
    merged in any order — yields bit-identical results.

    >>> import numpy as np
    >>> whole = ExactMoments.of(np.arange(1000))
    >>> split = ExactMoments.of(np.arange(137))
    >>> split.merge(ExactMoments.of(np.arange(137, 1000)))
    >>> (whole.mean, whole.variance) == (split.mean, split.variance)
    True
    >>> whole.count, whole.total, whole.min, whole.max
    (1000, 499500, 0, 999)
    """

    __slots__ = ("_float", "_isum", "_isumsq")

    def __init__(self) -> None:
        self._float = StreamingMoments()
        self._isum = 0
        self._isumsq = 0

    @classmethod
    def of(cls, values: np.ndarray) -> "ExactMoments":
        """Accumulator over one integer value array."""
        moments = cls()
        moments.update(values)
        return moments

    def update(self, values: np.ndarray) -> None:
        """Add a batch of integer observations."""
        values = np.asarray(values)
        if values.size == 0:
            return
        self._float.update(values)
        # Python-int accumulation: arbitrary precision, so Σx and Σx²
        # stay exact however large the history grows.
        self._isum += int(values.sum(dtype=object))
        self._isumsq += int((values.astype(object) ** 2).sum())

    def merge(self, other: "ExactMoments") -> None:
        """Fold another accumulator in (Chan's rule + exact int sums)."""
        self._float.merge(other._float)
        self._isum += other._isum
        self._isumsq += other._isumsq

    @property
    def count(self) -> int:
        return self._float.count

    @property
    def total(self) -> int:
        """Exact integer sum of the stream."""
        return self._isum

    @property
    def min(self) -> int | float:
        value = self._float.min
        return value if self.count == 0 else int(value)

    @property
    def max(self) -> int | float:
        value = self._float.max
        return value if self.count == 0 else int(value)

    @property
    def mean(self) -> float:
        """Σx / n from the exact sum — identical under any batching."""
        if self.count == 0:
            return 0.0
        return self._isum / self.count

    @property
    def variance(self) -> float:
        """Population variance from exact sums: (n·Σx² − (Σx)²) / n²."""
        n = self.count
        if n < 2:
            return 0.0
        return (n * self._isumsq - self._isum * self._isum) / (n * n)

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def as_dict(self) -> dict:
        """Plain-dict snapshot (for reports and summaries)."""
        if self.count == 0:
            raise ConfigError("no observations accumulated")
        return {
            "count": self.count,
            "mean": self.mean,
            "variance": self.variance,
            "min": self.min,
            "max": self.max,
            "sum": self.total,
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExactMoments):
            return NotImplemented
        return (
            self.count == other.count
            and self._isum == other._isum
            and self._isumsq == other._isumsq
            and self._float.min == other._float.min
            and self._float.max == other._float.max
        )

    def __repr__(self) -> str:
        return (
            f"ExactMoments(count={self.count}, sum={self.total}, "
            f"mean={self.mean:.6g})"
        )
