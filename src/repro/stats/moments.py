"""Streaming moment accumulators (Welford's algorithm).

Aggregate-precision experiments and forgotten-data summaries both need
numerically stable running statistics that can be (a) updated in batches
and (b) merged.  :class:`StreamingMoments` provides count, mean,
variance, min, max and sum with Chan's parallel merge rule.
"""

from __future__ import annotations

import math

import numpy as np

from .._util.errors import ConfigError

__all__ = ["StreamingMoments"]


class StreamingMoments:
    """Running count/mean/M2/min/max over a stream of numbers.

    >>> m = StreamingMoments()
    >>> m.update(np.array([1.0, 2.0, 3.0]))
    >>> m.count, m.mean, round(m.variance, 6)
    (3, 2.0, 0.666667)
    """

    __slots__ = ("count", "mean", "_m2", "min", "max", "total")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.total = 0.0

    @classmethod
    def of(cls, values: np.ndarray) -> "StreamingMoments":
        """Accumulator over one value array."""
        moments = cls()
        moments.update(values)
        return moments

    def push(self, value: float) -> None:
        """Add a single observation."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def update(self, values: np.ndarray) -> None:
        """Add a batch of observations (merged via Chan's rule)."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        other = StreamingMoments()
        other.count = int(values.size)
        other.mean = float(values.mean())
        other._m2 = float(((values - other.mean) ** 2).sum())
        other.min = float(values.min())
        other.max = float(values.max())
        other.total = float(values.sum())
        self.merge(other)

    def merge(self, other: "StreamingMoments") -> None:
        """Fold another accumulator into this one (Chan et al.)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            self.total = other.total
            return
        n1, n2 = self.count, other.count
        delta = other.mean - self.mean
        combined = n1 + n2
        self.mean += delta * n2 / combined
        self._m2 += other._m2 + delta * delta * n1 * n2 / combined
        self.count = combined
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def variance(self) -> float:
        """Population variance (0 for fewer than 2 observations)."""
        if self.count < 2:
            return 0.0
        return self._m2 / self.count

    @property
    def sample_variance(self) -> float:
        """Sample (Bessel-corrected) variance."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def as_dict(self) -> dict:
        """Plain-dict snapshot (for reports and summaries)."""
        if self.count == 0:
            raise ConfigError("no observations accumulated")
        return {
            "count": self.count,
            "mean": self.mean,
            "variance": self.variance,
            "min": self.min,
            "max": self.max,
            "sum": self.total,
        }

    def __repr__(self) -> str:
        return (
            f"StreamingMoments(count={self.count}, mean={self.mean:.6g}, "
            f"std={self.std:.6g})"
        )
