"""Histogram-backed table statistics: the planner's skew-aware layer.

The zone map's :meth:`~repro.storage.cohorts.CohortZoneMap.estimate`
assumes values are uniform within each cohort's ``[min, max]`` — the
classic System-R assumption, and exactly what Zipf-skewed streams
break: a cohort spanning the whole domain but holding 60% of its mass
in a handful of hot values makes uniformity misprice scans, misrank
join build sides and cut adaptive shard splits at value midpoints that
leave one side carrying almost all the traffic.

:class:`TableHistogramStats` maintains one pair of
:class:`~repro.stats.histograms.EquiWidthHistogram` per tracked column
— active mass and forgotten mass — incrementally through the
:class:`~repro.storage.table.TableObserver` protocol, exactly like the
zone map: values are *added* on insert and *moved* to the forgotten
histogram on forget.  When the value domain outgrows the current bin
range the histograms are rebuilt lazily from table state at the next
use (rebuilding is pure — it reads only the table's values and
activity bitmap — so estimates stay deterministic).

Everything downstream is estimate-only: the planner's ``cost`` mode,
the cross-table join's build-side prediction and the EXPLAIN trees
consume these numbers, but every access path still returns
bit-identical results (the equivalence harness proves it under
``--stats hist`` too).
"""

from __future__ import annotations

import numpy as np

from .._util.errors import StorageError
from .._util.validation import check_positive_int
from .histograms import EquiWidthHistogram

__all__ = [
    "STATS_BINS",
    "TableHistogramStats",
    "traffic_weighted_median",
    "traffic_weighted_quantiles",
]

#: Default bin count for per-column statistics histograms.
STATS_BINS = 64


def traffic_weighted_median(values: np.ndarray, weights: np.ndarray) -> int:
    """The value splitting ``weights`` into two equal halves.

    The equi-depth cut point of a weighted value distribution: sort the
    values, accumulate their weights, and return the first value whose
    cumulative weight reaches half the total.  With unit weights this
    is the plain median; with access-count weights it is the
    *traffic-weighted* median the adaptive partitioner cuts hot shards
    at.  Fully deterministic — no sampling, no tie randomness.

    >>> traffic_weighted_median(np.array([1, 2, 3, 100]), np.ones(4))
    2
    >>> traffic_weighted_median(np.array([1, 2, 3]), np.array([9, 1, 1]))
    1
    """
    return traffic_weighted_quantiles(values, weights, (0.5,))[0]


def traffic_weighted_quantiles(
    values: np.ndarray, weights: np.ndarray, fractions
) -> list[int]:
    """The values splitting ``weights`` at the given cumulative fractions.

    Generalizes :func:`traffic_weighted_median` to an arbitrary set of
    equi-depth cut points: for each fraction ``f`` in ``(0, 1)``,
    return the first value (in sorted order) whose cumulative weight
    reaches ``f`` times the total.  The multi-way adaptive split cuts a
    hot shard at ``[1/k, ..., (k-1)/k]`` in one adaptation window
    instead of converging one median at a time.  Fully deterministic —
    no sampling, no tie randomness — and, with access-count weights,
    built only from plan-mode-independent inputs.

    >>> traffic_weighted_quantiles(
    ...     np.array([1, 2, 3, 100]), np.ones(4), [0.25, 0.5, 0.75]
    ... )
    [1, 2, 3]
    >>> traffic_weighted_quantiles(
    ...     np.array([1, 2, 3]), np.array([9.0, 1.0, 1.0]), [0.5]
    ... )
    [1]
    """
    values = np.asarray(values, dtype=np.int64)
    if values.size == 0:
        raise StorageError("cannot take quantiles of no values")
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != values.shape or (weights < 0).any():
        raise StorageError("weights must be non-negative and match values")
    fractions = [float(f) for f in fractions]
    if not fractions or any(not 0.0 < f < 1.0 for f in fractions):
        raise StorageError(
            f"quantile fractions must lie strictly in (0, 1), got {fractions}"
        )
    order = np.argsort(values, kind="stable")
    cumulative = np.cumsum(weights[order])
    total = float(cumulative[-1])
    cuts = []
    for fraction in fractions:
        if total <= 0.0:
            # Zero traffic everywhere: fall back to positional
            # (unweighted) quantiles of the sorted values.
            idx = int(values.size * fraction)
        else:
            idx = int(np.searchsorted(cumulative, total * fraction))
        cuts.append(int(values[order[min(idx, values.size - 1)]]))
    return cuts


class TableHistogramStats:
    """Per-column active/forgotten value histograms over one table.

    A :class:`~repro.storage.table.TableObserver` (registered at
    construction, like :class:`~repro.storage.cohorts.CohortZoneMap`)
    that keeps, for every tracked column, an equi-width histogram of
    the *active* values and one of the *forgotten* values.  Insert adds
    to the active histogram; forget moves mass from active to
    forgotten — so :meth:`estimate` prices both sides of the
    amnesiac/oracle split without touching row data.

    Registration marks the statistics dirty instead of folding the
    backfill stream in directly (the backfill replays inserts of rows
    that are already forgotten); the first :meth:`estimate` — and any
    use after the domain outgrew the bin range — rebuilds from the
    table's current values and activity bitmap, after which the live
    insert/forget stream is folded in incrementally.

    >>> from repro.storage import Table
    >>> t = Table("obs", ["a"])
    >>> _ = t.insert_batch(0, {"a": [1, 1, 1, 9]})
    >>> stats = TableHistogramStats(t, bins=4)
    >>> t.forget(np.array([3]), epoch=1)
    1
    >>> stats.estimate("a", 0, 4)
    (3.0, 0.0)
    >>> stats.estimate("a", 7, 10)
    (0.0, 1.0)
    """

    def __init__(self, table, columns=None, bins: int = STATS_BINS):
        names = tuple(columns) if columns is not None else table.column_names
        if not names:
            raise StorageError("histogram statistics need at least one column")
        for name in names:
            table.column(name)  # validates existence
        self.table = table
        self.bins = check_positive_int(bins, "bins")
        self._active: dict[str, EquiWidthHistogram | None] = {
            name: None for name in names
        }
        self._forgotten: dict[str, EquiWidthHistogram | None] = {
            name: None for name in names
        }
        self._dirty = set(names)
        self._generation = 0
        table.add_observer(self)  # backfill arrives while still dirty

    # -- schema ---------------------------------------------------------

    @property
    def columns(self) -> tuple[str, ...]:
        """Columns these statistics track."""
        return tuple(self._active)

    def covers(self, column: str) -> bool:
        """True when ``column`` is tracked (a histogram may still be
        empty — estimates are simply 0 then)."""
        return column in self._active

    @property
    def generation(self) -> int:
        """Monotonic statistics generation: bumped on every observer event.

        The histogram twin of
        :attr:`~repro.storage.cohorts.CohortZoneMap.generation`: an
        unchanged generation guarantees the histograms (and every
        estimate read from them) are unchanged, which is what lets the
        serving layer's plan cache reuse a priced plan without
        re-estimating.
        """
        return self._generation

    # -- maintenance ----------------------------------------------------

    def _rebuild(self, column: str) -> None:
        """Recompute both histograms from the table's current state."""
        values = self.table.values(column)
        self._dirty.discard(column)
        if values.size == 0:
            self._active[column] = None
            self._forgotten[column] = None
            return
        lo, hi = int(values.min()), int(values.max())
        mask = self.table.active_mask()
        self._active[column] = EquiWidthHistogram.from_values(
            values[mask], lo, hi, bins=self.bins
        )
        self._forgotten[column] = EquiWidthHistogram.from_values(
            values[~mask], lo, hi, bins=self.bins
        )

    def _sync(self, column: str) -> None:
        if column in self._dirty:
            self._rebuild(column)

    def _fits(self, column: str, values: np.ndarray) -> bool:
        hist = self._active[column]
        return hist is not None and bool(
            values.min() >= hist.lo and values.max() <= hist.hi
        )

    # -- observer hooks -------------------------------------------------

    def on_insert(self, table, positions: np.ndarray) -> None:
        """Table hook: fold freshly inserted (active) values in."""
        self._generation += 1
        if positions.size == 0:
            return
        for column in self._active:
            if column in self._dirty:
                continue  # rebuilt from table state at next use
            values = table.values(column)[positions]
            if self._fits(column, values):
                self._active[column].add(values)
            else:
                self._dirty.add(column)  # domain grew; rebin lazily

    def on_forget(self, table, positions: np.ndarray) -> None:
        """Table hook: move newly forgotten values across."""
        self._generation += 1
        if positions.size == 0:
            return
        for column in self._active:
            if column in self._dirty:
                continue
            values = table.values(column)[positions]
            self._active[column].remove(values)
            self._forgotten[column].add(values)

    # -- estimation -----------------------------------------------------

    def histograms(
        self, column: str
    ) -> tuple[EquiWidthHistogram | None, EquiWidthHistogram | None]:
        """The (active, forgotten) histograms for ``column`` (live
        objects; ``(None, None)`` while the table is empty)."""
        if column not in self._active:
            raise StorageError(
                f"histogram statistics do not track column {column!r} "
                f"(tracked: {', '.join(self._active)})"
            )
        self._sync(column)
        return self._active[column], self._forgotten[column]

    def estimate(self, column: str, low: int, high: int) -> tuple[float, float]:
        """Estimated ``(active, forgotten)`` matches of ``[low, high)``."""
        active, forgotten = self.histograms(column)
        if active is None:
            return 0.0, 0.0
        return active.mass(low, high), forgotten.mass(low, high)

    def nbytes(self) -> int:
        """Approximate footprint of the histogram arrays."""
        total = 0
        for store in (self._active, self._forgotten):
            for hist in store.values():
                if hist is not None:
                    total += hist.counts.nbytes
        return total

    def __repr__(self) -> str:
        return (
            f"TableHistogramStats(columns={list(self._active)}, "
            f"bins={self.bins})"
        )
