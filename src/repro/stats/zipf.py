"""Zipf-law utilities: exponent fitting and concentration measures.

The paper motivates the skewed distribution with the Pareto 80–20 rule.
These helpers let tests and experiments verify that generated data is in
fact Zipf-like, and quantify how concentrated a value stream is (rot
amnesia retains hot values longest precisely when concentration is
high, which is what Figure 2 shows for the zipfian dataset).
"""

from __future__ import annotations

import numpy as np

from .._util.errors import ConfigError

__all__ = ["fit_zipf_exponent", "top_share", "gini_coefficient"]


def fit_zipf_exponent(values: np.ndarray, max_ranks: int | None = None) -> float:
    """Estimate the Zipf exponent of a value sample by log-log regression.

    Frequencies are ranked descending; a least-squares line is fitted to
    ``log(freq) ~ -theta * log(rank)`` over the ``max_ranks`` most
    frequent values (all, by default).  Returns the positive exponent
    ``theta``.
    """
    values = np.asarray(values)
    if values.size == 0:
        raise ConfigError("cannot fit a Zipf exponent to no values")
    _, counts = np.unique(values, return_counts=True)
    freqs = np.sort(counts)[::-1].astype(np.float64)
    if max_ranks is not None:
        freqs = freqs[: int(max_ranks)]
    if freqs.size < 2:
        raise ConfigError("need at least two distinct values to fit an exponent")
    ranks = np.arange(1, freqs.size + 1, dtype=np.float64)
    slope, _ = np.polyfit(np.log(ranks), np.log(freqs), deg=1)
    return float(-slope)


def top_share(values: np.ndarray, fraction: float = 0.2) -> float:
    """Share of the mass held by the top ``fraction`` of distinct values.

    ``top_share(x, 0.2) >= 0.8`` is the literal 80–20 rule.
    """
    if not 0.0 < fraction <= 1.0:
        raise ConfigError(f"fraction must be in (0, 1], got {fraction}")
    values = np.asarray(values)
    if values.size == 0:
        raise ConfigError("cannot compute top_share of no values")
    _, counts = np.unique(values, return_counts=True)
    counts = np.sort(counts)[::-1]
    k = max(1, int(np.ceil(counts.size * fraction)))
    return float(counts[:k].sum() / counts.sum())


def gini_coefficient(values: np.ndarray) -> float:
    """Gini coefficient of the value-frequency distribution, in [0, 1).

    0 means all distinct values are equally frequent; approaching 1
    means a handful of values dominate.
    """
    values = np.asarray(values)
    if values.size == 0:
        raise ConfigError("cannot compute a Gini coefficient of no values")
    _, counts = np.unique(values, return_counts=True)
    counts = np.sort(counts).astype(np.float64)
    n = counts.size
    if n == 1:
        return 0.0
    cum = np.cumsum(counts)
    # Standard formula over sorted frequencies.
    return float((n + 1 - 2 * (cum.sum() / cum[-1])) / n)
