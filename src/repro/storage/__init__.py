"""Columnar storage substrate: columns, bitmaps, tables, cohorts.

This package implements the "skeleton of a columnar DBMS" from paper
§2.1: integer columns, an activity bitmap that realises forgetting by
marking (never by destroying), per-tuple amnesia metadata and cohort
bookkeeping for the amnesia maps.
"""

from .bitmap import Bitmap
from .catalog import Catalog
from .cohorts import Cohort, CohortLog, CohortZoneMap
from .column import IntColumn
from .compressed import CompressedCohortStore
from .io import load_store, load_table, recover_store, save_store, save_table
from .table import Table, TableObserver
from .vectors import GrowableIntVector

__all__ = [
    "Bitmap",
    "Catalog",
    "Cohort",
    "CohortLog",
    "CohortZoneMap",
    "CompressedCohortStore",
    "IntColumn",
    "GrowableIntVector",
    "Table",
    "TableObserver",
    "load_store",
    "load_table",
    "recover_store",
    "save_store",
    "save_table",
]
