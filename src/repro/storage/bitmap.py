"""A growable bitmap over tuple positions.

The amnesia simulator's central trick (paper §2.3) is that tuples are
never physically destroyed: each table carries a bitmap of *active*
positions, and "forgetting" a tuple merely clears its bit.  That keeps
the oracle (the complete history) available for exact precision
accounting while the amnesiac view sees only set bits.

:class:`Bitmap` wraps a NumPy boolean array with amortised O(1) append,
constant-time population count (maintained incrementally), and the bulk
set/clear operations the policies need.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from .._util.errors import StorageError

__all__ = ["Bitmap"]

_INITIAL_CAPACITY = 64


class Bitmap:
    """Growable bitmap with an incrementally maintained popcount.

    Positions are dense integers ``0 .. len(self) - 1``.  Bits beyond the
    logical length do not exist; indexing them raises ``IndexError``.

    >>> bm = Bitmap()
    >>> bm.extend(5, value=True)
    >>> bm.clear_many(np.array([1, 3]))
    2
    >>> bm.count_set()
    3
    >>> bm.set_positions().tolist()
    [0, 2, 4]
    """

    __slots__ = ("_bits", "_length", "_set_count")

    def __init__(self, initial_capacity: int = _INITIAL_CAPACITY):
        if initial_capacity < 1:
            raise StorageError("initial_capacity must be >= 1")
        self._bits = np.zeros(initial_capacity, dtype=bool)
        self._length = 0
        self._set_count = 0

    # -- size & growth ------------------------------------------------

    def __len__(self) -> int:
        return self._length

    @property
    def capacity(self) -> int:
        """Allocated slots (always >= ``len(self)``)."""
        return int(self._bits.shape[0])

    def _ensure_capacity(self, needed: int) -> None:
        cap = self._bits.shape[0]
        if needed <= cap:
            return
        new_cap = max(cap * 2, needed, _INITIAL_CAPACITY)
        grown = np.zeros(new_cap, dtype=bool)
        grown[: self._length] = self._bits[: self._length]
        self._bits = grown

    def extend(self, n: int, *, value: bool = True) -> None:
        """Append ``n`` new positions, all set to ``value``."""
        if n < 0:
            raise StorageError(f"cannot extend by negative count {n}")
        if n == 0:
            return
        self._ensure_capacity(self._length + n)
        self._bits[self._length : self._length + n] = value
        self._length += n
        if value:
            self._set_count += n

    # -- point access ---------------------------------------------------

    def _check_position(self, position: int) -> int:
        position = int(position)
        if not 0 <= position < self._length:
            raise IndexError(
                f"position {position} out of range for bitmap of length {self._length}"
            )
        return position

    def __getitem__(self, position: int) -> bool:
        return bool(self._bits[self._check_position(position)])

    def set(self, position: int) -> None:
        """Set one bit (idempotent)."""
        position = self._check_position(position)
        if not self._bits[position]:
            self._bits[position] = True
            self._set_count += 1

    def clear(self, position: int) -> None:
        """Clear one bit (idempotent)."""
        position = self._check_position(position)
        if self._bits[position]:
            self._bits[position] = False
            self._set_count -= 1

    # -- bulk operations ------------------------------------------------

    def _check_positions(
        self, positions: np.ndarray, *, dedupe: bool = False
    ) -> np.ndarray:
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size == 0:
            return positions
        if positions.min() < 0 or positions.max() >= self._length:
            raise IndexError(
                f"positions out of range [0, {self._length}) for bulk bit operation"
            )
        # Mutating ops must dedupe: counting a duplicate twice would
        # corrupt the incrementally maintained popcount.
        return np.unique(positions) if dedupe else positions

    def set_many(self, positions: np.ndarray) -> int:
        """Set many bits; return how many actually flipped."""
        positions = self._check_positions(positions, dedupe=True)
        if positions.size == 0:
            return 0
        flipped = int(np.count_nonzero(~self._bits[positions]))
        self._bits[positions] = True
        self._set_count += flipped
        return flipped

    def clear_many(self, positions: np.ndarray) -> int:
        """Clear many bits; return how many actually flipped."""
        positions = self._check_positions(positions, dedupe=True)
        if positions.size == 0:
            return 0
        flipped = int(np.count_nonzero(self._bits[positions]))
        self._bits[positions] = False
        self._set_count -= flipped
        return flipped

    def test_many(self, positions: np.ndarray) -> np.ndarray:
        """Return a boolean array: the bit value at each position."""
        positions = self._check_positions(positions)
        return self._bits[positions].copy()

    # -- views ------------------------------------------------------------

    def view(self) -> np.ndarray:
        """Read-only boolean view of the logical bits.

        The view shares memory with the bitmap; callers must not write
        through it (it is flagged non-writeable).
        """
        out = self._bits[: self._length]
        out.flags.writeable = False
        return out

    def to_array(self) -> np.ndarray:
        """Independent boolean copy of the logical bits."""
        return self._bits[: self._length].copy()

    def set_positions(self) -> np.ndarray:
        """Positions of set bits, ascending."""
        return np.flatnonzero(self._bits[: self._length])

    def clear_positions(self) -> np.ndarray:
        """Positions of clear bits, ascending."""
        return np.flatnonzero(~self._bits[: self._length])

    def count_set(self) -> int:
        """Number of set bits (O(1), maintained incrementally)."""
        return self._set_count

    def count_clear(self) -> int:
        """Number of clear bits (O(1))."""
        return self._length - self._set_count

    def __iter__(self) -> Iterator[bool]:
        for i in range(self._length):
            yield bool(self._bits[i])

    def __repr__(self) -> str:
        return f"Bitmap(length={self._length}, set={self._set_count})"
