"""A catalog: named tables behind one planning surface.

The paper's simulator has a fixed schema ("a collection of columns",
§2.1); a catalog is nevertheless useful for the examples and the CLI,
where several tables (e.g. per-sensor streams) coexist in one run.

Beyond the registry, the catalog is the multi-table face of the query
planner: every registered table lazily gets its own
:class:`~repro.query.planner.QueryPlanner` (zone-map-backed unless the
catalog's mode is ``"scan"``) and
:class:`~repro.query.executor.QueryExecutor`, and the catalog exposes
``plan()``/``explain()``/``execute()`` per table plus one
:meth:`plan_report` spanning them all — multi-table runs share a
single plan story instead of each call site wiring its own access
paths.

Above the per-table planners sits the cross-table layer
(:mod:`repro.query.plans`): :meth:`Catalog.query` executes
union/join plan trees — over plain tables and registered sharded
stores (:meth:`Catalog.register_sharded`) — with leaf scans fanned out
on the catalog's worker pool under per-table locks, and
:meth:`Catalog.explain_query` renders the node tree with per-node cost
estimates.

Cache-invalidation contract (the serving layer builds on this):

* Every statistics structure a planner prices with carries a
  **monotonic generation counter** bumped on each observer event
  (:attr:`~repro.storage.cohorts.CohortZoneMap.generation`,
  :attr:`~repro.stats.TableHistogramStats.generation`), folded into
  :attr:`~repro.query.planner.QueryPlanner.generation`.  A cached plan
  keyed on ``(source, predicate shape, generation)`` is valid exactly
  as long as the generation it was planned under still stands.
* Cached *results* record the **cohort set** their matches touched;
  a forget event invalidates exactly the entries whose cohort sets it
  intersects (the :class:`~repro.storage.table.TableObserver` protocol
  delivers the newly forgotten positions), and an insert invalidates
  entries whose predicate bounds cannot provably exclude the new rows
  — so a cached answer is served iff it is bit-identical to a fresh
  execution.
* Dropping or re-creating a source is announced through the catalog's
  **lifecycle hooks** (:meth:`Catalog.add_lifecycle_hook`), so caches
  keyed by source name never serve an answer computed against a
  previous table of the same name.
"""

from __future__ import annotations

import threading
from collections.abc import Iterator
from contextlib import nullcontext

from typing import TYPE_CHECKING

from .._util.errors import SchemaError
from .._util.validation import check_in
from .cohorts import CohortZoneMap
from .table import Table

if TYPE_CHECKING:  # pragma: no cover
    from ..query.executor import QueryExecutor
    from ..query.planner import QueryPlanner

__all__ = ["Catalog"]


class Catalog:
    """Registry of tables by name, each queried through a shared planner.

    Parameters
    ----------
    plan:
        Access-path mode for every table's planner (one of
        :data:`~repro.query.planner.PLAN_MODES`); ``None`` resolves to
        :func:`repro.core.config.default_plan` lazily, at first
        planner use, so the CLI's ``--plan`` flag reaches
        catalog-backed runs too.
    workers:
        Fan-out width for :meth:`execute_batch`: how many per-table
        query streams may run concurrently (tables are independent;
        each table's queries stay sequential and ordered, so access
        accounting is bit-identical at any width).  ``None`` resolves
        to :func:`repro.core.config.default_workers` lazily, like
        ``plan``.
    stats:
        Cardinality-statistics source for every table's planner (one
        of :data:`repro.core.config.STATS_MODES`): ``"hist"`` attaches
        per-table :class:`~repro.stats.TableHistogramStats` so cost
        estimates — including cross-table join cardinalities — track
        skewed streams.  ``None`` resolves to
        :func:`repro.core.config.default_stats` lazily, like ``plan``.

    >>> cat = Catalog()
    >>> t = cat.create_table("obs", ["a"])
    >>> cat.get("obs") is t
    True
    """

    def __init__(
        self,
        plan: str | None = None,
        workers: int | None = None,
        stats: str | None = None,
    ) -> None:
        if plan is not None:
            # Imported lazily: the query package imports storage, so a
            # module-level import here would be circular.
            from ..query.planner import PLAN_MODES

            check_in(plan, PLAN_MODES, "plan")
        if stats is not None:
            from ..core.config import STATS_MODES

            check_in(stats, STATS_MODES, "stats")
        if workers is not None and workers < 1:
            raise SchemaError(f"workers must be >= 1, got {workers}")
        # Imported lazily like the planner bits (storage must not pull
        # in higher layers at module import time).
        from .._util.parallel import FanOutPool

        self._plan = plan
        self._stats = stats
        self._workers = workers
        self._fanout = FanOutPool()
        self._tables: dict[str, Table] = {}
        self._planners: dict[str, "QueryPlanner"] = {}
        self._executors: dict[tuple[str, bool], "QueryExecutor"] = {}
        # One lock per table serializes its planner+executor pipeline
        # (the catalog twin of the sharded store's per-shard locks):
        # concurrent batches or cross-table queries touching the same
        # table cannot race its access accounting or planner counters.
        self._table_locks: dict[str, threading.Lock] = {}
        # Guards lazy planner/executor construction: without it two
        # concurrent first-touch callers could build two planners for
        # one table and split its counters between them.
        self._build_lock = threading.Lock()
        self._sharded: dict[str, object] = {}
        # Lifecycle subscribers: ``hook(event, name)`` with ``event``
        # in {"create", "drop"} — fired after registry mutations,
        # outside the catalog's locks (hooks may re-enter the catalog).
        # The serving caches subscribe here so a drop→recreate under a
        # reused name can never serve state of the previous table.
        self._lifecycle_hooks: list = []
        self._cross_queries = 0
        #: (node, result summary) of the newest cross-table query —
        #: rendered lazily by :meth:`plan_report`, so the hot path
        #: never pays for per-node cost estimation it was not asked
        #: for, and the summary keeps only per-node counts, never the
        #: materialized row matrices.
        self._last_cross: tuple | None = None

    @property
    def workers(self) -> int:
        """The fan-out width batch and cross-table execution use.

        Mutable (like the sharded store's ``workers``) — benchmarks
        flip it between runs; results are bit-identical at any width.
        """
        if self._workers is None:
            from ..core.config import default_workers

            return default_workers()
        return self._workers

    @workers.setter
    def workers(self, value: int) -> None:
        if value is not None and value < 1:
            raise SchemaError(f"workers must be >= 1, got {value}")
        self._workers = None if value is None else int(value)

    @property
    def plan_mode(self) -> str:
        """The access-path mode the catalog's planners are built with.

        Before any planner exists this previews the process default;
        :meth:`planner` pins it at first use so every table in the
        catalog shares one plan story even if the default changes
        mid-run.
        """
        if self._plan is None:
            from ..core.config import default_plan

            return default_plan()
        return self._plan

    @property
    def stats_mode(self) -> str:
        """The statistics source the catalog's planners are built with.

        Resolves lazily like :attr:`plan_mode`: previews the process
        default until the first planner pins it.
        """
        if self._stats is None:
            from ..core.config import default_stats

            return default_stats()
        return self._stats

    def create_table(self, name: str, column_names) -> Table:
        """Create and register a new table."""
        if name in self._tables:
            raise SchemaError(f"table {name!r} already exists")
        if name in self._sharded:
            raise SchemaError(f"{name!r} already names a sharded store")
        table = Table(name, column_names)
        self._admit(name, table)
        return table

    def register(self, table: Table) -> None:
        """Register an externally constructed table."""
        if table.name in self._tables:
            raise SchemaError(f"table {table.name!r} already exists")
        if table.name in self._sharded:
            raise SchemaError(
                f"{table.name!r} already names a sharded store"
            )
        self._admit(table.name, table)

    def _admit(self, name: str, table: Table) -> None:
        """Install a new table in the registry and announce it.

        Verifies — under ``_build_lock``, so no lazy build is mid-
        flight — that no planner/executor of a previously dropped table
        with the same name survived: a stale entry here would silently
        serve the *old* table's plans and accounting (the drop-race
        bug this guards against; :meth:`drop` now takes the same lock).
        """
        with self._build_lock:
            stale = name in self._planners or any(
                key[0] == name for key in self._executors
            )
            if stale:  # pragma: no cover - guarded by the drop fix
                raise SchemaError(
                    f"stale planner/executor cache survived for {name!r}; "
                    "drop must purge caches before the name is reused"
                )
            self._tables[name] = table
            self._table_locks[name] = threading.Lock()
        self._notify("create", name)

    def register_sharded(self, name: str, store) -> None:
        """Register a :class:`~repro.partitioning.
        PartitionedAmnesiaDatabase` as a named cross-table query source.

        Sharded stores keep their own per-shard planners and fan-out
        pool; registration only makes them addressable from plan trees
        (:class:`~repro.query.plans.ShardedScanNode`) and query specs.
        """
        if name in self._tables or name in self._sharded:
            raise SchemaError(f"{name!r} already names a catalog source")
        # The full contract the query/explain/report paths rely on —
        # rejected here, next to the registration call, instead of as
        # an AttributeError deep inside a later explain or report.
        required = ("scan_rows", "estimate_scan", "partition_count", "plan_mode")
        missing = [attr for attr in required if not hasattr(store, attr)]
        if missing:
            raise SchemaError(
                f"sharded source {name!r} must expose {required}; "
                f"{type(store).__name__} lacks {missing}"
            )
        self._sharded[name] = store
        self._notify("create", name)

    def sharded(self, name: str):
        """Look a registered sharded store up by name."""
        try:
            return self._sharded[name]
        except KeyError:
            raise SchemaError(f"no sharded store named {name!r}") from None

    def has_sharded(self, name: str) -> bool:
        """True when ``name`` is a registered sharded store."""
        return name in self._sharded

    def sharded_names(self) -> list[str]:
        """All registered sharded store names."""
        return list(self._sharded)

    def get(self, name: str) -> Table:
        """Look a table up by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"no table named {name!r}") from None

    def drop(self, name: str) -> None:
        """Remove a table or sharded store (its data is unreferenced).

        Purges the planner/executor caches under ``_build_lock`` — the
        same lock the lazy double-checked builds hold — so an in-flight
        :meth:`planner`/:meth:`executor` call can never re-insert an
        entry for the dropped table after the purge (the entry a table
        re-created under the same name would then wrongly inherit).
        """
        if name in self._sharded:
            del self._sharded[name]
            self._notify("drop", name)
            return
        with self._build_lock:
            if name not in self._tables:
                raise SchemaError(f"no table named {name!r}")
            del self._tables[name]
            self._table_locks.pop(name, None)
            self._planners.pop(name, None)
            for key in [k for k in self._executors if k[0] == name]:
                del self._executors[key]
        self._notify("drop", name)

    # -- lifecycle hooks -----------------------------------------------------

    def add_lifecycle_hook(self, hook) -> None:
        """Subscribe ``hook(event, name)`` to registry mutations.

        ``event`` is ``"create"`` or ``"drop"``; hooks fire after the
        mutation, outside the catalog's locks (they may re-enter the
        catalog).  Caches keyed by source name subscribe here to shed
        state across a drop→recreate of the same name.
        """
        if hook not in self._lifecycle_hooks:
            self._lifecycle_hooks.append(hook)

    def remove_lifecycle_hook(self, hook) -> None:
        """Unsubscribe a hook registered via :meth:`add_lifecycle_hook`."""
        if hook in self._lifecycle_hooks:
            self._lifecycle_hooks.remove(hook)

    def _notify(self, event: str, name: str) -> None:
        for hook in list(self._lifecycle_hooks):
            hook(event, name)

    # -- planning surface ----------------------------------------------------

    def planner(self, name: str) -> "QueryPlanner":
        """The table's planner, built on first use.

        Non-``scan`` modes attach a :class:`CohortZoneMap` (backfilled
        over existing history, so late attachment is exact); the
        ``hist`` statistics mode additionally attaches a
        :class:`~repro.stats.TableHistogramStats` the same way.
        """
        from ..query.planner import QueryPlanner
        from ..stats.table_stats import TableHistogramStats

        planner = self._planners.get(name)
        if planner is None:
            with self._build_lock:
                planner = self._planners.get(name)
                if planner is None:
                    table = self.get(name)
                    if self._plan is None:
                        self._plan = self.plan_mode  # pin the resolved default
                    if self._stats is None:
                        self._stats = self.stats_mode
                    mode = self._plan
                    zone_map = CohortZoneMap(table) if mode != "scan" else None
                    table_stats = (
                        TableHistogramStats(table)
                        if self._stats == "hist" and mode != "scan"
                        else None
                    )
                    planner = QueryPlanner(
                        table, mode=mode, zone_map=zone_map, stats=table_stats
                    )
                    self._planners[name] = planner
        return planner

    def executor(self, name: str, *, record_access: bool = True) -> "QueryExecutor":
        """The table's executor, bound to its catalog planner.

        Recording and non-recording executors are cached separately
        (both share the table's one planner), so a read-only analysis
        pass never inherits — or poisons — the accounting choice of an
        earlier caller.
        """
        from ..query.executor import QueryExecutor

        key = (name, bool(record_access))
        executor = self._executors.get(key)
        if executor is None:
            planner = self.planner(name)
            with self._build_lock:
                executor = self._executors.get(key)
                if executor is None:
                    executor = QueryExecutor(
                        self.get(name),
                        record_access=record_access,
                        planner=planner,
                    )
                    self._executors[key] = executor
        return executor

    def create_index(self, name: str, column: str, index_factory, **kwargs):
        """Build ``index_factory(table, column, **kwargs)`` and register it."""
        index = index_factory(self.get(name), column, **kwargs)
        return self.planner(name).register_index(index)

    def plan(self, name: str, query_or_predicate):
        """Preview the access path one table's planner would take."""
        return self.planner(name).explain(query_or_predicate)

    def explain(self, name: str, query_or_predicate):
        """Alias of :meth:`plan` (EXPLAIN-style naming)."""
        return self.plan(name, query_or_predicate)

    def source_lock(self, name: str):
        """Serialization guard for one source's query pipeline.

        Tables return their catalog lock; sharded stores return a null
        context because they already synchronize internally — their
        write-preferring :class:`~repro._util.parallel.EpochGate`
        serializes ingest publication against readers, and per-shard
        locks cover each shard's planner+executor pipeline.  Every
        catalog-routed execution path (``execute``, ``execute_batch``,
        cross-table plan leaves) acquires this around the
        planner+executor pipeline, so concurrent callers — two
        batches, or a batch racing a :meth:`query` — can never race a
        table's access accounting or planner counters.

        Raises :class:`~repro._util.errors.SchemaError` for unknown
        names, including a table dropped concurrently between the
        existence check and the lock lookup.
        """
        if name in self._sharded:
            return nullcontext()
        self.get(name)  # validates existence (clear error for unknowns)
        try:
            return self._table_locks[name]
        except KeyError:
            # The table was dropped between get() and the lookup.
            raise SchemaError(f"no table named {name!r}") from None

    def execute(self, name: str, query, epoch: int):
        """Run a query against one table through its catalog executor."""
        executor = self.executor(name)
        with self.source_lock(name):
            return executor.execute(query, epoch)

    def execute_batch(self, requests, epoch: int) -> list:
        """Run ``(table_name, query)`` pairs; results in request order.

        Requests fan out across *tables* on a thread pool when
        ``workers > 1`` — tables are independent, and each table's own
        queries run sequentially in request order (a name queried
        twice in one batch keeps its requests in submission order on
        one worker), so results and access accounting are bit-identical
        to a sequential loop at any width.  Each execution additionally
        holds the table's :meth:`source_lock`, so *concurrent* batches
        sharing a table stay exact too.  Executors (and planners) are
        resolved up front, before the fan-out, because lazy
        construction mutates shared caches.
        """
        requests = list(requests)
        by_table: dict[str, list[int]] = {}
        for i, (name, _) in enumerate(requests):
            self.executor(name)  # build caches outside the worker threads
            by_table.setdefault(name, []).append(i)
        results: list = [None] * len(requests)

        def run_table(indexes: list[int]) -> None:
            for i in indexes:
                name, query = requests[i]
                with self.source_lock(name):
                    results[i] = self.executor(name).execute(query, epoch)

        self._fanout.map_ordered(
            run_table, list(by_table.values()), self.workers
        )
        return results

    # -- cross-table queries -------------------------------------------------

    def query(
        self,
        plan,
        epoch: int,
        *,
        record_access: bool = True,
        batch_size: int | None = None,
    ):
        """Execute a cross-table plan tree (or compact spec string).

        ``plan`` is a :class:`~repro.query.plans.PlanNode` — built
        directly from :class:`~repro.query.plans.TableScanNode` /
        :class:`~repro.query.plans.UnionNode` /
        :class:`~repro.query.plans.JoinNode` — or a spec string such as
        ``"join:s1,s2:on=value"`` bound via
        :func:`~repro.query.plans.build_plan`.  Leaf scans fan out on
        the catalog's pool (``workers``), grouped by source so access
        accounting stays race-free; results are bit-identical at any
        width.  Returns a :class:`~repro.query.plans.NodeResult` — or,
        for an aggregate plan (an :class:`~repro.query.plans.
        AggregateNode` root, or a spec with ``agg=``), a
        :class:`~repro.query.plans.StreamedAggregate` computed by the
        streaming engine without materializing intermediate rows;
        ``batch_size`` bounds that engine's working set (``None`` = the
        process default, the CLI's ``--batch-size``).
        """
        from ..query.plans import build_plan, execute_plan, summarize_result

        node = build_plan(self, plan) if isinstance(plan, str) else plan
        result = execute_plan(
            node,
            self,
            epoch,
            pool=self._fanout,
            workers=self.workers,
            record_access=record_access,
            batch_size=batch_size,
        )
        summary = summarize_result(result)
        with self._build_lock:
            self._cross_queries += 1
            self._last_cross = (node, summary)
        return result

    def explain_query(self, plan) -> str:
        """EXPLAIN a cross-table plan: the node tree with cost estimates."""
        from ..query.plans import build_plan, explain_plan

        node = build_plan(self, plan) if isinstance(plan, str) else plan
        return explain_plan(node, self)

    def checkpoint(self, path):
        """Save every table and sharded store (see :func:`repro.storage.save_store`).

        Sharded members flush (publishing queued batches) before they
        are snapshotted.  Restore with :func:`repro.storage.load_store`
        — pass ``policy_factory`` when the catalog holds sharded
        stores, since their policies rebuild instead of serializing.
        """
        from .io import save_store

        return save_store(self, path)

    def close(self) -> None:
        """Release the fan-out thread pool (catalog stays usable)."""
        self._fanout.close()

    def __enter__(self) -> "Catalog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def plan_report(self) -> str:
        """One EXPLAIN-style report covering every planned table."""
        lines = [
            f"Catalog(plan={self.plan_mode!r}, stats={self.stats_mode!r}) — "
            f"{len(self._tables)} table(s), "
            f"{len(self._planners)} planned, workers {self.workers}"
        ]
        for name in self._tables:
            planner = self._planners.get(name)
            if planner is None:
                lines.append(f"table {name!r}: never queried")
                continue
            lines.append(f"table {name!r}:")
            lines.extend("  " + line for line in planner.plan_report().splitlines())
        for name, store in self._sharded.items():
            lines.append(
                f"sharded {name!r}: {store.partition_count} shard(s), "
                f"plan={store.plan_mode!r}"
            )
        if self._cross_queries:
            from ..query.plans import render_summary

            lines.append(
                f"cross-table queries executed: {self._cross_queries}; "
                "last plan:"
            )
            lines.extend(
                "  " + line
                for line in render_summary(*self._last_cross, self).splitlines()
            )
        return "\n".join(lines)

    # -- registry protocol ---------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    def names(self) -> list[str]:
        """All registered table names."""
        return list(self._tables)
