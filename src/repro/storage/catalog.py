"""A minimal catalog: named tables.

The paper's simulator has a fixed schema ("a collection of columns",
§2.1); a catalog is nevertheless useful for the examples and the CLI,
where several tables (e.g. per-sensor streams) coexist in one run.
"""

from __future__ import annotations

from collections.abc import Iterator

from .._util.errors import SchemaError
from .table import Table

__all__ = ["Catalog"]


class Catalog:
    """Registry of tables by name.

    >>> cat = Catalog()
    >>> t = cat.create_table("obs", ["a"])
    >>> cat.get("obs") is t
    True
    """

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}

    def create_table(self, name: str, column_names) -> Table:
        """Create and register a new table."""
        if name in self._tables:
            raise SchemaError(f"table {name!r} already exists")
        table = Table(name, column_names)
        self._tables[name] = table
        return table

    def register(self, table: Table) -> None:
        """Register an externally constructed table."""
        if table.name in self._tables:
            raise SchemaError(f"table {table.name!r} already exists")
        self._tables[table.name] = table

    def get(self, name: str) -> Table:
        """Look a table up by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"no table named {name!r}") from None

    def drop(self, name: str) -> None:
        """Remove a table from the catalog (its data is unreferenced)."""
        if name not in self._tables:
            raise SchemaError(f"no table named {name!r}")
        del self._tables[name]

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    def names(self) -> list[str]:
        """All registered table names."""
        return list(self._tables)
