"""Cohort (update-batch) bookkeeping and cohort-level statistics.

The paper's amnesia maps (Figures 1 and 2) plot, per update batch, the
fraction of that batch's tuples still active after a run.  To draw them
we must remember which contiguous range of row positions each epoch
inserted.  Rows are appended strictly in epoch order, so a cohort is a
half-open interval ``[start, stop)`` of positions.

Epoch 0 is the initial load; epochs ``1..n`` are update batches.

:class:`CohortZoneMap` layers zone-map statistics (per-cohort min/max
value and active-tuple count) on top of the log.  It subscribes to the
table's insert/forget events, so the statistics stay exact without the
table knowing about them — the query planner uses them to skip cohorts
a range predicate cannot touch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util.errors import StorageError

__all__ = ["CardinalityEstimate", "Cohort", "CohortLog", "CohortZoneMap"]

_INT64_MAX = np.iinfo(np.int64).max
_INT64_MIN = np.iinfo(np.int64).min


@dataclass(frozen=True)
class Cohort:
    """One insertion batch: ``epoch`` inserted positions ``[start, stop)``."""

    epoch: int
    start: int
    stop: int

    @property
    def size(self) -> int:
        """Number of tuples inserted in this cohort."""
        return self.stop - self.start

    def positions(self) -> np.ndarray:
        """Row positions belonging to this cohort, ascending."""
        return np.arange(self.start, self.stop, dtype=np.int64)

    def __contains__(self, position: int) -> bool:
        return self.start <= int(position) < self.stop


class CohortLog:
    """Append-only log of insertion cohorts.

    Maintains the invariant that cohorts are contiguous, non-overlapping
    and in strictly increasing epoch order — i.e. they tile ``[0,
    total_rows)`` exactly.

    >>> log = CohortLog()
    >>> _ = log.record(epoch=0, start=0, stop=1000)
    >>> _ = log.record(epoch=1, start=1000, stop=1200)
    >>> log.epoch_of(np.array([0, 999, 1000])).tolist()
    [0, 0, 1]
    """

    __slots__ = ("_cohorts", "_starts")

    def __init__(self) -> None:
        self._cohorts: list[Cohort] = []
        self._starts: list[int] = []

    def __len__(self) -> int:
        return len(self._cohorts)

    def __iter__(self):
        return iter(self._cohorts)

    def __getitem__(self, index: int) -> Cohort:
        return self._cohorts[index]

    @property
    def total_rows(self) -> int:
        """Total number of rows covered by all cohorts."""
        return self._cohorts[-1].stop if self._cohorts else 0

    @property
    def latest_epoch(self) -> int:
        """Epoch of the most recent cohort (-1 when empty)."""
        return self._cohorts[-1].epoch if self._cohorts else -1

    def record(self, epoch: int, start: int, stop: int) -> Cohort:
        """Record a new cohort, enforcing contiguity and epoch order."""
        if stop < start:
            raise StorageError(f"cohort range [{start}, {stop}) is reversed")
        expected_start = self.total_rows
        if start != expected_start:
            raise StorageError(
                f"cohort must start at {expected_start}, got {start}"
            )
        if self._cohorts and epoch <= self._cohorts[-1].epoch:
            raise StorageError(
                f"cohort epochs must increase: {epoch} after {self._cohorts[-1].epoch}"
            )
        cohort = Cohort(epoch=int(epoch), start=int(start), stop=int(stop))
        self._cohorts.append(cohort)
        self._starts.append(cohort.start)
        return cohort

    def by_epoch(self, epoch: int) -> Cohort:
        """Return the cohort inserted at ``epoch``."""
        for cohort in self._cohorts:
            if cohort.epoch == epoch:
                return cohort
        raise KeyError(f"no cohort recorded for epoch {epoch}")

    def index_of(self, positions: np.ndarray) -> np.ndarray:
        """Map row positions to cohort ordinals (0-based log indices).

        Vectorised via binary search over cohort start offsets.
        """
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size == 0:
            return np.empty(0, dtype=np.int64)
        total = self.total_rows
        if positions.min() < 0 or positions.max() >= total:
            raise IndexError(f"positions out of range [0, {total}) in index_of")
        starts = np.asarray(self._starts, dtype=np.int64)
        return np.searchsorted(starts, positions, side="right") - 1

    def epoch_of(self, positions: np.ndarray) -> np.ndarray:
        """Map row positions to the epoch that inserted them."""
        idx = self.index_of(positions)
        if idx.size == 0:
            return idx
        epochs = np.asarray([c.epoch for c in self._cohorts], dtype=np.int64)
        return epochs[idx]

    def epochs(self) -> list[int]:
        """All recorded epochs, in order."""
        return [c.epoch for c in self._cohorts]


@dataclass(frozen=True)
class CardinalityEstimate:
    """Zone-map-derived cardinality estimate for one range probe.

    ``candidate_rows`` and ``forgotten_candidate_rows`` are *exact*
    costs of a pruned scan (rows in intersecting cohorts); the
    ``est_*`` match counts assume values are uniform within each
    cohort's ``[min, max]`` — the classic System-R uniformity
    assumption applied per cohort instead of per table.
    """

    #: Rows a zone-map-pruned scan must consider (exact).
    candidate_rows: int
    #: Rows a forgotten-side pruned scan must consider (exact).
    forgotten_candidate_rows: int
    #: Estimated active (amnesiac-visible) matches.
    est_active: float
    #: Estimated forgotten matches (the M_F side).
    est_forgotten: float

    @property
    def est_rows(self) -> float:
        """Estimated oracle-result cardinality (active + forgotten)."""
        return self.est_active + self.est_forgotten


class CohortZoneMap:
    """Per-cohort zone-map statistics: min/max value and active count.

    A :class:`~repro.storage.table.TableObserver` that maintains, for
    each tracked column and each insertion cohort, the minimum and
    maximum value ever inserted plus the exact count of still-active
    tuples.  The query planner prunes cohorts whose ``[min, max]``
    cannot intersect a range predicate; the active/forgotten counts let
    it additionally skip cohorts that cannot contribute to one side of
    the amnesiac/oracle split.

    Min/max are *insert-time* bounds: forgetting never widens a zone,
    so the bounds stay safe (possibly loose) without any rewriting —
    the same conservative contract a BRIN keeps between vacuums.

    Registration backfills existing history (see
    :meth:`~repro.storage.table.Table.add_observer`), so a zone map
    attached to a table that already holds rows is immediately exact.

    >>> from repro.storage import Table
    >>> t = Table("obs", ["a"])
    >>> _ = t.insert_batch(0, {"a": [5, 7, 9]})
    >>> _ = t.insert_batch(1, {"a": [100, 110]})
    >>> zm = CohortZoneMap(t)
    >>> zm.candidate_ranges("a", 0, 50)
    [(0, 3)]
    >>> t.forget(np.array([3, 4]), epoch=2)
    2
    >>> zm.candidate_ranges("a", 100, 200, require="active")
    []
    >>> zm.candidate_ranges("a", 100, 200, require="forgotten")
    [(3, 5)]
    """

    #: Pruning requirements accepted by :meth:`candidate_ranges`.
    REQUIREMENTS = ("any", "active", "forgotten")

    def __init__(self, table, columns=None):
        names = tuple(columns) if columns is not None else table.column_names
        if not names:
            raise StorageError("zone map needs at least one column")
        for name in names:
            table.column(name)  # validates existence
        self.table = table
        self._mins = {name: np.empty(0, dtype=np.int64) for name in names}
        self._maxs = {name: np.empty(0, dtype=np.int64) for name in names}
        self._starts = np.empty(0, dtype=np.int64)
        self._stops = np.empty(0, dtype=np.int64)
        self._active = np.empty(0, dtype=np.int64)
        self._generation = 0
        table.add_observer(self)  # backfill replays existing history

    # -- schema ---------------------------------------------------------

    @property
    def columns(self) -> tuple[str, ...]:
        """Columns this zone map tracks."""
        return tuple(self._mins)

    def covers(self, column: str) -> bool:
        """True when ``column`` is tracked by this zone map."""
        return column in self._mins

    @property
    def cohort_count(self) -> int:
        """Cohorts currently mapped."""
        self._sync()
        return int(self._active.size)

    @property
    def generation(self) -> int:
        """Monotonic statistics generation: bumped on every observer event.

        Two reads of the zone map separated by an unchanged generation
        are guaranteed to see identical statistics (no insert or forget
        reached the table in between) — the staleness guard the serving
        layer's plan cache keys on: a cached plan is valid exactly as
        long as the generation it was priced under still stands.
        """
        return self._generation

    # -- observer hooks -------------------------------------------------

    def _sync(self) -> None:
        """Grow the per-cohort arrays to cover newly recorded cohorts."""
        log = self.table.cohorts
        needed = len(log)
        current = self._active.size
        if needed <= current:
            return
        grow = needed - current
        for name in self._mins:
            self._mins[name] = np.concatenate(
                [self._mins[name], np.full(grow, _INT64_MAX, dtype=np.int64)]
            )
            self._maxs[name] = np.concatenate(
                [self._maxs[name], np.full(grow, _INT64_MIN, dtype=np.int64)]
            )
        fresh = [log[i] for i in range(current, needed)]
        self._starts = np.concatenate(
            [self._starts, np.asarray([c.start for c in fresh], dtype=np.int64)]
        )
        self._stops = np.concatenate(
            [self._stops, np.asarray([c.stop for c in fresh], dtype=np.int64)]
        )
        self._active = np.concatenate(
            [self._active, np.zeros(grow, dtype=np.int64)]
        )

    def _refresh_counts(self, idx: np.ndarray) -> None:
        """Recompute active counts for the cohorts in ``idx`` from the bitmap.

        Recounting (rather than incrementing) makes the hooks
        idempotent, so a backfill replay — including re-registration of
        an already-populated zone map — converges to the exact counts.
        """
        mask = self.table.active_mask()
        for i in np.unique(idx).tolist():
            start, stop = int(self._starts[i]), int(self._stops[i])
            self._active[i] = int(np.count_nonzero(mask[start:stop]))

    def on_insert(self, table, positions: np.ndarray) -> None:
        """Table hook: fold new rows into their cohorts' zones."""
        self._generation += 1
        self._sync()
        if positions.size == 0:
            return
        idx = table.cohorts.index_of(positions)
        for name in self._mins:
            values = table.values(name)[positions]
            np.minimum.at(self._mins[name], idx, values)
            np.maximum.at(self._maxs[name], idx, values)
        self._refresh_counts(idx)

    def on_forget(self, table, positions: np.ndarray) -> None:
        """Table hook: refresh active counts (zones stay as bounds)."""
        self._generation += 1
        self._sync()
        if positions.size == 0:
            return
        self._refresh_counts(table.cohorts.index_of(positions))

    # -- pruning --------------------------------------------------------

    def candidate_ranges(
        self, column: str, low: int, high: int, *, require: str = "any"
    ) -> list[tuple[int, int]]:
        """Position ranges ``[start, stop)`` a probe of ``[low, high)`` must scan.

        ``require`` narrows the candidates further:

        * ``"any"`` — value bounds intersect (safe for both views);
        * ``"active"`` — at least one active tuple remains;
        * ``"forgotten"`` — at least one tuple was forgotten.
        """
        self._sync()
        try:
            mins = self._mins[column]
            maxs = self._maxs[column]
        except KeyError:
            raise StorageError(
                f"zone map does not track column {column!r} "
                f"(tracked: {', '.join(self._mins)})"
            ) from None
        if require not in self.REQUIREMENTS:
            raise StorageError(
                f"require must be one of {self.REQUIREMENTS}, got {require!r}"
            )
        intersects = (mins < high) & (maxs >= low)
        if require == "active":
            intersects &= self._active > 0
        elif require == "forgotten":
            intersects &= (self._stops - self._starts) > self._active
        idx = np.flatnonzero(intersects)
        return [
            (int(self._starts[i]), int(self._stops[i])) for i in idx.tolist()
        ]

    def pruned_fraction(self, column: str, low: int, high: int) -> float:
        """Fraction of rows a probe of ``[low, high)`` skips."""
        total = self.table.total_rows
        if total == 0:
            return 0.0
        scanned = sum(
            stop - start for start, stop in self.candidate_ranges(column, low, high)
        )
        return 1.0 - scanned / total

    # -- cardinality estimation -----------------------------------------

    def estimate(
        self, column: str, low: int, high: int, *, stats=None
    ) -> CardinalityEstimate:
        """Estimate how many rows a probe of ``[low, high)`` matches.

        Exact pruned-scan costs come straight from the cohort layout;
        the match-count estimates interpolate each intersecting
        cohort's active/forgotten population by the fraction of its
        value span ``[min, max]`` the probe covers (uniformity
        assumption).  This is the statistic the planner's ``cost`` mode
        feeds on.

        ``stats`` optionally supplies a
        :class:`~repro.stats.table_stats.TableHistogramStats` covering
        ``column``: the match-count estimates are then read from the
        value histograms (sharp on skewed streams) while the pruned-scan
        costs stay zone-map exact.  A ``stats`` object that does not
        cover the column falls back to per-cohort uniformity.
        """
        self._sync()
        try:
            mins = self._mins[column]
            maxs = self._maxs[column]
        except KeyError:
            raise StorageError(
                f"zone map does not track column {column!r} "
                f"(tracked: {', '.join(self._mins)})"
            ) from None
        if mins.size == 0:
            return CardinalityEstimate(0, 0, 0.0, 0.0)
        sizes = self._stops - self._starts
        intersects = (mins < high) & (maxs >= low)
        overlap = np.minimum(maxs + 1, high) - np.maximum(mins, low)
        span = maxs - mins + 1
        fraction = np.where(
            intersects, np.clip(overlap / np.maximum(span, 1), 0.0, 1.0), 0.0
        )
        forgotten = sizes - self._active
        if stats is not None and stats.covers(column):
            est_active, est_forgotten = stats.estimate(column, low, high)
        else:
            est_active = float((self._active * fraction).sum())
            est_forgotten = float((forgotten * fraction).sum())
        return CardinalityEstimate(
            candidate_rows=int(sizes[intersects].sum()),
            forgotten_candidate_rows=int(
                sizes[intersects & (forgotten > 0)].sum()
            ),
            est_active=est_active,
            est_forgotten=est_forgotten,
        )

    # -- introspection --------------------------------------------------

    def active_counts(self) -> np.ndarray:
        """Read-only per-cohort active-tuple counts."""
        self._sync()
        return self._active.copy()

    def bounds(self, column: str) -> tuple[np.ndarray, np.ndarray]:
        """Per-cohort (mins, maxs) for ``column`` (copies)."""
        self._sync()
        if column not in self._mins:
            raise StorageError(f"zone map does not track column {column!r}")
        return self._mins[column].copy(), self._maxs[column].copy()

    def nbytes(self) -> int:
        """Approximate footprint of the statistics arrays."""
        per_column = sum(
            self._mins[n].nbytes + self._maxs[n].nbytes for n in self._mins
        )
        return int(
            per_column
            + self._starts.nbytes
            + self._stops.nbytes
            + self._active.nbytes
        )

    def __repr__(self) -> str:
        return (
            f"CohortZoneMap(columns={list(self._mins)}, "
            f"cohorts={self._active.size})"
        )
