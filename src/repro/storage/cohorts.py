"""Cohort (update-batch) bookkeeping.

The paper's amnesia maps (Figures 1 and 2) plot, per update batch, the
fraction of that batch's tuples still active after a run.  To draw them
we must remember which contiguous range of row positions each epoch
inserted.  Rows are appended strictly in epoch order, so a cohort is a
half-open interval ``[start, stop)`` of positions.

Epoch 0 is the initial load; epochs ``1..n`` are update batches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util.errors import StorageError

__all__ = ["Cohort", "CohortLog"]


@dataclass(frozen=True)
class Cohort:
    """One insertion batch: ``epoch`` inserted positions ``[start, stop)``."""

    epoch: int
    start: int
    stop: int

    @property
    def size(self) -> int:
        """Number of tuples inserted in this cohort."""
        return self.stop - self.start

    def positions(self) -> np.ndarray:
        """Row positions belonging to this cohort, ascending."""
        return np.arange(self.start, self.stop, dtype=np.int64)

    def __contains__(self, position: int) -> bool:
        return self.start <= int(position) < self.stop


class CohortLog:
    """Append-only log of insertion cohorts.

    Maintains the invariant that cohorts are contiguous, non-overlapping
    and in strictly increasing epoch order — i.e. they tile ``[0,
    total_rows)`` exactly.

    >>> log = CohortLog()
    >>> _ = log.record(epoch=0, start=0, stop=1000)
    >>> _ = log.record(epoch=1, start=1000, stop=1200)
    >>> log.epoch_of(np.array([0, 999, 1000])).tolist()
    [0, 0, 1]
    """

    __slots__ = ("_cohorts", "_starts")

    def __init__(self) -> None:
        self._cohorts: list[Cohort] = []
        self._starts: list[int] = []

    def __len__(self) -> int:
        return len(self._cohorts)

    def __iter__(self):
        return iter(self._cohorts)

    def __getitem__(self, index: int) -> Cohort:
        return self._cohorts[index]

    @property
    def total_rows(self) -> int:
        """Total number of rows covered by all cohorts."""
        return self._cohorts[-1].stop if self._cohorts else 0

    @property
    def latest_epoch(self) -> int:
        """Epoch of the most recent cohort (-1 when empty)."""
        return self._cohorts[-1].epoch if self._cohorts else -1

    def record(self, epoch: int, start: int, stop: int) -> Cohort:
        """Record a new cohort, enforcing contiguity and epoch order."""
        if stop < start:
            raise StorageError(f"cohort range [{start}, {stop}) is reversed")
        expected_start = self.total_rows
        if start != expected_start:
            raise StorageError(
                f"cohort must start at {expected_start}, got {start}"
            )
        if self._cohorts and epoch <= self._cohorts[-1].epoch:
            raise StorageError(
                f"cohort epochs must increase: {epoch} after {self._cohorts[-1].epoch}"
            )
        cohort = Cohort(epoch=int(epoch), start=int(start), stop=int(stop))
        self._cohorts.append(cohort)
        self._starts.append(cohort.start)
        return cohort

    def by_epoch(self, epoch: int) -> Cohort:
        """Return the cohort inserted at ``epoch``."""
        for cohort in self._cohorts:
            if cohort.epoch == epoch:
                return cohort
        raise KeyError(f"no cohort recorded for epoch {epoch}")

    def epoch_of(self, positions: np.ndarray) -> np.ndarray:
        """Map row positions to the epoch that inserted them.

        Vectorised via binary search over cohort start offsets.
        """
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size == 0:
            return np.empty(0, dtype=np.int64)
        total = self.total_rows
        if positions.min() < 0 or positions.max() >= total:
            raise IndexError(f"positions out of range [0, {total}) in epoch_of")
        starts = np.asarray(self._starts, dtype=np.int64)
        idx = np.searchsorted(starts, positions, side="right") - 1
        epochs = np.asarray([c.epoch for c in self._cohorts], dtype=np.int64)
        return epochs[idx]

    def epochs(self) -> list[int]:
        """All recorded epochs, in order."""
        return [c.epoch for c in self._cohorts]
