"""Growable integer columns.

The paper's simulator is "a skeleton of a columnar DBMS ... tables
filled with integers in the range R = 0..DOMAIN" (§2.1).  A column here
is an append-only ``int64`` vector with amortised O(1) append and
zero-copy read views.  Append-only is deliberate: amnesia never rewrites
values, it only flips activity bits, so the value vector is immutable
history.
"""

from __future__ import annotations

import numpy as np

from .._util.errors import StorageError
from .._util.validation import as_int_array

__all__ = ["IntColumn"]

_INITIAL_CAPACITY = 64


class IntColumn:
    """An append-only, growable vector of 64-bit integers.

    >>> col = IntColumn("a")
    >>> col.append_many([3, 1, 2])
    >>> len(col)
    3
    >>> col.values().tolist()
    [3, 1, 2]
    """

    __slots__ = ("name", "_data", "_length")

    def __init__(self, name: str, initial_capacity: int = _INITIAL_CAPACITY):
        if not name:
            raise StorageError("column name must be non-empty")
        if initial_capacity < 1:
            raise StorageError("initial_capacity must be >= 1")
        self.name = name
        self._data = np.empty(initial_capacity, dtype=np.int64)
        self._length = 0

    def __len__(self) -> int:
        return self._length

    @property
    def capacity(self) -> int:
        """Allocated slots (always >= ``len(self)``)."""
        return int(self._data.shape[0])

    def _ensure_capacity(self, needed: int) -> None:
        cap = self._data.shape[0]
        if needed <= cap:
            return
        new_cap = max(cap * 2, needed, _INITIAL_CAPACITY)
        grown = np.empty(new_cap, dtype=np.int64)
        grown[: self._length] = self._data[: self._length]
        self._data = grown

    def append(self, value: int) -> int:
        """Append one value; return its row position."""
        self._ensure_capacity(self._length + 1)
        self._data[self._length] = value
        self._length += 1
        return self._length - 1

    def append_many(self, values) -> None:
        """Append a 1-D array of integers."""
        arr = as_int_array(values, f"column {self.name!r} values")
        if arr.size == 0:
            return
        self._ensure_capacity(self._length + arr.size)
        self._data[self._length : self._length + arr.size] = arr
        self._length += arr.size

    def __getitem__(self, position: int) -> int:
        position = int(position)
        if not 0 <= position < self._length:
            raise IndexError(
                f"position {position} out of range for column of length {self._length}"
            )
        return int(self._data[position])

    def values(self) -> np.ndarray:
        """Read-only view of all values appended so far (zero copy)."""
        out = self._data[: self._length]
        out.flags.writeable = False
        return out

    def take(self, positions: np.ndarray) -> np.ndarray:
        """Gather values at ``positions`` (a copy)."""
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size == 0:
            return np.empty(0, dtype=np.int64)
        if positions.min() < 0 or positions.max() >= self._length:
            raise IndexError(
                f"positions out of range [0, {self._length}) in take()"
            )
        return self._data[positions].copy()

    def min(self) -> int:
        """Minimum value appended so far."""
        if self._length == 0:
            raise StorageError(f"column {self.name!r} is empty")
        return int(self._data[: self._length].min())

    def max(self) -> int:
        """Maximum value appended so far."""
        if self._length == 0:
            raise StorageError(f"column {self.name!r} is empty")
        return int(self._data[: self._length].max())

    def nbytes(self) -> int:
        """Logical (uncompressed) byte size of the column payload."""
        return self._length * np.dtype(np.int64).itemsize

    def __repr__(self) -> str:
        return f"IntColumn(name={self.name!r}, length={self._length})"
