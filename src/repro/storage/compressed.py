"""Compressed cohort storage: query the history without decompressing it.

"Data compression can be called upon to postpone the decisions to
forget data" (§4.4).  :class:`CompressedCohortStore` puts that on the
query path: cold cohorts — insertion batches old enough that no new
values will ever land in them (columns are append-only; amnesia only
flips activity bits) — are *demoted* into per-column
:func:`~repro.compression.codecs.best_codec`-chosen compressed blocks,
and range predicates are evaluated **directly on the encoded form**
wherever the codec allows:

``dict``
    The dictionary is sorted (``np.unique`` order), so a value range
    ``[low, high)`` binary-searches to a *code* range
    ``[lo_code, hi_code)`` and the predicate tests bit-packed codes —
    the dictionary itself is never gathered.

``for``
    Values are ``reference + offset`` with offsets in the uint64
    domain, so the bounds shift by the reference into offset space and
    the predicate compares bit-packed offsets — no value
    reconstruction.

``rle``
    The predicate runs over the run *values* (O(runs), not O(rows))
    and expands the run verdicts with ``np.repeat``.

``raw``
    The stored values are the values; the mask is computed in place.

Every block keeps its exact value ``[min, max]``, so a probe outside
the bounds short-circuits to all-``False`` and a probe covering them
to all-``True`` without touching the payload at all — the same
zone-style quick check :class:`~repro.storage.cohorts.CohortZoneMap`
applies one level up.

Demotion is **age-based and deterministic**: a cohort is cold once
``current_epoch - cohort.epoch >= min_age``.  The rule depends only on
the insert timeline — never on plan mode, worker count or query
traffic — so every configuration demotes the same cohorts at the same
epochs, which is what keeps compressed execution inside the
equivalence harness's bit-identical contract.  Demotion never touches
the raw column (the trust-nothing scan baseline still reads it); the
win is that pruned access paths answer from the compressed form, and
the byte accounting (:meth:`CompressedCohortStore.byte_report`) shows
how much history a fixed byte budget now retains.
"""

from __future__ import annotations

import numpy as np

from .._util.errors import CompressionError, StorageError
from ..compression.bitpack import unpack_ints
from ..compression.codecs import CompressedBlock, best_codec, make_codec

__all__ = ["CompressedCohortStore", "DECODE_FACTORS"]

_INT64_BYTES = 8
_UINT64_SPAN = 1 << 64

#: Relative cost of considering one row through each codec, against a
#: raw in-memory scan at 1.0.  ``dict``/``for`` evaluate on bit-packed
#: codes (unpack, no value reconstruction); ``rle`` re-expands run
#: verdicts; ``raw`` blocks read like the plain column.  The cost
#: model's decode term prices ``factor - 1`` extra work per row so
#: plans route around expensive decompression.
DECODE_FACTORS = {"raw": 1.0, "dict": 1.25, "for": 1.25, "rle": 2.5}


class CompressedCohortStore:
    """Best-codec compressed blocks for demoted (cold) cohorts.

    Parameters
    ----------
    table:
        The table whose cohorts may be demoted.
    columns:
        Columns to compress on demotion (default: all).
    min_age:
        Epoch age at which a cohort becomes cold: ``demote_cold(e)``
        demotes every cohort with ``e - cohort.epoch >= min_age``.
    """

    def __init__(self, table, columns=None, *, min_age: int = 2):
        names = tuple(columns) if columns is not None else table.column_names
        if not names:
            raise StorageError("compressed store needs at least one column")
        for name in names:
            table.column(name)  # validates existence
        if min_age < 1:
            raise StorageError(f"min_age must be >= 1, got {min_age}")
        self.table = table
        self.min_age = int(min_age)
        self._columns = names
        #: cohort ordinal -> column -> CompressedBlock
        self._blocks: dict[int, dict[str, CompressedBlock]] = {}
        #: cohort ordinal -> column -> exact (vmin, vmax)
        self._bounds: dict[int, dict[str, tuple[int, int]]] = {}
        #: cohort ordinal -> (start, stop)
        self._spans: dict[int, tuple[int, int]] = {}
        #: block start position -> cohort ordinal (range lookup)
        self._by_start: dict[int, int] = {}
        self._generation = 0
        # Access accounting: how compressed probes were answered.
        self._pruned_blocks = 0     # min/max quick reject/accept, no payload read
        self._direct_blocks = 0     # evaluated on codes/offsets/runs
        self._decoded_blocks = 0    # raw blocks (values read as stored)

    # -- schema ---------------------------------------------------------

    @property
    def columns(self) -> tuple[str, ...]:
        """Columns compressed on demotion."""
        return self._columns

    def covers(self, column: str) -> bool:
        """True when ``column`` is compressed on demotion."""
        return column in self._columns

    @property
    def generation(self) -> int:
        """Monotonic counter bumped on every demotion.

        Folded into the planner's plan-validity token: a cached plan
        priced before a demotion must be re-priced (the decode term
        changed), exactly like an index registration.
        """
        return self._generation

    @property
    def demoted_count(self) -> int:
        """Cohorts currently held in compressed form."""
        return len(self._blocks)

    @property
    def demoted_rows(self) -> int:
        """Rows covered by compressed blocks."""
        return sum(stop - start for start, stop in self._spans.values())

    # -- demotion -------------------------------------------------------

    def demote(self, ordinal: int) -> bool:
        """Demote one cohort (by log ordinal) into compressed blocks.

        Idempotent: an already-demoted or empty cohort is a no-op.
        Returns True when a demotion actually happened.
        """
        log = self.table.cohorts
        cohort = log[ordinal]
        if ordinal in self._blocks or cohort.size == 0:
            return False
        blocks: dict[str, CompressedBlock] = {}
        bounds: dict[str, tuple[int, int]] = {}
        for name in self._columns:
            window = self.table.values(name)[cohort.start : cohort.stop]
            blocks[name] = best_codec(window)
            bounds[name] = (int(window.min()), int(window.max()))
        self._blocks[ordinal] = blocks
        self._bounds[ordinal] = bounds
        self._spans[ordinal] = (cohort.start, cohort.stop)
        self._by_start[cohort.start] = ordinal
        self._generation += 1
        return True

    def demote_cold(self, current_epoch: int) -> int:
        """Demote every cohort aged ``>= min_age`` epochs; return the count.

        Deterministic in the insert timeline alone: the same epoch
        sequence demotes the same cohorts regardless of plan mode,
        statistics source or worker count.
        """
        demoted = 0
        for ordinal, cohort in enumerate(self.table.cohorts):
            if current_epoch - cohort.epoch < self.min_age:
                break  # epochs increase along the log; the rest are warm
            if self.demote(ordinal):
                demoted += 1
        return demoted

    # -- lookup ---------------------------------------------------------

    def block_at(self, start: int, stop: int, column: str):
        """The block covering exactly ``[start, stop)``, or ``None``.

        Candidate ranges from the zone map are whole cohorts (and
        intersections of whole-cohort lists over the same tiling are
        whole cohorts too), so an exact-span match is the common case;
        any other range falls back to the raw column.
        """
        ordinal = self._by_start.get(int(start))
        if ordinal is None or column not in self._columns:
            return None
        if self._spans[ordinal] != (int(start), int(stop)):
            return None
        return ordinal, self._blocks[ordinal][column]

    def bounds_at(self, ordinal: int, column: str) -> tuple[int, int]:
        """Exact value ``(min, max)`` of a demoted block."""
        return self._bounds[ordinal][column]

    # -- compressed predicate evaluation --------------------------------

    def range_mask(
        self, ordinal: int, column: str, low: int, high: int
    ) -> np.ndarray:
        """Boolean mask of ``low <= value < high`` over one demoted cohort.

        Bit-identical to evaluating the predicate on the raw window —
        codecs are lossless and block bounds are exact — but computed
        on the encoded form wherever the codec allows.
        """
        block = self._blocks[ordinal][column]
        n = block.n_values
        vmin, vmax = self._bounds[ordinal][column]
        if vmin >= high or vmax < low:
            self._pruned_blocks += 1
            return np.zeros(n, dtype=bool)
        if vmin >= low and vmax < high:
            self._pruned_blocks += 1
            return np.ones(n, dtype=bool)
        name = block.codec_name
        if name == "dict":
            dictionary = block.payload["dictionary"]
            lo_code = int(np.searchsorted(dictionary, low, side="left"))
            hi_code = int(np.searchsorted(dictionary, high, side="left"))
            codes = unpack_ints(
                block.payload["packed"],
                block.payload["bits"],
                n,
                dtype=np.uint64,
            )
            self._direct_blocks += 1
            return (codes >= np.uint64(lo_code)) & (codes < np.uint64(hi_code))
        if name == "for":
            reference = int(block.payload["reference"])
            offsets = unpack_ints(
                block.payload["packed"],
                block.payload["bits"],
                n,
                dtype=np.uint64,
            )
            # Shift the probe into the offset domain.  All offsets are
            # >= 0, so a lower bound at or below the reference is
            # vacuous; an upper bound of 2**64 (possible because high
            # may exceed reference by the full int64 span) is too.
            lo_off = max(low - reference, 0)
            hi_off = high - reference  # > 0: high > vmin == reference here
            mask = offsets >= np.uint64(lo_off)
            if hi_off < _UINT64_SPAN:
                mask &= offsets < np.uint64(hi_off)
            self._direct_blocks += 1
            return mask
        if name == "rle":
            runs = block.payload["runs"]
            run_mask = (runs >= low) & (runs < high)
            self._direct_blocks += 1
            return np.repeat(run_mask, block.payload["lengths"])
        if name == "raw":
            window = block.payload["values"]
            self._decoded_blocks += 1
            return (window >= low) & (window < high)
        raise CompressionError(f"unknown codec {name!r} in compressed block")

    def decode(self, ordinal: int, column: str) -> np.ndarray:
        """Materialize one demoted cohort's column (tests, repair)."""
        block = self._blocks[ordinal][column]
        return make_codec(block.codec_name).decode(block)

    # -- cost-model pricing ---------------------------------------------

    def decode_penalty(self, ranges, column: str) -> float:
        """Extra rows-equivalent the cost model charges for decompression.

        For each ``(start, stop)`` range answered from a compressed
        block, charge ``rows * (DECODE_FACTORS[codec] - 1)``; ranges
        still on the raw column cost nothing extra.
        """
        penalty = 0.0
        for start, stop in ranges:
            found = self.block_at(start, stop, column)
            if found is None:
                continue
            _, block = found
            factor = DECODE_FACTORS.get(block.codec_name, 1.0)
            penalty += (stop - start) * (factor - 1.0)
        return penalty

    # -- accounting -----------------------------------------------------

    def compressed_nbytes(self, column: str | None = None) -> int:
        """Encoded footprint of the demoted blocks (one or all columns)."""
        total = 0
        for blocks in self._blocks.values():
            if column is None:
                total += sum(b.nbytes for b in blocks.values())
            elif column in blocks:
                total += blocks[column].nbytes
        return total

    def raw_nbytes_covered(self, column: str | None = None) -> int:
        """What the demoted rows would occupy uncompressed."""
        width = len(self._columns) if column is None else 1
        return self.demoted_rows * _INT64_BYTES * width

    def byte_report(self) -> dict:
        """Byte accounting for dashboards and the bench suite."""
        compressed = self.compressed_nbytes()
        raw = self.raw_nbytes_covered()
        rows = self.demoted_rows
        return {
            "demoted_cohorts": self.demoted_count,
            "demoted_rows": rows,
            "compressed_nbytes": compressed,
            "raw_nbytes_covered": raw,
            "bytes_per_row": (compressed / (rows * len(self._columns)))
            if rows
            else 0.0,
            "ratio": (compressed / raw) if raw else 1.0,
        }

    def stats(self) -> dict:
        """Operational counters (access accounting included)."""
        codec_counts: dict[str, int] = {}
        for blocks in self._blocks.values():
            for block in blocks.values():
                codec_counts[block.codec_name] = (
                    codec_counts.get(block.codec_name, 0) + 1
                )
        report = self.byte_report()
        report.update(
            {
                "columns": list(self._columns),
                "min_age": self.min_age,
                "codecs": codec_counts,
                "blocks_pruned": self._pruned_blocks,
                "blocks_direct": self._direct_blocks,
                "blocks_decoded": self._decoded_blocks,
            }
        )
        return report

    # -- persistence ------------------------------------------------------

    def state(self) -> list[dict]:
        """Serializable block records for checkpointing (io format v3).

        One record per (cohort, column) block: scalars suitable for a
        JSON header plus the numpy payload arrays, keyed by field name.
        """
        records = []
        for ordinal in sorted(self._blocks):
            start, stop = self._spans[ordinal]
            for column in self._columns:
                block = self._blocks[ordinal][column]
                vmin, vmax = self._bounds[ordinal][column]
                scalars = {
                    "ordinal": ordinal,
                    "column": column,
                    "codec": block.codec_name,
                    "n_values": block.n_values,
                    "nbytes": block.nbytes,
                    "start": start,
                    "stop": stop,
                    "vmin": vmin,
                    "vmax": vmax,
                }
                arrays = {}
                for field, value in block.payload.items():
                    if isinstance(value, np.ndarray):
                        arrays[field] = value
                    else:
                        scalars[f"param_{field}"] = int(value)
                records.append({"scalars": scalars, "arrays": arrays})
        return records

    def load_state(self, records) -> None:
        """Rebuild demoted blocks from :meth:`state` records."""
        for record in records:
            scalars = dict(record["scalars"])
            ordinal = int(scalars["ordinal"])
            column = scalars["column"]
            payload: dict = {}
            for key, value in scalars.items():
                if key.startswith("param_"):
                    payload[key[len("param_") :]] = int(value)
            payload.update(record["arrays"])
            block = CompressedBlock(
                codec_name=scalars["codec"],
                n_values=int(scalars["n_values"]),
                payload=payload,
                nbytes=int(scalars["nbytes"]),
            )
            span = (int(scalars["start"]), int(scalars["stop"]))
            self._blocks.setdefault(ordinal, {})[column] = block
            self._bounds.setdefault(ordinal, {})[column] = (
                int(scalars["vmin"]),
                int(scalars["vmax"]),
            )
            self._spans[ordinal] = span
            self._by_start[span[0]] = ordinal
        self._generation += 1

    def __repr__(self) -> str:
        return (
            f"CompressedCohortStore(columns={list(self._columns)}, "
            f"demoted={self.demoted_count}, min_age={self.min_age})"
        )
