"""Table persistence: checkpoint and restore amnesiac tables.

Long amnesia studies (the §4.3 "increased run length" experiments and
anything larger) want checkpoints: the full table state — values,
activity bitmap, amnesia metadata, cohort log — round-trips through a
single compressed ``.npz`` file.

Only state owned by the table is persisted.  Policies, indexes and
dispositions rebuild from the restored table (indexes via
``rebuild()``), which keeps the format small and forward-compatible.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .._util.errors import StorageError
from .table import Table

__all__ = ["save_table", "load_table"]

#: Format version embedded in every checkpoint.
FORMAT_VERSION = 1


def save_table(table: Table, path) -> Path:
    """Write ``table`` to ``path`` as a compressed ``.npz`` checkpoint.

    >>> import tempfile, os
    >>> t = Table("obs", ["a"])
    >>> _ = t.insert_batch(0, {"a": [1, 2, 3]})
    >>> out = save_table(t, os.path.join(tempfile.mkdtemp(), "t.npz"))
    >>> load_table(out).total_rows
    3
    """
    path = Path(path)
    header = {
        "format_version": FORMAT_VERSION,
        "name": table.name,
        "columns": list(table.column_names),
        "cohorts": [
            {"epoch": c.epoch, "start": c.start, "stop": c.stop}
            for c in table.cohorts
        ],
    }
    arrays = {
        "active": table.active_mask().copy(),
        "insert_epoch": table.insert_epochs().copy(),
        "access_count": table.access_counts().copy(),
        "last_access_epoch": table.last_access_epochs().copy(),
        "forgotten_epoch": table.forgotten_epochs().copy(),
    }
    for name in table.column_names:
        arrays[f"column:{name}"] = table.values(name).copy()
    np.savez_compressed(
        path, header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        **arrays,
    )
    return path


def load_table(path) -> Table:
    """Restore a table saved by :func:`save_table`."""
    path = Path(path)
    if not path.exists():
        raise StorageError(f"no checkpoint at {path}")
    with np.load(path) as bundle:
        try:
            header = json.loads(bytes(bundle["header"].tobytes()).decode())
        except (KeyError, ValueError) as exc:
            raise StorageError(f"{path} is not a table checkpoint") from exc
        version = header.get("format_version")
        if version != FORMAT_VERSION:
            raise StorageError(
                f"checkpoint format {version} not supported "
                f"(expected {FORMAT_VERSION})"
            )
        table = Table(header["name"], header["columns"])
        for cohort in header["cohorts"]:
            batch = {
                name: bundle[f"column:{name}"][cohort["start"] : cohort["stop"]]
                for name in header["columns"]
            }
            table.insert_batch(cohort["epoch"], batch)

        # Replay metadata on top of the rebuilt skeleton.
        active = bundle["active"]
        if active.shape[0] != table.total_rows:
            raise StorageError(
                f"checkpoint is inconsistent: {active.shape[0]} activity "
                f"bits for {table.total_rows} rows"
            )
        forgotten_epoch = bundle["forgotten_epoch"]
        forgotten = np.flatnonzero(~active)
        # Group by forgotten epoch so stamps are restored exactly.
        for epoch in np.unique(forgotten_epoch[forgotten]):
            batch = forgotten[forgotten_epoch[forgotten] == epoch]
            table.forget(batch, epoch=int(epoch))
        # Counters restore directly — no query replay needed.
        table._access_count.overwrite(bundle["access_count"])
        table._last_access_epoch.overwrite(bundle["last_access_epoch"])
    return table
