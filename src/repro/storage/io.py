"""Persistence: checkpoint and restore tables, stores and catalogs.

Long amnesia studies (the §4.3 "increased run length" experiments and
anything larger) want checkpoints.  Format 2 extended the original
table-only path — one compressed ``.npz`` with a JSON header — to the
whole storage hierarchy; format 3 adds the compressed-execution state
(the ``compress`` mode plus kind-tagged compressed-block payloads for
every demoted cohort, so a restored store answers from the same
encoded blocks without re-encoding).  One pair of entry points covers
it all:

* :func:`save_table` / :func:`load_table` — one bare
  :class:`~repro.storage.table.Table` (values, activity bitmap,
  amnesia metadata, cohort log), unchanged API;
* :func:`save_store` / :func:`load_store` — additionally a
  :class:`~repro.core.database.AmnesiaDatabase` (budget, epoch, plan
  and stats modes), a :class:`~repro.partitioning.
  PartitionedAmnesiaDatabase` (layout, boundaries, per-shard budgets
  and clocks, traffic counters, adaptation history, published ingest
  epoch) or a :class:`~repro.storage.catalog.Catalog` (every plain
  table plus every registered sharded store) — all nested into the
  same one-file format rather than a second persistence path.

Only state the storage layer owns is persisted.  Policies, indexes,
zone maps and histogram statistics rebuild from the restored tables
(the cohort-by-cohort replay drives the same observer stream a live
run would have), which keeps the format small and forward-compatible.
The facade's policy *random stream* is state it owns, so its generator
position is saved too: a restored database or sharded store draws the
same victims the uncheckpointed run would have, as long as the policy
object itself carries no internal working state — policies that do
(e.g. the area policy's mold-area list) rebuild fresh from
``policy_factory`` and resume approximately.

Durability & recovery (format 4)
--------------------------------

The paper's thesis is that forgetting must be a *deliberate* act; a
checkpoint destroyed by unlucky crash timing would be accidental
amnesia.  Format 4 therefore makes the write path crash-safe and the
read path corruption-evident:

* **Atomic writes.**  Every save goes to ``<path>.tmp`` first, is
  flushed and fsynced, then moved into place with
  :func:`os.replace` (atomic on POSIX).  A kill at any instant leaves
  either the complete old file or the complete new file — never a
  torn one.  With ``rotate=True`` the previous checkpoint is first
  moved to ``<path>.prev``, keeping one generation of fallback.
* **Checksummed manifest.**  The JSON header carries a ``"manifest"``
  mapping every payload array name to the CRC-32 of its bytes.
  :func:`load_store` verifies the whole manifest — every listed array
  present and matching, no unlisted strays — *before* replaying
  anything, so a silently corrupted file raises
  :class:`~repro._util.errors.StorageError` instead of restoring
  garbage.
* **Recovery.**  :func:`recover_store` tries ``path`` then
  ``path.prev`` in order and returns the newest fully-valid snapshot
  (plus which file it used); it raises only when *no* candidate
  passes verification.  Combined with atomic writes this yields the
  recovery contract the fault suite proves: no crash injected at any
  point of the write path can leave a state ``recover_store`` refuses
  to load.

The write path exposes named fault-injection points
(``checkpoint.tmp`` / ``checkpoint.rotate`` / ``checkpoint.done`` —
see :mod:`repro.faults`) at each durability boundary.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path

import numpy as np

from .._util.errors import ReproError, StorageError
from ..faults import (
    CHECKPOINT_DONE,
    CHECKPOINT_ROTATE,
    CHECKPOINT_TMP,
    fault_point,
)
from .table import Table

__all__ = [
    "save_table",
    "load_table",
    "save_store",
    "load_store",
    "recover_store",
]

#: Format version embedded in every checkpoint.  Version 2 added the
#: store/catalog payloads (kind-tagged headers, prefixed array
#: namespaces); version 3 added compressed-block payloads (the
#: database/sharded ``compress`` mode plus one kind-tagged record per
#: demoted (cohort, column) block, scalars in the JSON header and
#: payload arrays under ``{prefix}cb{k}:{field}``); version 4 added
#: the durability envelope (atomic tmp+fsync+replace writes and the
#: per-array CRC-32 ``"manifest"`` in the header, verified in full
#: before any replay).  Version 1–3 files must be re-created.
FORMAT_VERSION = 4


# -- table payload (shared by every kind) --------------------------------


def _table_header(table: Table) -> dict:
    return {
        "name": table.name,
        "columns": list(table.column_names),
        "cohorts": [
            {"epoch": c.epoch, "start": c.start, "stop": c.stop}
            for c in table.cohorts
        ],
    }


def _table_arrays(table: Table, prefix: str) -> dict:
    arrays = {
        f"{prefix}active": table.active_mask().copy(),
        f"{prefix}insert_epoch": table.insert_epochs().copy(),
        f"{prefix}access_count": table.access_counts().copy(),
        f"{prefix}last_access_epoch": table.last_access_epochs().copy(),
        f"{prefix}forgotten_epoch": table.forgotten_epochs().copy(),
    }
    for name in table.column_names:
        arrays[f"{prefix}column:{name}"] = table.values(name).copy()
    return arrays


def _replay_table(
    table: Table, header: dict, bundle, prefix: str, on_insert=None
) -> Table:
    """Replay a saved table payload into (empty) ``table``.

    Cohort-by-cohort replay drives the live observer stream, so zone
    maps, histogram statistics and indexes attached to ``table``
    rebuild exactly; ``on_insert(table, positions, epoch)`` lets a
    database restore additionally feed its policy, mirroring
    :meth:`~repro.partitioning.partitioned.Partition.adopt_history`.
    """
    for cohort in header["cohorts"]:
        batch = {
            name: bundle[f"{prefix}column:{name}"][
                cohort["start"] : cohort["stop"]
            ]
            for name in header["columns"]
        }
        positions = table.insert_batch(cohort["epoch"], batch)
        if on_insert is not None:
            on_insert(table, positions, cohort["epoch"])

    active = bundle[f"{prefix}active"]
    if active.shape[0] != table.total_rows:
        raise StorageError(
            f"checkpoint is inconsistent: {active.shape[0]} activity "
            f"bits for {table.total_rows} rows"
        )
    forgotten_epoch = bundle[f"{prefix}forgotten_epoch"]
    forgotten = np.flatnonzero(~active)
    # Group by forgotten epoch so stamps are restored exactly.
    for epoch in np.unique(forgotten_epoch[forgotten]):
        batch = forgotten[forgotten_epoch[forgotten] == epoch]
        table.forget(batch, epoch=int(epoch))
    # Counters restore directly — no query replay needed.
    table._access_count.overwrite(bundle[f"{prefix}access_count"])
    table._last_access_epoch.overwrite(bundle[f"{prefix}last_access_epoch"])
    return table


# -- store payloads -------------------------------------------------------


def _compressed_payload(db, prefix: str) -> tuple[list, dict]:
    """Kind-tagged compressed-block records for one database.

    One record per demoted (cohort, column) block: scalars (codec name,
    span, exact value bounds, codec params) live in the JSON header
    with the payload-array field names recorded under ``"arrays"``; the
    arrays themselves are written as ``{prefix}cb{k}:{field}`` npz
    entries.
    """
    records: list[dict] = []
    arrays: dict = {}
    if getattr(db, "compressed", None) is None:
        return records, arrays
    for k, record in enumerate(db.compressed.state()):
        records.append(
            {**record["scalars"], "arrays": sorted(record["arrays"])}
        )
        for field, value in record["arrays"].items():
            arrays[f"{prefix}cb{k}:{field}"] = value
    return records, arrays


def _restore_compressed(db, records, bundle, prefix: str) -> None:
    """Rebuild a database's demoted blocks from v3 checkpoint records."""
    if db.compressed is None or not records:
        return
    full = []
    for k, rec in enumerate(records):
        scalars = {key: val for key, val in rec.items() if key != "arrays"}
        payload_arrays = {
            field: bundle[f"{prefix}cb{k}:{field}"]
            for field in rec.get("arrays", ())
        }
        full.append({"scalars": scalars, "arrays": payload_arrays})
    db.compressed.load_state(full)


def _database_payload(db, prefix: str) -> tuple[dict, dict]:
    compressed_records, compressed_arrays = _compressed_payload(db, prefix)
    header = {
        "kind": "database",
        "budget": db.budget,
        "epoch": db.epoch,
        "policy": db.policy.name,
        "plan": db.plan_mode,
        "stats": db.stats_mode,
        "compress": db.compress_mode,
        "compressed_blocks": compressed_records,
        # The victim-selection stream's position: restoring it lets a
        # randomized policy draw exactly what the live run would have.
        "policy_rng": db._policy_rng.bit_generator.state,
        "table": _table_header(db.table),
    }
    arrays = _table_arrays(db.table, prefix)
    arrays.update(compressed_arrays)
    return header, arrays


def _sharded_payload(store, prefix: str) -> tuple[dict, dict]:
    """Caller must hold the store's gate shared (see :func:`save_store`)."""
    partitions = sorted(store.partitions, key=lambda p: (p.low, p.high))
    header = {
        "kind": "sharded",
        "column": store.column,
        "total_budget": store.total_budget,
        "seed": store._seed,
        "plan": store.plan_mode,
        "stats": store.stats_mode,
        "compress": store.compress_mode,
        "workers": store.workers,
        "rebalance": store.rebalance_policy,
        "split_threshold": store.split_threshold,
        "max_partitions": store.max_partitions,
        "generation": store._generation,
        "adaptations": list(store.adaptations),
        "ingest_epoch": store.ingest_epoch,
        "partitions": [],
    }
    arrays: dict = {}
    for i, partition in enumerate(partitions):
        shard_prefix = f"{prefix}p{i}:"
        compressed_records, compressed_arrays = _compressed_payload(
            partition.db, shard_prefix
        )
        header["partitions"].append(
            {
                "low": partition.low,
                "high": partition.high,
                "budget": partition.budget,
                "epoch": partition.db.epoch,
                "query_hits": partition.query_hits,
                "query_rows": partition.query_rows,
                "policy_rng": partition.db._policy_rng.bit_generator.state,
                "table": _table_header(partition.db.table),
                "compressed_blocks": compressed_records,
            }
        )
        arrays.update(_table_arrays(partition.db.table, shard_prefix))
        arrays.update(compressed_arrays)
    return header, arrays


def _catalog_payload(catalog) -> tuple[dict, dict]:
    tables = [catalog.get(name) for name in catalog.names()]
    header = {
        "kind": "catalog",
        "plan": catalog._plan,
        "stats": catalog._stats,
        "workers": catalog._workers,
        "tables": [_table_header(t) for t in tables],
        "sharded": {},
    }
    arrays: dict = {}
    for i, table in enumerate(tables):
        arrays.update(_table_arrays(table, f"t{i}:"))
    for j, name in enumerate(catalog.sharded_names()):
        store = catalog.sharded(name)
        store.flush()
        with store.gate.reading():
            sub_header, sub_arrays = _sharded_payload(store, f"s{j}:")
        header["sharded"][name] = sub_header
        arrays.update(sub_arrays)
    return header, arrays


# -- save ----------------------------------------------------------------


def _array_crc(value) -> int:
    array = np.ascontiguousarray(np.asarray(value))
    return zlib.crc32(array.tobytes())


def _checkpoint_path(path) -> Path:
    # np.savez_compressed appended ``.npz`` to bare paths in formats
    # 1–3; keep that behaviour now that we write through a file handle.
    path = Path(path)
    if path.suffix != ".npz":
        path = Path(str(path) + ".npz")
    return path


def _write_bundle(path, header: dict, arrays: dict, rotate: bool = False) -> Path:
    """Atomically persist one checkpoint bundle.

    Write order is the durability argument: (1) the complete bundle —
    header with per-array CRC-32 manifest, then every array — lands in
    ``<path>.tmp`` and is fsynced; (2) with ``rotate``, any existing
    destination moves to ``<path>.prev``; (3) the tmp file moves into
    place with :func:`os.replace`.  Steps 2 and 3 are atomic renames,
    so a crash between any two steps leaves at least one fully-valid
    snapshot among ``path``/``path.prev`` (the fault points after each
    step let the property suite prove exactly that).
    """
    path = _checkpoint_path(path)
    manifest = {name: _array_crc(value) for name, value in arrays.items()}
    header = {
        "format_version": FORMAT_VERSION,
        "manifest": manifest,
        **header,
    }
    tmp = Path(str(path) + ".tmp")
    with open(tmp, "wb") as fh:
        np.savez_compressed(
            fh,
            header=np.frombuffer(
                json.dumps(header).encode(), dtype=np.uint8
            ),
            **arrays,
        )
        fh.flush()
        os.fsync(fh.fileno())
    fault_point(CHECKPOINT_TMP)
    if rotate and path.exists():
        os.replace(path, str(path) + ".prev")
        fault_point(CHECKPOINT_ROTATE)
    os.replace(tmp, path)
    fault_point(CHECKPOINT_DONE)
    try:
        # Make the renames themselves durable; best-effort, since not
        # every filesystem lets a directory be opened for fsync.
        dir_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:
        pass
    return path


def save_table(table: Table, path, rotate: bool = False) -> Path:
    """Write ``table`` to ``path`` as a compressed ``.npz`` checkpoint.

    The write is atomic (tmp + fsync + :func:`os.replace`); with
    ``rotate=True`` the previous checkpoint survives as ``path.prev``
    for :func:`recover_store` to fall back to.

    >>> import tempfile, os
    >>> t = Table("obs", ["a"])
    >>> _ = t.insert_batch(0, {"a": [1, 2, 3]})
    >>> out = save_table(t, os.path.join(tempfile.mkdtemp(), "t.npz"))
    >>> load_table(out).total_rows
    3
    """
    header = {"kind": "table", **_table_header(table)}
    return _write_bundle(path, header, _table_arrays(table, ""), rotate=rotate)


def save_store(store, path, rotate: bool = False) -> Path:
    """Write a table, database, sharded store or catalog to ``path``.

    One format, one file: the payload is tagged with its kind, and
    :func:`load_store` rebuilds the matching object.  A sharded store
    is flushed first (queued batches apply and publish), then
    snapshotted under its epoch gate's shared side, so the saved state
    is always a published ingest epoch — never a half-applied batch.
    The write is atomic; ``rotate=True`` keeps the previous checkpoint
    as ``path.prev`` (see :func:`recover_store`).
    """
    from ..core.database import AmnesiaDatabase
    from ..partitioning.partitioned import PartitionedAmnesiaDatabase
    from .catalog import Catalog

    if isinstance(store, Table):
        return save_table(store, path, rotate=rotate)
    if isinstance(store, AmnesiaDatabase):
        header, arrays = _database_payload(store, "")
        return _write_bundle(path, header, arrays, rotate=rotate)
    if isinstance(store, PartitionedAmnesiaDatabase):
        store.flush()
        with store.gate.reading():
            header, arrays = _sharded_payload(store, "")
        return _write_bundle(path, header, arrays, rotate=rotate)
    if isinstance(store, Catalog):
        header, arrays = _catalog_payload(store)
        return _write_bundle(path, header, arrays, rotate=rotate)
    raise StorageError(
        f"cannot checkpoint a {type(store).__name__}; expected a Table, "
        "AmnesiaDatabase, PartitionedAmnesiaDatabase or Catalog"
    )


# -- load ----------------------------------------------------------------


def _read_header(bundle, path: Path) -> dict:
    try:
        header = json.loads(bytes(bundle["header"].tobytes()).decode())
    except (KeyError, ValueError) as exc:
        raise StorageError(f"{path} is not a repro checkpoint") from exc
    version = header.get("format_version")
    if version != FORMAT_VERSION:
        raise StorageError(
            f"checkpoint format {version} not supported (expected "
            f"{FORMAT_VERSION}; format 1 files predate store/catalog "
            "checkpoints, format 2 files predate compressed-block "
            "payloads and format 3 files predate the checksummed "
            "durability manifest — re-create them with "
            "save_table/save_store)"
        )
    return header


def _verify_manifest(bundle, header: dict, path: Path) -> None:
    """Check every payload array against the header's CRC-32 manifest.

    Runs in full *before* any replay: a corrupt checkpoint must raise,
    not restore garbage into a fresh store.  Both directions are
    verified — a listed array that is missing or mismatched, and an
    unlisted stray array, each mean the file does not carry the state
    its header promises.
    """
    manifest = header["manifest"]
    members = set(bundle.files) - {"header"}
    missing = sorted(set(manifest) - members)
    stray = sorted(members - set(manifest))
    if missing or stray:
        detail = []
        if missing:
            detail.append(f"missing arrays: {', '.join(missing)}")
        if stray:
            detail.append(f"unlisted arrays: {', '.join(stray)}")
        raise StorageError(
            f"{path} is corrupt ({'; '.join(detail)})"
        )
    for name, expected in manifest.items():
        actual = _array_crc(bundle[name])
        if actual != expected:
            raise StorageError(
                f"{path} is corrupt (checksum mismatch for array "
                f"{name!r}: expected {expected}, got {actual})"
            )


def _load_database(header: dict, bundle, prefix: str, policy_factory):
    from ..core.database import AmnesiaDatabase

    if policy_factory is None:
        raise StorageError(
            "restoring a database checkpoint needs policy_factory= "
            "(policies are rebuilt, not serialized)"
        )
    table_header = header["table"]
    db = AmnesiaDatabase(
        budget=header["budget"],
        policy=policy_factory(),
        columns=table_header["columns"],
        table_name=table_header["name"],
        plan=header["plan"],
        stats=header["stats"],
        compress=header["compress"],
    )
    _replay_table(
        db.table,
        table_header,
        bundle,
        prefix,
        on_insert=db.policy.on_insert,
    )
    db.advance_epoch_to(header["epoch"])
    db._policy_rng.bit_generator.state = header["policy_rng"]
    # Demoted blocks restore from their saved payloads — no re-encode,
    # so codec choices and byte accounting come back bit-identical.
    _restore_compressed(db, header["compressed_blocks"], bundle, prefix)
    return db


def _load_sharded(header: dict, bundle, prefix: str, policy_factory):
    from ..partitioning.partitioned import PartitionedAmnesiaDatabase

    if policy_factory is None:
        raise StorageError(
            "restoring a sharded checkpoint needs policy_factory= "
            "(policies are rebuilt, not serialized)"
        )
    parts = header["partitions"]
    boundaries = [p["low"] for p in parts] + [parts[-1]["high"]]
    store = PartitionedAmnesiaDatabase(
        header["column"],
        boundaries,
        header["total_budget"],
        policy_factory,
        seed=header["seed"],
        plan=header["plan"],
        workers=header["workers"],
        rebalance=header["rebalance"],
        split_threshold=header["split_threshold"],
        max_partitions=header["max_partitions"],
        stats=header["stats"],
        compress=header["compress"],
    )
    for i, (partition, saved) in enumerate(zip(store.partitions, parts)):
        db = partition.db
        db.table.name = saved["table"]["name"]
        _replay_table(
            db.table,
            saved["table"],
            bundle,
            f"{prefix}p{i}:",
            on_insert=db.policy.on_insert,
        )
        db.advance_epoch_to(saved["epoch"])
        _restore_compressed(
            db, saved["compressed_blocks"], bundle, f"{prefix}p{i}:"
        )
        # Direct budget restore: the saved state already satisfies it,
        # and set_budget's enforcement would let overshoot-style
        # policies purge rows the checkpoint still holds.
        db.budget = int(saved["budget"])
        db._policy_rng.bit_generator.state = saved["policy_rng"]
        partition.query_hits = int(saved["query_hits"])
        partition.query_rows = int(saved["query_rows"])
    store._generation = int(header["generation"])
    store._adaptations = list(header["adaptations"])
    store.gate.reset(int(header["ingest_epoch"]))
    return store


def _load_catalog(header: dict, bundle, policy_factory):
    from .catalog import Catalog

    catalog = Catalog(
        plan=header["plan"],
        workers=header["workers"],
        stats=header["stats"],
    )
    for i, table_header in enumerate(header["tables"]):
        table = catalog.create_table(
            table_header["name"], table_header["columns"]
        )
        _replay_table(table, table_header, bundle, f"t{i}:")
    for j, (name, sub_header) in enumerate(header["sharded"].items()):
        store = _load_sharded(sub_header, bundle, f"s{j}:", policy_factory)
        catalog.register_sharded(name, store)
    return catalog


def load_store(path, policy_factory=None):
    """Restore whatever :func:`save_store` (or :func:`save_table`) wrote.

    Returns the object matching the checkpoint's kind: a
    :class:`Table`, an :class:`~repro.core.database.AmnesiaDatabase`,
    a :class:`~repro.partitioning.PartitionedAmnesiaDatabase` or a
    :class:`~repro.storage.catalog.Catalog`.  Database and sharded
    checkpoints (and catalogs containing sharded stores) need
    ``policy_factory`` — a zero-argument callable producing a fresh
    policy, exactly like the sharded constructor's — because policies
    rebuild from the replayed tables instead of being serialized.
    Truncated or corrupt files raise :class:`~repro._util.errors.
    StorageError`, never a bare numpy traceback.
    """
    path = Path(path)
    if not path.exists():
        raise StorageError(f"no checkpoint at {path}")
    try:
        with np.load(path) as bundle:
            header = _read_header(bundle, path)
            _verify_manifest(bundle, header, path)
            kind = header.get("kind", "table")
            if kind == "table":
                table = Table(header["name"], header["columns"])
                return _replay_table(table, header, bundle, "")
            if kind == "database":
                return _load_database(header, bundle, "", policy_factory)
            if kind == "sharded":
                return _load_sharded(header, bundle, "", policy_factory)
            if kind == "catalog":
                return _load_catalog(header, bundle, policy_factory)
            raise StorageError(
                f"{path} holds an unknown checkpoint kind {kind!r}"
            )
    except ReproError:
        raise
    except Exception as exc:
        # Truncated zip members, mangled JSON, missing arrays: surface
        # one storage diagnostic instead of a numpy/zipfile traceback.
        raise StorageError(
            f"{path} is not a readable checkpoint: {exc}"
        ) from exc


def recover_store(path, policy_factory=None):
    """Restore the newest fully-valid snapshot at or behind ``path``.

    Tries ``path`` first, then the ``path.prev`` rotation fallback
    (written by ``save_store(..., rotate=True)``), returning
    ``(store, used_path)`` for the first candidate whose manifest
    verifies in full.  Raises :class:`~repro._util.errors.StorageError`
    only when every candidate is missing, torn or corrupt — with one
    line per attempt so the operator sees exactly what was tried.

    This is the recovery half of the durability contract: because the
    write path is atomic-with-rotation, a crash at any instant leaves
    at least one candidate this function accepts.
    """
    path = _checkpoint_path(path)
    candidates = [path, Path(str(path) + ".prev")]
    failures: list[str] = []
    for candidate in candidates:
        try:
            return load_store(candidate, policy_factory), candidate
        except StorageError as exc:
            failures.append(f"{candidate}: {exc}")
    raise StorageError(
        "no recoverable checkpoint; tried "
        + "; ".join(failures)
    )


def load_table(path) -> Table:
    """Restore a table saved by :func:`save_table`.

    Store-level checkpoints (database/sharded/catalog kinds) must go
    through :func:`load_store`; pointing ``load_table`` at one raises
    a clear :class:`~repro._util.errors.StorageError`.
    """
    result = load_store(path)
    if not isinstance(result, Table):
        raise StorageError(
            f"{path} holds a {type(result).__name__} checkpoint; "
            "restore it with load_store()"
        )
    return result
