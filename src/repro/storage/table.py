"""The amnesiac table: columnar data + activity bitmap + tuple metadata.

A :class:`Table` is the simulator's unit of storage (paper §2.1).  It
holds:

* one append-only :class:`~repro.storage.column.IntColumn` per attribute
  (values are immutable history — amnesia never rewrites them);
* an *active* :class:`~repro.storage.bitmap.Bitmap` — the single source
  of truth for what the amnesiac DBMS can still see;
* per-tuple metadata the policies feed on: insertion epoch, access
  frequency, last-access epoch, forgotten-at epoch;
* a :class:`~repro.storage.cohorts.CohortLog` mapping row positions back
  to the update batch that inserted them (for the amnesia maps).

Observers (indexes, lifecycle dispositions) can subscribe to insert and
forget events so that auxiliary structures stay consistent without the
table knowing about them.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from .._util.errors import (
    InsufficientVictimsError,
    SchemaError,
    StorageError,
    UnknownColumnError,
)
from .bitmap import Bitmap
from .cohorts import CohortLog
from .column import IntColumn
from .vectors import GrowableIntVector

__all__ = ["Table", "TableObserver"]


class TableObserver(Protocol):
    """Subscriber to table mutations (duck-typed; see ``add_observer``)."""

    def on_insert(self, table: "Table", positions: np.ndarray) -> None:
        """Called after rows at ``positions`` were inserted."""

    def on_forget(self, table: "Table", positions: np.ndarray) -> None:
        """Called after rows at ``positions`` were marked forgotten."""


class Table:
    """A columnar table with activity marking and amnesia metadata.

    >>> t = Table("obs", ["a"])
    >>> _ = t.insert_batch(0, {"a": [5, 7, 9]})
    >>> t.forget(np.array([1]), epoch=1)
    1
    >>> t.active_count, t.forgotten_count
    (2, 1)
    >>> t.values("a")[t.active_positions()].tolist()
    [5, 9]
    """

    def __init__(self, name: str, column_names):
        if not name:
            raise SchemaError("table name must be non-empty")
        names = list(column_names)
        if not names:
            raise SchemaError("a table needs at least one column")
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in {names}")
        self.name = name
        self._columns: dict[str, IntColumn] = {n: IntColumn(n) for n in names}
        self._active = Bitmap()
        self._insert_epoch = GrowableIntVector(fill=0)
        self._access_count = GrowableIntVector(fill=0)
        self._last_access_epoch = GrowableIntVector(fill=-1)
        self._forgotten_epoch = GrowableIntVector(fill=-1)
        self._cohorts = CohortLog()
        self._observers: list[TableObserver] = []

    # -- schema ---------------------------------------------------------

    @property
    def column_names(self) -> tuple[str, ...]:
        """Attribute names, in declaration order."""
        return tuple(self._columns)

    def has_column(self, name: str) -> bool:
        """True if the table has a column called ``name``."""
        return name in self._columns

    def column(self, name: str) -> IntColumn:
        """The column object for ``name`` (raises UnknownColumnError)."""
        try:
            return self._columns[name]
        except KeyError:
            raise UnknownColumnError(name, self.column_names) from None

    # -- sizes ------------------------------------------------------------

    @property
    def total_rows(self) -> int:
        """Rows ever inserted (active + forgotten)."""
        return len(self._active)

    @property
    def active_count(self) -> int:
        """Rows the amnesiac DBMS can still see."""
        return self._active.count_set()

    @property
    def forgotten_count(self) -> int:
        """Rows marked forgotten so far."""
        return self._active.count_clear()

    @property
    def cohorts(self) -> CohortLog:
        """The insertion-batch log (read-mostly)."""
        return self._cohorts

    # -- mutation ---------------------------------------------------------

    def insert_batch(self, epoch: int, values_by_column: dict) -> np.ndarray:
        """Insert one batch of rows; return their positions.

        ``values_by_column`` must supply every column with equal-length
         1-D integer arrays.  The batch is recorded as the cohort for
        ``epoch``; epochs must strictly increase across calls.
        """
        missing = set(self._columns) - set(values_by_column)
        extra = set(values_by_column) - set(self._columns)
        if missing or extra:
            raise SchemaError(
                f"insert batch columns mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(extra)}"
            )
        arrays = {
            name: np.asarray(values_by_column[name]) for name in self._columns
        }
        lengths = {name: arr.shape[0] if arr.ndim == 1 else -1 for name, arr in arrays.items()}
        if len(set(lengths.values())) != 1 or -1 in lengths.values():
            raise SchemaError(f"insert batch arrays must be 1-D and equal length, got {lengths}")
        (n,) = set(lengths.values())

        start = self.total_rows
        cohort = self._cohorts.record(epoch=epoch, start=start, stop=start + n)
        for name, column in self._columns.items():
            column.append_many(arrays[name])
        self._active.extend(n, value=True)
        self._insert_epoch.extend(n, value=epoch)
        self._access_count.extend(n, value=0)
        self._last_access_epoch.extend(n, value=-1)
        self._forgotten_epoch.extend(n, value=-1)

        positions = cohort.positions()
        for observer in self._observers:
            observer.on_insert(self, positions)
        return positions

    def forget(self, positions: np.ndarray, epoch: int) -> int:
        """Mark rows at ``positions`` forgotten; return how many flipped.

        Forgetting is idempotent per row (re-forgetting is a no-op) but
        the simulator treats double-forgetting as a policy bug, so the
        count of newly flipped rows is returned for callers to assert on.
        """
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size == 0:
            return 0
        newly = positions[self._active.test_many(positions)]
        flipped = self._active.clear_many(positions)
        if newly.size:
            self._forgotten_epoch.set_at(newly, int(epoch))
            for observer in self._observers:
                observer.on_forget(self, newly)
        return flipped

    def require_victims(self, n: int) -> None:
        """Raise unless at least ``n`` active rows exist."""
        if n > self.active_count:
            raise InsufficientVictimsError(n, self.active_count)

    def restore_access(self, positions: np.ndarray, counts, last_epochs) -> None:
        """Bulk-restore access metadata for rows migrated between tables.

        Partition boundary splits/merges replay a shard's history into a
        fresh table; this carries the access-frequency signal the rot
        and overuse policies feed on across the move, instead of
        resetting every migrated row to "never read".
        """
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size == 0:
            return
        self._access_count.put(positions, counts)
        self._last_access_epoch.put(positions, last_epochs)

    def record_access(self, positions: np.ndarray, epoch: int) -> None:
        """Bump access frequency for rows appearing in a query result.

        Duplicate positions accumulate — a tuple returned by several
        queries in one batch is that much "fresher" (paper §3.2).
        """
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size == 0:
            return
        self._access_count.add_at(positions, 1)
        self._last_access_epoch.set_at(np.unique(positions), int(epoch))

    # -- views --------------------------------------------------------------

    def active_mask(self) -> np.ndarray:
        """Read-only boolean mask over all rows (True = active)."""
        return self._active.view()

    def active_positions(self) -> np.ndarray:
        """Positions of active rows, ascending."""
        return self._active.set_positions()

    def forgotten_positions(self) -> np.ndarray:
        """Positions of forgotten rows, ascending."""
        return self._active.clear_positions()

    def is_active(self, positions: np.ndarray) -> np.ndarray:
        """Boolean activity test for arbitrary ``positions``."""
        return self._active.test_many(positions)

    def values(self, column: str) -> np.ndarray:
        """Read-only view of *all* values of ``column`` (oracle view)."""
        return self.column(column).values()

    def active_values(self, column: str) -> np.ndarray:
        """Values of ``column`` restricted to active rows (a copy)."""
        return self.column(column).take(self.active_positions())

    def insert_epochs(self) -> np.ndarray:
        """Read-only per-row insertion epoch."""
        return self._insert_epoch.values()

    def access_counts(self) -> np.ndarray:
        """Read-only per-row access frequency."""
        return self._access_count.values()

    def last_access_epochs(self) -> np.ndarray:
        """Read-only per-row last-access epoch (-1 = never accessed)."""
        return self._last_access_epoch.values()

    def forgotten_epochs(self) -> np.ndarray:
        """Read-only per-row forgotten-at epoch (-1 = still active)."""
        return self._forgotten_epoch.values()

    # -- cohort analytics -----------------------------------------------------

    def cohort_activity(self) -> dict[int, float]:
        """Fraction of each cohort still active: the amnesia-map row.

        Returns ``{epoch: active_fraction}`` over all recorded cohorts.
        This is exactly one vertical slice of the paper's Figures 1–2.
        Runs once per amnesia-map slice on every epoch, so the
        per-cohort counts come from a single ``np.add.reduceat`` over
        the activity bitmap instead of a Python loop — cohorts tile
        ``[0, total_rows)``, so each cohort's segment ends where the
        next one starts.
        """
        cohorts = list(self._cohorts)
        if not cohorts:
            return {}
        mask = self.active_mask()
        sizes = np.asarray([c.size for c in cohorts], dtype=np.int64)
        if mask.size == 0:
            fractions = np.zeros(len(cohorts))
        else:
            # reduceat quirks: a repeated index (mid-stream empty
            # cohort) yields mask[start] instead of 0 — overwritten
            # below — and an index == len(mask) (trailing empty
            # cohort) is rejected outright, so those cohorts stay out
            # of the reduceat entirely rather than shifting the last
            # real segment's boundary.
            starts = np.asarray([c.start for c in cohorts], dtype=np.int64)
            counts = np.zeros(len(cohorts), dtype=np.int64)
            valid = starts < mask.size
            counts[valid] = np.add.reduceat(
                mask.astype(np.int64), starts[valid]
            )
            fractions = np.where(
                sizes > 0, counts / np.maximum(sizes, 1), 0.0
            )
        return {
            cohort.epoch: float(fraction)
            for cohort, fraction in zip(cohorts, fractions)
        }

    # -- observers ---------------------------------------------------------

    def add_observer(self, observer: TableObserver, *, backfill: bool = True) -> None:
        """Subscribe ``observer`` to insert/forget events.

        By default registration *backfills*: the observer immediately
        receives one ``on_insert`` covering every existing row followed
        by one ``on_forget`` for the already-forgotten ones, so an
        observer attached to a table that already holds history starts
        exact instead of silently missing it.  Pass ``backfill=False``
        for observers that only want the live stream (or that rebuild
        themselves from the table, as the indexes do).
        """
        if observer in self._observers:
            raise StorageError("observer already registered")
        self._observers.append(observer)
        if backfill and self.total_rows:
            observer.on_insert(self, np.arange(self.total_rows, dtype=np.int64))
            forgotten = self.forgotten_positions()
            if forgotten.size:
                observer.on_forget(self, forgotten)

    def remove_observer(self, observer: TableObserver) -> None:
        """Unsubscribe a previously registered observer."""
        try:
            self._observers.remove(observer)
        except ValueError:
            raise StorageError("observer was not registered") from None

    def __repr__(self) -> str:
        return (
            f"Table(name={self.name!r}, columns={list(self._columns)}, "
            f"total={self.total_rows}, active={self.active_count})"
        )
