"""Growable *mutable* integer vectors for per-tuple metadata.

:class:`~repro.storage.column.IntColumn` is append-only because data
values are immutable history.  Tuple *metadata* — access counters,
forgotten-at epochs — must be updated in place, so this module provides
a growable vector with bulk read/write, used by
:class:`~repro.storage.table.Table`.
"""

from __future__ import annotations

import numpy as np

from .._util.errors import StorageError

__all__ = ["GrowableIntVector"]

_INITIAL_CAPACITY = 64


class GrowableIntVector:
    """A growable ``int64`` vector supporting in-place bulk updates.

    >>> v = GrowableIntVector(fill=0)
    >>> v.extend(4)
    >>> v.add_at(np.array([1, 3]), 5)
    >>> v.values().tolist()
    [0, 5, 0, 5]
    """

    __slots__ = ("_data", "_length", "_fill")

    def __init__(self, fill: int = 0, initial_capacity: int = _INITIAL_CAPACITY):
        if initial_capacity < 1:
            raise StorageError("initial_capacity must be >= 1")
        self._data = np.full(initial_capacity, fill, dtype=np.int64)
        self._length = 0
        self._fill = int(fill)

    def __len__(self) -> int:
        return self._length

    def _ensure_capacity(self, needed: int) -> None:
        cap = self._data.shape[0]
        if needed <= cap:
            return
        new_cap = max(cap * 2, needed, _INITIAL_CAPACITY)
        grown = np.full(new_cap, self._fill, dtype=np.int64)
        grown[: self._length] = self._data[: self._length]
        self._data = grown

    def extend(self, n: int, *, value: int | None = None) -> None:
        """Append ``n`` slots initialised to ``value`` (default: fill)."""
        if n < 0:
            raise StorageError(f"cannot extend by negative count {n}")
        if n == 0:
            return
        self._ensure_capacity(self._length + n)
        self._data[self._length : self._length + n] = (
            self._fill if value is None else int(value)
        )
        self._length += n

    def extend_with(self, values) -> None:
        """Append explicit values."""
        arr = np.asarray(values, dtype=np.int64)
        if arr.ndim != 1:
            raise StorageError("extend_with expects a 1-D array")
        if arr.size == 0:
            return
        self._ensure_capacity(self._length + arr.size)
        self._data[self._length : self._length + arr.size] = arr
        self._length += arr.size

    def _check_positions(self, positions: np.ndarray) -> np.ndarray:
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size == 0:
            return positions
        if positions.min() < 0 or positions.max() >= self._length:
            raise IndexError(
                f"positions out of range [0, {self._length}) for vector update"
            )
        return positions

    def __getitem__(self, position: int) -> int:
        position = int(position)
        if not 0 <= position < self._length:
            raise IndexError(
                f"position {position} out of range for vector of length {self._length}"
            )
        return int(self._data[position])

    def set_at(self, positions: np.ndarray, value: int) -> None:
        """Set ``positions`` to a scalar ``value``."""
        positions = self._check_positions(positions)
        if positions.size:
            self._data[positions] = int(value)

    def put(self, positions: np.ndarray, values) -> None:
        """Set ``positions`` to per-position ``values`` (same length)."""
        positions = self._check_positions(positions)
        arr = np.asarray(values, dtype=np.int64)
        if arr.shape != positions.shape:
            raise StorageError(
                f"put expects {positions.shape} values, got {arr.shape}"
            )
        if positions.size:
            self._data[positions] = arr

    def add_at(self, positions: np.ndarray, delta: int = 1) -> None:
        """Add ``delta`` at ``positions``.

        Duplicate positions accumulate (``np.add.at`` semantics), which
        is exactly what access-frequency counting needs when one query
        batch touches a tuple several times.
        """
        positions = self._check_positions(positions)
        if positions.size:
            np.add.at(self._data, positions, int(delta))

    def take(self, positions: np.ndarray) -> np.ndarray:
        """Gather values at ``positions`` (a copy)."""
        positions = self._check_positions(positions)
        if positions.size == 0:
            return np.empty(0, dtype=np.int64)
        return self._data[positions].copy()

    def overwrite(self, values) -> None:
        """Replace the full logical contents (for checkpoint restore)."""
        arr = np.asarray(values, dtype=np.int64)
        if arr.shape != (self._length,):
            raise StorageError(
                f"overwrite expects {self._length} values, got {arr.shape}"
            )
        self._data[: self._length] = arr

    def values(self) -> np.ndarray:
        """Read-only view of the logical contents (zero copy)."""
        out = self._data[: self._length]
        out.flags.writeable = False
        return out

    def __repr__(self) -> str:
        return f"GrowableIntVector(length={self._length})"
