"""Summaries of forgotten data: min/max/avg plus histogram micro-models."""

from .histogram_summary import HistogramSummaryStore
from .summary import ColumnSummary, ForgottenSummary, SummaryStore

__all__ = [
    "ColumnSummary",
    "ForgottenSummary",
    "HistogramSummaryStore",
    "SummaryStore",
]
