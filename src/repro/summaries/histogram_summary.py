"""Histogram summaries: approximate *range* answers over forgotten data.

Plain min/max/avg summaries (paper §1) can only serve whole-population
aggregates.  The related work goes further — "turning portions of the
database into summaries ... or replacing portions of the database by
micro-models" (§5).  The cheapest useful micro-model of a forgotten
batch is an equi-width histogram: a few dozen counters that let the
DBMS *estimate* how many forgotten tuples a range predicate would have
matched, under the standard uniform-within-bin assumption.

That estimate turns silent information loss into a quantified error
bar: a range query can report "RF tuples returned, ~MF̂ more were
forgotten in this range".
"""

from __future__ import annotations

import numpy as np

from .._util.errors import ConfigError, LifecycleError
from ..stats.histograms import EquiWidthHistogram

__all__ = ["HistogramSummaryStore"]

_INT64_BYTES = 8


class HistogramSummaryStore:
    """Per-forget-event histograms of one column's forgotten values.

    Parameters
    ----------
    lo, hi:
        Inclusive value domain covered by the histograms (values
        outside are clamped into edge bins, consistent with
        :class:`~repro.stats.histograms.EquiWidthHistogram`).
    bins:
        Bin count per event histogram — the accuracy/space dial.

    >>> store = HistogramSummaryStore(0, 99, bins=10)
    >>> store.add(epoch=1, values=np.arange(0, 50))
    >>> store.approx_range_count(0, 25)
    25.0
    """

    def __init__(self, lo: int, hi: int, bins: int = 32):
        if hi < lo:
            raise ConfigError(f"domain [{lo}, {hi}] is reversed")
        self.lo = int(lo)
        self.hi = int(hi)
        self.bins = int(bins)
        if self.bins < 1:
            raise ConfigError(f"bins must be >= 1, got {bins}")
        # One merged histogram is sufficient: counts are additive and
        # per-event splits would only matter for time-travel queries.
        self._histogram = EquiWidthHistogram(self.lo, self.hi, bins=self.bins)
        self._events = 0

    @property
    def event_count(self) -> int:
        """Forget events summarised."""
        return self._events

    @property
    def tuple_count(self) -> int:
        """Forgotten tuples represented."""
        return self._histogram.total

    @property
    def nbytes(self) -> int:
        """Footprint: one counter per bin plus the two domain bounds."""
        return (self.bins + 2) * _INT64_BYTES

    def add(self, epoch: int, values: np.ndarray) -> None:
        """Fold one forgotten batch into the summary."""
        values = np.asarray(values)
        if values.size == 0:
            raise LifecycleError("cannot summarise an empty forgotten batch")
        self._histogram.add(values)
        self._events += 1

    def approx_range_count(self, low: int, high: int) -> float:
        """Estimated forgotten tuples with ``low <= value < high``.

        Bins partially covered by the range contribute proportionally
        to the overlap (uniform-within-bin assumption).
        """
        if high <= low:
            return 0.0
        edges = self._histogram.bin_edges()
        counts = self._histogram.counts.astype(np.float64)
        bin_lo = edges[:-1]
        bin_hi = edges[1:]
        overlap = np.clip(
            np.minimum(bin_hi, high) - np.maximum(bin_lo, low), 0.0, None
        )
        width = bin_hi - bin_lo
        return float((counts * overlap / width).sum())

    def repaired_range_count(self, active_count: int, low: int, high: int) -> float:
        """Active exact count plus the forgotten estimate."""
        if active_count < 0:
            raise ConfigError("active_count must be >= 0")
        return active_count + self.approx_range_count(low, high)

    def __repr__(self) -> str:
        return (
            f"HistogramSummaryStore(domain=[{self.lo}, {self.hi}], "
            f"bins={self.bins}, tuples={self.tuple_count})"
        )
