"""Aggregate summaries of forgotten data.

The paper's fourth disposition option (§1): "keep a summary, i.e., a
few aggregated values (min, max, avg) of all the forgotten data.  This
will reduce the storage drastically but the DBMS will only be able to
answer specific aggregation queries without making available any other
details."

A :class:`ForgottenSummary` keeps, per forgetting event and column, the
five additive statistics (count, sum, sum of squares, min, max).  From
those the :class:`SummaryStore` can answer whole-table COUNT, SUM, AVG,
MIN, MAX and VAR over *forgotten + active* data exactly, and
range-restricted aggregates approximately under a uniformity
assumption — quantified in experiment I1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util.errors import LifecycleError
from ..query.queries import AggregateFunction

__all__ = ["ColumnSummary", "ForgottenSummary", "SummaryStore"]

_INT64_BYTES = 8
#: Stored statistics per column summary (count, sum, sumsq, min, max).
_STATS_PER_COLUMN = 5


@dataclass(frozen=True)
class ColumnSummary:
    """Additive statistics of one column over one forgotten batch."""

    count: int
    total: float
    total_sq: float
    min: int
    max: int

    @classmethod
    def from_values(cls, values: np.ndarray) -> "ColumnSummary":
        """Summarise a non-empty value array."""
        values = np.asarray(values, dtype=np.int64)
        if values.size == 0:
            raise LifecycleError("cannot summarise an empty value array")
        as_float = values.astype(np.float64)
        return cls(
            count=int(values.size),
            total=float(as_float.sum()),
            total_sq=float((as_float**2).sum()),
            min=int(values.min()),
            max=int(values.max()),
        )

    def merge(self, other: "ColumnSummary") -> "ColumnSummary":
        """Combine two summaries (all statistics are additive)."""
        return ColumnSummary(
            count=self.count + other.count,
            total=self.total + other.total,
            total_sq=self.total_sq + other.total_sq,
            min=min(self.min, other.min),
            max=max(self.max, other.max),
        )

    @property
    def mean(self) -> float:
        """Average of the summarised values."""
        return self.total / self.count

    @property
    def variance(self) -> float:
        """Population variance of the summarised values."""
        return max(self.total_sq / self.count - self.mean**2, 0.0)


@dataclass(frozen=True)
class ForgottenSummary:
    """Summaries of all columns for one forgetting event."""

    epoch: int
    tuple_count: int
    columns: dict[str, ColumnSummary]

    @property
    def nbytes(self) -> int:
        """Storage footprint of the summary itself (tiny, by design)."""
        return len(self.columns) * _STATS_PER_COLUMN * _INT64_BYTES


class SummaryStore:
    """Accumulates per-event summaries and answers aggregate queries.

    >>> import numpy as np
    >>> store = SummaryStore()
    >>> _ = store.add(epoch=1, values_by_column={"a": np.array([1, 3])})
    >>> _ = store.add(epoch=2, values_by_column={"a": np.array([5])})
    >>> store.combined("a").count
    3
    >>> store.combined("a").mean
    3.0
    """

    def __init__(self) -> None:
        self._events: list[ForgottenSummary] = []

    def add(self, epoch: int, values_by_column: dict[str, np.ndarray]) -> ForgottenSummary:
        """Summarise one forgotten batch and retain the summary."""
        if not values_by_column:
            raise LifecycleError("summary event needs at least one column")
        columns = {
            name: ColumnSummary.from_values(values)
            for name, values in values_by_column.items()
        }
        counts = {s.count for s in columns.values()}
        if len(counts) != 1:
            raise LifecycleError("summary columns must cover the same tuples")
        event = ForgottenSummary(
            epoch=int(epoch), tuple_count=counts.pop(), columns=columns
        )
        self._events.append(event)
        return event

    @property
    def event_count(self) -> int:
        """Number of forgetting events summarised."""
        return len(self._events)

    @property
    def tuple_count(self) -> int:
        """Total tuples covered by all summaries."""
        return sum(e.tuple_count for e in self._events)

    @property
    def nbytes(self) -> int:
        """Total storage of all summaries."""
        return sum(e.nbytes for e in self._events)

    def events(self) -> list[ForgottenSummary]:
        """All summaries, oldest first."""
        return list(self._events)

    def combined(self, column: str) -> ColumnSummary:
        """Merge every event's summary for ``column``."""
        relevant = [e.columns[column] for e in self._events if column in e.columns]
        if not relevant:
            raise LifecycleError(f"no summaries recorded for column {column!r}")
        merged = relevant[0]
        for summary in relevant[1:]:
            merged = merged.merge(summary)
        return merged

    # -- query answering -------------------------------------------------

    def answer(self, function: AggregateFunction, column: str) -> float:
        """Whole-population aggregate over all *forgotten* tuples."""
        summary = self.combined(column)
        if function is AggregateFunction.COUNT:
            return float(summary.count)
        if function is AggregateFunction.SUM:
            return summary.total
        if function is AggregateFunction.AVG:
            return summary.mean
        if function is AggregateFunction.MIN:
            return float(summary.min)
        if function is AggregateFunction.MAX:
            return float(summary.max)
        if function is AggregateFunction.VAR:
            return summary.variance
        if function is AggregateFunction.STD:
            return float(np.sqrt(summary.variance))
        raise LifecycleError(f"summaries cannot answer {function}")

    def combined_with_active(
        self,
        function: AggregateFunction,
        column: str,
        active_values: np.ndarray,
    ) -> float | None:
        """Aggregate over active ∪ forgotten using summaries for the latter.

        COUNT/SUM/AVG/MIN/MAX combine exactly; VAR/STD combine exactly
        via the sum-of-squares identity.  This is what lets a
        summary-keeping amnesiac database answer §4.3's
        ``SELECT AVG(a) FROM t`` with zero error despite forgetting.
        """
        active_values = np.asarray(active_values, dtype=np.int64)
        if self.event_count == 0 or not any(
            column in e.columns for e in self._events
        ):
            return function.compute(active_values)
        summary = self.combined(column)
        if active_values.size:
            summary = summary.merge(ColumnSummary.from_values(active_values))
        if function is AggregateFunction.COUNT:
            return float(summary.count)
        if function is AggregateFunction.SUM:
            return summary.total
        if function is AggregateFunction.AVG:
            return summary.mean
        if function is AggregateFunction.MIN:
            return float(summary.min)
        if function is AggregateFunction.MAX:
            return float(summary.max)
        if function is AggregateFunction.VAR:
            return summary.variance
        if function is AggregateFunction.STD:
            return float(np.sqrt(summary.variance))
        raise LifecycleError(f"summaries cannot answer {function}")
