"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage import Table


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_table():
    """A 100-row single-column table, values 0..99 (epoch 0)."""
    table = Table("t", ["a"])
    table.insert_batch(0, {"a": np.arange(100)})
    return table


@pytest.fixture
def epoch_table():
    """A table with three insert batches (epochs 0, 1, 2), 60 rows.

    Values encode the epoch: epoch e inserted 20 values e*100..e*100+19.
    """
    table = Table("t", ["a"])
    for epoch in range(3):
        table.insert_batch(
            epoch, {"a": np.arange(epoch * 100, epoch * 100 + 20)}
        )
    return table
