"""Tests for privacy retention, composite policies and the registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.errors import ConfigError
from repro.amnesia import (
    POLICY_NAMES,
    CompositeAmnesia,
    FifoAmnesia,
    PrivacyRetentionWrapper,
    RotAmnesia,
    UniformAmnesia,
    make_policy,
)
from repro.storage import Table


class TestPrivacyRetention:
    def test_expired_detection(self, epoch_table):
        wrapper = PrivacyRetentionWrapper(UniformAmnesia(), max_age_epochs=2)
        expired = wrapper.expired(epoch_table, epoch=2)
        # Epoch-0 tuples (positions 0..19) have age 2 >= 2.
        assert sorted(expired.tolist()) == list(range(20))

    def test_expired_always_selected(self, epoch_table, rng):
        wrapper = PrivacyRetentionWrapper(UniformAmnesia(), max_age_epochs=2)
        victims = wrapper.select_victims(epoch_table, 5, 2, rng)
        # Overshoot: all 20 expired returned although only 5 were asked.
        assert victims.size == 20
        assert sorted(victims.tolist()) == list(range(20))

    def test_quota_topped_up_by_inner(self, epoch_table, rng):
        wrapper = PrivacyRetentionWrapper(FifoAmnesia(), max_age_epochs=3)
        # Nothing expired at epoch 2 with limit 3; inner fifo fills all 5.
        victims = wrapper.select_victims(epoch_table, 5, 2, rng)
        assert victims.tolist() == [0, 1, 2, 3, 4]

    def test_mixed_expired_plus_discretionary(self, epoch_table, rng):
        wrapper = PrivacyRetentionWrapper(FifoAmnesia(), max_age_epochs=2)
        victims = wrapper.select_victims(epoch_table, 25, 2, rng)
        assert victims.size == 25
        # 20 expired + 5 oldest discretionary (epoch-1 head).
        assert sorted(victims.tolist()) == list(range(25))

    def test_overshoot_flag_and_validation(self, epoch_table, rng):
        wrapper = PrivacyRetentionWrapper(UniformAmnesia(), max_age_epochs=2)
        victims = wrapper.select_victims(epoch_table, 5, 2, rng)
        out = wrapper.validate_victims(epoch_table, victims, 5)
        assert out.size == 20  # overshoot accepted

    def test_name_and_reset(self):
        wrapper = PrivacyRetentionWrapper(RotAmnesia(), max_age_epochs=2)
        assert wrapper.name == "privacy(rot)"
        wrapper.reset()  # must not raise

    def test_validation(self):
        with pytest.raises(ConfigError):
            PrivacyRetentionWrapper(UniformAmnesia(), max_age_epochs=0)

    def test_respects_exclusion(self, epoch_table, rng):
        wrapper = PrivacyRetentionWrapper(FifoAmnesia(), max_age_epochs=2)
        victims = wrapper.select_victims(
            epoch_table, 5, 2, rng, exclude=np.arange(10)
        )
        # Excluded expired tuples are not re-selected.
        assert not np.isin(victims, np.arange(10)).any()


class TestComposite:
    def test_exact_count_no_duplicates(self, small_table, rng):
        mix = CompositeAmnesia(
            [(0.5, FifoAmnesia()), (0.5, UniformAmnesia())]
        )
        victims = mix.select_victims(small_table, 40, 1, rng)
        assert victims.size == 40
        assert np.unique(victims).size == 40

    def test_weights_shape_selection(self, small_table, rng):
        """90% fifo mixture mostly takes the oldest positions."""
        mix = CompositeAmnesia(
            [(9.0, FifoAmnesia()), (1.0, UniformAmnesia())]
        )
        totals = []
        for _ in range(30):
            victims = mix.select_victims(small_table, 20, 1, rng)
            totals.append((victims < 30).mean())
        assert np.mean(totals) > 0.7

    def test_name_lists_components(self):
        mix = CompositeAmnesia([(1.0, FifoAmnesia()), (3.0, RotAmnesia())])
        assert mix.name == "mix(fifo:0.25,rot:0.75)"
        assert len(mix.policies) == 2

    def test_rejects_overshooting_members(self):
        with pytest.raises(ConfigError):
            CompositeAmnesia(
                [(1.0, PrivacyRetentionWrapper(FifoAmnesia(), 2))]
            )

    def test_validation(self):
        with pytest.raises(ConfigError):
            CompositeAmnesia([])
        with pytest.raises(ConfigError):
            CompositeAmnesia([(0.0, FifoAmnesia())])

    def test_zero_victims(self, small_table, rng):
        mix = CompositeAmnesia([(1.0, FifoAmnesia())])
        assert mix.select_victims(small_table, 0, 1, rng).size == 0

    def test_reset_propagates(self, small_table, rng):
        from repro.amnesia import AreaAmnesia

        area = AreaAmnesia(max_areas=2)
        mix = CompositeAmnesia([(1.0, area)])
        mix.select_victims(small_table, 10, 1, rng)
        assert area.areas
        mix.reset()
        assert area.areas == []


class TestRegistry:
    def test_all_names_construct(self):
        for name in POLICY_NAMES:
            kwargs = {"column": "a"} if name in ("pair", "dist", "stratified") else {}
            policy = make_policy(name, **kwargs)
            assert policy.name == name

    def test_kwargs_forwarded(self):
        policy = make_policy("rot", high_water_mark=3)
        assert policy.high_water_mark == 3

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            make_policy("total-recall")

    def test_registry_covers_paper_figures(self):
        from repro.amnesia import FIGURE1_POLICIES, FIGURE3_POLICIES

        assert set(FIGURE1_POLICIES) <= set(POLICY_NAMES)
        assert set(FIGURE3_POLICIES) <= set(POLICY_NAMES)
        assert "rot" in FIGURE3_POLICIES and "rot" not in FIGURE1_POLICIES
