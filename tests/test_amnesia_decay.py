"""Tests for the Ebbinghaus forgetting-curve policy."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.errors import ConfigError
from repro.amnesia import EbbinghausAmnesia, make_policy
from repro.storage import Table


class TestRetentionModel:
    def test_fresh_tuple_fully_retained(self, small_table):
        policy = EbbinghausAmnesia(base_strength=2.0)
        retention = policy.retention(small_table, np.array([0]), epoch=0)
        assert retention[0] == pytest.approx(1.0)

    def test_decay_with_age(self, small_table):
        policy = EbbinghausAmnesia(base_strength=2.0, reinforcement=0.0)
        r = policy.retention(small_table, np.array([0]), epoch=2)
        assert r[0] == pytest.approx(np.exp(-1.0))
        r4 = policy.retention(small_table, np.array([0]), epoch=4)
        assert r4[0] < r[0]

    def test_reinforcement_slows_decay(self, small_table):
        small_table.record_access(np.repeat(np.array([0]), 10), epoch=1)
        policy = EbbinghausAmnesia(base_strength=2.0, reinforcement=1.0)
        hot, cold = policy.retention(small_table, np.array([0, 1]), epoch=5)
        assert hot > cold

    def test_zero_reinforcement_is_pure_temporal(self, epoch_table):
        epoch_table.record_access(np.repeat(np.arange(10), 50), epoch=2)
        policy = EbbinghausAmnesia(base_strength=2.0, reinforcement=0.0)
        accessed, untouched = policy.retention(
            epoch_table, np.array([0, 1]), epoch=4
        )
        assert accessed == pytest.approx(untouched)


class TestSelection:
    def test_contract(self, small_table, rng):
        policy = EbbinghausAmnesia()
        victims = policy.select_victims(small_table, 30, 3, rng)
        assert victims.size == 30
        assert np.unique(victims).size == 30
        assert small_table.is_active(victims).all()

    def test_prefers_old_unqueried(self, rng):
        table = Table("t", ["a"])
        table.insert_batch(0, {"a": np.arange(50)})
        table.insert_batch(5, {"a": np.arange(50)})
        policy = EbbinghausAmnesia(base_strength=1.0)
        hits = np.zeros(100)
        for _ in range(100):
            hits[policy.select_victims(table, 20, 5, rng)] += 1
        assert hits[:50].sum() > 2 * hits[50:].sum()

    def test_accessed_tuples_survive(self, rng):
        table = Table("t", ["a"])
        table.insert_batch(0, {"a": np.arange(100)})
        table.record_access(np.repeat(np.arange(20), 30), epoch=1)
        policy = EbbinghausAmnesia(base_strength=1.0, reinforcement=2.0)
        hits = np.zeros(100)
        for _ in range(100):
            hits[policy.select_victims(table, 20, 6, rng)] += 1
        assert hits[20:].mean() > 3 * max(hits[:20].mean(), 0.01)

    def test_zero_victims(self, small_table, rng):
        assert EbbinghausAmnesia().select_victims(
            small_table, 0, 1, rng
        ).size == 0


class TestConfig:
    def test_registered(self):
        assert make_policy("ebbinghaus").name == "ebbinghaus"

    def test_validation(self):
        with pytest.raises(ConfigError):
            EbbinghausAmnesia(base_strength=0.0)
        with pytest.raises(ConfigError):
            EbbinghausAmnesia(reinforcement=-1.0)

    def test_repr(self):
        assert "base_strength" in repr(EbbinghausAmnesia())
